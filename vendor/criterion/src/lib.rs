//! Minimal offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the criterion API surface
//! used by this workspace's benches (`Criterion`, `Bencher::iter`,
//! `iter_batched`, `black_box`, the `criterion_group!`/`criterion_main!`
//! macros) is reimplemented here with a simple median-of-samples timer.
//!
//! Besides printing human-readable results, every measurement is appended as
//! one JSON line to the file named by the `CRITERION_STUB_JSON` environment
//! variable (when set), so CI and the `repro_fastpath` harness can collect
//! machine-readable results without the real criterion's output directory.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// computations.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints for [`Bencher::iter_batched`]; the stub treats every
/// variant the same (one setup per measured invocation batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id (function name).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration (split across the samples).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
            iterations: 0,
        };
        f(&mut bencher);
        let mut samples = bencher.samples_ns;
        samples.sort_by(f64::total_cmp);
        let median_ns = if samples.is_empty() {
            0.0
        } else {
            samples[samples.len() / 2]
        };
        println!("{name:<50} time: [{}]", format_ns(median_ns));
        let m = Measurement {
            name: name.to_string(),
            median_ns,
            iterations: bencher.iterations,
        };
        append_json(&m);
        self.results.push(m);
        self
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn append_json(m: &Measurement) {
    let Ok(path) = std::env::var("CRITERION_STUB_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"name\":\"{}\",\"median_ns\":{},\"iterations\":{}}}",
        m.name.replace('"', "'"),
        m.median_ns,
        m.iterations
    );
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(file, "{line}");
    }
}

/// Per-benchmark timing helper handed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
    iterations: u64,
}

impl Bencher {
    /// Measures a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns
                .push(elapsed * 1e9 / iters_per_sample as f64);
            self.iterations += iters_per_sample;
        }
    }

    /// Measures a routine with a fresh input per invocation; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up with a handful of invocations.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let input = setup();
            black_box(f(input));
            warm_iters += 1;
            if warm_iters >= 100_000 {
                break;
            }
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns.push(elapsed * 1e9);
            self.iterations += 1;
        }
    }
}

/// Declares a benchmark group, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_closure() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].median_ns > 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(c.measurements()[0].iterations, 3);
    }
}
