//! Minimal offline drop-in subset of the `proptest` property-testing crate.
//!
//! The build environment has no network access, so the proptest API surface
//! used by this workspace (range and collection strategies, `prop_map`,
//! `prop_flat_map`, tuple strategies, the `proptest!` macro and the
//! `prop_assert*` macros) is reimplemented here. Each test runs a fixed
//! number of deterministic pseudo-random cases seeded from the test name —
//! there is **no shrinking**, so failures report the failing case index and
//! values instead of a minimized counterexample.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always produces clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_strategies {
        ($($ty:ty),+) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
                }
            }
        )+};
    }
    impl_int_strategies!(usize, u8, u16, u32, u64, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident: $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`](fn@vec): a fixed length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing vectors whose elements come from
    /// `element` and whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of pseudo-random cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A test-case failure raised by the `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator driving value generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator seeded from a test name.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// Returns the next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Fails the current property-test case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property-test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "{} (left: {:?}, right: {:?})", format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic pseudo-random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!("property failed at case {case}: {e}");
                }
            }
        }
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
}

/// The commonly imported names, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 1usize..=4, y in 0u32..10) {
            prop_assert!((1..=4).contains(&x));
            prop_assert!(y < 10, "y was {}", y);
        }

        #[test]
        fn vec_lengths_respect_the_size_range(v in collection::vec(0usize..100, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..=3).prop_flat_map(|n| collection::vec(0usize..10, n).prop_map(move |v| (n, v)))) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
