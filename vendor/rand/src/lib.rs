//! Minimal offline drop-in subset of the `rand` crate.
//!
//! The build environment for this workspace has no network access, so the
//! handful of `rand` APIs the test suite uses (`StdRng`, `SeedableRng`,
//! `Rng::gen_range`) are reimplemented here on top of the SplitMix64 /
//! xoshiro256** generators. The statistical quality is more than sufficient
//! for generating test inputs; this is **not** a cryptographic generator and
//! makes no attempt to be sequence-compatible with the real `rand` crate.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range using the given generator.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_float_range {
    ($ty:ty) => {
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + unit * (hi - lo)) as $ty
            }
        }
    };
}
impl_float_range!(f32);
impl_float_range!(f64);

macro_rules! impl_int_range {
    ($ty:ty) => {
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $ty
            }
        }
    };
}
impl_int_range!(usize);
impl_int_range!(u64);
impl_int_range!(u32);
impl_int_range!(i64);
impl_int_range!(i32);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A xoshiro256** generator, seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = a.gen_range(-1.0..1.0);
            let y: f32 = b.gen_range(-1.0..1.0);
            assert_eq!(x, y);
            assert!((-1.0..1.0).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0usize..1000), c.gen_range(0usize..1000));
    }

    #[test]
    fn integer_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
