//! Minimal offline drop-in subset of the `parking_lot` crate: a [`Mutex`] and
//! [`RwLock`] with the panic-free, poison-free locking API, implemented on
//! top of the standard-library primitives.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that (like `parking_lot`) has no lock poisoning:
/// `lock()` returns the guard directly rather than a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value when the mutex is
    /// exclusively borrowed.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
