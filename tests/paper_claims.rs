//! Integration tests asserting the qualitative claims of the paper's
//! evaluation hold in this reproduction (directions and rough magnitudes;
//! the exact factors are recorded in EXPERIMENTS.md).

use hexcute::arch::GpuArch;
use hexcute::baselines::{
    marlin_new_moe_latency_us, marlin_old_moe_latency_us, triton_latency_us, triton_moe_program,
};
use hexcute::core::Compiler;
use hexcute::e2e::{decode_latency_ms, KernelBackend, ModelConfig};
use hexcute::kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};

/// Section VII-B / Fig. 11: Hexcute beats Triton by a large factor on the
/// mixed-type MoE, beats Marlin-old by an even larger one, and is in the same
/// ballpark as Marlin-new.
#[test]
fn moe_speedup_ordering_matches_fig11() {
    let arch = GpuArch::h100();
    let config = MoeConfig::default();
    let compiler = Compiler::new(arch.clone());
    let mut vs_triton = Vec::new();
    let mut vs_marlin_old = Vec::new();
    let mut vs_marlin_new = Vec::new();
    for tokens in [16usize, 128, 1024] {
        let shape = MoeShape::deepseek_r1(tokens);
        let hexcute = compiler
            .compile(&mixed_type_moe(shape, config, MoeDataflow::Efficient).unwrap())
            .unwrap()
            .latency_us();
        let triton = triton_latency_us(&triton_moe_program(shape, config).unwrap(), &arch)
            .unwrap()
            .latency_us;
        vs_triton.push(triton / hexcute);
        vs_marlin_old.push(marlin_old_moe_latency_us(&shape, &arch) / hexcute);
        vs_marlin_new.push(marlin_new_moe_latency_us(&shape, &arch) / hexcute);
    }
    let geo = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    let triton_speedup = geo(&vs_triton);
    let marlin_old_speedup = geo(&vs_marlin_old);
    let marlin_new_ratio = geo(&vs_marlin_new);
    // Paper: 6.46x over Triton, 28.42x over Marlin-old, ~0.96x of Marlin-new.
    assert!(
        triton_speedup > 2.0,
        "Hexcute vs Triton only {triton_speedup:.2}x"
    );
    assert!(
        marlin_old_speedup > triton_speedup,
        "Marlin-old should be the slowest baseline"
    );
    // The simulator credits Hexcute's L2 reuse while the Marlin-new model is
    // a DRAM roofline, so this ratio lands above the paper's 0.96x; it must
    // still stay within the same order of magnitude (see EXPERIMENTS.md).
    assert!(
        marlin_new_ratio > 0.4 && marlin_new_ratio < 4.0,
        "Hexcute should be within the Marlin-new ballpark, got {marlin_new_ratio:.2}"
    );
}

/// Section VII-A / Table II: across the standard operator families Hexcute is
/// at least as fast as the Triton-style compilation.
#[test]
fn hexcute_never_loses_to_triton_on_table2_families() {
    use hexcute_bench::table2::{evaluate_family, OperatorFamily};
    for family in [
        OperatorFamily::Fp16GemmA100,
        OperatorFamily::MhaDecodingA100,
        OperatorFamily::WarpSpecializedGemmH100,
    ] {
        for (shape, r) in evaluate_family(family, true) {
            assert!(
                r.hexcute_us <= r.triton_us * 1.02,
                "{}: Hexcute ({:.1} us) slower than Triton ({:.1} us) on {}",
                family.name(),
                r.hexcute_us,
                r.triton_us,
                shape.label()
            );
        }
    }
}

/// Section VII-C / Fig. 12: the analytical cost model picks candidates close
/// to the simulated optimum.
#[test]
fn cost_model_selection_quality_is_high() {
    use hexcute_bench::cost_model::{accuracy_shapes, evaluate_accuracy};
    let points = evaluate_accuracy(&accuracy_shapes(true));
    for p in &points {
        assert!(
            p.ratio <= 1.15,
            "{:?}: cost model ratio {:.3}",
            p.shape,
            p.ratio
        );
    }
}

/// Section VII-D / Fig. 13: end-to-end, the MoE-heavy model benefits the
/// most, the dense FP8 model the least.
#[test]
fn end_to_end_speedups_follow_the_paper_ordering() {
    let arch = GpuArch::h100();
    let speedup = |model: ModelConfig| {
        let baseline = decode_latency_ms(&model, KernelBackend::Baseline, 8, 2048, &arch).total_ms;
        let hexcute = decode_latency_ms(&model, KernelBackend::Hexcute, 8, 2048, &arch).total_ms;
        baseline / hexcute
    };
    let deepseek = speedup(ModelConfig::deepseek_r1_awq());
    let jamba = speedup(ModelConfig::jamba_mini());
    let qwen = speedup(ModelConfig::qwen3_32b());
    assert!(deepseek > 1.2, "DeepSeek-R1-AWQ speedup {deepseek:.2}");
    assert!(jamba > 1.0, "Jamba speedup {jamba:.2}");
    assert!(
        qwen < deepseek,
        "the dense model should gain the least (qwen {qwen:.2} vs deepseek {deepseek:.2})"
    );
}
