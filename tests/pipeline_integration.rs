//! Cross-crate integration tests: the full pipeline (DSL → synthesis → cost
//! model → lowering → simulation) for every kernel family on both target
//! architectures.

use std::collections::HashMap;

use hexcute::arch::{DType, GpuArch};
use hexcute::core::Compiler;
use hexcute::ir::KernelBuilder;
use hexcute::kernels::attention::{mha_decoding, mha_forward, AttentionConfig, AttentionShape};
use hexcute::kernels::gemm::{
    fp16_gemm, fp8_blockwise_gemm, warp_specialized_gemm, GemmConfig, GemmShape,
};
use hexcute::kernels::mamba::{selective_scan, ScanConfig, ScanShape};
use hexcute::kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute::layout::Layout;
use rand::{rngs::StdRng, Rng, SeedableRng};

#[test]
fn every_kernel_family_compiles_on_its_target_architecture() {
    let a100 = GpuArch::a100();
    let h100 = GpuArch::h100();
    let cases: Vec<(&str, hexcute::ir::Program, &GpuArch)> = vec![
        (
            "fp16 gemm",
            fp16_gemm(GemmShape::new(4096, 4096, 4096), GemmConfig::default()).unwrap(),
            &a100,
        ),
        (
            "warp-specialized gemm",
            warp_specialized_gemm(
                GemmShape::new(4096, 4096, 4096),
                GemmConfig::warp_specialized_hopper(),
            )
            .unwrap(),
            &h100,
        ),
        (
            "fp8 blockwise gemm",
            fp8_blockwise_gemm(GemmShape::new(2048, 2048, 2048), GemmConfig::default()).unwrap(),
            &h100,
        ),
        (
            "mha forward",
            mha_forward(
                AttentionShape::forward(1, 32, 2048, 128),
                AttentionConfig::default(),
            )
            .unwrap(),
            &a100,
        ),
        (
            "mha decoding",
            mha_decoding(
                AttentionShape::decoding(16, 32, 4096, 128),
                AttentionConfig::default(),
            )
            .unwrap(),
            &a100,
        ),
        (
            "mixed-type moe",
            mixed_type_moe(
                MoeShape::deepseek_r1(64),
                MoeConfig::default(),
                MoeDataflow::Efficient,
            )
            .unwrap(),
            &h100,
        ),
        (
            "mamba scan",
            selective_scan(ScanShape::new(1, 4096, 16, 4096), ScanConfig::default()).unwrap(),
            &h100,
        ),
    ];
    for (name, program, arch) in cases {
        let kernel = Compiler::new(arch.clone())
            .compile(&program)
            .unwrap_or_else(|e| panic!("{name}: compilation failed: {e}"));
        assert!(kernel.latency_us() > 0.0, "{name}: zero latency");
        assert!(
            kernel.stats.candidates_explored >= 1,
            "{name}: no candidates"
        );
        assert!(
            kernel.stats.selection_quality < 1.25,
            "{name}: cost model selected a candidate {:.2}x worse than the best",
            kernel.stats.selection_quality
        );
        let source = kernel.cuda_source();
        assert!(
            source.contains("__global__"),
            "{name}: missing kernel signature"
        );
        // Every register tensor received a synthesized thread-value layout.
        for decl in kernel.program.tensors() {
            if decl.space == hexcute::arch::MemSpace::Register {
                assert!(
                    kernel.candidate.tv_layouts.contains_key(&decl.id),
                    "{name}: register tensor {} has no synthesized layout",
                    decl.name
                );
            }
        }
        // Every shared tensor received a memory layout.
        for id in kernel.program.shared_tensors() {
            assert!(
                kernel.candidate.smem_layouts.contains_key(&id),
                "{name}: missing smem layout"
            );
        }
    }
}

#[test]
fn compiled_gemm_matches_reference_through_the_facade() {
    let (m, n, k) = (128usize, 128usize, 64usize);
    let mut kb = KernelBuilder::new("facade_gemm", 128);
    let ga = kb.global_view(
        "a",
        DType::F16,
        Layout::from_flat(&[m, k], &[k, 1]),
        &[m, k],
    );
    let gb = kb.global_view(
        "b",
        DType::F16,
        Layout::from_flat(&[n, k], &[k, 1]),
        &[n, k],
    );
    let gc = kb.global_view(
        "c",
        DType::F32,
        Layout::from_flat(&[m, n], &[n, 1]),
        &[m, n],
    );
    let sa = kb.shared_tensor("sa", DType::F16, &[m, k]);
    let sb = kb.shared_tensor("sb", DType::F16, &[n, k]);
    let ra = kb.register_tensor("ra", DType::F16, &[m, k]);
    let rb = kb.register_tensor("rb", DType::F16, &[n, k]);
    let rc = kb.register_tensor("rc", DType::F32, &[m, n]);
    kb.fill(rc, 0.0);
    kb.copy(ga, sa);
    kb.copy(gb, sb);
    kb.copy(sa, ra);
    kb.copy(sb, rb);
    kb.gemm(rc, ra, rb);
    kb.copy(rc, gc);
    let program = kb.build().unwrap();

    for arch in [GpuArch::a100(), GpuArch::h100()] {
        let kernel = Compiler::new(arch).compile(&program).unwrap();
        let mut rng = StdRng::seed_from_u64(123);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), a.clone());
        inputs.insert("b".to_string(), b.clone());
        let outputs = kernel.simulate(&inputs).unwrap();
        let c = &outputs["c"];
        for mi in (0..m).step_by(31) {
            for ni in (0..n).step_by(17) {
                let expect: f32 = (0..k).map(|ki| a[mi * k + ki] * b[ni * k + ki]).sum();
                assert!(
                    (c[mi * n + ni] - expect).abs() < 1e-3,
                    "c[{mi},{ni}] = {} expected {expect}",
                    c[mi * n + ni]
                );
            }
        }
    }
}

#[test]
fn ablations_never_beat_the_full_compiler() {
    use hexcute::core::{CompilerOptions, SynthesisOptions};
    let arch = GpuArch::a100();
    let program = fp16_gemm(GemmShape::new(4096, 4096, 4096), GemmConfig::default()).unwrap();
    let full = Compiler::new(arch.clone()).compile(&program).unwrap();
    for (name, options) in [
        ("scalar copies", SynthesisOptions::scalar_fallback()),
        ("triton smem layout", SynthesisOptions::triton_smem_layout()),
    ] {
        let ablated = Compiler::with_options(
            arch.clone(),
            CompilerOptions {
                synthesis: options,
                use_cost_model: true,
            },
        )
        .compile(&program)
        .unwrap();
        assert!(
            ablated.cost.total_cycles >= full.cost.total_cycles,
            "{name}: ablation unexpectedly improved the block timeline"
        );
    }
}
