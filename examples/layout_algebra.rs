//! A tour of the CuTe-style layout algebra, reproducing the worked examples
//! of the paper: the layouts of Fig. 1/Fig. 2, the `ldmatrix` layouts of
//! Fig. 7, and the composite function `g ∘ q⁻¹` of Appendix C.
//!
//! ```bash
//! cargo run --example layout_algebra
//! ```

use hexcute::layout::{ituple, Layout, RepeatMode, Swizzle, SwizzledLayout, TvLayout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 2(a): the row-major-interleaved shared-memory layout m.
    let m = Layout::new(ituple![(2, 2), 8], ituple![(1, 16), 2])?;
    println!("m = {m}");
    println!(
        "m((0,1),4) = {}   (the paper's coordinate (2,4) -> address 24)",
        m.map_coords(&[0, 1, 4])
    );

    // Fig. 2(b)/(c): the thread-value layout f and f(2,3).
    let f = TvLayout::new(
        Layout::from_flat(&[2, 4], &[8, 1]),
        Layout::from_flat(&[2, 2], &[4, 16]),
        vec![4, 8],
    )?;
    println!(
        "f(tid=2, vid=3) = {:?}   (the paper's (1, 5))",
        f.tile_coords(2, 3)
    );

    // Fig. 7 / Appendix C: the ldmatrix layouts and g ∘ q⁻¹.
    let q = Layout::new(ituple![(4, 8), (2, 4)], ituple![(64, 1), (32, 8)])?;
    let q_inv = q.right_inverse()?;
    println!("q    = {q}");
    println!("q^-1 = {q_inv}   (Appendix C: ((8,4),(2,4)):((4,64),(32,1)))");
    let g = Layout::new(ituple![(4, 8), (2, 2, 2)], ituple![(32, 1), (16, 8, 256)])?;
    let expected_q_inv = Layout::new(ituple![(8, 4), (2, 4)], ituple![(4, 64), (32, 1)])?;
    let composite = g.compose(&expected_q_inv)?;
    println!("g ∘ q^-1 = {composite}");
    let out = composite.mode(0).map(17) + composite.mode(1).map(5);
    println!(
        "(g ∘ q^-1)(17, 5) = {out} = ({}, {})   (the paper's (1, 21))",
        out % 16,
        out / 16
    );

    // Expanding an mma atom over a block tile (the constructive side of the
    // gemm constraints).
    let atom = TvLayout::new(
        Layout::from_flat(&[4, 8], &[32, 1]),
        Layout::from_flat(&[2, 2], &[16, 8]),
        vec![16, 8],
    )?;
    let full = atom.expand(
        &[RepeatMode::along(2, 0), RepeatMode::along(2, 1)],
        &[RepeatMode::along(2, 0), RepeatMode::along(4, 1)],
    )?;
    println!(
        "m16n8 accumulator expanded over a 64x64 tile: {} threads x {} values",
        full.num_threads(),
        full.values_per_thread()
    );

    // Swizzled shared-memory layouts eliminate bank conflicts.
    let base = Layout::row_major(&[8, 64]);
    let swizzled = SwizzledLayout::new(Swizzle::new(3, 3, 3), base.clone());
    let plain_banks: Vec<usize> = (0..8)
        .map(|r| (base.map_coords(&[r, 0]) * 2 / 4) % 32)
        .collect();
    let swizzled_banks: Vec<usize> = (0..8)
        .map(|r| (swizzled.map_coords(&[r, 0]) * 2 / 4) % 32)
        .collect();
    println!("column access banks, row-major: {plain_banks:?}");
    println!("column access banks, swizzled:  {swizzled_banks:?}");
    Ok(())
}
