//! The W4A16 quantized GEMM: packed-INT4 weights dequantized in flight
//! (Marlin-style) between the shared-memory unpack load and the Tensor Core.
//!
//! Compiles the synthesized kernel across decode batch sizes, compares it
//! against the hand-written Marlin kernel's performance model, and prints
//! the emitted pseudo-CUDA so the unpack load and the grouped `dequant`
//! operation are visible.
//!
//! ```bash
//! cargo run --example quant_gemm
//! ```

use hexcute::arch::GpuArch;
use hexcute::baselines::marlin_w4a16_latency_us;
use hexcute::core::Compiler;
use hexcute::kernels::quant_gemm::{w4a16_gemm, QuantGemmConfig, QuantGemmShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = GpuArch::h100();
    let compiler = Compiler::new(arch.clone());

    println!("W4A16 GEMM (Llama-70B projection, group size 128), H100\n");
    println!(
        "{:>8}  {:>12} {:>12} {:>8}",
        "tokens", "Marlin", "Hexcute", "ratio"
    );
    for tokens in [1usize, 8, 16, 32, 64] {
        let shape = QuantGemmShape::llama_70b_proj(tokens);
        let program = w4a16_gemm(shape, QuantGemmConfig::for_shape(&shape))?;
        let hexcute = compiler.compile(&program)?.latency_us();
        let marlin = marlin_w4a16_latency_us(&shape, &arch);
        println!(
            "{:>8}  {:>10.1}us {:>10.1}us {:>7.2}x",
            tokens,
            marlin,
            hexcute,
            marlin / hexcute
        );
    }

    // Show the synthesized weight path: cp.async of packed nibbles, the
    // unpack load, and the grouped dequant feeding the Tensor Core.
    let shape = QuantGemmShape::new(16, 128, 256, 64);
    let kernel = compiler.compile(&w4a16_gemm(shape, QuantGemmConfig::default())?)?;
    println!("\n--- emitted pseudo-CUDA ({}) ---", kernel.program.name);
    print!("{}", kernel.cuda_source());
    Ok(())
}
