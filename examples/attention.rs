//! Fused multi-head attention: compile the FlashAttention-style forward
//! kernel and the decoding kernel, and compare against the library baselines.
//!
//! ```bash
//! cargo run --example attention
//! ```

use hexcute::arch::{DType, GpuArch};
use hexcute::baselines::{library_latency_us, Library, Workload};
use hexcute::core::Compiler;
use hexcute::kernels::attention::{mha_decoding, mha_forward, AttentionConfig, AttentionShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a100 = GpuArch::a100();
    let compiler = Compiler::new(a100.clone());

    println!("fused MHA forward (A100), vs FlashAttention-2:");
    for (batch, heads, seq, dim) in [(1, 32, 2048, 128), (4, 32, 4096, 128)] {
        let shape = AttentionShape::forward(batch, heads, seq, dim);
        let kernel = compiler.compile(&mha_forward(shape, AttentionConfig::default())?)?;
        let fa2 = library_latency_us(
            Library::FlashAttention2,
            &Workload::new(shape.flops(), shape.bytes(), DType::F16),
            &a100,
        );
        println!(
            "  b{batch} h{heads} s{seq} d{dim}: Hexcute {:.1} us, FlashAttention2 {:.1} us ({} gemms, {} rearranges)",
            kernel.latency_us(),
            fa2,
            kernel.candidate.mma_choices.len(),
            kernel.candidate.rearranges.len(),
        );
    }

    println!("\nfused MHA decoding (A100), vs FlashInfer:");
    for (batch, heads, kv, dim) in [(16, 32, 4096, 128), (64, 32, 16384, 128)] {
        let shape = AttentionShape::decoding(batch, heads, kv, dim);
        let kernel = compiler.compile(&mha_decoding(shape, AttentionConfig::default())?)?;
        let flashinfer = library_latency_us(
            Library::FlashInfer,
            &Workload::new(shape.flops(), shape.bytes(), DType::F16),
            &a100,
        );
        println!(
            "  b{batch} h{heads} kv{kv} d{dim}: Hexcute {:.1} us, FlashInfer {:.1} us (memory-bound: {})",
            kernel.latency_us(),
            flashinfer,
            kernel.perf.dram_us > kernel.perf.compute_us
        );
    }
    Ok(())
}
