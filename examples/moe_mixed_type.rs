//! The mixed-type (FP16 × INT4) mixture-of-experts kernel: the workload where
//! Hexcute's layout synthesis matters most (Section VII-B, Fig. 11).
//!
//! Compiles the Hexcute kernel (Marlin-style dataflow), the same kernel with
//! Triton's dataflow, and the Triton-style compilation, and compares them
//! against the Marlin baselines.
//!
//! ```bash
//! cargo run --example moe_mixed_type
//! ```

use hexcute::arch::GpuArch;
use hexcute::baselines::{
    marlin_new_moe_latency_us, marlin_old_moe_latency_us, triton_latency_us, triton_moe_program,
};
use hexcute::core::Compiler;
use hexcute::kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = GpuArch::h100();
    let compiler = Compiler::new(arch.clone());
    let config = MoeConfig::default();

    println!("mixed-type MoE, 256 experts (DeepSeek-R1-AWQ layer), H100\n");
    println!(
        "{:>8}  {:>12} {:>12} {:>12} {:>12}",
        "tokens", "Marlin-old", "Triton", "Marlin-new", "Hexcute"
    );
    for tokens in [1usize, 16, 64, 256, 1024] {
        let shape = MoeShape::deepseek_r1(tokens);
        let hexcute = compiler
            .compile(&mixed_type_moe(shape, config, MoeDataflow::Efficient)?)?
            .latency_us();
        let triton = triton_latency_us(&triton_moe_program(shape, config)?, &arch)?.latency_us;
        println!(
            "{:>8}  {:>10.1}us {:>10.1}us {:>10.1}us {:>10.1}us",
            tokens,
            marlin_old_moe_latency_us(&shape, &arch),
            triton,
            marlin_new_moe_latency_us(&shape, &arch),
            hexcute
        );
    }

    // Show the dataflow difference for one configuration.
    let shape = MoeShape::deepseek_r1(64);
    let efficient = compiler.compile(&mixed_type_moe(shape, config, MoeDataflow::Efficient)?)?;
    let triton_flow =
        compiler.compile(&mixed_type_moe(shape, config, MoeDataflow::TritonStyle)?)?;
    println!("\nFig. 4 dataflow comparison at 64 tokens:");
    println!(
        "  efficient (Marlin-style) dataflow: {:.1} us",
        efficient.latency_us()
    );
    println!(
        "  Triton-style dataflow:             {:.1} us",
        triton_flow.latency_us()
    );
    println!("\ninstruction selection for the weight path (efficient dataflow):");
    for (op, instr, bytes) in efficient.candidate.instruction_summary(&efficient.program) {
        if bytes > 0 {
            println!("  {op}: {instr} ({bytes} B/thread)");
        }
    }
    Ok(())
}
