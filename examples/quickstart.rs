//! Quickstart: build a tiny tile-level kernel, let Hexcute synthesize its
//! layouts and instructions, inspect the generated pseudo-CUDA, and run it on
//! the functional simulator.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use std::collections::HashMap;

use hexcute::arch::{DType, GpuArch};
use hexcute::core::Compiler;
use hexcute::ir::{ElementwiseOp, KernelBuilder};
use hexcute::layout::Layout;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a kernel against the tile-level DSL (Table I of the paper):
    //    load a 64x64 tile, scale it, store it back.
    let mut kb = KernelBuilder::new("scale_tile", 128);
    let x = kb.global_view("x", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
    let y = kb.global_view("y", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
    let tile = kb.register_tensor("tile", DType::F32, &[64, 64]);
    kb.copy(x, tile);
    let scaled = kb.elementwise(ElementwiseOp::MulScalar(2.0), &[tile]);
    kb.copy(scaled, y);
    let program = kb.build()?;

    // 2. Compile for an A100: layout synthesis, instruction selection,
    //    cost-model ranking, lowering.
    let compiler = Compiler::new(GpuArch::a100());
    let kernel = compiler.compile(&program)?;

    println!("== synthesized candidate ==\n{}", kernel.candidate);
    println!("== generated kernel ==\n{}", kernel.cuda_source());
    println!(
        "estimated latency: {:.2} us ({} candidates explored, selection quality {:.3})",
        kernel.latency_us(),
        kernel.stats.candidates_explored,
        kernel.stats.selection_quality
    );

    // 3. Run the functional simulator and check the result.
    let input: Vec<f32> = (0..64 * 64).map(|i| i as f32 / 100.0).collect();
    let mut buffers = HashMap::new();
    buffers.insert("x".to_string(), input.clone());
    let outputs = kernel.simulate(&buffers)?;
    assert!(outputs["y"]
        .iter()
        .zip(input.iter())
        .all(|(o, i)| (o - 2.0 * i).abs() < 1e-6));
    println!("functional simulation: OK (y == 2 * x)");
    Ok(())
}
