//! The Mamba selective-scan kernel: a memory-bound operator where Hexcute's
//! instruction selection (wide, coalesced loads) gives a large win over the
//! hand-written library (Section VII-B, Fig. 21 and Table IV).
//!
//! ```bash
//! cargo run --example mamba_scan
//! ```

use hexcute::arch::{DType, GpuArch};
use hexcute::baselines::{library_latency_us, Library, Workload};
use hexcute::core::Compiler;
use hexcute::kernels::mamba::{selective_scan, ScanConfig, ScanShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = GpuArch::h100();
    let compiler = Compiler::new(arch.clone());

    println!("Mamba selective scan (H100), vs the hand-written Mamba library:\n");
    println!(
        "{:>28}  {:>12} {:>12} {:>8}",
        "shape (b, dim, state, seq)", "library", "Hexcute", "speedup"
    );
    for (batch, seq) in [(1usize, 2048usize), (1, 8192), (4, 4096), (8, 8192)] {
        let shape = ScanShape::new(batch, 4096, 16, seq);
        let kernel = compiler.compile(&selective_scan(shape, ScanConfig::default())?)?;
        let library = library_latency_us(
            Library::MambaLibrary,
            &Workload::new(shape.flops(), shape.bytes(), DType::F16),
            &arch,
        );
        println!(
            "{:>28}  {:>10.1}us {:>10.1}us {:>7.2}x",
            format!("({batch}, 4096, 16, {seq})"),
            library,
            kernel.latency_us(),
            library / kernel.latency_us()
        );
    }

    // Table IV: the widths the compiler picked for the six streamed tensors.
    let shape = ScanShape::new(1, 4096, 16, 4096);
    let kernel = compiler.compile(&selective_scan(shape, ScanConfig::default())?)?;
    println!("\ninstruction widths (Table IV; the Mamba library uses 2-4 B scalar loads):");
    for (op, instr, bytes) in kernel.candidate.instruction_summary(&kernel.program) {
        if bytes > 0 {
            println!("  {op}: {instr} ({bytes} B/thread)");
        }
    }
    Ok(())
}
