//! The FP16 GEMM kernel of Fig. 15: compile it for the A100, inspect the
//! instructions the layout synthesis selected, and validate the result with
//! the functional simulator against a reference matmul.
//!
//! ```bash
//! cargo run --example gemm_fp16
//! ```

use std::collections::HashMap;

use hexcute::arch::GpuArch;
use hexcute::core::Compiler;
use hexcute::kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A production-sized problem for the performance estimate...
    let shape = GemmShape::new(4096, 4096, 4096);
    let program = fp16_gemm(shape, GemmConfig::default())?;
    let compiler = Compiler::new(GpuArch::a100());
    let kernel = compiler.compile(&program)?;
    println!("== instruction selection ==");
    for (op, instr, bytes) in kernel.candidate.instruction_summary(&kernel.program) {
        println!("  {op}: {instr} ({bytes} B/thread)");
    }
    println!(
        "\nestimated latency: {:.1} us  ({:.0} TFLOP/s effective)",
        kernel.latency_us(),
        shape.flops() / (kernel.latency_us() * 1e-6) / 1e12
    );
    println!(
        "shared memory: {} B, ~{} registers/thread",
        kernel.lowered.smem_bytes, kernel.lowered.registers_per_thread
    );

    // ... and a single-block problem for a numerical check.
    let small = GemmShape::new(64, 64, 64);
    let small_program = fp16_gemm(
        small,
        GemmConfig {
            block_m: 64,
            block_n: 64,
            block_k: 32,
            ..GemmConfig::default()
        },
    )?;
    let small_kernel = compiler.compile(&small_program)?;
    let mut rng = StdRng::seed_from_u64(0);
    let a: Vec<f32> = (0..64 * 64).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..64 * 64).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), a.clone());
    inputs.insert("b".to_string(), b.clone());
    let out = small_kernel.simulate(&inputs)?;
    let c = &out["c"];
    let mut max_err = 0.0f32;
    for m in 0..64 {
        for n in 0..64 {
            let expect: f32 = (0..32).map(|k| a[m * 64 + k] * b[n * 64 + k]).sum::<f32>()
                + (32..64).map(|k| a[m * 64 + k] * b[n * 64 + k]).sum::<f32>();
            max_err = max_err.max((c[m * 64 + n] - expect).abs());
        }
    }
    println!("functional check on a 64x64x64 problem: max |error| = {max_err:.2e}");
    assert!(max_err < 1e-3);
    Ok(())
}
