//! # Hexcute (Rust reproduction)
//!
//! Facade crate re-exporting the whole Hexcute workspace: the CuTe-style
//! layout algebra, the tile-level IR and DSL, constraint-based layout
//! synthesis, the analytical cost model, code generation, the GPU simulator,
//! the kernel library, baselines, and the end-to-end serving simulator.
//!
//! See the individual crates for details:
//!
//! * [`layout`] — layout algebra (shapes, strides, composition, inverses,
//!   swizzles, thread-value layouts).
//! * [`arch`] — GPU architecture models, data types, instruction catalog.
//! * [`ir`] — the tile-level IR and program builder (Table I of the paper).
//! * [`synthesis`] — thread-value and shared-memory layout synthesis.
//! * [`costmodel`] — the analytical latency model (Section VI).
//! * [`codegen`] — lowering to per-thread kernels and CUDA-like text.
//! * [`sim`] — functional and performance GPU simulation.
//! * [`core`] — the compiler driver tying everything together, plus the
//!   persistent kernel-artifact cache (`core::cache`).
//! * [`kernels`] — GEMM, attention, mixed-type MoE and Mamba-scan kernels.
//! * [`baselines`] — Triton-style compiler, Marlin and library models.
//! * [`e2e`] — vLLM-style end-to-end serving simulation and the batched
//!   compile service.
//! * [`parallel`] — the persistent worker pool (`par_map`) and the sharded
//!   concurrent memo maps the search shares across workers.
//!
//! `docs/ARCHITECTURE.md` maps the paper's sections onto these crates and
//! walks the synthesis pipeline end to end; `docs/TUNING.md` documents every
//! `HEXCUTE_*` environment variable and `SynthesisOptions` field.

#![warn(missing_docs)]

pub use hexcute_arch as arch;
pub use hexcute_baselines as baselines;
pub use hexcute_codegen as codegen;
pub use hexcute_core as core;
pub use hexcute_costmodel as costmodel;
pub use hexcute_e2e as e2e;
pub use hexcute_ir as ir;
pub use hexcute_kernels as kernels;
pub use hexcute_layout as layout;
pub use hexcute_parallel as parallel;
pub use hexcute_sim as sim;
pub use hexcute_synthesis as synthesis;
