//! A shared *incumbent* best-(score, index) pair for branch-and-bound
//! searches.
//!
//! The pruned synthesis walk (PR 9) races many workers over disjoint
//! subtrees; each needs to read the best scored candidate found so far
//! ("the incumbent") to decide whether a subtree's lower bound can still
//! beat it, and to publish improvements. [`IncumbentCell`] holds the
//! lexicographic minimum of `(score, enumeration index)` — the same order
//! the search's final tie-break uses — so ties on score can be pruned too:
//! a subtree whose bound *equals* the incumbent score can only produce
//! equal-score candidates, and those lose the first-minimal tie-break
//! whenever their indices are larger than the incumbent's.
//!
//! The cell is deliberately *monotone*: [`IncumbentCell::offer`] only ever
//! lowers the stored pair (scores under [`f64::total_cmp`], then index), so
//! a stale read is always lexicographically **greater or equal** to the
//! true incumbent. A pruning rule of the form "cut when `(bound, first
//! index) > incumbent`" therefore errs on the side of keeping subtrees when
//! reads race, which is exactly what losslessness requires: every global
//! minimizer survives no matter how the workers interleave.

use std::sync::Mutex;

/// A monotonically decreasing best-(score, index) cell shared by the
/// workers of one branch-and-bound search.
///
/// Scores are compared with [`f64::total_cmp`] (then index ascending), so
/// the cell is well defined even for non-finite offers (`NaN` compares
/// greater than `+∞` and will never displace it). Offers and reads take a
/// short uncontended lock — they happen once per scored leaf and once per
/// bound evaluation, far off the search's hot path.
#[derive(Debug)]
pub struct IncumbentCell {
    /// The current best `(score, enumeration index)` pair.
    best: Mutex<(f64, usize)>,
}

impl IncumbentCell {
    /// Creates a cell holding `(+∞, usize::MAX)`: nothing has been scored
    /// yet, so no bound can exceed the incumbent and nothing is pruned.
    pub fn new() -> Self {
        Self {
            best: Mutex::new((f64::INFINITY, usize::MAX)),
        }
    }

    /// The current incumbent `(score, index)`. May be stale under
    /// contention, but only ever in the lexicographically *greater*
    /// (safe-for-pruning) direction.
    pub fn get(&self) -> (f64, usize) {
        *self.best.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Offers a scored candidate; the cell keeps the lexicographic minimum
    /// of `(score, index)` (scores under [`f64::total_cmp`]). Returns
    /// `true` when the offer lowered the incumbent.
    pub fn offer(&self, score: f64, index: usize) -> bool {
        let mut best = self.best.lock().unwrap_or_else(|e| e.into_inner());
        let improves = match score.total_cmp(&best.0) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => index < best.1,
            std::cmp::Ordering::Greater => false,
        };
        if improves {
            *best = (score, index);
        }
        improves
    }
}

impl Default for IncumbentCell {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_infinity_and_keeps_the_lexicographic_minimum() {
        let cell = IncumbentCell::new();
        assert_eq!(cell.get(), (f64::INFINITY, usize::MAX));
        assert!(cell.offer(10.0, 7));
        assert_eq!(cell.get(), (10.0, 7));
        assert!(!cell.offer(10.0, 7), "the same pair is not an improvement");
        assert!(!cell.offer(12.5, 0), "a worse score never displaces");
        assert!(
            cell.offer(10.0, 3),
            "an equal score with a smaller index wins the tie-break"
        );
        assert_eq!(cell.get(), (10.0, 3));
        assert!(!cell.offer(10.0, 5));
        assert!(cell.offer(3.25, 9));
        assert_eq!(cell.get(), (3.25, 9));
    }

    #[test]
    fn nan_never_displaces_a_real_score() {
        let cell = IncumbentCell::new();
        // Under total_cmp, NaN > +inf, so it is not an improvement even on a
        // fresh cell.
        assert!(!cell.offer(f64::NAN, 0));
        assert_eq!(cell.get(), (f64::INFINITY, usize::MAX));
        assert!(cell.offer(1.0, 4));
        assert!(!cell.offer(f64::NAN, 0));
        assert_eq!(cell.get(), (1.0, 4));
    }

    #[test]
    fn concurrent_offers_converge_to_the_global_minimum() {
        let cell = std::sync::Arc::new(IncumbentCell::new());
        let offer_of = |t: u64, i: u64| {
            let score = ((i * 7919 + t * 104729) % 10007) as f64 + 1.0;
            let index = ((i * 31 + t * 17) % 977) as usize;
            (score, index)
        };
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cell = std::sync::Arc::clone(&cell);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        let (score, index) = offer_of(t, i);
                        cell.offer(score, index);
                    }
                });
            }
        });
        let expected = (0..8u64)
            .flat_map(|t| (0..1000u64).map(move |i| offer_of(t, i)))
            .fold((f64::INFINITY, usize::MAX), |acc, pair| {
                match pair.0.total_cmp(&acc.0) {
                    std::cmp::Ordering::Less => pair,
                    std::cmp::Ordering::Equal if pair.1 < acc.1 => pair,
                    _ => acc,
                }
            });
        assert_eq!(cell.get(), expected);
    }
}
