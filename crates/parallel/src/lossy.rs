//! A thread-local, lossy, direct-mapped memo tier in front of [`ShardedMap`].
//!
//! Every memo the synthesis pipeline keeps caches a *pure function of its
//! key*, so a cache is allowed to be lossy: forgetting an entry only costs a
//! recomputation, never correctness. This module exploits that with the
//! cheapest possible lookup structure — a fixed-size, power-of-two,
//! direct-mapped table probed with a precomputed fingerprint tag, no locks,
//! no hashing of the key itself, no growth. On the single-threaded hot path
//! of the search (one worker walking one subtree) this replaces a
//! [`ShardedMap`] shard-lock acquisition plus a `HashMap` probe with one
//! index computation and one slot compare.
//!
//! ## Bit-identity
//!
//! A slot stores the **full key** next to its tag and the stored value is
//! only served when the key compares equal — a tag collision therefore reads
//! as a miss and recomputes, it can never substitute a wrong value. Combined
//! with every cached value being a pure function of its key, the lossy tier
//! is invisible in results: candidates, costs and artifacts are bit-for-bit
//! identical with the tier on or off. The `HEXCUTE_DISABLE_LOSSY_MEMO`
//! toggle (see [`lossy_memo_enabled`]) participates in the workload
//! conformance matrix to keep that checked.
//!
//! ## Two tiers
//!
//! [`two_tier_get_or_insert_with`] composes the lossy table with a shared
//! [`ShardedMap`]: the thread-local table is probed first; a miss falls
//! through to the sharded cross-worker tier (which still deduplicates work
//! *across* threads) and backfills the table. Keys carry a caller-provided
//! `salt` — typically a per-instance identifier mixed with a program
//! fingerprint — so one thread may serve several cache owners (e.g. two cost
//! models for different architectures) without cross-talk: the salt is part
//! of the stored key, not just the tag.

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::cache::{CacheStats, ShardedMap};

/// Default number of slots per purpose per thread when
/// `HEXCUTE_LOSSY_MEMO_CAPACITY` is not set.
pub const DEFAULT_LOSSY_CAPACITY: usize = 4096;

// ---------------------------------------------------------------------------
// The process-wide toggle (mirrors `hexcute_synthesis::incremental`).
// ---------------------------------------------------------------------------

/// 0 = uninitialized, 1 = enabled, 2 = disabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Returns `true` when the thread-local lossy memo tier is globally enabled
/// (the default; `HEXCUTE_DISABLE_LOSSY_MEMO=1` disables it at startup).
/// When disabled, [`two_tier_get_or_insert_with`] degrades to a plain
/// [`ShardedMap::get_or_insert_with`] — the pre-refactor behaviour.
pub fn lossy_memo_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let disabled = std::env::var("HEXCUTE_DISABLE_LOSSY_MEMO")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            STATE.store(if disabled { 2 } else { 1 }, Ordering::Relaxed);
            !disabled
        }
    }
}

/// Globally enables or disables the lossy memo tier (all threads,
/// process-wide). Tables already populated are retained — their keys are
/// salted and their values pure functions of the key, so re-enabling the
/// tier later serves only still-valid entries.
pub fn set_lossy_memo(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Slots per purpose per thread: `HEXCUTE_LOSSY_MEMO_CAPACITY` rounded up to
/// a power of two and clamped to a sane range, read once per process
/// (resizing live tables would invalidate nothing but is not supported).
pub fn lossy_capacity() -> usize {
    static CAPACITY: OnceLock<usize> = OnceLock::new();
    *CAPACITY.get_or_init(|| {
        std::env::var("HEXCUTE_LOSSY_MEMO_CAPACITY")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.clamp(16, 1 << 22).next_power_of_two())
            .unwrap_or(DEFAULT_LOSSY_CAPACITY)
    })
}

// ---------------------------------------------------------------------------
// Tag mixing and instance salts.
// ---------------------------------------------------------------------------

/// The splitmix64 finalizer: a cheap, well-distributed bijection on `u64`.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes two 64-bit fingerprints into one slot tag. Far cheaper than a
/// `SipHash` pass over the key and good enough to spread precomputed
/// fingerprints across the table; a rare bad spread only costs extra
/// recomputation (the full-key compare keeps results exact).
pub fn mix(a: u64, b: u64) -> u64 {
    splitmix(a ^ splitmix(b))
}

/// A fresh process-unique salt for one cache-owner instance (a cost model, a
/// perf evaluator, a simulator table cache). Mixing the salt into every key
/// keeps entries of distinct owners — which may disagree on what a key means
/// (different architectures, different programs) — from ever matching.
pub fn instance_salt() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    splitmix(NEXT.fetch_add(1, Ordering::Relaxed))
}

// ---------------------------------------------------------------------------
// The direct-mapped table.
// ---------------------------------------------------------------------------

/// One occupied slot: the tag that placed it, the full key (compared on
/// every probe — see the module docs on bit-identity) and the value.
struct Slot<K, V> {
    tag: u64,
    key: K,
    value: V,
}

/// What [`LossyTable::insert`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossyInsert {
    /// The slot was empty: a new resident entry.
    New,
    /// The slot held the same key: the value was overwritten in place.
    Replaced,
    /// The slot held a *different* key, which was evicted (direct-mapped
    /// collision).
    Evicted,
}

/// A fixed-size, direct-mapped, lossy memo table: `capacity` slots (a power
/// of two), slot index `= tag & (capacity - 1)`, collision policy
/// "overwrite". Single-threaded by design — the two-tier front keeps one per
/// thread per purpose.
pub struct LossyTable<K, V> {
    slots: Vec<Option<Slot<K, V>>>,
    mask: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: usize,
}

impl<K, V> fmt::Debug for LossyTable<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LossyTable")
            .field("capacity", &self.slots.len())
            .field("entries", &self.entries)
            .finish()
    }
}

impl<K: Eq, V> LossyTable<K, V> {
    /// A table with `capacity` slots, rounded up to a power of two (minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        LossyTable {
            slots: (0..capacity).map(|_| None).collect(),
            mask: capacity as u64 - 1,
            hits: 0,
            misses: 0,
            evictions: 0,
            entries: 0,
        }
    }

    /// The number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The stored value for `key`, if its slot holds exactly this key. A slot
    /// whose tag matches but whose key differs (a tag collision) is a miss —
    /// the caller recomputes, it never receives the collider's value.
    pub fn get(&mut self, tag: u64, key: &K) -> Option<&V> {
        let slot = &self.slots[(tag & self.mask) as usize];
        match slot {
            Some(s) if s.tag == tag && s.key == *key => {
                self.hits += 1;
                // Re-borrow to decouple the returned lifetime from `slot`.
                self.slots[(tag & self.mask) as usize]
                    .as_ref()
                    .map(|s| &s.value)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores `value` in the slot for `tag`, overwriting (and counting as an
    /// eviction) whatever different key lived there.
    pub fn insert(&mut self, tag: u64, key: K, value: V) -> LossyInsert {
        let slot = &mut self.slots[(tag & self.mask) as usize];
        let outcome = match slot {
            None => {
                self.entries += 1;
                LossyInsert::New
            }
            Some(s) if s.tag == tag && s.key == key => LossyInsert::Replaced,
            Some(_) => {
                self.evictions += 1;
                LossyInsert::Evicted
            }
        };
        *slot = Some(Slot { tag, key, value });
        outcome
    }

    /// This table's own counters (the per-thread view; the per-purpose
    /// process-wide aggregate is [`lossy_stats`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries,
        }
    }
}

// ---------------------------------------------------------------------------
// Purposes, per-purpose global counters, thread-local registry.
// ---------------------------------------------------------------------------

/// Which memo a lossy table fronts. Each purpose owns one thread-local table
/// per thread (keyed by this enum, not by cache instance, so long-lived pool
/// workers keep a bounded number of tables no matter how many short-lived
/// cache owners come and go).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossyPurpose {
    /// `CostModel`'s per-operation issue/completion estimates.
    OpCost,
    /// `CostModel`'s whole-candidate estimates.
    CandidateEstimate,
    /// `PerfEvaluator`'s per-operation bank-conflict charges.
    BankPenalty,
    /// `SimTableCache`'s per-copy index tables.
    SimCopy,
    /// `SimTableCache`'s per-tensor thread-value tables.
    SimTv,
    /// `SimTableCache`'s shared-memory gather address tables.
    SimGather,
}

/// Every purpose, in display order.
pub const LOSSY_PURPOSES: [LossyPurpose; 6] = [
    LossyPurpose::OpCost,
    LossyPurpose::CandidateEstimate,
    LossyPurpose::BankPenalty,
    LossyPurpose::SimCopy,
    LossyPurpose::SimTv,
    LossyPurpose::SimGather,
];

const NUM_PURPOSES: usize = LOSSY_PURPOSES.len();

impl LossyPurpose {
    /// The purpose's dense index into [`LOSSY_PURPOSES`]-ordered arrays.
    pub fn index(self) -> usize {
        match self {
            LossyPurpose::OpCost => 0,
            LossyPurpose::CandidateEstimate => 1,
            LossyPurpose::BankPenalty => 2,
            LossyPurpose::SimCopy => 3,
            LossyPurpose::SimTv => 4,
            LossyPurpose::SimGather => 5,
        }
    }

    /// A short human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            LossyPurpose::OpCost => "op-cost",
            LossyPurpose::CandidateEstimate => "candidate-estimate",
            LossyPurpose::BankPenalty => "bank-penalty",
            LossyPurpose::SimCopy => "sim-copy-table",
            LossyPurpose::SimTv => "sim-tv-table",
            LossyPurpose::SimGather => "sim-gather-table",
        }
    }
}

/// Process-wide counters per purpose, aggregated across every thread's
/// table. Stored on separate cache lines per purpose to keep parallel
/// workers from false-sharing the counters.
#[repr(align(64))]
#[derive(Default)]
struct PurposeCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    entries: AtomicU64,
}

fn counters() -> &'static [PurposeCounters; NUM_PURPOSES] {
    static COUNTERS: OnceLock<[PurposeCounters; NUM_PURPOSES]> = OnceLock::new();
    COUNTERS.get_or_init(Default::default)
}

/// Process-wide hit/miss/eviction counters of one purpose's lossy tables,
/// summed over every thread (entries counts slots filled and never shrinks —
/// thread-local tables live as long as their threads).
pub fn lossy_stats(purpose: LossyPurpose) -> CacheStats {
    let c = &counters()[purpose.index()];
    CacheStats {
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
        evictions: c.evictions.load(Ordering::Relaxed),
        entries: c.entries.load(Ordering::Relaxed) as usize,
    }
}

/// [`lossy_stats`] merged over every purpose: the whole fast tier in one
/// snapshot, for the `repro_*` binaries' cache summaries.
pub fn lossy_stats_total() -> CacheStats {
    LOSSY_PURPOSES
        .iter()
        .fold(CacheStats::default(), |acc, &p| acc.merged(&lossy_stats(p)))
}

thread_local! {
    /// One boxed `LossyTable<(u64, K), V>` per purpose for this thread;
    /// `None` until first use. `dyn Any` erases the per-purpose key/value
    /// types (each purpose is only ever used with one concrete pair).
    static TABLES: RefCell<[Option<Box<dyn Any>>; NUM_PURPOSES]> =
        const { RefCell::new([None, None, None, None, None, None]) };
}

/// Runs `f` on this thread's table for `purpose`, creating it on first use.
fn with_table<K, V, R>(
    purpose: LossyPurpose,
    f: impl FnOnce(&mut LossyTable<(u64, K), V>) -> R,
) -> R
where
    K: Eq + 'static,
    V: 'static,
{
    TABLES.with(|cell| {
        let mut tables = cell.borrow_mut();
        let slot = &mut tables[purpose.index()];
        let any = slot.get_or_insert_with(|| {
            Box::new(LossyTable::<(u64, K), V>::with_capacity(lossy_capacity()))
        });
        let table = any
            .downcast_mut::<LossyTable<(u64, K), V>>()
            .expect("a lossy purpose is used with a single key/value type");
        f(table)
    })
}

/// The two-tier memo front: probes this thread's lossy table for
/// `(salt, key)` first, falling through to the shared [`ShardedMap`] tier
/// (which deduplicates computation across workers) and backfilling the
/// table. With the tier disabled (see [`lossy_memo_enabled`]) this is
/// exactly `shared.get_or_insert_with(key, compute)`.
///
/// `tag` is a precomputed fingerprint of `key` (the caller usually has one
/// already); `salt` distinguishes cache owners and is part of the stored
/// key, so a salt mismatch can never serve a value. `compute` runs outside
/// any table borrow, so it may recurse into other purposes.
pub fn two_tier_get_or_insert_with<K, V, F>(
    purpose: LossyPurpose,
    salt: u64,
    tag: u64,
    shared: &ShardedMap<K, V>,
    key: K,
    compute: F,
) -> V
where
    K: Hash + Eq + Clone + 'static,
    V: Clone + 'static,
    F: FnOnce() -> V,
{
    if !lossy_memo_enabled() {
        return shared.get_or_insert_with(key, compute);
    }
    two_tier_cached(purpose, salt, tag, key, |k| {
        shared.get_or_insert_with(k, compute)
    })
}

/// [`two_tier_get_or_insert_with`] with the shared-tier fallthrough going
/// through [`ShardedMap::probe_or_insert_with`]: one lock acquisition and
/// one probe instead of read-miss/recheck/insert. `compute` runs **under
/// the shard write lock** on a shared-tier miss, so this variant carries the
/// same restriction: only cheap, non-reentrant computes.
pub fn two_tier_probe_or_insert_with<K, V, F>(
    purpose: LossyPurpose,
    salt: u64,
    tag: u64,
    shared: &ShardedMap<K, V>,
    key: K,
    compute: F,
) -> V
where
    K: Hash + Eq + Clone + 'static,
    V: Clone + 'static,
    F: FnOnce() -> V,
{
    if !lossy_memo_enabled() {
        return shared.probe_or_insert_with(key, compute);
    }
    two_tier_cached(purpose, salt, tag, key, |k| {
        shared.probe_or_insert_with(k, compute)
    })
}

/// The lossy tier around a shared-tier fallthrough: probe the thread-local
/// table, on a miss run `fallthrough` (which consults the shared tier) and
/// backfill. `fallthrough` runs outside any table borrow, so it may recurse
/// into other purposes.
fn two_tier_cached<K, V>(
    purpose: LossyPurpose,
    salt: u64,
    tag: u64,
    key: K,
    fallthrough: impl FnOnce(K) -> V,
) -> V
where
    K: Eq + Clone + 'static,
    V: Clone + 'static,
{
    if let Some(value) = probe(purpose, salt, tag, &key) {
        return value;
    }
    let value = fallthrough(key.clone());
    backfill(purpose, salt, tag, key, value.clone());
    value
}

/// Probes this thread's lossy table only — no shared-tier fallthrough, no
/// computation. `None` when the tier is disabled (without counting a miss).
/// Pair with [`backfill`] at call sites whose compute is fallible and must
/// propagate errors before anything is cached; plain memo sites should use
/// [`two_tier_get_or_insert_with`] instead.
pub fn probe<K, V>(purpose: LossyPurpose, salt: u64, tag: u64, key: &K) -> Option<V>
where
    K: Eq + Clone + 'static,
    V: Clone + 'static,
{
    if !lossy_memo_enabled() {
        return None;
    }
    let tag = mix(salt, tag);
    let lossy_key = (salt, key.clone());
    let hit = with_table::<K, V, _>(purpose, |table| table.get(tag, &lossy_key).cloned());
    let c = &counters()[purpose.index()];
    match hit {
        Some(value) => {
            c.hits.fetch_add(1, Ordering::Relaxed);
            Some(value)
        }
        None => {
            c.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Stores a freshly computed value in this thread's lossy table (the second
/// half of a [`probe`]-miss). A no-op when the tier is disabled.
pub fn backfill<K, V>(purpose: LossyPurpose, salt: u64, tag: u64, key: K, value: V)
where
    K: Eq + 'static,
    V: Clone + 'static,
{
    if !lossy_memo_enabled() {
        return;
    }
    let tag = mix(salt, tag);
    let c = &counters()[purpose.index()];
    with_table::<K, V, _>(purpose, |table| {
        match table.insert(tag, (salt, key), value) {
            LossyInsert::New => {
                c.entries.fetch_add(1, Ordering::Relaxed);
            }
            LossyInsert::Evicted => {
                c.evictions.fetch_add(1, Ordering::Relaxed);
            }
            LossyInsert::Replaced => {}
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_key_compare_turns_tag_collisions_into_recomputes() {
        // Two keys engineered onto the same slot with the same tag: the
        // direct-mapped table must never serve one key's value for the other.
        let mut table: LossyTable<u64, u64> = LossyTable::with_capacity(8);
        let tag = 0x1234_5678_9abc_def0;
        assert_eq!(table.insert(tag, 1, 100), LossyInsert::New);
        assert_eq!(table.get(tag, &1), Some(&100));
        // Same tag, different key: a miss (recompute), not a wrong value.
        assert_eq!(table.get(tag, &2), None);
        // Inserting the collider evicts key 1...
        assert_eq!(table.insert(tag, 2, 200), LossyInsert::Evicted);
        assert_eq!(table.get(tag, &2), Some(&200));
        // ...and key 1 now misses (lossy: recompute, never corrupt).
        assert_eq!(table.get(tag, &1), None);
        let stats = table.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn slot_collisions_between_different_tags_also_evict() {
        let mut table: LossyTable<u64, u64> = LossyTable::with_capacity(4);
        // Tags 3 and 7 share slot 3 (capacity 4, mask 3) but differ as tags.
        assert_eq!(table.insert(3, 30, 300), LossyInsert::New);
        assert_eq!(table.insert(7, 70, 700), LossyInsert::Evicted);
        assert_eq!(table.get(3, &30), None, "evicted by the slot collider");
        assert_eq!(table.get(7, &70), Some(&700));
        assert_eq!(table.stats().evictions, 1);
    }

    #[test]
    fn replacing_the_same_key_is_not_an_eviction() {
        let mut table: LossyTable<u32, &'static str> = LossyTable::with_capacity(16);
        assert_eq!(table.insert(5, 9, "a"), LossyInsert::New);
        assert_eq!(table.insert(5, 9, "b"), LossyInsert::Replaced);
        assert_eq!(table.get(5, &9), Some(&"b"));
        let stats = table.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        let table: LossyTable<u8, u8> = LossyTable::with_capacity(100);
        assert_eq!(table.capacity(), 128);
        let tiny: LossyTable<u8, u8> = LossyTable::with_capacity(0);
        assert_eq!(tiny.capacity(), 2);
    }

    #[test]
    fn two_tier_front_hits_locally_and_falls_through_to_shared() {
        // A dedicated salt isolates this test from concurrent siblings (the
        // counters are global, but the table entries cannot cross-talk).
        let was_enabled = lossy_memo_enabled();
        set_lossy_memo(true);
        let salt = instance_salt();
        let shared: ShardedMap<u64, u64> = ShardedMap::new();
        let mut computes = 0u32;
        let v = two_tier_get_or_insert_with(LossyPurpose::OpCost, salt, 42, &shared, 42, || {
            computes += 1;
            4200
        });
        assert_eq!(v, 4200);
        assert_eq!(computes, 1);
        // Second lookup: the lossy tier serves it; the shared tier sees no
        // new lookup (its counters are unchanged by a lossy hit).
        let shared_before = shared.stats();
        let v = two_tier_get_or_insert_with(LossyPurpose::OpCost, salt, 42, &shared, 42, || {
            computes += 1;
            9999
        });
        assert_eq!(v, 4200);
        assert_eq!(computes, 1);
        let shared_after = shared.stats();
        assert_eq!(shared_before.hits, shared_after.hits);
        assert_eq!(shared_before.misses, shared_after.misses);
        // A different salt with the same key and tag must not see the entry.
        let other_salt = instance_salt();
        let v =
            two_tier_get_or_insert_with(LossyPurpose::OpCost, other_salt, 42, &shared, 42, || 7);
        // ...but the shared tier still deduplicates across salts (same map key).
        assert_eq!(v, 4200);
        set_lossy_memo(was_enabled);
    }

    #[test]
    fn disabled_tier_is_a_plain_sharded_lookup() {
        let was_enabled = lossy_memo_enabled();
        set_lossy_memo(false);
        let shared: ShardedMap<u64, u64> = ShardedMap::new();
        let salt = instance_salt();
        let v = two_tier_get_or_insert_with(LossyPurpose::BankPenalty, salt, 1, &shared, 1, || 10);
        assert_eq!(v, 10);
        let v = two_tier_get_or_insert_with(LossyPurpose::BankPenalty, salt, 1, &shared, 1, || 20);
        assert_eq!(v, 10, "served by the shared tier");
        assert!(shared.stats().hits >= 1);
        set_lossy_memo(was_enabled);
    }

    #[test]
    fn stats_are_exported_per_purpose_as_cache_stats() {
        let was_enabled = lossy_memo_enabled();
        set_lossy_memo(true);
        let salt = instance_salt();
        let shared: ShardedMap<u64, u64> = ShardedMap::new();
        let before = lossy_stats(LossyPurpose::SimGather);
        for _ in 0..3 {
            let _ =
                two_tier_get_or_insert_with(LossyPurpose::SimGather, salt, 77, &shared, 77, || 1);
        }
        let after = lossy_stats(LossyPurpose::SimGather);
        assert!(after.hits >= before.hits + 2, "{before:?} -> {after:?}");
        assert!(after.misses > before.misses);
        let total = lossy_stats_total();
        assert!(total.hits >= after.hits);
        set_lossy_memo(was_enabled);
    }

    #[test]
    fn mix_spreads_and_is_deterministic() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_ne!(mix(0, 0), 0);
        // Low bits (the slot index) differ for consecutive fingerprints.
        let a = mix(7, 100) & 0xfff;
        let b = mix(7, 101) & 0xfff;
        assert_ne!(a, b);
    }
}
