//! A sharded concurrent memo map with hit/miss/eviction counters.
//!
//! The incremental search shares its memo caches (per-tensor shared-memory
//! finishing, whole-candidate cost estimates, bank-conflict charges,
//! simulator index tables) across the worker pool. Every cached value is a
//! *pure function of its key*, so the maps only need to be safe and cheap
//! under concurrency — a racing recomputation returns a bit-identical value
//! and either insert may win without affecting results. Keys are spread over
//! independently locked shards so parallel workers rarely contend.
//!
//! Growth can be bounded with [`ShardedMap::bounded`]: when an insert would
//! push a shard past its per-shard capacity the shard is cleared (simple
//! wholesale eviction — the workloads re-warm caches quickly and the values
//! are recomputable), and the eviction is counted in [`CacheStats`].

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Counters describing how a cache behaved: served lookups, recomputations
/// and evicted entries. Snapshot via [`ShardedMap::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed (and typically triggered a recomputation).
    pub misses: u64,
    /// Entries dropped by capacity eviction.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum of two snapshots (entries added too).
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            entries: self.entries + other.entries,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate), {} entries, {} evicted",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.evictions
        )
    }
}

/// Number of shards; a power of two so shard selection is a mask.
const SHARDS: usize = 16;

/// A concurrent hash map sharded over independently locked segments.
///
/// Values are returned by clone, so `V` is usually cheap to clone (a small
/// struct or an `Arc`). All operations take `&self`.
///
/// ```
/// use hexcute_parallel::cache::ShardedMap;
///
/// let memo: ShardedMap<u64, u64> = ShardedMap::new();
/// assert_eq!(memo.get_or_insert_with(6, || 720), 720); // computed
/// assert_eq!(memo.get_or_insert_with(6, || 999), 720); // served from cache
/// let stats = memo.stats();
/// assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
/// ```
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    /// Per-shard capacity; `usize::MAX` means unbounded.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K, V> fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let entries: usize = self
            .shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|p| p.into_inner()).len())
            .sum();
        f.debug_struct("ShardedMap")
            .field("entries", &entries)
            .field("shards", &SHARDS)
            .field(
                "capacity",
                &if self.shard_capacity == usize::MAX {
                    None
                } else {
                    Some(self.shard_capacity * SHARDS)
                },
            )
            .finish()
    }
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// An unbounded map.
    pub fn new() -> Self {
        Self::with_shard_capacity(usize::MAX)
    }

    /// A map evicting once any shard would exceed `capacity / SHARDS`
    /// entries (so `capacity` approximates the whole-map bound). Eviction is
    /// wholesale per shard; see the module docs.
    pub fn bounded(capacity: usize) -> Self {
        Self::with_shard_capacity((capacity / SHARDS).max(1))
    }

    fn with_shard_capacity(shard_capacity: usize) -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// Returns a clone of the cached value, counting the hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let hit = self
            .shard(key)
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(key)
            .cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Inserts (evicting the shard first if it is at capacity). Does not
    /// touch the hit/miss counters.
    pub fn insert(&self, key: K, value: V) {
        let mut shard = self.shard(&key).write().unwrap_or_else(|p| p.into_inner());
        if shard.len() >= self.shard_capacity && !shard.contains_key(&key) {
            self.evictions
                .fetch_add(shard.len() as u64, Ordering::Relaxed);
            shard.clear();
        }
        shard.insert(key, value);
    }

    /// The cached value for `key`, computing and inserting it on a miss.
    /// `compute` runs outside the shard lock, so concurrent misses on one
    /// key may compute redundantly; values are pure functions of the key, so
    /// whichever insert wins is bit-identical.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, compute: F) -> V {
        if let Some(hit) = self.get(&key) {
            return hit;
        }
        let value = compute();
        self.insert(key, value.clone());
        value
    }

    /// The cached value for `key`, computing it **under the shard write
    /// lock** on a miss: one lock acquisition and one `HashMap` probe total,
    /// versus up to three probes (read-miss, recheck, insert) for
    /// [`ShardedMap::get_or_insert_with`], and no redundant concurrent
    /// recomputation. Only for *cheap, non-reentrant* `compute` closures: a
    /// closure that re-enters this map (any key in the same shard) or blocks
    /// on work that does would deadlock, and an expensive closure would
    /// serialize every concurrent access to the shard.
    pub fn probe_or_insert_with<F: FnOnce() -> V>(&self, key: K, compute: F) -> V {
        let mut shard = self.shard(&key).write().unwrap_or_else(|p| p.into_inner());
        if let Some(hit) = shard.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if shard.len() >= self.shard_capacity {
            self.evictions
                .fetch_add(shard.len() as u64, Ordering::Relaxed);
            shard.clear();
        }
        let value = compute();
        shard.insert(key, value.clone());
        value
    }

    /// Returns a clone of the cached value **without** touching the hit/miss
    /// counters. Probe-only callers (the speculative-prefetch predictor
    /// asking "is this fingerprint already warm?") use this so their
    /// speculation does not distort the serving hit rate.
    pub fn peek(&self, key: &K) -> Option<V> {
        self.shard(key)
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(key)
            .cloned()
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (does not reset the counters).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap_or_else(|p| p.into_inner()).clear();
        }
    }

    /// A snapshot of the counters plus the current entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_insert_counts_hits_and_misses() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        assert_eq!(map.get_or_insert_with(1, || 10), 10);
        assert_eq!(map.get_or_insert_with(1, || 99), 10);
        assert_eq!(map.get(&2), None);
        let stats = map.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn probe_or_insert_is_a_single_probe_memo() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        assert_eq!(map.probe_or_insert_with(5, || 50), 50);
        assert_eq!(map.probe_or_insert_with(5, || 99), 50);
        let stats = map.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        // Bounded maps still evict on the single-probe path.
        let bounded: ShardedMap<u64, u64> = ShardedMap::bounded(16);
        for k in 0..1000 {
            let _ = bounded.probe_or_insert_with(k, || k);
        }
        assert!(bounded.stats().evictions > 0);
        assert_eq!(bounded.probe_or_insert_with(7, || 70), 70);
    }

    #[test]
    fn bounded_map_evicts_and_counts() {
        let map: ShardedMap<u64, u64> = ShardedMap::bounded(16);
        for k in 0..1000 {
            map.insert(k, k);
        }
        let stats = map.stats();
        assert!(stats.entries <= 16 + SHARDS, "entries {}", stats.entries);
        assert!(stats.evictions > 0);
        // Values remain correct after eviction churn.
        map.insert(7, 70);
        assert_eq!(map.get(&7), Some(70));
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let map: ShardedMap<usize, usize> = ShardedMap::new();
        let out = crate::par_map_with_workers(
            (0..512usize).collect::<Vec<_>>(),
            |i| map.get_or_insert_with(i % 64, || (i % 64) * 3),
            4,
        );
        for (i, v) in out.into_iter().enumerate() {
            assert_eq!(v, (i % 64) * 3);
        }
        assert_eq!(map.len(), 64);
    }

    #[test]
    fn clear_and_merge() {
        let map: ShardedMap<u8, u8> = ShardedMap::new();
        map.insert(1, 1);
        assert!(!map.is_empty());
        map.clear();
        assert!(map.is_empty());
        let a = CacheStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            entries: 4,
        };
        let b = a.merged(&a);
        assert_eq!(b.hits, 2);
        assert_eq!(b.entries, 8);
        assert!(format!("{a}").contains("hit rate"));
    }
}
