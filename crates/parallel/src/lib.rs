//! # hexcute-parallel
//!
//! A small scoped-thread parallel-map helper. The synthesis engine and the
//! compiler driver fan candidate enumeration, shared-memory synthesis and
//! cost scoring out across CPU cores with [`par_map`]; the environment
//! variable `HEXCUTE_THREADS` caps the worker count (`1` forces the serial
//! path, useful for profiling and for before/after benchmarking, and `0`
//! means "auto": use the machine's available parallelism).
//!
//! The API is a deliberately tiny subset of what `rayon` would provide: an
//! order-preserving map over an owned `Vec`. Work is distributed by atomic
//! work-stealing over indices, so uneven per-item costs still balance.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, Once};

/// How the `HEXCUTE_THREADS` environment variable parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadsSpec {
    /// The variable is not set: use the machine's available parallelism.
    Unset,
    /// Explicit `0`: use the machine's available parallelism.
    Auto,
    /// An explicit positive worker count.
    Count(usize),
    /// The variable is set but not a decimal integer (e.g. `"0x4"`, `""`):
    /// ignored with a one-time warning.
    Invalid,
}

/// Parses the value of `HEXCUTE_THREADS`. `None` means the variable is not
/// set; `"0"` explicitly requests auto detection; surrounding whitespace is
/// tolerated; anything that is not a decimal integer is [`ThreadsSpec::Invalid`].
pub fn parse_threads(value: Option<&str>) -> ThreadsSpec {
    match value {
        None => ThreadsSpec::Unset,
        Some(v) => match v.trim().parse::<usize>() {
            Ok(0) => ThreadsSpec::Auto,
            Ok(n) => ThreadsSpec::Count(n),
            Err(_) => ThreadsSpec::Invalid,
        },
    }
}

fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of worker threads [`par_map`] uses: `HEXCUTE_THREADS` when set
/// to a positive count, otherwise the machine's available parallelism (`0`
/// explicitly requests the latter). A set-but-unparsable value falls back to
/// machine parallelism too, with a warning printed once per process.
pub fn worker_count() -> usize {
    let value = std::env::var("HEXCUTE_THREADS").ok();
    match parse_threads(value.as_deref()) {
        ThreadsSpec::Count(n) => n,
        ThreadsSpec::Invalid => {
            static WARN: Once = Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "hexcute-parallel: HEXCUTE_THREADS={:?} is not a number of workers \
                     (use a decimal integer; 0 means auto); falling back to machine parallelism",
                    value.unwrap_or_default()
                );
            });
            machine_parallelism()
        }
        ThreadsSpec::Unset | ThreadsSpec::Auto => machine_parallelism(),
    }
}

/// A `Vec` of once-written cells shared across the scoped workers. Safety
/// rests on the index cursor: every index is claimed by exactly one worker,
/// so no cell is ever accessed from two threads.
struct Slots<T> {
    cells: Vec<UnsafeCell<Option<T>>>,
}

unsafe impl<T: Send> Sync for Slots<T> {}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Falls back to a plain serial map when there is a single worker or at most
/// one item. `f` may be called from multiple threads concurrently.
///
/// # Panics
///
/// A panic inside `f` is caught, the remaining items are abandoned (sibling
/// workers stop at their next claim), and the *original* panic payload is
/// re-thrown on the calling thread once every worker has stopped — callers
/// see the message of the first closure panic, not a secondary error.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = worker_count().min(items.len().max(1));
    par_map_with_workers(items, f, workers)
}

/// [`par_map`] with an explicit worker count, bypassing `HEXCUTE_THREADS`.
/// Used by tests (the environment cannot be mutated safely there) and by
/// callers that already partitioned their budget.
pub fn par_map_with_workers<T, R, F>(items: Vec<T>, f: F, workers: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    let workers = workers.min(n);
    // Hand items out by index so results can be reassembled in order. The
    // cells are lock-free on purpose: a `Mutex` per slot would be poisoned by
    // a panicking closure, killing sibling workers with a `PoisonError` that
    // buries the original panic.
    let items = Slots {
        cells: items
            .into_iter()
            .map(|t| UnsafeCell::new(Some(t)))
            .collect(),
    };
    let results: Slots<R> = Slots {
        cells: (0..n).map(|_| UnsafeCell::new(None)).collect(),
    };
    let cursor = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    // Capture the `Sync` wrappers, not their inner `Vec` fields (precise
    // closure capture would otherwise grab the non-`Sync` field path).
    let items_ref = &items;
    let results_ref = &results;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if panicked.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: the cursor hands each index to exactly one worker,
                // so this cell is not accessed by any other thread.
                let item = unsafe { (*items_ref.cells[i].get()).take() }
                    .expect("each index is claimed once");
                // `AssertUnwindSafe` is sound here: on panic the whole map is
                // abandoned and only the stored payload escapes.
                match panic::catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(out) => {
                        // SAFETY: as above — this worker owns index `i`.
                        unsafe { *results_ref.cells[i].get() = Some(out) };
                    }
                    Err(e) => {
                        let mut slot = payload.lock().unwrap_or_else(|p| p.into_inner());
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        panicked.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    let first_panic = payload.into_inner().unwrap_or_else(|p| p.into_inner());
    if let Some(e) = first_panic {
        panic::resume_unwind(e);
    }
    results
        .cells
        .into_iter()
        .map(|cell| cell.into_inner().expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let out = par_map((0..1000).collect::<Vec<_>>(), |x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn preserves_order_with_explicit_workers() {
        let out = par_map_with_workers((0..1000).collect::<Vec<_>>(), |x| x * 2, 4);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        assert_eq!(par_map(Vec::<usize>::new(), |x| x), Vec::<usize>::new());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn balances_uneven_work() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(items, |x| {
            if x % 16 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_respects_env_override() {
        // Can't set env vars safely in parallel tests; just sanity-check the
        // default path returns at least one worker.
        assert!(worker_count() >= 1);
    }

    #[test]
    fn parse_threads_edge_cases() {
        assert_eq!(parse_threads(None), ThreadsSpec::Unset);
        assert_eq!(parse_threads(Some("4")), ThreadsSpec::Count(4));
        assert_eq!(parse_threads(Some(" 8 ")), ThreadsSpec::Count(8));
        assert_eq!(parse_threads(Some("1")), ThreadsSpec::Count(1));
        // `0` documents "auto": use the machine's parallelism (it used to be
        // silently clamped to one worker).
        assert_eq!(parse_threads(Some("0")), ThreadsSpec::Auto);
        // Unparsable values are rejected (and warned about once at runtime)
        // instead of silently falling back.
        assert_eq!(parse_threads(Some("0x4")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("  ")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("-2")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("two")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("4.0")), ThreadsSpec::Invalid);
    }

    #[test]
    fn panicking_closure_surfaces_its_own_message() {
        let result = panic::catch_unwind(|| {
            par_map_with_workers(
                (0..64).collect::<Vec<usize>>(),
                |x| {
                    if x == 13 {
                        panic!("boom at item {x}");
                    }
                    x
                },
                4,
            )
        });
        let payload = result.expect_err("the map must propagate the panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string");
        assert!(
            message.contains("boom at item 13"),
            "original panic message was buried: {message:?}"
        );
    }

    #[test]
    fn serial_path_panics_propagate_too() {
        let result = panic::catch_unwind(|| {
            par_map_with_workers(vec![1usize], |_| -> usize { panic!("serial boom") }, 1)
        });
        let payload = result.expect_err("serial path must propagate the panic");
        assert!(payload
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("serial boom")));
    }

    #[test]
    fn results_before_a_panic_are_not_observable_but_map_aborts_quickly() {
        // After a panic the cursor stops being advanced by the panicking
        // worker; siblings drain at most their in-flight item. This test just
        // checks the call returns (no deadlock) and panics.
        let hits = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            par_map_with_workers(
                (0..1024).collect::<Vec<usize>>(),
                |x| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    if x == 0 {
                        panic!("early abort");
                    }
                    x
                },
                4,
            )
        }));
        assert!(result.is_err());
        assert!(hits.load(Ordering::Relaxed) >= 1);
    }
}
