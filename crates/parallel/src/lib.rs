//! # hexcute-parallel
//!
//! A small scoped-thread parallel-map helper. The synthesis engine and the
//! compiler driver fan candidate enumeration, shared-memory synthesis and
//! cost scoring out across CPU cores with [`par_map`]; the environment
//! variable `HEXCUTE_THREADS` caps the worker count (`1` forces the serial
//! path, useful for profiling and for before/after benchmarking).
//!
//! The API is a deliberately tiny subset of what `rayon` would provide: an
//! order-preserving map over an owned `Vec`. Work is distributed by atomic
//! work-stealing over indices, so uneven per-item costs still balance.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads [`par_map`] uses: `HEXCUTE_THREADS` when set,
/// otherwise the machine's available parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("HEXCUTE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Falls back to a plain serial map when there is a single worker or at most
/// one item. `f` may be called from multiple threads concurrently; panics in
/// `f` are propagated to the caller.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = worker_count().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    // Hand items out by index so results can be reassembled in order.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each index is claimed once");
                let out = f(item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let out = par_map((0..1000).collect::<Vec<_>>(), |x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        assert_eq!(par_map(Vec::<usize>::new(), |x| x), Vec::<usize>::new());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn balances_uneven_work() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(items, |x| {
            if x % 16 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_respects_env_override() {
        // Can't set env vars safely in parallel tests; just sanity-check the
        // default path returns at least one worker.
        assert!(worker_count() >= 1);
    }
}
