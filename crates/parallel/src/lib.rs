//! # hexcute-parallel
//!
//! A small parallel-map helper backed by a **persistent worker pool**. The
//! synthesis engine and the compiler driver fan candidate enumeration,
//! subtree search, shared-memory synthesis and cost scoring out across CPU
//! cores with [`par_map`]; the environment variable `HEXCUTE_THREADS` caps
//! the worker count (`1` forces the serial path, useful for profiling and
//! for before/after benchmarking, and `0` means "auto": use the machine's
//! available parallelism).
//!
//! The API is a deliberately tiny subset of what `rayon` would provide: an
//! order-preserving map over an owned `Vec`. Work is distributed by an
//! atomic index cursor, so uneven per-item costs still balance.
//!
//! ## The pool
//!
//! Earlier revisions spawned a fresh `std::thread::scope` per call; with the
//! search tree now fanning out many small maps per compilation, the per-call
//! spawn overhead dominated. Worker threads are instead spawned lazily on
//! first use and parked on a condition variable between jobs; a job is a
//! type-erased handle to state on the submitting thread's stack, and the
//! submitting thread always participates in its own job, so a nested
//! [`par_map`] issued from inside a pool worker always makes progress even
//! when every other pool thread is busy.
//!
//! The [`cache`] module provides the sharded concurrent memo map the
//! synthesis/cost/simulation caches use to stay safe (and mostly
//! uncontended) when the parallel search shares them across workers; the
//! [`lossy`] module puts a thread-local direct-mapped table in front of it
//! on the single-threaded hot path. The [`cancel`] module provides the
//! cooperative [`cancel::CancelToken`] that [`par_map_cancellable`] and the
//! synthesis walks poll so a deadline, watchdog or shutdown can abort
//! in-flight work promptly (skipped items are counted in
//! [`PoolStats::cancelled`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod cancel;
pub mod incumbent;
pub mod lossy;

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};

/// How the `HEXCUTE_THREADS` environment variable parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadsSpec {
    /// The variable is not set: use the machine's available parallelism.
    Unset,
    /// Explicit `0`: use the machine's available parallelism.
    Auto,
    /// An explicit positive worker count.
    Count(usize),
    /// The variable is set but not a decimal integer (e.g. `"0x4"`, `""`):
    /// ignored with a one-time warning.
    Invalid,
}

/// Parses the value of `HEXCUTE_THREADS`. `None` means the variable is not
/// set; `"0"` explicitly requests auto detection; surrounding whitespace is
/// tolerated; anything that is not a decimal integer is [`ThreadsSpec::Invalid`].
pub fn parse_threads(value: Option<&str>) -> ThreadsSpec {
    match value {
        None => ThreadsSpec::Unset,
        Some(v) => match v.trim().parse::<usize>() {
            Ok(0) => ThreadsSpec::Auto,
            Ok(n) => ThreadsSpec::Count(n),
            Err(_) => ThreadsSpec::Invalid,
        },
    }
}

fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of worker threads [`par_map`] uses: `HEXCUTE_THREADS` when set
/// to a positive count, otherwise the machine's available parallelism (`0`
/// explicitly requests the latter). A set-but-unparsable value falls back to
/// machine parallelism too, with a warning printed once per process.
pub fn worker_count() -> usize {
    let value = std::env::var("HEXCUTE_THREADS").ok();
    match parse_threads(value.as_deref()) {
        ThreadsSpec::Count(n) => n,
        ThreadsSpec::Invalid => {
            static WARN: Once = Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "hexcute-parallel: HEXCUTE_THREADS={:?} is not a number of workers \
                     (use a decimal integer; 0 means auto); falling back to machine parallelism",
                    value.unwrap_or_default()
                );
            });
            machine_parallelism()
        }
        ThreadsSpec::Unset | ThreadsSpec::Auto => machine_parallelism(),
    }
}

// ---------------------------------------------------------------------------
// Fault injection hooks (chaos testing).
// ---------------------------------------------------------------------------

/// Where in the pool a fault hook is consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolFaultPoint {
    /// Before one claimed item of a [`par_map`] job runs its closure. A
    /// `true` verdict panics the item, which abandons the map and propagates
    /// to the submitting thread exactly like a closure panic (the pool's
    /// ordinary panic-propagation contract).
    JobItem,
    /// Before a pool worker claims a queued job. A `true` verdict kills the
    /// worker thread itself (its unwind is caught and the worker is revived;
    /// see [`pool_stats`]). The job keeps its helper ticket and is picked up
    /// by another worker or by the submitting thread.
    WorkerClaim,
}

/// A fault verdict function: `true` means "inject a fault here". Installed
/// process-wide by the fault-injection layer (`hexcute_core::faults`).
pub type PoolFaultHook = Arc<dyn Fn(PoolFaultPoint) -> bool + Send + Sync>;

static HOOK_ACTIVE: AtomicBool = AtomicBool::new(false);

fn hook_slot() -> &'static Mutex<Option<PoolFaultHook>> {
    static HOOK: OnceLock<Mutex<Option<PoolFaultHook>>> = OnceLock::new();
    HOOK.get_or_init(|| Mutex::new(None))
}

/// Installs (or, with `None`, removes) the process-wide pool fault hook.
/// When no hook is installed the pool's hot paths check a single relaxed
/// atomic and nothing else — the injection points are compiled in but inert.
pub fn set_pool_fault_hook(hook: Option<PoolFaultHook>) {
    let mut slot = hook_slot().lock().unwrap_or_else(|p| p.into_inner());
    HOOK_ACTIVE.store(hook.is_some(), Ordering::Release);
    *slot = hook;
}

/// Consults the installed hook; `false` when none is installed.
fn fault_fires(point: PoolFaultPoint) -> bool {
    if !HOOK_ACTIVE.load(Ordering::Acquire) {
        return false;
    }
    let hook = hook_slot()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    hook.is_some_and(|h| h(point))
}

/// Counters describing the pool's lifetime behaviour. Snapshot via
/// [`pool_stats`]; deltas across a run give job/item throughput and — under
/// fault injection — how many workers died and were revived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Persistent worker threads spawned so far.
    pub spawned: usize,
    /// Jobs submitted to the pool queue ([`par_map`] calls that fanned out).
    pub jobs: u64,
    /// Items claimed and executed across all jobs (by helpers *and*
    /// submitting threads).
    pub items: u64,
    /// Worker threads whose loop unwound (injected or real panics escaping
    /// the per-item catch).
    pub deaths: u64,
    /// Workers revived after a death; equals [`PoolStats::deaths`] unless a
    /// revival itself failed.
    pub respawns: u64,
    /// Job items skipped because their job's [`cancel::CancelToken`] tripped
    /// before they ran (see [`par_map_cancellable`]).
    pub cancelled: u64,
    /// Background (best-effort) jobs executed by pool workers in otherwise
    /// idle time (see [`spawn_background`]).
    pub background: u64,
}

impl std::fmt::Display for PoolStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} workers, {} jobs, {} items ({} cancelled), {} background, \
             {} deaths / {} respawns",
            self.spawned,
            self.jobs,
            self.items,
            self.cancelled,
            self.background,
            self.deaths,
            self.respawns
        )
    }
}

static POOL_JOBS: AtomicU64 = AtomicU64::new(0);
static POOL_ITEMS: AtomicU64 = AtomicU64::new(0);
static POOL_DEATHS: AtomicU64 = AtomicU64::new(0);
static POOL_RESPAWNS: AtomicU64 = AtomicU64::new(0);
static POOL_CANCELLED: AtomicU64 = AtomicU64::new(0);
static POOL_BACKGROUND: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the pool's lifetime counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        spawned: pool_thread_count(),
        jobs: POOL_JOBS.load(Ordering::Relaxed),
        items: POOL_ITEMS.load(Ordering::Relaxed),
        deaths: POOL_DEATHS.load(Ordering::Relaxed),
        respawns: POOL_RESPAWNS.load(Ordering::Relaxed),
        cancelled: POOL_CANCELLED.load(Ordering::Relaxed),
        background: POOL_BACKGROUND.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------------

/// Hard cap on pool threads, far above any sensible `HEXCUTE_THREADS`; a
/// runaway request degrades to queueing instead of spawning without bound.
const MAX_POOL_THREADS: usize = 256;

/// A type-erased pointer to one job's [`JobShared`] state plus the
/// monomorphized entry point that drives it. The state lives on the
/// submitting thread's stack; [`DoneGate`] guarantees the submitter outlives
/// every helper that registered for the job.
#[derive(Clone, Copy)]
struct JobHandle {
    state: *const (),
    run: unsafe fn(*const ()),
    gate: *const DoneGate,
}

// SAFETY: the pointers are only dereferenced by helpers registered through
// the pool queue, and the submitting thread blocks on the gate until every
// registered helper has deregistered before the pointees are dropped.
unsafe impl Send for JobHandle {}

/// Counts the helpers currently inside a job. The submitter waits here after
/// retiring the job from the queue; a helper's *last* access to any job
/// memory is the unlock inside [`DoneGate::leave`].
struct DoneGate {
    active: Mutex<usize>,
    done: Condvar,
}

impl DoneGate {
    fn new() -> Self {
        DoneGate {
            active: Mutex::new(0),
            done: Condvar::new(),
        }
    }

    /// Called by a helper with the pool lock held (see [`PoolInner`]): the
    /// registration is therefore ordered against [`Pool::retire`].
    fn enter(&self) {
        *self.active.lock().unwrap_or_else(|p| p.into_inner()) += 1;
    }

    fn leave(&self) {
        let mut active = self.active.lock().unwrap_or_else(|p| p.into_inner());
        *active -= 1;
        self.done.notify_all();
    }

    /// Blocks until every registered helper has left.
    fn wait_idle(&self) {
        let mut active = self.active.lock().unwrap_or_else(|p| p.into_inner());
        while *active > 0 {
            active = self.done.wait(active).unwrap_or_else(|p| p.into_inner());
        }
    }
}

struct QueuedJob {
    id: u64,
    handle: JobHandle,
    /// How many more helpers may still join this job.
    tickets: usize,
}

/// A queued best-effort job (see [`spawn_background`]).
type BackgroundJob = Box<dyn FnOnce() + Send + 'static>;

struct PoolInner {
    queue: VecDeque<QueuedJob>,
    /// Best-effort jobs stolen by workers only when no foreground
    /// ([`par_map`]) job offers a ticket: foreground latency is never spent
    /// on speculative work.
    background: VecDeque<BackgroundJob>,
    /// Background jobs claimed but not yet finished (for
    /// [`background_pending`]).
    background_active: usize,
    idle: usize,
    spawned: usize,
    next_id: u64,
}

struct Pool {
    inner: Mutex<PoolInner>,
    work: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        inner: Mutex::new(PoolInner {
            queue: VecDeque::new(),
            background: VecDeque::new(),
            background_active: 0,
            idle: 0,
            spawned: 0,
            next_id: 0,
        }),
        work: Condvar::new(),
    })
}

impl Pool {
    /// Enqueues a job offering `tickets` helper slots, spawning workers as
    /// needed (lazily, up to [`MAX_POOL_THREADS`], persistent thereafter).
    /// Returns the job id used by [`Pool::retire`].
    fn submit(&'static self, handle: JobHandle, tickets: usize) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        // Spawn helpers *before* enqueueing the stack-referencing job, and
        // tolerate spawn failure (resource exhaustion): the submitter always
        // participates in its own job, so fewer helpers only means less
        // parallelism — never a stuck or dangling job. Panicking here with
        // the job already queued would leak a handle to freed stack memory.
        let deficit = tickets.saturating_sub(inner.idle);
        self.spawn_workers(&mut inner, deficit);
        POOL_JOBS.fetch_add(1, Ordering::Relaxed);
        let id = inner.next_id;
        inner.next_id += 1;
        inner.queue.push_back(QueuedJob {
            id,
            handle,
            tickets,
        });
        drop(inner);
        self.work.notify_all();
        id
    }

    /// Spawns up to `want` additional persistent workers (lazily, bounded by
    /// [`MAX_POOL_THREADS`], tolerant of spawn failure).
    fn spawn_workers(&'static self, inner: &mut PoolInner, want: usize) {
        let headroom = MAX_POOL_THREADS.saturating_sub(inner.spawned);
        for _ in 0..want.min(headroom) {
            match std::thread::Builder::new()
                .name("hexcute-pool".to_string())
                .spawn(move || {
                    // A worker whose loop unwinds (an injected worker death,
                    // or a defect escaping the per-item catch) is revived in
                    // place instead of silently shrinking the pool. The
                    // queue bookkeeping tolerates the unwind: a death before
                    // a claim leaves the job's ticket for someone else, and
                    // every pool lock acquisition is poison-tolerant.
                    loop {
                        if panic::catch_unwind(AssertUnwindSafe(|| self.worker_loop())).is_ok() {
                            break;
                        }
                        POOL_DEATHS.fetch_add(1, Ordering::Relaxed);
                        POOL_RESPAWNS.fetch_add(1, Ordering::Relaxed);
                    }
                }) {
                Ok(_) => inner.spawned += 1,
                Err(_) => break,
            }
        }
    }

    /// Removes the job from the queue so no further helper can join. Helpers
    /// register with the pool lock held, so after this returns the job's
    /// [`DoneGate`] count is final-or-decreasing and `wait_idle` is safe.
    fn retire(&self, id: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.queue.retain(|job| job.id != id);
    }

    fn worker_loop(&'static self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(pos) = inner.queue.iter().position(|job| job.tickets > 0) {
                // Injected worker death: unwind *before* consuming the job's
                // helper ticket, so the job is simply picked up by another
                // worker (or finished by its submitting thread). The unwind
                // is caught by the spawn wrapper, which revives the worker.
                if fault_fires(PoolFaultPoint::WorkerClaim) {
                    panic!("injected: pool worker death");
                }
                let handle = {
                    let job = &mut inner.queue[pos];
                    job.tickets -= 1;
                    job.handle
                };
                // Register while still holding the pool lock: `retire`
                // acquires the same lock, so a registration is never missed.
                unsafe { (*handle.gate).enter() };
                drop(inner);
                // SAFETY: the gate registration above keeps the job state
                // alive until `leave` below.
                unsafe { (handle.run)(handle.state) };
                unsafe { (*handle.gate).leave() };
                inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            } else if let Some(job) = inner.background.pop_front() {
                // Work stealing for the background class: only reached when
                // no foreground job offers a ticket, so speculative work
                // soaks up otherwise idle workers and nothing else. A
                // panicking background job is caught here — best-effort work
                // must never kill (or even respawn-cycle) a pool worker.
                inner.background_active += 1;
                drop(inner);
                let _ = panic::catch_unwind(AssertUnwindSafe(job));
                POOL_BACKGROUND.fetch_add(1, Ordering::Relaxed);
                inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
                inner.background_active -= 1;
            } else {
                inner.idle += 1;
                inner = self.work.wait(inner).unwrap_or_else(|p| p.into_inner());
                inner.idle -= 1;
            }
        }
    }
}

/// Enqueues a best-effort job on the persistent pool's **background lane**.
///
/// Pool workers steal background jobs only when no foreground [`par_map`]
/// job offers a helper ticket, so speculative work (the compile service's
/// predictive precompilation) consumes spare pool capacity and never delays
/// a foreground map. A worker is spawned lazily if none exists yet; panics
/// inside `f` are caught and discarded (best-effort semantics). Executed
/// jobs are counted in [`PoolStats::background`].
pub fn spawn_background(f: impl FnOnce() + Send + 'static) {
    let pool = pool();
    let mut inner = pool.inner.lock().unwrap_or_else(|p| p.into_inner());
    inner.background.push_back(Box::new(f));
    if inner.idle == 0 && inner.spawned < worker_count().max(1) {
        // No parked worker to steal the job and the pool is below its
        // configured width: grow it by one (busy workers pick the job up
        // later either way).
        pool.spawn_workers(&mut inner, 1);
    }
    drop(inner);
    pool.work.notify_all();
}

/// Background jobs not yet finished: queued plus currently executing.
pub fn background_pending() -> usize {
    let inner = pool().inner.lock().unwrap_or_else(|p| p.into_inner());
    inner.background.len() + inner.background_active
}

/// Blocks until the background lane is idle (no queued or executing jobs) or
/// `timeout` passes; returns whether it drained. Harnesses use this to model
/// traffic lulls in which speculative work catches up.
pub fn wait_background_idle(timeout: std::time::Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if background_pending() == 0 {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

/// Number of persistent pool threads spawned so far in this process. Grows
/// on demand up to the largest helper count any job requested (capped) and
/// never shrinks; exposed for tests and diagnostics.
pub fn pool_thread_count() -> usize {
    pool()
        .inner
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .spawned
}

// ---------------------------------------------------------------------------
// par_map on top of the pool.
// ---------------------------------------------------------------------------

/// A `Vec` of once-written cells shared across the workers. Safety rests on
/// the index cursor: every index is claimed by exactly one worker, so no
/// cell is ever accessed from two threads.
struct Slots<T> {
    cells: Vec<UnsafeCell<Option<T>>>,
}

unsafe impl<T: Send> Sync for Slots<T> {}

/// The shared state of one in-flight map: the item/result slots, the claim
/// cursor and the first panic payload. Lives on the submitting thread's
/// stack; helpers reach it through the type-erased [`JobHandle`].
struct JobShared<'f, T, R, F> {
    items: Slots<T>,
    results: Slots<R>,
    f: &'f F,
    n: usize,
    cursor: AtomicUsize,
    panicked: AtomicBool,
    /// Set once any worker skips an item because `cancel` tripped; the
    /// submitter then discards the (partially filled) results.
    cancelled: AtomicBool,
    cancel: Option<&'f cancel::CancelToken>,
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Claims indices off the cursor until the job is exhausted (or a sibling
/// panicked), applying `f` and storing results in order. Runs on both the
/// submitting thread and any pool helpers.
unsafe fn run_job<T, R, F>(state: *const ())
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let job = &*(state as *const JobShared<'_, T, R, F>);
    loop {
        if job.panicked.load(Ordering::Relaxed) {
            break;
        }
        let i = job.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= job.n {
            break;
        }
        // A tripped cancel token drains the remaining indices without
        // running the closure: each skipped item is counted exactly once
        // (the cursor hands out every index exactly once) and the job is
        // flagged so the submitter returns `None` instead of partial output.
        if job.cancel.is_some_and(|t| t.is_cancelled()) {
            job.cancelled.store(true, Ordering::Relaxed);
            POOL_CANCELLED.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        // SAFETY: the cursor hands each index to exactly one worker, so this
        // cell is not accessed by any other thread.
        let item = (*job.items.cells[i].get())
            .take()
            .expect("each index is claimed once");
        POOL_ITEMS.fetch_add(1, Ordering::Relaxed);
        // `AssertUnwindSafe` is sound here: on panic the whole map is
        // abandoned and only the stored payload escapes. An injected item
        // fault panics inside the catch, so it follows the exact propagation
        // path of a genuine closure panic.
        match panic::catch_unwind(AssertUnwindSafe(|| {
            if fault_fires(PoolFaultPoint::JobItem) {
                panic!("injected: pool worker-job panic");
            }
            (job.f)(item)
        })) {
            Ok(out) => {
                // SAFETY: as above — this worker owns index `i`.
                *job.results.cells[i].get() = Some(out);
            }
            Err(e) => {
                let mut slot = job.payload.lock().unwrap_or_else(|p| p.into_inner());
                if slot.is_none() {
                    *slot = Some(e);
                }
                job.panicked.store(true, Ordering::Relaxed);
                break;
            }
        }
    }
}

/// Maps `f` over `items` in parallel on the persistent worker pool,
/// preserving order.
///
/// Falls back to a plain serial map when there is a single worker or at most
/// one item. `f` may be called from multiple threads concurrently.
///
/// ```
/// let squares = hexcute_parallel::par_map((0..64).collect::<Vec<u64>>(), |x| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 64); // order and length are preserved
/// ```
///
/// # Panics
///
/// A panic inside `f` is caught, the remaining items are abandoned (sibling
/// workers stop at their next claim), and the *original* panic payload is
/// re-thrown on the calling thread once every worker has stopped — callers
/// see the message of the first closure panic, not a secondary error.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = worker_count().min(items.len().max(1));
    par_map_with_workers(items, f, workers)
}

/// [`par_map`] with an explicit worker count, bypassing `HEXCUTE_THREADS`.
/// Used by tests and benchmarks (the environment cannot be mutated safely
/// there) and by callers that already partitioned their budget. The calling
/// thread always participates, so `workers` counts it plus up to
/// `workers - 1` pool helpers.
pub fn par_map_with_workers<T, R, F>(items: Vec<T>, f: F, workers: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_inner(items, f, workers, None).expect("uncancellable maps always complete")
}

/// [`par_map_with_workers`] gated by a [`cancel::CancelToken`]: every worker
/// re-checks the token before claiming its next item, so a cancelled map
/// stops within one item's work per worker. Returns `None` — and counts the
/// skipped items in [`PoolStats::cancelled`] — when the token tripped before
/// all items ran; a token that trips only after the last item was claimed
/// still yields the complete `Some(results)`.
pub fn par_map_cancellable<T, R, F>(
    items: Vec<T>,
    f: F,
    workers: usize,
    token: &cancel::CancelToken,
) -> Option<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_inner(items, f, workers, Some(token))
}

/// The shared implementation of the [`par_map`] family. `None` (cancelled)
/// is only possible when a `token` was supplied.
fn par_map_inner<T, R, F>(
    items: Vec<T>,
    f: F,
    workers: usize,
    token: Option<&cancel::CancelToken>,
) -> Option<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        let n = items.len();
        let mut out = Vec::with_capacity(n);
        for (i, item) in items.into_iter().enumerate() {
            if token.is_some_and(|t| t.is_cancelled()) {
                POOL_CANCELLED.fetch_add((n - i) as u64, Ordering::Relaxed);
                return None;
            }
            out.push(f(item));
        }
        return Some(out);
    }

    let n = items.len();
    let workers = workers.min(n);
    // Hand items out by index so results can be reassembled in order. The
    // cells are lock-free on purpose: a `Mutex` per slot would be poisoned by
    // a panicking closure, killing sibling workers with a `PoisonError` that
    // buries the original panic.
    let job = JobShared {
        items: Slots {
            cells: items
                .into_iter()
                .map(|t| UnsafeCell::new(Some(t)))
                .collect(),
        },
        results: Slots::<R> {
            cells: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        },
        f: &f,
        n,
        cursor: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        cancelled: AtomicBool::new(false),
        cancel: token,
        payload: Mutex::new(None),
    };
    let gate = DoneGate::new();
    let handle = JobHandle {
        state: (&job as *const JobShared<'_, T, R, F>).cast(),
        run: run_job::<T, R, F>,
        gate: &gate,
    };
    let id = pool().submit(handle, workers - 1);
    // The submitting thread participates in its own job: nested maps issued
    // from inside a pool worker make progress even with zero free helpers.
    unsafe { run_job::<T, R, F>(handle.state) };
    pool().retire(id);
    gate.wait_idle();

    let first_panic = job.payload.into_inner().unwrap_or_else(|p| p.into_inner());
    if let Some(e) = first_panic {
        panic::resume_unwind(e);
    }
    if job.cancelled.load(Ordering::Relaxed) {
        return None;
    }
    Some(
        job.results
            .cells
            .into_iter()
            .map(|cell| cell.into_inner().expect("worker filled every slot"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let out = par_map((0..1000).collect::<Vec<_>>(), |x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn preserves_order_with_explicit_workers() {
        let out = par_map_with_workers((0..1000).collect::<Vec<_>>(), |x| x * 2, 4);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        assert_eq!(par_map(Vec::<usize>::new(), |x| x), Vec::<usize>::new());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn balances_uneven_work() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(items, |x| {
            if x % 16 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_respects_env_override() {
        // Can't set env vars safely in parallel tests; just sanity-check the
        // default path returns at least one worker.
        assert!(worker_count() >= 1);
    }

    #[test]
    fn parse_threads_edge_cases() {
        assert_eq!(parse_threads(None), ThreadsSpec::Unset);
        assert_eq!(parse_threads(Some("4")), ThreadsSpec::Count(4));
        assert_eq!(parse_threads(Some(" 8 ")), ThreadsSpec::Count(8));
        assert_eq!(parse_threads(Some("1")), ThreadsSpec::Count(1));
        // `0` documents "auto": use the machine's parallelism (it used to be
        // silently clamped to one worker).
        assert_eq!(parse_threads(Some("0")), ThreadsSpec::Auto);
        // Unparsable values are rejected (and warned about once at runtime)
        // instead of silently falling back.
        assert_eq!(parse_threads(Some("0x4")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("  ")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("-2")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("two")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("4.0")), ThreadsSpec::Invalid);
    }

    #[test]
    fn panicking_closure_surfaces_its_own_message() {
        let result = panic::catch_unwind(|| {
            par_map_with_workers(
                (0..64).collect::<Vec<usize>>(),
                |x| {
                    if x == 13 {
                        panic!("boom at item {x}");
                    }
                    x
                },
                4,
            )
        });
        let payload = result.expect_err("the map must propagate the panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string");
        assert!(
            message.contains("boom at item 13"),
            "original panic message was buried: {message:?}"
        );
    }

    #[test]
    fn serial_path_panics_propagate_too() {
        let result = panic::catch_unwind(|| {
            par_map_with_workers(vec![1usize], |_| -> usize { panic!("serial boom") }, 1)
        });
        let payload = result.expect_err("serial path must propagate the panic");
        assert!(payload
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("serial boom")));
    }

    #[test]
    fn pool_survives_a_panicking_job_and_keeps_working() {
        // A panicking closure must not kill pool threads: the panic is caught
        // inside the claim loop, so the same workers serve the next map.
        let _ = panic::catch_unwind(|| {
            par_map_with_workers(
                (0..32).collect::<Vec<usize>>(),
                |_| -> usize { panic!("x") },
                4,
            )
        });
        let out = par_map_with_workers((0..256).collect::<Vec<_>>(), |x| x + 1, 4);
        assert_eq!(out, (1..=256).collect::<Vec<_>>());
    }

    #[test]
    fn results_before_a_panic_are_not_observable_but_map_aborts_quickly() {
        // After a panic the cursor stops being advanced by the panicking
        // worker; siblings drain at most their in-flight item. This test just
        // checks the call returns (no deadlock) and panics.
        let hits = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            par_map_with_workers(
                (0..1024).collect::<Vec<usize>>(),
                |x| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    if x == 0 {
                        panic!("early abort");
                    }
                    x
                },
                4,
            )
        }));
        assert!(result.is_err());
        assert!(hits.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn pool_threads_are_reused_across_calls() {
        // Warm the pool, then issue many more maps at the same width: the
        // persistent pool must not spawn a thread per call. The counter is
        // process-global and sibling tests run concurrently against the same
        // pool, so the bound leaves room for their (small, width-bounded)
        // spawns — what it must catch is per-call growth (32 calls would add
        // ~96 threads if each spawned its own helpers).
        let _ = par_map_with_workers((0..64).collect::<Vec<_>>(), |x| x, 4);
        let after_warmup = pool_thread_count();
        for _ in 0..32 {
            let _ = par_map_with_workers((0..64).collect::<Vec<_>>(), |x| x + 1, 4);
        }
        let after_burst = pool_thread_count();
        assert!(
            after_burst <= after_warmup + 16,
            "pool grew per call: {after_warmup} -> {after_burst}"
        );
        assert!(after_burst <= MAX_POOL_THREADS);
    }

    #[test]
    fn nested_maps_make_progress() {
        // A map issued from inside a pool worker must not deadlock even when
        // the pool is saturated: the inner submitter participates itself.
        let out = par_map_with_workers(
            (0..8).collect::<Vec<usize>>(),
            |x| {
                par_map_with_workers((0..8).collect::<Vec<usize>>(), move |y| x * 8 + y, 4)
                    .into_iter()
                    .sum::<usize>()
            },
            4,
        );
        let expect: Vec<usize> = (0..8)
            .map(|x| (0..8).map(|y| x * 8 + y).sum::<usize>())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn uneven_workers_larger_than_items_are_clamped() {
        let out = par_map_with_workers((0..3).collect::<Vec<_>>(), |x| x * x, 64);
        assert_eq!(out, vec![0, 1, 4]);
    }

    #[test]
    fn pool_stats_count_jobs_and_items() {
        let before = pool_stats();
        let _ = par_map_with_workers((0..128).collect::<Vec<_>>(), |x| x + 1, 4);
        let after = pool_stats();
        assert!(after.jobs > before.jobs, "{before:?} -> {after:?}");
        assert!(after.items >= before.items + 128, "{before:?} -> {after:?}");
    }

    #[test]
    fn injected_worker_deaths_are_survived_and_counted() {
        // Kill the first few workers that try to claim a job: the map must
        // still complete correctly (the submitter participates, surviving
        // workers pick up tickets) and the dead workers must be revived.
        // `WorkerClaim` faults never corrupt results, so the process-global
        // hook is safe even with sibling tests mapping concurrently.
        let budget = AtomicUsize::new(3);
        let budget = Arc::new(budget);
        let b = budget.clone();
        set_pool_fault_hook(Some(Arc::new(move |point| {
            point == PoolFaultPoint::WorkerClaim
                && b.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                    .is_ok()
        })));
        let before = pool_stats();
        let out = par_map_with_workers((0..256).collect::<Vec<_>>(), |x| x * 2, 4);
        set_pool_fault_hook(None);
        assert_eq!(out, (0..256).map(|x| x * 2).collect::<Vec<_>>());
        // The dead worker's respawn bookkeeping runs on its own thread, so
        // give it a moment to be scheduled before reading the counters.
        let injected = 3 - budget.load(Ordering::Relaxed);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let after = loop {
            let s = pool_stats();
            if (s.deaths >= before.deaths + injected as u64 && s.respawns == s.deaths)
                || std::time::Instant::now() > deadline
            {
                break s;
            }
            std::thread::yield_now();
        };
        assert!(
            after.deaths >= before.deaths + injected as u64,
            "deaths not counted: {before:?} -> {after:?} ({injected} injected)"
        );
        assert_eq!(after.deaths, after.respawns, "every death must respawn");
        // The revived workers keep serving jobs.
        let again = par_map_with_workers((0..64).collect::<Vec<_>>(), |x| x + 7, 4);
        assert_eq!(again, (0..64).map(|x| x + 7).collect::<Vec<_>>());
    }

    #[test]
    fn background_jobs_run_and_are_counted() {
        let before = pool_stats().background;
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = done.clone();
            spawn_background(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(
            wait_background_idle(std::time::Duration::from_secs(10)),
            "background lane did not drain"
        );
        assert_eq!(done.load(Ordering::Relaxed), 8);
        assert!(pool_stats().background >= before + 8);
    }

    #[test]
    fn panicking_background_job_does_not_kill_the_worker() {
        let before = pool_stats();
        spawn_background(|| panic!("background boom"));
        assert!(wait_background_idle(std::time::Duration::from_secs(10)));
        // The panic is absorbed: no worker death, and both lanes keep
        // working afterwards.
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        spawn_background(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        assert!(wait_background_idle(std::time::Duration::from_secs(10)));
        assert_eq!(done.load(Ordering::Relaxed), 1);
        let out = par_map_with_workers((0..64).collect::<Vec<_>>(), |x| x + 1, 4);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
        let after = pool_stats();
        assert_eq!(
            after.deaths - before.deaths,
            after.respawns - before.respawns,
            "a background panic must not leave a dead worker behind"
        );
    }

    #[test]
    fn foreground_maps_are_served_before_background_jobs() {
        // Saturate the background lane with slow jobs, then issue a
        // foreground map: workers must prefer the ticketed foreground job at
        // every claim, so the map completes while background work is still
        // pending. (Timing-free: we only assert completion, plus that the
        // background jobs do eventually run.)
        let bg_done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let bg_done = bg_done.clone();
            spawn_background(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                bg_done.fetch_add(1, Ordering::Relaxed);
            });
        }
        let out = par_map_with_workers((0..128).collect::<Vec<_>>(), |x| x * 2, 4);
        assert_eq!(out, (0..128).map(|x| x * 2).collect::<Vec<_>>());
        assert!(wait_background_idle(std::time::Duration::from_secs(10)));
        assert_eq!(bg_done.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn no_hook_means_no_injection() {
        assert!(!fault_fires(PoolFaultPoint::JobItem));
        assert!(!fault_fires(PoolFaultPoint::WorkerClaim));
    }

    #[test]
    fn uncancelled_token_completes_like_a_plain_map() {
        let token = cancel::CancelToken::new();
        let out = par_map_cancellable((0..128).collect::<Vec<_>>(), |x| x * 3, 4, &token);
        assert_eq!(out, Some((0..128).map(|x| x * 3).collect::<Vec<_>>()));
        let serial = par_map_cancellable((0..128).collect::<Vec<_>>(), |x| x * 3, 1, &token);
        assert_eq!(serial, out);
    }

    #[test]
    fn pre_cancelled_token_skips_everything_and_counts() {
        let token = cancel::CancelToken::new();
        token.cancel(cancel::CancelReason::Shutdown);
        for workers in [1, 4] {
            let before = pool_stats().cancelled;
            let ran = AtomicUsize::new(0);
            let out = par_map_cancellable(
                (0..64).collect::<Vec<usize>>(),
                |x| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    x
                },
                workers,
                &token,
            );
            assert_eq!(out, None, "{workers} workers");
            assert_eq!(ran.load(Ordering::Relaxed), 0, "{workers} workers");
            assert!(
                pool_stats().cancelled >= before + 64,
                "skipped items must be counted ({workers} workers)"
            );
        }
    }

    #[test]
    fn mid_flight_cancel_stops_within_the_poll_bound() {
        // Cancel from inside the closure: every worker stops at its next
        // claim, so far fewer than all items run.
        let token = cancel::CancelToken::new();
        let ran = AtomicUsize::new(0);
        let out = par_map_cancellable(
            (0..4096).collect::<Vec<usize>>(),
            |x| {
                ran.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    token.cancel(cancel::CancelReason::Deadline);
                }
                x
            },
            4,
            &token,
        );
        assert_eq!(out, None);
        let executed = ran.load(Ordering::Relaxed);
        assert!(executed >= 1);
        assert!(
            executed < 4096,
            "cancellation must abort the map early, ran {executed} items"
        );
    }
}
