//! Cooperative cancellation tokens for in-flight parallel work.
//!
//! A [`CancelToken`] is a cheaply clonable handle to one shared cancel flag.
//! The *canceller* (a deadline enforcer, a watchdog thread, a shutdown path)
//! calls [`CancelToken::cancel`] with a [`CancelReason`]; the *workers*
//! (search walks, pool jobs) poll [`CancelToken::is_cancelled`] — a single
//! relaxed atomic load — at natural yield points and abort promptly when it
//! trips. Cancellation is strictly cooperative: nothing is interrupted
//! preemptively, so a worker is always between two poll points when it
//! observes the flag and can unwind cleanly, returning a typed error rather
//! than a partial result.
//!
//! The first cancel wins: once a reason is recorded, later `cancel` calls
//! are no-ops, so a request whose deadline and the process watchdog race
//! reports one coherent reason. The token also records *when* it was
//! cancelled, which lets the serving layer measure cancel-to-worker-free
//! latency (how long a cancelled synthesis held its slot past the cancel).
//!
//! Tokens are deliberately wall-clock-only. The *deterministic* bound on a
//! search — the node budget of `HEXCUTE_SYNTH_BUDGET` — is not part of the
//! token: budgets must produce bit-identical results at any thread count, so
//! they are applied by truncating the deterministic enumeration *before* the
//! walk fans out, never by racing workers against a shared counter.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Why an in-flight compile or search was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The request's deadline expired while its synthesis was in flight.
    Deadline,
    /// The service watchdog tripped on a runaway compile.
    Watchdog,
    /// The owning service is shutting down.
    Shutdown,
}

impl CancelReason {
    const fn as_u8(self) -> u8 {
        match self {
            CancelReason::Deadline => 1,
            CancelReason::Watchdog => 2,
            CancelReason::Shutdown => 3,
        }
    }

    fn from_u8(value: u8) -> Option<Self> {
        match value {
            1 => Some(CancelReason::Deadline),
            2 => Some(CancelReason::Watchdog),
            3 => Some(CancelReason::Shutdown),
            _ => None,
        }
    }
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CancelReason::Deadline => "deadline",
            CancelReason::Watchdog => "watchdog",
            CancelReason::Shutdown => "shutdown",
        })
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// `0` = not cancelled; otherwise a [`CancelReason`] discriminant.
    reason: AtomicU8,
    /// When the winning cancel landed (for cancel-to-free latency).
    cancelled_at: OnceLock<Instant>,
}

/// A shared, clonable cooperative-cancellation flag. See the
/// [module docs](self) for the polling contract.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token with `reason`. The first cancel wins; returns whether
    /// this call was the one that tripped it.
    pub fn cancel(&self, reason: CancelReason) -> bool {
        let won = self
            .inner
            .reason
            .compare_exchange(0, reason.as_u8(), Ordering::Release, Ordering::Relaxed)
            .is_ok();
        if won {
            let _ = self.inner.cancelled_at.set(Instant::now());
        }
        won
    }

    /// Whether the token has been cancelled. One relaxed atomic load — cheap
    /// enough to poll per search-tree row.
    pub fn is_cancelled(&self) -> bool {
        self.inner.reason.load(Ordering::Relaxed) != 0
    }

    /// The winning cancel reason, or `None` while uncancelled.
    pub fn reason(&self) -> Option<CancelReason> {
        CancelReason::from_u8(self.inner.reason.load(Ordering::Acquire))
    }

    /// How long ago the winning cancel landed, or `None` while uncancelled.
    /// The serving layer samples this when a cancelled claimant releases its
    /// slot, yielding the cancel-to-worker-free latency.
    pub fn since_cancelled(&self) -> Option<Duration> {
        self.inner.cancelled_at.get().map(Instant::elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_uncancelled() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert_eq!(token.reason(), None);
        assert_eq!(token.since_cancelled(), None);
    }

    #[test]
    fn first_cancel_wins_and_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(token.cancel(CancelReason::Deadline));
        assert!(!clone.cancel(CancelReason::Watchdog), "second cancel loses");
        assert!(clone.is_cancelled());
        assert_eq!(clone.reason(), Some(CancelReason::Deadline));
        assert!(token.since_cancelled().is_some());
    }

    #[test]
    fn reasons_round_trip_and_display() {
        for reason in [
            CancelReason::Deadline,
            CancelReason::Watchdog,
            CancelReason::Shutdown,
        ] {
            assert_eq!(CancelReason::from_u8(reason.as_u8()), Some(reason));
            assert!(!reason.to_string().is_empty());
        }
        assert_eq!(CancelReason::from_u8(0), None);
        assert_eq!(CancelReason::from_u8(200), None);
    }

    #[test]
    fn since_cancelled_grows() {
        let token = CancelToken::new();
        token.cancel(CancelReason::Shutdown);
        let first = token.since_cancelled().unwrap();
        std::thread::sleep(Duration::from_millis(2));
        let second = token.since_cancelled().unwrap();
        assert!(second > first);
    }
}
