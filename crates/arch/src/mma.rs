//! Tensor Core (matrix-multiply-accumulate) instruction atoms.
//!
//! Each atom is described, as in CuTe and the paper (Section III), by the
//! thread-value layouts of its A, B and C operands over the instruction tile.
//! These layouts are the `p` functions of the `gemm` constraint in
//! Fig. 19(b): they tie the register distribution of the operation-level
//! tensors to the fragments the hardware instruction expects.

use std::fmt;

use hexcute_layout::{Layout, TvLayout};

use crate::dtype::DType;
use crate::gpu::GpuArch;

/// A Tensor Core MMA instruction atom `D = A·Bᵀ + C`.
///
/// Operand layout conventions (column-major linearization):
/// * `a` is laid out over an `(m, k)` tile,
/// * `b` over an `(n, k)` tile,
/// * `c` over an `(m, n)` tile.
#[derive(Debug, Clone, PartialEq)]
pub struct MmaAtom {
    /// PTX-style mnemonic, e.g. `mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32`.
    pub name: String,
    /// Instruction tile M extent.
    pub m: usize,
    /// Instruction tile N extent.
    pub n: usize,
    /// Instruction tile K extent.
    pub k: usize,
    /// Element type of the A operand.
    pub a_dtype: DType,
    /// Element type of the B operand.
    pub b_dtype: DType,
    /// Element type of the accumulator.
    pub acc_dtype: DType,
    /// Thread-value layout of the A fragment over the `(m, k)` tile.
    pub a: TvLayout,
    /// Thread-value layout of the B fragment over the `(n, k)` tile.
    pub b: TvLayout,
    /// Thread-value layout of the C fragment over the `(m, n)` tile.
    pub c: TvLayout,
    /// Number of threads executing the instruction collectively (32 for
    /// `mma.sync`, 128 for `wgmma`).
    pub threads: usize,
    /// Minimum compute capability.
    pub min_cc: (u32, u32),
    /// Whether the A operand is read directly from shared memory (`wgmma`).
    pub a_in_smem: bool,
    /// Whether the B operand is read directly from shared memory (`wgmma`).
    pub b_in_smem: bool,
    /// Cycles the issuing warp (group) is occupied per instruction.
    pub issue_cycles: f64,
    /// Cycles until the result is available.
    pub completion_cycles: f64,
}

impl MmaAtom {
    /// Floating point operations performed by one instruction invocation.
    pub fn flops(&self) -> usize {
        2 * self.m * self.n * self.k
    }

    /// Throughput of the instruction in FLOP per cycle (per issuing warp
    /// group), derived from the issue interval.
    pub fn flops_per_cycle(&self) -> f64 {
        self.flops() as f64 / self.issue_cycles
    }

    /// Whether the atom is available on the architecture and matches the
    /// requested operand types.
    pub fn matches(&self, arch: &GpuArch, a: DType, b: DType, acc: DType) -> bool {
        arch.supports_cc(self.min_cc)
            && self.a_dtype == a
            && self.b_dtype == b
            && self.acc_dtype == acc
    }
}

impl fmt::Display for MmaAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}x{}x{}]", self.name, self.m, self.n, self.k)
    }
}

fn tv(thread: Layout, value: Layout, tile: Vec<usize>) -> TvLayout {
    TvLayout::new(thread, value, tile).expect("instruction atom layouts are within their tiles")
}

/// The `mma.sync.aligned.m16n8k16` FP16/BF16 atom (SM80+).
pub fn mma_m16n8k16(input: DType, acc: DType) -> MmaAtom {
    MmaAtom {
        name: format!(
            "mma.sync.aligned.m16n8k16.row.col.{}.{}.{}.{}",
            short(acc),
            short(input),
            short(input),
            short(acc)
        ),
        m: 16,
        n: 8,
        k: 16,
        a_dtype: input,
        b_dtype: input,
        acc_dtype: acc,
        a: tv(
            Layout::from_flat(&[4, 8], &[32, 1]),
            Layout::from_flat(&[2, 2, 2], &[16, 8, 128]),
            vec![16, 16],
        ),
        b: tv(
            Layout::from_flat(&[4, 8], &[16, 1]),
            Layout::from_flat(&[2, 2], &[8, 64]),
            vec![8, 16],
        ),
        c: tv(
            Layout::from_flat(&[4, 8], &[32, 1]),
            Layout::from_flat(&[2, 2], &[16, 8]),
            vec![16, 8],
        ),
        threads: 32,
        min_cc: (8, 0),
        a_in_smem: false,
        b_in_smem: false,
        issue_cycles: 8.0,
        completion_cycles: 24.0,
    }
}

/// The `mma.sync.aligned.m16n8k8` FP16/BF16 atom (SM80+), a half-rate
/// fallback when the K extent of the tile is too small for `k16`.
pub fn mma_m16n8k8(input: DType, acc: DType) -> MmaAtom {
    MmaAtom {
        name: format!(
            "mma.sync.aligned.m16n8k8.row.col.{}.{}.{}.{}",
            short(acc),
            short(input),
            short(input),
            short(acc)
        ),
        m: 16,
        n: 8,
        k: 8,
        a_dtype: input,
        b_dtype: input,
        acc_dtype: acc,
        a: tv(
            Layout::from_flat(&[4, 8], &[32, 1]),
            Layout::from_flat(&[2, 2], &[16, 8]),
            vec![16, 8],
        ),
        b: tv(
            Layout::from_flat(&[4, 8], &[16, 1]),
            Layout::from_mode(2, 8),
            vec![8, 8],
        ),
        c: tv(
            Layout::from_flat(&[4, 8], &[32, 1]),
            Layout::from_flat(&[2, 2], &[16, 8]),
            vec![16, 8],
        ),
        threads: 32,
        min_cc: (8, 0),
        a_in_smem: false,
        b_in_smem: false,
        issue_cycles: 8.0,
        completion_cycles: 20.0,
    }
}

/// The `mma.sync.aligned.m16n8k32` atom for 8-bit operands (INT8 on SM80+,
/// FP8 on SM89+).
pub fn mma_m16n8k32(input: DType, acc: DType) -> MmaAtom {
    let min_cc = if input.is_float() { (8, 9) } else { (8, 0) };
    MmaAtom {
        name: format!(
            "mma.sync.aligned.m16n8k32.row.col.{}.{}.{}.{}",
            short(acc),
            short(input),
            short(input),
            short(acc)
        ),
        m: 16,
        n: 8,
        k: 32,
        a_dtype: input,
        b_dtype: input,
        acc_dtype: acc,
        a: tv(
            Layout::from_flat(&[4, 8], &[64, 1]),
            Layout::from_flat(&[4, 2, 2], &[16, 8, 256]),
            vec![16, 32],
        ),
        b: tv(
            Layout::from_flat(&[4, 8], &[32, 1]),
            Layout::from_flat(&[4, 2], &[8, 128]),
            vec![8, 32],
        ),
        c: tv(
            Layout::from_flat(&[4, 8], &[32, 1]),
            Layout::from_flat(&[2, 2], &[16, 8]),
            vec![16, 8],
        ),
        threads: 32,
        min_cc,
        a_in_smem: false,
        b_in_smem: false,
        issue_cycles: 8.0,
        completion_cycles: 24.0,
    }
}

/// A Hopper warp-group MMA (`wgmma.mma_async.m64nNk16`) atom operating on a
/// whole warp group of 128 threads with operands sourced from shared memory.
///
/// The accumulator layout is the `m16n8` fragment expanded over 4 warps along
/// M and `n / 8` value repetitions along N, which is the hardware layout of
/// the `wgmma` accumulator.
///
/// # Panics
///
/// Panics if `n` is not a multiple of 8 or is larger than 256.
pub fn wgmma_m64(n: usize, input: DType, acc: DType) -> MmaAtom {
    assert!(
        n.is_multiple_of(8) && n <= 256,
        "wgmma N extent must be a multiple of 8, at most 256"
    );
    let k = if input.bits() == 8 { 32 } else { 16 };
    let base = if input.bits() == 8 {
        mma_m16n8k32(input, acc)
    } else {
        mma_m16n8k16(input, acc)
    };
    use hexcute_layout::RepeatMode;
    let c = base
        .c
        .expand(&[RepeatMode::along(4, 0)], &[RepeatMode::along(n / 8, 1)])
        .expect("wgmma accumulator expansion is well-formed");
    let a = base
        .a
        .expand(&[RepeatMode::along(4, 0)], &[])
        .expect("wgmma A expansion is well-formed");
    let b = base
        .b
        .expand(&[RepeatMode::broadcast(4)], &[RepeatMode::along(n / 8, 0)])
        .expect("wgmma B expansion is well-formed");
    MmaAtom {
        name: format!(
            "wgmma.mma_async.sync.aligned.m64n{n}k{k}.{}.{}.{}",
            short(acc),
            short(input),
            short(input)
        ),
        m: 64,
        n,
        k,
        a_dtype: input,
        b_dtype: input,
        acc_dtype: acc,
        a,
        b,
        c,
        threads: 128,
        min_cc: (9, 0),
        a_in_smem: true,
        b_in_smem: true,
        issue_cycles: 8.0 * (n as f64 / 8.0) / 4.0,
        completion_cycles: 32.0 + n as f64 / 4.0,
    }
}

fn short(d: DType) -> &'static str {
    match d {
        DType::F32 => "f32",
        DType::F16 => "f16",
        DType::BF16 => "bf16",
        DType::F8E4M3 => "e4m3",
        DType::F8E5M2 => "e5m2",
        DType::I32 => "s32",
        DType::I8 => "s8",
        DType::U8 => "u8",
        DType::I4 => "s4",
        DType::U4 => "u4",
        _ => "b16",
    }
}

/// All MMA atoms available on the given architecture.
pub fn mma_catalog(arch: &GpuArch) -> Vec<MmaAtom> {
    let mut atoms = vec![
        mma_m16n8k16(DType::F16, DType::F32),
        mma_m16n8k16(DType::BF16, DType::F32),
        mma_m16n8k16(DType::F16, DType::F16),
        mma_m16n8k8(DType::F16, DType::F32),
        mma_m16n8k8(DType::BF16, DType::F32),
        mma_m16n8k32(DType::I8, DType::I32),
        mma_m16n8k32(DType::F8E4M3, DType::F32),
        mma_m16n8k32(DType::F8E5M2, DType::F32),
    ];
    if arch.has_wgmma {
        for n in [64, 128, 256] {
            atoms.push(wgmma_m64(n, DType::F16, DType::F32));
            atoms.push(wgmma_m64(n, DType::BF16, DType::F32));
            atoms.push(wgmma_m64(n, DType::F8E4M3, DType::F32));
        }
    }
    atoms.retain(|a| arch.supports_cc(a.min_cc));
    atoms
}

/// All MMA atoms matching the operand/accumulator types, sorted from the
/// highest to the lowest throughput. The synthesis engine walks this list and
/// picks the first atom whose tile divides the operation (Algorithm 1,
/// line 8, with a fallback when the fastest instruction does not fit).
pub fn mma_candidates_sorted(
    arch: &GpuArch,
    a_dtype: DType,
    b_dtype: DType,
    acc_dtype: DType,
    allow_warp_group: bool,
) -> Vec<MmaAtom> {
    let mut atoms: Vec<MmaAtom> = mma_catalog(arch)
        .into_iter()
        .filter(|atom| atom.matches(arch, a_dtype, b_dtype, acc_dtype))
        .filter(|atom| allow_warp_group || atom.threads == 32)
        .collect();
    atoms.sort_by(|x, y| {
        y.flops_per_cycle()
            .partial_cmp(&x.flops_per_cycle())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(y.k.cmp(&x.k))
    });
    atoms
}

/// The fastest available MMA atom for the given operand/accumulator types,
/// preferring larger K extents and (on Hopper) warp-group instructions —
/// this is the "fastest Tensor Core instruction" selection of Algorithm 1,
/// line 8.
pub fn fastest_mma(
    arch: &GpuArch,
    a_dtype: DType,
    b_dtype: DType,
    acc_dtype: DType,
    allow_warp_group: bool,
) -> Option<MmaAtom> {
    mma_catalog(arch)
        .into_iter()
        .filter(|atom| atom.matches(arch, a_dtype, b_dtype, acc_dtype))
        .filter(|atom| allow_warp_group || atom.threads == 32)
        .max_by(|x, y| {
            x.flops_per_cycle()
                .partial_cmp(&y.flops_per_cycle())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.k.cmp(&y.k))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_layouts_cover_their_tiles_exactly() {
        for atom in [
            mma_m16n8k16(DType::F16, DType::F32),
            mma_m16n8k8(DType::F16, DType::F32),
            mma_m16n8k32(DType::I8, DType::I32),
        ] {
            assert!(
                atom.a.is_exclusive(),
                "{}: A fragment not exclusive",
                atom.name
            );
            assert!(
                atom.b.is_exclusive(),
                "{}: B fragment not exclusive",
                atom.name
            );
            assert!(
                atom.c.is_exclusive(),
                "{}: C fragment not exclusive",
                atom.name
            );
            assert_eq!(atom.a.tile_size(), atom.m * atom.k);
            assert_eq!(atom.b.tile_size(), atom.n * atom.k);
            assert_eq!(atom.c.tile_size(), atom.m * atom.n);
            assert_eq!(atom.a.num_threads(), 32);
        }
    }

    #[test]
    fn m16n8k16_matches_the_ptx_fragment_spec() {
        let atom = mma_m16n8k16(DType::F16, DType::F32);
        // Thread 0 of the warp owns C elements (0,0), (0,1), (8,0), (8,1).
        assert_eq!(atom.c.tile_coords(0, 0), vec![0, 0]);
        assert_eq!(atom.c.tile_coords(0, 1), vec![0, 1]);
        assert_eq!(atom.c.tile_coords(0, 2), vec![8, 0]);
        assert_eq!(atom.c.tile_coords(0, 3), vec![8, 1]);
        // Thread 1 shifts two columns right.
        assert_eq!(atom.c.tile_coords(1, 0), vec![0, 2]);
        // Thread 4 (next group) moves down one row.
        assert_eq!(atom.c.tile_coords(4, 0), vec![1, 0]);
        // A fragment: thread 0 also owns (0,8) in its second K half.
        assert_eq!(atom.a.tile_coords(0, 4), vec![0, 8]);
        // B fragment (N,K): thread 0 owns (0,0) and (0,1).
        assert_eq!(atom.b.tile_coords(0, 0), vec![0, 0]);
        assert_eq!(atom.b.tile_coords(0, 1), vec![0, 1]);
        assert_eq!(atom.b.tile_coords(0, 2), vec![0, 8]);
        // Thread 1 covers K columns 2 and 3.
        assert_eq!(atom.b.tile_coords(1, 0), vec![0, 2]);
        // Thread 4 covers N row 1.
        assert_eq!(atom.b.tile_coords(4, 0), vec![1, 0]);
    }

    #[test]
    fn catalog_respects_architecture_gating() {
        let a100 = GpuArch::a100();
        let h100 = GpuArch::h100();
        let a100_atoms = mma_catalog(&a100);
        let h100_atoms = mma_catalog(&h100);
        assert!(a100_atoms.iter().all(|a| a.threads == 32));
        assert!(a100_atoms.iter().all(|a| !a.name.contains("e4m3")));
        assert!(h100_atoms.iter().any(|a| a.threads == 128));
        assert!(h100_atoms.len() > a100_atoms.len());
    }

    #[test]
    fn fastest_mma_prefers_wgmma_on_hopper() {
        let h100 = GpuArch::h100();
        let best = fastest_mma(&h100, DType::F16, DType::F16, DType::F32, true).unwrap();
        assert_eq!(best.threads, 128);
        assert!(best.name.starts_with("wgmma"));
        let warp_only = fastest_mma(&h100, DType::F16, DType::F16, DType::F32, false).unwrap();
        assert_eq!(warp_only.threads, 32);
        assert_eq!(warp_only.k, 16);
    }

    #[test]
    fn fastest_mma_on_a100_is_m16n8k16() {
        let a100 = GpuArch::a100();
        let best = fastest_mma(&a100, DType::F16, DType::F16, DType::F32, true).unwrap();
        assert_eq!((best.m, best.n, best.k), (16, 8, 16));
        assert!(fastest_mma(&a100, DType::F8E4M3, DType::F8E4M3, DType::F32, true).is_none());
    }

    #[test]
    fn wgmma_accumulator_spans_the_warp_group() {
        let atom = wgmma_m64(128, DType::F16, DType::F32);
        assert_eq!(atom.c.num_threads(), 128);
        assert_eq!(atom.c.tile_shape(), &[64, 128]);
        assert!(atom.c.is_exclusive());
        // Warp 1's first thread (lane 32) starts at row 16.
        assert_eq!(atom.c.tile_coords(32, 0), vec![16, 0]);
        assert!(atom.a_in_smem && atom.b_in_smem);
    }

    #[test]
    fn flops_accounting() {
        let atom = mma_m16n8k16(DType::F16, DType::F32);
        assert_eq!(atom.flops(), 2 * 16 * 8 * 16);
        assert!(atom.flops_per_cycle() > 100.0);
    }
}
