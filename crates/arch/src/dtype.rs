//! Data types supported by the Hexcute tile-level programming model,
//! including the sub-byte integer and FP8 types used by weight-only
//! quantization (Appendix B of the paper).

use std::fmt;
use std::str::FromStr;

/// An element data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum DType {
    F64,
    F32,
    F16,
    BF16,
    F8E4M3,
    F8E5M2,
    I64,
    I32,
    I16,
    I8,
    U8,
    I4,
    U4,
    I2,
    U2,
    I1,
    U1,
}

impl DType {
    /// All data types, useful for exhaustive tests.
    pub const ALL: [DType; 17] = [
        DType::F64,
        DType::F32,
        DType::F16,
        DType::BF16,
        DType::F8E4M3,
        DType::F8E5M2,
        DType::I64,
        DType::I32,
        DType::I16,
        DType::I8,
        DType::U8,
        DType::I4,
        DType::U4,
        DType::I2,
        DType::U2,
        DType::I1,
        DType::U1,
    ];

    /// The width of one element in bits.
    pub fn bits(&self) -> usize {
        match self {
            DType::F64 | DType::I64 => 64,
            DType::F32 | DType::I32 => 32,
            DType::F16 | DType::BF16 | DType::I16 => 16,
            DType::F8E4M3 | DType::F8E5M2 | DType::I8 | DType::U8 => 8,
            DType::I4 | DType::U4 => 4,
            DType::I2 | DType::U2 => 2,
            DType::I1 | DType::U1 => 1,
        }
    }

    /// The number of bytes occupied by `count` contiguous elements.
    ///
    /// Sub-byte types are packed; the count is rounded up to a whole byte.
    pub fn bytes_for(&self, count: usize) -> usize {
        (self.bits() * count).div_ceil(8)
    }

    /// The number of elements that fit in `bytes` bytes.
    pub fn elements_per_bytes(&self, bytes: usize) -> usize {
        bytes * 8 / self.bits()
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(&self) -> bool {
        matches!(
            self,
            DType::F64 | DType::F32 | DType::F16 | DType::BF16 | DType::F8E4M3 | DType::F8E5M2
        )
    }

    /// Whether the type is an integer type.
    pub fn is_integer(&self) -> bool {
        !self.is_float()
    }

    /// Whether the type is narrower than one byte.
    pub fn is_sub_byte(&self) -> bool {
        self.bits() < 8
    }

    /// Whether the type is a signed integer.
    pub fn is_signed_integer(&self) -> bool {
        matches!(
            self,
            DType::I64 | DType::I32 | DType::I16 | DType::I8 | DType::I4 | DType::I2 | DType::I1
        )
    }

    /// The canonical lowercase name, matching the Hexcute DSL grammar.
    pub fn name(&self) -> &'static str {
        match self {
            DType::F64 => "float64",
            DType::F32 => "float32",
            DType::F16 => "float16",
            DType::BF16 => "bfloat16",
            DType::F8E4M3 => "float8_e4m3",
            DType::F8E5M2 => "float8_e5m2",
            DType::I64 => "int64",
            DType::I32 => "int32",
            DType::I16 => "int16",
            DType::I8 => "int8",
            DType::U8 => "uint8",
            DType::I4 => "int4",
            DType::U4 => "uint4",
            DType::I2 => "int2",
            DType::U2 => "uint2",
            DType::I1 => "int1",
            DType::U1 => "uint1",
        }
    }

    /// The value range representable by an integer type, used by the
    /// functional simulator when casting. Returns `None` for floats.
    pub fn integer_range(&self) -> Option<(i64, i64)> {
        if self.is_float() {
            return None;
        }
        let bits = self.bits() as u32;
        if self.is_signed_integer() {
            let max = (1i64 << (bits - 1)) - 1;
            Some((-(1i64 << (bits - 1)), max))
        } else {
            Some((0, (1i64 << bits) - 1))
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Packs signed 4-bit integers two per byte, low nibble first (the storage
/// layout of the W4A16 weight tensors). Values are clamped to the int4 range
/// `[-8, 7]`.
pub fn pack_int4(values: &[i8]) -> Vec<u8> {
    let mut packed = vec![0u8; values.len().div_ceil(2)];
    for (i, &v) in values.iter().enumerate() {
        let nibble = (v.clamp(-8, 7) as u8) & 0x0F;
        if i % 2 == 0 {
            packed[i / 2] |= nibble;
        } else {
            packed[i / 2] |= nibble << 4;
        }
    }
    packed
}

/// Unpacks `count` signed 4-bit integers from bytes written by [`pack_int4`]
/// (low nibble first, sign-extended). This is the scalar reference for the
/// in-register unpack sequence the [`crate::CopyKind::Unpack`] copy atoms
/// model.
pub fn unpack_int4(packed: &[u8], count: usize) -> Vec<i8> {
    (0..count)
        .map(|i| {
            let byte = packed[i / 2];
            let nibble = if i % 2 == 0 { byte & 0x0F } else { byte >> 4 };
            // Sign-extend the 4-bit value.
            ((nibble << 4) as i8) >> 4
        })
        .collect()
}

/// Error returned when parsing an unknown data-type name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDTypeError(pub String);

impl fmt::Display for ParseDTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown data type `{}`", self.0)
    }
}

impl std::error::Error for ParseDTypeError {}

impl FromStr for DType {
    type Err = ParseDTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DType::ALL
            .iter()
            .copied()
            .find(|d| d.name() == s)
            .ok_or_else(|| ParseDTypeError(s.to_string()))
    }
}

/// The memory space a tensor lives in (Appendix B: `Global | Shared |
/// Register`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemSpace {
    /// Device global memory (DRAM / L2).
    Global,
    /// Software-managed shared memory within a thread block.
    Shared,
    /// Per-thread register files.
    Register,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Register => "register",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths() {
        assert_eq!(DType::F16.bits(), 16);
        assert_eq!(DType::I4.bits(), 4);
        assert_eq!(DType::F8E4M3.bits(), 8);
        assert_eq!(DType::U1.bits(), 1);
        assert_eq!(DType::F64.bits(), 64);
    }

    #[test]
    fn packed_byte_counts() {
        assert_eq!(DType::I4.bytes_for(8), 4);
        assert_eq!(DType::I4.bytes_for(3), 2);
        assert_eq!(DType::F16.bytes_for(8), 16);
        assert_eq!(DType::U1.bytes_for(9), 2);
        assert_eq!(DType::I4.elements_per_bytes(16), 32);
        assert_eq!(DType::F16.elements_per_bytes(16), 8);
    }

    #[test]
    fn classification() {
        assert!(DType::BF16.is_float());
        assert!(DType::F8E5M2.is_float());
        assert!(DType::I4.is_integer());
        assert!(DType::I4.is_sub_byte());
        assert!(!DType::I8.is_sub_byte());
        assert!(DType::I4.is_signed_integer());
        assert!(!DType::U4.is_signed_integer());
    }

    #[test]
    fn integer_ranges() {
        assert_eq!(DType::I4.integer_range(), Some((-8, 7)));
        assert_eq!(DType::U4.integer_range(), Some((0, 15)));
        assert_eq!(DType::I8.integer_range(), Some((-128, 127)));
        assert_eq!(DType::F16.integer_range(), None);
    }

    #[test]
    fn name_round_trip() {
        for d in DType::ALL {
            assert_eq!(d.name().parse::<DType>().unwrap(), d);
        }
        assert!("float4".parse::<DType>().is_err());
    }

    #[test]
    fn int4_pack_unpack_round_trips() {
        let values: Vec<i8> = vec![-8, -1, 0, 7, 3, -5, 2];
        let packed = pack_int4(&values);
        assert_eq!(packed.len(), 4, "7 nibbles pack into 4 bytes");
        assert_eq!(unpack_int4(&packed, values.len()), values);
        // Out-of-range values are clamped, not wrapped.
        assert_eq!(unpack_int4(&pack_int4(&[100, -100]), 2), vec![7, -8]);
        // An empty slice packs into nothing.
        assert!(pack_int4(&[]).is_empty());
    }

    #[test]
    fn mem_space_display() {
        assert_eq!(MemSpace::Global.to_string(), "global");
        assert_eq!(MemSpace::Shared.to_string(), "shared");
        assert_eq!(MemSpace::Register.to_string(), "register");
    }
}
