//! Data-movement instruction atoms: vectorized global/shared loads and
//! stores, `cp.async`, `ldmatrix` and the Tensor Memory Accelerator.
//!
//! Each atom records how many bytes a single thread moves per invocation and
//! the alignment the contiguous run must satisfy. Wider atoms are preferred
//! by the synthesis engine (Section IV-B: the anchor copy is "constructed by
//! coalescing memory accesses" and the vector size is "determined by
//! analyzing the divisibility of the strides").

use std::fmt;

use hexcute_layout::{Layout, TvLayout};

use crate::dtype::{DType, MemSpace};
use crate::gpu::GpuArch;

/// The flavour of a copy instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyKind {
    /// Plain vectorized load/store through registers (`ld.global`, `st.global`,
    /// `ld.shared`, `st.shared`).
    Vector,
    /// Asynchronous global→shared copy bypassing registers (`cp.async`).
    CpAsync,
    /// Warp-collective shared→register matrix load (`ldmatrix.xN`).
    LdMatrix {
        /// Number of 8×8 matrices loaded per instruction (1, 2 or 4).
        matrices: usize,
    },
    /// Bulk tensor copy issued by a single thread (Hopper TMA).
    Tma,
    /// Vectorized shared→register load of *packed sub-byte* elements followed
    /// by an in-register unpack (`lop3`/`prmt` bit manipulation, the Marlin
    /// dequant-in-flight weight path): each thread loads a contiguous run of
    /// packed nibbles and expands them into its own lanes, so no inter-thread
    /// exchange is needed before the dequantization arithmetic.
    Unpack,
    /// Scalar fallback (one element per thread per instruction).
    Scalar,
}

/// Which memory level determines the completion latency of the copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyClass {
    /// Served by DRAM.
    Dram,
    /// Served by the L2 cache.
    L2,
    /// Served by shared memory.
    Smem,
}

/// A copy instruction atom.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyAtom {
    /// PTX-style mnemonic, e.g. `ld.global.v4.b32` or `cp.async.cg.shared.global.16`.
    pub name: String,
    /// Instruction flavour.
    pub kind: CopyKind,
    /// Source memory space.
    pub src: MemSpace,
    /// Destination memory space.
    pub dst: MemSpace,
    /// Bytes moved by one thread per invocation (for TMA: bytes per issued
    /// instruction, since a single thread issues the copy).
    pub bytes_per_thread: usize,
    /// Number of threads participating collectively (32 for warp-wide
    /// instructions, 1 for TMA).
    pub threads: usize,
    /// Required alignment (and contiguity) of each thread's access in bytes.
    pub alignment_bytes: usize,
    /// Whether the copy is asynchronous (completion overlaps with compute).
    pub is_async: bool,
    /// Minimum compute capability.
    pub min_cc: (u32, u32),
    /// Cycles the issuing warp is occupied per invocation.
    pub issue_cycles: f64,
    /// Which memory level determines the completion latency.
    pub latency_class: LatencyClass,
}

impl CopyAtom {
    /// Total bytes moved by one collective invocation.
    pub fn bytes_per_instruction(&self) -> usize {
        self.bytes_per_thread * self.threads
    }

    /// Elements of `dtype` moved per thread per invocation.
    pub fn elements_per_thread(&self, dtype: DType) -> usize {
        dtype.elements_per_bytes(self.bytes_per_thread)
    }

    /// Completion latency on the given architecture in cycles.
    pub fn completion_cycles(&self, arch: &GpuArch) -> f64 {
        match self.latency_class {
            LatencyClass::Dram => arch.dram_latency_cycles,
            LatencyClass::L2 => arch.l2_latency_cycles,
            LatencyClass::Smem => arch.smem_latency_cycles,
        }
    }

    /// Whether this atom is usable on the architecture.
    pub fn available_on(&self, arch: &GpuArch) -> bool {
        arch.supports_cc(self.min_cc) && (self.kind != CopyKind::Tma || arch.has_tma)
    }

    /// The source and destination thread-value layouts of one invocation for
    /// elements of `dtype`, over a flat tile of `threads × elements_per_thread`
    /// elements.
    ///
    /// For plain vector/scalar/`cp.async` copies the source and destination
    /// distributions coincide (each thread moves its own contiguous vector).
    /// `ldmatrix` redistributes data across the warp and therefore has
    /// distinct source and destination layouts (Fig. 7 of the paper).
    /// Returns `None` for TMA, whose source side is not described by a
    /// thread-value layout (it is issued by a single thread).
    pub fn tv_layouts(&self, dtype: DType) -> Option<(TvLayout, TvLayout)> {
        match self.kind {
            CopyKind::Tma => None,
            CopyKind::LdMatrix { matrices } => Some(ldmatrix_layouts(matrices)),
            _ => {
                let elems = self.elements_per_thread(dtype).max(1);
                let tile = vec![self.threads * elems];
                let tv = TvLayout::contiguous(self.threads, elems, tile)
                    .expect("contiguous copy layout is well-formed");
                Some((tv.clone(), tv))
            }
        }
    }
}

impl fmt::Display for CopyAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} B/thread, {}→{})",
            self.name, self.bytes_per_thread, self.src, self.dst
        )
    }
}

/// The source (`p`) and destination (`q`) thread-value layouts of
/// `ldmatrix.xN` (Fig. 7 of the paper).
///
/// The destination layout matches the Tensor Core A-operand fragment so that
/// an `ldmatrix`-loaded tile can feed `mma` without any inter-thread data
/// exchange — the property the Marlin dataflow of Fig. 5 relies on.
pub fn ldmatrix_layouts(matrices: usize) -> (TvLayout, TvLayout) {
    match matrices {
        4 => {
            // Tile: 16x16 halves (four 8x8 matrices arranged 2x2).
            let p = TvLayout::new(
                Layout::from_flat(&[8, 2, 2], &[1, 8, 128]),
                Layout::from_mode(8, 16),
                vec![16, 16],
            )
            .expect("ldmatrix.x4 source layout");
            let q = TvLayout::new(
                Layout::from_flat(&[4, 8], &[32, 1]),
                Layout::from_flat(&[2, 2, 2], &[16, 8, 128]),
                vec![16, 16],
            )
            .expect("ldmatrix.x4 destination layout");
            (p, q)
        }
        2 => {
            // Tile: 16x8 halves (two 8x8 matrices stacked along M).
            let p = TvLayout::new(
                Layout::from_flat(&[8, 2, 2], &[1, 8, 0]),
                Layout::from_mode(8, 16),
                vec![16, 8],
            )
            .expect("ldmatrix.x2 source layout");
            let q = TvLayout::new(
                Layout::from_flat(&[4, 8], &[32, 1]),
                Layout::from_flat(&[2, 2], &[16, 8]),
                vec![16, 8],
            )
            .expect("ldmatrix.x2 destination layout");
            (p, q)
        }
        1 => {
            // Tile: one 8x8 matrix.
            let p = TvLayout::new(
                Layout::from_flat(&[8, 4], &[1, 0]),
                Layout::from_mode(8, 8),
                vec![8, 8],
            )
            .expect("ldmatrix.x1 source layout");
            let q = TvLayout::new(
                Layout::from_flat(&[4, 8], &[16, 1]),
                Layout::from_mode(2, 8),
                vec![8, 8],
            )
            .expect("ldmatrix.x1 destination layout");
            (p, q)
        }
        other => panic!("ldmatrix supports 1, 2 or 4 matrices, not {other}"),
    }
}

fn vector_atom(
    name: &str,
    src: MemSpace,
    dst: MemSpace,
    bytes: usize,
    latency_class: LatencyClass,
    issue: f64,
) -> CopyAtom {
    CopyAtom {
        name: name.to_string(),
        kind: if bytes <= 1 {
            CopyKind::Scalar
        } else {
            CopyKind::Vector
        },
        src,
        dst,
        bytes_per_thread: bytes,
        threads: 32,
        alignment_bytes: bytes,
        is_async: false,
        min_cc: (7, 0),
        issue_cycles: issue,
        latency_class,
    }
}

/// The full copy-instruction catalog for an architecture, covering every
/// source/destination memory-space pair, widest instructions first.
pub fn copy_catalog(arch: &GpuArch) -> Vec<CopyAtom> {
    let mut atoms = Vec::new();

    // Global → register loads.
    for bytes in [16, 8, 4, 2, 1] {
        let suffix = match bytes {
            16 => "v4.b32",
            8 => "v2.b32",
            4 => "b32",
            2 => "b16",
            _ => "b8",
        };
        atoms.push(vector_atom(
            &format!("ld.global.{suffix}"),
            MemSpace::Global,
            MemSpace::Register,
            bytes,
            LatencyClass::Dram,
            2.0,
        ));
    }
    // Register → global stores.
    for bytes in [16, 8, 4, 2, 1] {
        let suffix = match bytes {
            16 => "v4.b32",
            8 => "v2.b32",
            4 => "b32",
            2 => "b16",
            _ => "b8",
        };
        atoms.push(vector_atom(
            &format!("st.global.{suffix}"),
            MemSpace::Register,
            MemSpace::Global,
            bytes,
            LatencyClass::Dram,
            2.0,
        ));
    }
    // Global → shared asynchronous copies (SM80+).
    for bytes in [16, 8, 4] {
        atoms.push(CopyAtom {
            name: format!("cp.async.cg.shared.global.{bytes}"),
            kind: CopyKind::CpAsync,
            src: MemSpace::Global,
            dst: MemSpace::Shared,
            bytes_per_thread: bytes,
            threads: 32,
            alignment_bytes: bytes,
            is_async: true,
            min_cc: (8, 0),
            issue_cycles: 2.0,
            latency_class: LatencyClass::Dram,
        });
    }
    // Hopper TMA bulk copies (issued by one thread, 128-byte granularity).
    if arch.has_tma {
        atoms.push(CopyAtom {
            name: "cp.async.bulk.tensor (TMA)".to_string(),
            kind: CopyKind::Tma,
            src: MemSpace::Global,
            dst: MemSpace::Shared,
            bytes_per_thread: 16384,
            threads: 1,
            alignment_bytes: 128,
            is_async: true,
            min_cc: (9, 0),
            issue_cycles: 20.0,
            latency_class: LatencyClass::Dram,
        });
        atoms.push(CopyAtom {
            name: "cp.async.bulk.tensor.store (TMA)".to_string(),
            kind: CopyKind::Tma,
            src: MemSpace::Shared,
            dst: MemSpace::Global,
            bytes_per_thread: 16384,
            threads: 1,
            alignment_bytes: 128,
            is_async: true,
            min_cc: (9, 0),
            issue_cycles: 20.0,
            latency_class: LatencyClass::Dram,
        });
    }
    // Shared → register unpack loads for packed sub-byte weight tensors: a
    // plain vector load of the packed nibbles plus the in-register unpack
    // sequence (charged as one extra issue cycle). Only offered by the
    // synthesis engine when the tensor's dtype is sub-byte.
    for bytes in [16, 8, 4] {
        let suffix = match bytes {
            16 => "b128",
            8 => "b64",
            _ => "b32",
        };
        atoms.push(CopyAtom {
            name: format!("ld.shared.{suffix}.unpack"),
            kind: CopyKind::Unpack,
            src: MemSpace::Shared,
            dst: MemSpace::Register,
            bytes_per_thread: bytes,
            threads: 32,
            alignment_bytes: bytes,
            is_async: false,
            min_cc: (7, 0),
            issue_cycles: 3.0,
            latency_class: LatencyClass::Smem,
        });
    }
    // Shared → register: ldmatrix then plain vector loads.
    for matrices in [4, 2, 1] {
        atoms.push(CopyAtom {
            name: format!("ldmatrix.sync.aligned.x{matrices}.m8n8"),
            kind: CopyKind::LdMatrix { matrices },
            src: MemSpace::Shared,
            dst: MemSpace::Register,
            bytes_per_thread: 4 * matrices,
            threads: 32,
            alignment_bytes: 16,
            is_async: false,
            min_cc: (7, 5),
            issue_cycles: 2.0,
            latency_class: LatencyClass::Smem,
        });
    }
    for bytes in [16, 8, 4, 2, 1] {
        let suffix = match bytes {
            16 => "b128",
            8 => "b64",
            4 => "b32",
            2 => "b16",
            _ => "b8",
        };
        atoms.push(vector_atom(
            &format!("ld.shared.{suffix}"),
            MemSpace::Shared,
            MemSpace::Register,
            bytes,
            LatencyClass::Smem,
            2.0,
        ));
        atoms.push(vector_atom(
            &format!("st.shared.{suffix}"),
            MemSpace::Register,
            MemSpace::Shared,
            bytes,
            LatencyClass::Smem,
            2.0,
        ));
    }

    atoms.retain(|a| a.available_on(arch));
    atoms
}

/// All copy atoms moving data from `src` to `dst` on the architecture,
/// widest (per-thread bytes) first.
pub fn copy_candidates(arch: &GpuArch, src: MemSpace, dst: MemSpace) -> Vec<CopyAtom> {
    let mut atoms: Vec<CopyAtom> = copy_catalog(arch)
        .into_iter()
        .filter(|a| a.src == src && a.dst == dst)
        .collect();
    atoms.sort_by_key(|a| std::cmp::Reverse(a.bytes_per_thread));
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_space_pairs() {
        let arch = GpuArch::a100();
        for (src, dst) in [
            (MemSpace::Global, MemSpace::Register),
            (MemSpace::Global, MemSpace::Shared),
            (MemSpace::Shared, MemSpace::Register),
            (MemSpace::Register, MemSpace::Shared),
            (MemSpace::Register, MemSpace::Global),
        ] {
            assert!(
                !copy_candidates(&arch, src, dst).is_empty(),
                "no copy atoms for {src} → {dst}"
            );
        }
    }

    #[test]
    fn candidates_are_sorted_widest_first() {
        let arch = GpuArch::h100();
        for (src, dst) in [
            (MemSpace::Global, MemSpace::Register),
            (MemSpace::Shared, MemSpace::Register),
        ] {
            let atoms = copy_candidates(&arch, src, dst);
            for pair in atoms.windows(2) {
                assert!(pair[0].bytes_per_thread >= pair[1].bytes_per_thread);
            }
        }
    }

    #[test]
    fn tma_only_on_hopper() {
        let a100 = copy_catalog(&GpuArch::a100());
        let h100 = copy_catalog(&GpuArch::h100());
        assert!(!a100.iter().any(|a| a.kind == CopyKind::Tma));
        assert!(h100.iter().any(|a| a.kind == CopyKind::Tma));
    }

    #[test]
    fn cp_async_bypasses_registers() {
        let arch = GpuArch::a100();
        let atoms = copy_candidates(&arch, MemSpace::Global, MemSpace::Shared);
        assert!(atoms.iter().all(|a| a.is_async || a.kind == CopyKind::Tma));
        assert_eq!(atoms[0].bytes_per_thread, 16);
    }

    #[test]
    fn vector_copy_layouts_are_contiguous_and_exclusive() {
        let arch = GpuArch::a100();
        let atom = &copy_candidates(&arch, MemSpace::Global, MemSpace::Register)[0];
        let (p, q) = atom.tv_layouts(DType::F16).unwrap();
        assert_eq!(p, q);
        assert!(p.is_exclusive());
        assert_eq!(p.values_per_thread(), 8);
        // INT4 elements pack twice as densely.
        let (p4, _) = atom.tv_layouts(DType::I4).unwrap();
        assert_eq!(p4.values_per_thread(), 32);
    }

    #[test]
    fn ldmatrix_x4_layouts_match_the_paper() {
        let (p, q) = ldmatrix_layouts(4);
        assert_eq!(p.num_threads(), 32);
        assert_eq!(p.values_per_thread(), 8);
        assert!(p.is_exclusive());
        assert!(q.is_exclusive());
        // Thread 0 provides the address of row 0 of the first 8x8 matrix and
        // covers its 8 contiguous (column-direction) elements.
        assert_eq!(p.tile_coords(0, 0), vec![0, 0]);
        assert_eq!(p.tile_coords(0, 7), vec![0, 7]);
        // Thread 8 covers row 8 (second matrix), thread 16 column 8 (third).
        assert_eq!(p.tile_coords(8, 0), vec![8, 0]);
        assert_eq!(p.tile_coords(16, 0), vec![0, 8]);
        // The destination distribution equals the mma A-operand fragment:
        // thread 0 holds (0,0), (0,1), (8,0), (8,1), (0,8), ...
        assert_eq!(q.tile_coords(0, 0), vec![0, 0]);
        assert_eq!(q.tile_coords(0, 1), vec![0, 1]);
        assert_eq!(q.tile_coords(0, 2), vec![8, 0]);
        assert_eq!(q.tile_coords(0, 4), vec![0, 8]);
    }

    #[test]
    fn ldmatrix_destination_equals_mma_a_fragment() {
        let (_, q) = ldmatrix_layouts(4);
        let mma = crate::mma::mma_m16n8k16(DType::F16, DType::F32);
        assert_eq!(q.as_layout(), mma.a.as_layout());
        let (_, q2) = ldmatrix_layouts(2);
        assert_eq!(q2.as_layout(), mma.c.as_layout());
    }

    #[test]
    #[should_panic(expected = "ldmatrix supports 1, 2 or 4")]
    fn ldmatrix_rejects_bad_matrix_count() {
        ldmatrix_layouts(3);
    }

    #[test]
    fn completion_latency_tracks_memory_level() {
        let arch = GpuArch::a100();
        let global = &copy_candidates(&arch, MemSpace::Global, MemSpace::Register)[0];
        let shared = &copy_candidates(&arch, MemSpace::Shared, MemSpace::Register)[0];
        assert!(global.completion_cycles(&arch) > shared.completion_cycles(&arch));
    }

    #[test]
    fn unpack_atoms_cover_the_packed_weight_path() {
        let arch = GpuArch::a100();
        let unpacks: Vec<CopyAtom> = copy_candidates(&arch, MemSpace::Shared, MemSpace::Register)
            .into_iter()
            .filter(|a| a.kind == CopyKind::Unpack)
            .collect();
        assert_eq!(unpacks.len(), 3);
        // The widest unpack moves 32 packed int4 elements per thread and
        // costs one extra issue cycle over the plain vector load.
        let widest = &unpacks[0];
        assert_eq!(widest.bytes_per_thread, 16);
        assert_eq!(widest.elements_per_thread(DType::I4), 32);
        assert!(widest.issue_cycles > 2.0);
        // Its thread-value layout is the plain contiguous distribution (the
        // unpack happens within each thread's own lanes).
        let (p, q) = widest.tv_layouts(DType::I4).unwrap();
        assert_eq!(p, q);
        assert!(p.is_exclusive());
    }

    #[test]
    fn tma_has_no_tv_layout() {
        let arch = GpuArch::h100();
        let tma = copy_catalog(&arch)
            .into_iter()
            .find(|a| a.kind == CopyKind::Tma)
            .unwrap();
        assert!(tma.tv_layouts(DType::F16).is_none());
        assert_eq!(tma.threads, 1);
    }
}
