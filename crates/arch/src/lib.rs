//! # hexcute-arch
//!
//! GPU architecture models, element data types and the collective-instruction
//! catalog used by the Hexcute compiler.
//!
//! The crate provides:
//!
//! * [`DType`] / [`MemSpace`] — element types (including sub-byte and FP8
//!   types) and memory spaces of the tile-level programming model;
//! * [`GpuArch`] — descriptions of the NVIDIA A100 and H100 GPUs used in the
//!   paper's evaluation (bandwidths, latencies, shared-memory banking,
//!   feature flags such as TMA and warp-group MMA);
//! * [`MmaAtom`] and [`CopyAtom`] — the collective instructions Hexcute
//!   lowers tile-level operations to, each modelled by the thread-value
//!   layouts of its operands exactly as in Section III of the paper.
//!
//! ```
//! use hexcute_arch::{fastest_mma, DType, GpuArch};
//!
//! let h100 = GpuArch::h100();
//! let atom = fastest_mma(&h100, DType::F16, DType::F16, DType::F32, false).unwrap();
//! assert_eq!((atom.m, atom.n, atom.k), (16, 8, 16));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod copy;
mod dtype;
mod gpu;
mod mma;

pub use copy::{copy_candidates, copy_catalog, ldmatrix_layouts, CopyAtom, CopyKind, LatencyClass};
pub use dtype::{pack_int4, unpack_int4, DType, MemSpace, ParseDTypeError};
pub use gpu::{GpuArch, GpuGeneration};
pub use mma::{
    fastest_mma, mma_candidates_sorted, mma_catalog, mma_m16n8k16, mma_m16n8k32, mma_m16n8k8,
    wgmma_m64, MmaAtom,
};
