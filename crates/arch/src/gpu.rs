//! GPU architecture descriptions used by the cost model and the performance
//! simulator.
//!
//! The paper evaluates on NVIDIA A100 (SM80) and H100 (SM90) GPUs with the
//! clock locked at 1.41 GHz for reproducibility; the same specifications are
//! encoded here.

use std::fmt;

use crate::dtype::DType;

/// A GPU generation, used to gate instruction availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GpuGeneration {
    /// NVIDIA Ampere (SM80): A100.
    Ampere,
    /// NVIDIA Hopper (SM90): H100, with TMA and warp-group MMA.
    Hopper,
}

/// A description of a GPU architecture: compute and memory throughput,
/// shared-memory organisation and feature flags.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuArch {
    /// Human-readable name (e.g. "NVIDIA A100 PCIe 80GB").
    pub name: String,
    /// Architecture generation.
    pub generation: GpuGeneration,
    /// Compute capability, e.g. `(8, 0)` for the A100.
    pub compute_capability: (u32, u32),
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Core clock in GHz (locked at 1.41 GHz in the paper's evaluation).
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbs: f64,
    /// Peak L2 bandwidth in GB/s.
    pub l2_bandwidth_gbs: f64,
    /// Shared-memory bandwidth per SM in bytes per cycle.
    pub smem_bytes_per_cycle_per_sm: f64,
    /// Number of shared-memory banks.
    pub smem_banks: usize,
    /// Width of one shared-memory bank in bytes.
    pub smem_bank_bytes: usize,
    /// Maximum shared memory per thread block in bytes.
    pub max_smem_per_block: usize,
    /// 32-bit registers per thread (maximum).
    pub max_registers_per_thread: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Maximum threads per thread block.
    pub max_threads_per_block: usize,
    /// Peak FP16 Tensor Core throughput in TFLOP/s (dense).
    pub fp16_tensor_tflops: f64,
    /// Peak FP8 Tensor Core throughput in TFLOP/s (dense, 0 if unsupported).
    pub fp8_tensor_tflops: f64,
    /// Peak FP32 SIMT throughput in TFLOP/s.
    pub fp32_simt_tflops: f64,
    /// Whether the Tensor Memory Accelerator (TMA) is available.
    pub has_tma: bool,
    /// Whether warp-group MMA (`wgmma`) and warp specialization are
    /// first-class (Hopper).
    pub has_wgmma: bool,
    /// Kernel launch overhead in microseconds (dominates Marlin-old's MoE).
    pub kernel_launch_overhead_us: f64,
    /// Global memory access latency (DRAM miss) in cycles.
    pub dram_latency_cycles: f64,
    /// L2 hit latency in cycles.
    pub l2_latency_cycles: f64,
    /// Shared memory access latency in cycles.
    pub smem_latency_cycles: f64,
}

impl GpuArch {
    /// The NVIDIA A100 PCIe 80 GB used in the paper's evaluation.
    pub fn a100() -> Self {
        GpuArch {
            name: "NVIDIA A100 PCIe 80GB".to_string(),
            generation: GpuGeneration::Ampere,
            compute_capability: (8, 0),
            num_sms: 108,
            clock_ghz: 1.41,
            dram_bandwidth_gbs: 1935.0,
            l2_bandwidth_gbs: 4000.0,
            smem_bytes_per_cycle_per_sm: 128.0,
            smem_banks: 32,
            smem_bank_bytes: 4,
            max_smem_per_block: 163 * 1024,
            max_registers_per_thread: 255,
            warp_size: 32,
            max_threads_per_block: 1024,
            fp16_tensor_tflops: 312.0,
            fp8_tensor_tflops: 0.0,
            fp32_simt_tflops: 19.5,
            has_tma: false,
            has_wgmma: false,
            kernel_launch_overhead_us: 4.0,
            dram_latency_cycles: 470.0,
            l2_latency_cycles: 200.0,
            smem_latency_cycles: 29.0,
        }
    }

    /// The NVIDIA H100 PCIe 80 GB used in the paper's evaluation.
    pub fn h100() -> Self {
        GpuArch {
            name: "NVIDIA H100 PCIe 80GB".to_string(),
            generation: GpuGeneration::Hopper,
            compute_capability: (9, 0),
            num_sms: 114,
            clock_ghz: 1.41,
            dram_bandwidth_gbs: 2000.0,
            l2_bandwidth_gbs: 5500.0,
            smem_bytes_per_cycle_per_sm: 128.0,
            smem_banks: 32,
            smem_bank_bytes: 4,
            max_smem_per_block: 227 * 1024,
            max_registers_per_thread: 255,
            warp_size: 32,
            max_threads_per_block: 1024,
            fp16_tensor_tflops: 756.0,
            fp8_tensor_tflops: 1513.0,
            fp32_simt_tflops: 51.0,
            has_tma: true,
            has_wgmma: true,
            kernel_launch_overhead_us: 3.5,
            dram_latency_cycles: 560.0,
            l2_latency_cycles: 230.0,
            smem_latency_cycles: 29.0,
        }
    }

    /// Looks up an architecture by a short name (`"a100"`, `"h100"`).
    pub fn by_name(name: &str) -> Option<GpuArch> {
        match name.to_ascii_lowercase().as_str() {
            "a100" | "sm80" | "ampere" => Some(GpuArch::a100()),
            "h100" | "sm90" | "hopper" => Some(GpuArch::h100()),
            _ => None,
        }
    }

    /// Whether instructions requiring the given minimum compute capability
    /// are available on this architecture.
    pub fn supports_cc(&self, min_cc: (u32, u32)) -> bool {
        self.compute_capability >= min_cc
    }

    /// Cycles elapsed in the given number of nanoseconds at this clock.
    pub fn ns_to_cycles(&self, ns: f64) -> f64 {
        ns * self.clock_ghz
    }

    /// Nanoseconds elapsed in the given number of cycles at this clock.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.clock_ghz
    }

    /// Cycles needed to stream `bytes` from DRAM across the whole device.
    pub fn dram_cycles_for_bytes(&self, bytes: f64) -> f64 {
        let ns = bytes / self.dram_bandwidth_gbs;
        self.ns_to_cycles(ns)
    }

    /// Peak Tensor Core throughput in FLOP per cycle per SM for a multiply
    /// data type.
    pub fn tensor_flops_per_cycle_per_sm(&self, dtype: DType) -> f64 {
        let tflops = match dtype {
            DType::F16 | DType::BF16 => self.fp16_tensor_tflops,
            DType::F8E4M3 | DType::F8E5M2 => {
                if self.fp8_tensor_tflops > 0.0 {
                    self.fp8_tensor_tflops
                } else {
                    self.fp16_tensor_tflops
                }
            }
            DType::I8 | DType::U8 | DType::I4 | DType::U4 => self.fp16_tensor_tflops * 2.0,
            _ => self.fp32_simt_tflops,
        };
        tflops * 1e12 / (self.num_sms as f64 * self.clock_ghz * 1e9)
    }

    /// The ideal (roofline) latency in microseconds of a kernel that must
    /// move `bytes` and perform `flops` floating point operations with the
    /// given multiply data type, assuming perfect overlap.
    pub fn roofline_latency_us(&self, bytes: f64, flops: f64, dtype: DType) -> f64 {
        let mem_us = bytes / self.dram_bandwidth_gbs * 1e-3;
        let tflops = match dtype {
            DType::F16 | DType::BF16 => self.fp16_tensor_tflops,
            DType::F8E4M3 | DType::F8E5M2 if self.fp8_tensor_tflops > 0.0 => self.fp8_tensor_tflops,
            DType::F32 | DType::F64 => self.fp32_simt_tflops,
            _ => self.fp16_tensor_tflops,
        };
        let compute_us = flops / (tflops * 1e12) * 1e6;
        mem_us.max(compute_us)
    }
}

impl fmt::Display for GpuArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (sm_{}{})",
            self.name, self.compute_capability.0, self.compute_capability.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architectures_have_sane_specs() {
        for arch in [GpuArch::a100(), GpuArch::h100()] {
            assert!(arch.num_sms > 50);
            assert!(arch.dram_bandwidth_gbs > 1000.0);
            assert_eq!(arch.warp_size, 32);
            assert_eq!(arch.smem_banks, 32);
            assert!((arch.clock_ghz - 1.41).abs() < 1e-9);
        }
    }

    #[test]
    fn h100_is_newer_and_faster() {
        let a100 = GpuArch::a100();
        let h100 = GpuArch::h100();
        assert!(h100.compute_capability > a100.compute_capability);
        assert!(h100.fp16_tensor_tflops > a100.fp16_tensor_tflops);
        assert!(h100.has_tma && !a100.has_tma);
        assert!(h100.has_wgmma && !a100.has_wgmma);
        assert!(h100.supports_cc((8, 0)));
        assert!(!a100.supports_cc((9, 0)));
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            GpuArch::by_name("A100").unwrap().generation,
            GpuGeneration::Ampere
        );
        assert_eq!(
            GpuArch::by_name("hopper").unwrap().generation,
            GpuGeneration::Hopper
        );
        assert!(GpuArch::by_name("mi300").is_none());
    }

    #[test]
    fn cycle_conversions_round_trip() {
        let arch = GpuArch::a100();
        let cycles = arch.ns_to_cycles(100.0);
        assert!((arch.cycles_to_ns(cycles) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn roofline_switches_between_memory_and_compute_bound() {
        let arch = GpuArch::h100();
        // A tiny GEMM is memory bound; a large square GEMM is compute bound.
        let small = arch.roofline_latency_us(1e6, 1e6, DType::F16);
        assert!((small - 1e6 / arch.dram_bandwidth_gbs * 1e-3).abs() < 1e-9);
        let big_flops = 2.0 * 8192.0f64.powi(3);
        let big_bytes = 3.0 * 8192.0 * 8192.0 * 2.0;
        let big = arch.roofline_latency_us(big_bytes, big_flops, DType::F16);
        assert!(big > big_bytes / arch.dram_bandwidth_gbs * 1e-3);
    }

    #[test]
    fn tensor_core_throughput_per_sm() {
        let arch = GpuArch::a100();
        let per_sm = arch.tensor_flops_per_cycle_per_sm(DType::F16);
        // 312 TFLOPs over 108 SMs at 1.41 GHz is roughly 2048 FLOP/cycle/SM.
        assert!(per_sm > 1500.0 && per_sm < 2500.0);
    }
}
