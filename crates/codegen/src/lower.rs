//! Lowering a (program, candidate) pair to an explicit kernel representation.

use hexcute_arch::MemSpace;
use hexcute_ir::{ElementwiseOp, OpId, OpKind, Program, ReduceOp, TensorId};
use hexcute_layout::SwizzledLayout;
use hexcute_synthesis::Candidate;

/// A shared-memory allocation made by the lowered kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct SmemAlloc {
    /// The tensor occupying this allocation.
    pub tensor: TensorId,
    /// Byte offset of the allocation within dynamic shared memory.
    pub offset_bytes: usize,
    /// Size of the allocation in bytes.
    pub size_bytes: usize,
    /// The synthesized (possibly swizzled) layout of the buffer.
    pub layout: SwizzledLayout,
}

/// The scalar flavour of a lowered SIMT operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimtKind {
    /// Data-type conversion.
    Cast,
    /// Elementwise arithmetic.
    Elementwise(ElementwiseOp),
    /// Reduction along a tile dimension.
    Reduce {
        /// The reduced dimension.
        dim: usize,
        /// The reduction operator.
        op: ReduceOp,
    },
    /// Constant fill.
    Fill(f64),
    /// Register redistribution through shared memory.
    Rearrange,
    /// Grouped weight dequantization `(src - zero) * scale` within registers.
    Dequant {
        /// Elements along dimension 1 sharing one scale/zero column.
        group_size: usize,
    },
}

/// One instruction of the lowered kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum LoweredOp {
    /// A data movement implemented by a collective copy instruction.
    Copy {
        /// The originating tile-level operation.
        op: OpId,
        /// Source tensor.
        src: TensorId,
        /// Destination tensor.
        dst: TensorId,
        /// Mnemonic of the selected instruction.
        instruction: String,
        /// Number of collective invocations.
        invocations: usize,
        /// Bytes moved per thread per invocation.
        bytes_per_thread: usize,
        /// Whether the op sits in the main loop.
        in_loop: bool,
    },
    /// A matrix-multiply-accumulate implemented on Tensor Cores.
    Mma {
        /// The originating tile-level operation.
        op: OpId,
        /// A operand.
        a: TensorId,
        /// B operand.
        b: TensorId,
        /// Accumulator.
        c: TensorId,
        /// Mnemonic of the selected instruction.
        instruction: String,
        /// Invocations per warp (or warp group).
        invocations: usize,
        /// Whether the op sits in the main loop.
        in_loop: bool,
    },
    /// A per-thread SIMT operation over register values.
    Simt {
        /// The originating tile-level operation.
        op: OpId,
        /// The flavour.
        kind: SimtKind,
        /// Input tensors.
        inputs: Vec<TensorId>,
        /// Output tensor.
        output: TensorId,
        /// Values processed per thread.
        width: usize,
        /// Whether the op sits in the main loop.
        in_loop: bool,
    },
    /// A block-wide barrier (`__syncthreads()`).
    Sync,
}

/// A lowered kernel: launch configuration, shared-memory plan and the
/// per-block instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredKernel {
    /// Kernel name.
    pub name: String,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Blocks launched for the modelled problem.
    pub grid_blocks: usize,
    /// Main loop trip count.
    pub main_loop_trip_count: usize,
    /// Software pipeline depth.
    pub pipeline_stages: usize,
    /// Whether the kernel is warp specialized.
    pub warp_specialized: bool,
    /// Shared-memory allocations.
    pub smem_allocs: Vec<SmemAlloc>,
    /// Total dynamic shared memory in bytes.
    pub smem_bytes: usize,
    /// Estimated 32-bit registers per thread used by register tensors.
    pub registers_per_thread: usize,
    /// The per-block instruction stream.
    pub body: Vec<LoweredOp>,
}

impl LoweredKernel {
    /// The shared-memory allocation of a tensor, if any.
    pub fn smem_alloc(&self, tensor: TensorId) -> Option<&SmemAlloc> {
        self.smem_allocs.iter().find(|a| a.tensor == tensor)
    }

    /// Renders the per-block instruction stream as stable text, one line per
    /// [`LoweredOp`], with tensors referred to by name. This is the
    /// serialization the persistent kernel-artifact cache stores: the lines
    /// are a pure function of the lowered kernel, so two bit-identical
    /// compilations render identical lines.
    pub fn instruction_lines(&self, program: &Program) -> Vec<String> {
        let name = |t: TensorId| program.tensor(t).name.as_str();
        self.body
            .iter()
            .map(|op| match op {
                LoweredOp::Copy {
                    src,
                    dst,
                    instruction,
                    invocations,
                    bytes_per_thread,
                    in_loop,
                    ..
                } => format!(
                    "copy {} -> {} via {instruction} x{invocations} \
                     ({bytes_per_thread} B/thread){}",
                    name(*src),
                    name(*dst),
                    if *in_loop { " [loop]" } else { "" },
                ),
                LoweredOp::Mma {
                    a,
                    b,
                    c,
                    instruction,
                    invocations,
                    in_loop,
                    ..
                } => format!(
                    "mma {} += {} * {} via {instruction} x{invocations}{}",
                    name(*c),
                    name(*a),
                    name(*b),
                    if *in_loop { " [loop]" } else { "" },
                ),
                LoweredOp::Simt {
                    kind,
                    inputs,
                    output,
                    width,
                    in_loop,
                    ..
                } => format!(
                    "simt {kind:?} [{}] -> {} width {width}{}",
                    inputs
                        .iter()
                        .map(|t| name(*t))
                        .collect::<Vec<_>>()
                        .join(", "),
                    name(*output),
                    if *in_loop { " [loop]" } else { "" },
                ),
                LoweredOp::Sync => "sync".to_string(),
            })
            .collect()
    }

    /// Number of barriers in the instruction stream.
    pub fn sync_count(&self) -> usize {
        self.body
            .iter()
            .filter(|op| matches!(op, LoweredOp::Sync))
            .count()
    }
}

/// Lowers a program and a synthesized candidate to a [`LoweredKernel`].
///
/// Barriers are inserted after any run of shared-memory writes that is
/// followed by a shared-memory read (and vice versa), which is the minimal
/// synchronization the tile-level semantics require.
pub fn lower(program: &Program, candidate: &Candidate) -> LoweredKernel {
    // Shared-memory plan.
    let mut smem_allocs = Vec::new();
    let mut offset = 0usize;
    for &tensor in &program.shared_tensors() {
        let decl = program.tensor(tensor);
        let layout = candidate
            .smem_layouts
            .get(&tensor)
            .cloned()
            .unwrap_or_else(|| {
                SwizzledLayout::unswizzled(hexcute_layout::Layout::row_major(&decl.tile_shape_2d()))
            });
        let size_bytes = decl
            .dtype
            .bytes_for(layout.layout().cosize().next_power_of_two());
        smem_allocs.push(SmemAlloc {
            tensor,
            offset_bytes: offset,
            size_bytes,
            layout,
        });
        // 128-byte align each buffer.
        offset += size_bytes.div_ceil(128) * 128;
    }
    let smem_bytes = offset;

    // Register pressure estimate.
    let registers_per_thread: usize = program
        .tensors()
        .iter()
        .filter(|t| t.space == MemSpace::Register)
        .map(|t| {
            let values = candidate
                .tv_layouts
                .get(&t.id)
                .map(|l| l.values_per_thread())
                .unwrap_or_else(|| t.tile_elements_2d().div_ceil(program.threads_per_block));
            (values * t.dtype.bits()).div_ceil(32)
        })
        .sum();

    // Instruction stream with barrier insertion.
    let mut body = Vec::new();
    let mut pending_smem_write = false;
    let mut pending_smem_read = false;
    for op in program.ops() {
        let touches_smem_read;
        let touches_smem_write;
        match &op.kind {
            OpKind::Copy { src, dst } => {
                touches_smem_read = program.tensor(*src).space == MemSpace::Shared;
                touches_smem_write = program.tensor(*dst).space == MemSpace::Shared;
            }
            OpKind::Gemm { a, b, .. } => {
                touches_smem_read = program.tensor(*a).space == MemSpace::Shared
                    || program.tensor(*b).space == MemSpace::Shared;
                touches_smem_write = false;
            }
            _ => {
                touches_smem_read = false;
                touches_smem_write = false;
            }
        }
        // A read after pending writes (or a write after pending reads) needs
        // a barrier.
        if (touches_smem_read && pending_smem_write) || (touches_smem_write && pending_smem_read) {
            body.push(LoweredOp::Sync);
            pending_smem_write = false;
            pending_smem_read = false;
        }
        if touches_smem_write {
            pending_smem_write = true;
        }
        if touches_smem_read {
            pending_smem_read = true;
        }

        match &op.kind {
            OpKind::Copy { src, dst } => {
                let choice = candidate.copy_choices.get(&op.id);
                let dtype = program.tensor(*src).dtype;
                body.push(LoweredOp::Copy {
                    op: op.id,
                    src: *src,
                    dst: *dst,
                    instruction: choice
                        .map(|c| c.atom.name.clone())
                        .unwrap_or_else(|| "ld/st".to_string()),
                    invocations: choice.map(|c| c.invocations).unwrap_or(1),
                    bytes_per_thread: choice
                        .map(|c| dtype.bytes_for(c.elements_per_thread))
                        .unwrap_or_else(|| dtype.bytes_for(1)),
                    in_loop: op.in_main_loop,
                });
            }
            OpKind::Gemm { c, a, b } => {
                let choice = candidate.mma_choices.get(&op.id);
                body.push(LoweredOp::Mma {
                    op: op.id,
                    a: *a,
                    b: *b,
                    c: *c,
                    instruction: choice
                        .map(|m| m.atom.name.clone())
                        .unwrap_or_else(|| "mma".to_string()),
                    invocations: choice.map(|m| m.invocations).unwrap_or(1),
                    in_loop: op.in_main_loop,
                });
            }
            OpKind::Cast { src, dst } => body.push(simt(
                program,
                candidate,
                op.id,
                SimtKind::Cast,
                vec![*src],
                *dst,
                op.in_main_loop,
            )),
            OpKind::Rearrange { src, dst } => {
                body.push(LoweredOp::Sync);
                body.push(simt(
                    program,
                    candidate,
                    op.id,
                    SimtKind::Rearrange,
                    vec![*src],
                    *dst,
                    op.in_main_loop,
                ));
                body.push(LoweredOp::Sync);
            }
            OpKind::Elementwise {
                inputs,
                output,
                op: eop,
            } => body.push(simt(
                program,
                candidate,
                op.id,
                SimtKind::Elementwise(*eop),
                inputs.clone(),
                *output,
                op.in_main_loop,
            )),
            OpKind::Reduce {
                src,
                dst,
                dim,
                op: rop,
            } => body.push(simt(
                program,
                candidate,
                op.id,
                SimtKind::Reduce {
                    dim: *dim,
                    op: *rop,
                },
                vec![*src],
                *dst,
                op.in_main_loop,
            )),
            OpKind::Fill { dst, value } => body.push(simt(
                program,
                candidate,
                op.id,
                SimtKind::Fill(*value),
                vec![],
                *dst,
                op.in_main_loop,
            )),
            OpKind::Dequant {
                src,
                scale,
                zero,
                dst,
                group_size,
            } => {
                let mut inputs = vec![*src, *scale];
                inputs.extend(zero.iter().copied());
                body.push(simt(
                    program,
                    candidate,
                    op.id,
                    SimtKind::Dequant {
                        group_size: *group_size,
                    },
                    inputs,
                    *dst,
                    op.in_main_loop,
                ));
            }
        }
    }

    LoweredKernel {
        name: program.name.clone(),
        threads_per_block: program.threads_per_block,
        grid_blocks: program.grid_blocks,
        main_loop_trip_count: program.main_loop_trip_count,
        pipeline_stages: program.schedule.pipeline_stages,
        warp_specialized: program.schedule.warp_specialized,
        smem_allocs,
        smem_bytes,
        registers_per_thread,
        body,
    }
}

fn simt(
    program: &Program,
    candidate: &Candidate,
    op: OpId,
    kind: SimtKind,
    inputs: Vec<TensorId>,
    output: TensorId,
    in_loop: bool,
) -> LoweredOp {
    let width = candidate.simt_widths.get(&op).copied().unwrap_or_else(|| {
        program
            .tensor(output)
            .tile_elements_2d()
            .div_ceil(program.threads_per_block)
    });
    LoweredOp::Simt {
        op,
        kind,
        inputs,
        output,
        width,
        in_loop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::{DType, GpuArch};
    use hexcute_ir::KernelBuilder;
    use hexcute_layout::Layout;
    use hexcute_synthesis::{SynthesisOptions, Synthesizer};

    fn smem_gemm() -> (Program, Candidate) {
        let (bm, bn, bk) = (64, 64, 32);
        let mut kb = KernelBuilder::new("lower_gemm", 128);
        let ga = kb.global_view(
            "a",
            DType::F16,
            Layout::from_flat(&[bm, bk], &[bk, 1]),
            &[bm, bk],
        );
        let gb = kb.global_view(
            "b",
            DType::F16,
            Layout::from_flat(&[bn, bk], &[bk, 1]),
            &[bn, bk],
        );
        let gc = kb.global_view("c", DType::F16, Layout::row_major(&[bm, bn]), &[bm, bn]);
        let sa = kb.shared_tensor("sa", DType::F16, &[bm, bk]);
        let sb = kb.shared_tensor("sb", DType::F16, &[bn, bk]);
        let ra = kb.register_tensor("ra", DType::F16, &[bm, bk]);
        let rb = kb.register_tensor("rb", DType::F16, &[bn, bk]);
        let rc = kb.register_tensor("rc", DType::F32, &[bm, bn]);
        kb.fill(rc, 0.0);
        kb.copy(ga, sa);
        kb.copy(gb, sb);
        kb.copy(sa, ra);
        kb.copy(sb, rb);
        kb.gemm(rc, ra, rb);
        let rc16 = kb.cast(rc, DType::F16);
        kb.copy(rc16, gc);
        let program = kb.build().unwrap();
        let arch = GpuArch::a100();
        let candidate = Synthesizer::new(&program, &arch, SynthesisOptions::default())
            .synthesize_preferred()
            .unwrap();
        (program, candidate)
    }

    #[test]
    fn lowering_allocates_shared_memory_and_inserts_barriers() {
        let (program, candidate) = smem_gemm();
        let kernel = lower(&program, &candidate);
        assert_eq!(kernel.smem_allocs.len(), 2);
        // Both buffers are 64x32 fp16 = 4 KiB, 128-byte aligned.
        assert!(kernel.smem_bytes >= 2 * 64 * 32 * 2);
        assert_eq!(kernel.smem_allocs[0].offset_bytes, 0);
        assert!(kernel.smem_allocs[1].offset_bytes >= 64 * 32 * 2);
        // A barrier separates the global→shared writes from the shared→register reads.
        assert!(kernel.sync_count() >= 1);
        // The instruction stream contains the gemm and all copies.
        assert_eq!(
            kernel
                .body
                .iter()
                .filter(|o| matches!(o, LoweredOp::Mma { .. }))
                .count(),
            1
        );
        assert_eq!(
            kernel
                .body
                .iter()
                .filter(|o| matches!(o, LoweredOp::Copy { .. }))
                .count(),
            5
        );
        assert!(kernel.registers_per_thread > 0);
    }

    #[test]
    fn lowering_records_instruction_names() {
        let (program, candidate) = smem_gemm();
        let kernel = lower(&program, &candidate);
        let names: Vec<&str> = kernel
            .body
            .iter()
            .filter_map(|o| match o {
                LoweredOp::Copy { instruction, .. } => Some(instruction.as_str()),
                LoweredOp::Mma { instruction, .. } => Some(instruction.as_str()),
                _ => None,
            })
            .collect();
        assert!(names.iter().any(|n| n.contains("cp.async")));
        assert!(names.iter().any(|n| n.contains("ldmatrix")));
        assert!(names.iter().any(|n| n.contains("mma")));
    }
}
