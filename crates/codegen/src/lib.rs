//! # hexcute-codegen
//!
//! Lowering of tile-level programs with synthesized layouts into a
//! per-thread-block kernel representation, plus emission of readable
//! CUDA-like source text.
//!
//! In the paper, Hexcute lowers its tile-level primitives into Hidet IR and
//! from there to CUDA C. In this reproduction the lowering target is a
//! portable [`LoweredKernel`]: an explicit instruction stream (with
//! synchronization barriers and shared-memory allocations) that the
//! functional and performance simulators in `hexcute-sim` execute, and that
//! [`emit_cuda_like`] renders as pseudo-CUDA for inspection.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod emit;
mod lower;

pub use emit::emit_cuda_like;
pub use lower::{lower, LoweredKernel, LoweredOp, SimtKind, SmemAlloc};
