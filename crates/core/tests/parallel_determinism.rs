//! Determinism of the parallel prefix-tree search (the PR 3 tentpole): for
//! every worker count the parallel subtree walk — and the pooled parallel
//! candidate scoring on top of it — must produce the *identical* ordered
//! candidate list with bit-identical cost-model and performance-simulator
//! scores as the serial incremental walk, across the paper's GEMM, attention
//! and mixed-type MoE kernels.
//!
//! `SynthesisOptions::parallel_workers` stands in for `HEXCUTE_THREADS`
//! here (mutating the environment of a threaded test process is unsafe);
//! the CI `determinism-mt` leg additionally runs the whole suite under
//! `HEXCUTE_THREADS=4` so the env-driven path gets real coverage too.

use hexcute_core::{Compiler, CompilerOptions};
use hexcute_costmodel::CostBreakdown;
use hexcute_ir::Program;
use hexcute_kernels::attention::{mha_forward, AttentionConfig, AttentionShape};
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute_sim::PerfReport;
use hexcute_synthesis::{Candidate, SynthesisOptions};
use proptest::prelude::*;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn compile_with_workers(
    program: &Program,
    arch: &hexcute_arch::GpuArch,
    workers: usize,
    depth: Option<usize>,
) -> Vec<(Candidate, CostBreakdown, PerfReport)> {
    let options = CompilerOptions {
        synthesis: SynthesisOptions {
            parallel_workers: Some(workers),
            parallel_subtree_depth: depth,
            ..SynthesisOptions::default()
        },
        use_cost_model: true,
    };
    Compiler::with_options(arch.clone(), options)
        .compile_candidates(program)
        .unwrap()
}

/// Asserts that every worker count in the sweep reproduces the serial
/// incremental walk bit for bit: candidates, cost cycles, simulated latency.
fn assert_thread_count_invariant(program: &Program) {
    for arch in [hexcute_arch::GpuArch::a100(), hexcute_arch::GpuArch::h100()] {
        let serial = compile_with_workers(program, &arch, 1, Some(0));
        for workers in WORKER_SWEEP {
            let parallel = compile_with_workers(program, &arch, workers, None);
            assert_eq!(
                serial.len(),
                parallel.len(),
                "candidate counts diverged for {} on {} at {workers} workers",
                program.name,
                arch.name
            );
            for (i, ((sc, scost, sperf), (pc, pcost, pperf))) in
                serial.iter().zip(parallel.iter()).enumerate()
            {
                assert_eq!(
                    sc, pc,
                    "candidate {i} of {} diverged at {workers} workers",
                    program.name
                );
                assert_eq!(
                    scost.total_cycles.to_bits(),
                    pcost.total_cycles.to_bits(),
                    "cost of candidate {i} of {} diverged at {workers} workers",
                    program.name
                );
                assert_eq!(scost, pcost);
                assert_eq!(
                    sperf.latency_us.to_bits(),
                    pperf.latency_us.to_bits(),
                    "latency of candidate {i} of {} diverged at {workers} workers",
                    program.name
                );
                assert_eq!(sperf, pperf);
            }
        }
    }
}

#[test]
fn gemm_is_thread_count_invariant() {
    let program = fp16_gemm(GemmShape::new(512, 512, 256), GemmConfig::default()).unwrap();
    assert_thread_count_invariant(&program);
}

#[test]
fn attention_is_thread_count_invariant() {
    let program = mha_forward(
        AttentionShape::forward(2, 8, 512, 128),
        AttentionConfig::default(),
    )
    .unwrap();
    assert_thread_count_invariant(&program);
}

#[test]
fn moe_is_thread_count_invariant() {
    let program = mixed_type_moe(
        MoeShape::deepseek_r1(16),
        MoeConfig::default(),
        MoeDataflow::Efficient,
    )
    .unwrap();
    assert_thread_count_invariant(&program);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Randomized sweep: shapes, pipeline depths and subtree depths vary,
    /// the thread-count invariant must hold throughout.
    #[test]
    fn random_kernels_are_thread_count_invariant(
        m_tiles in 1usize..=2,
        stages in 1usize..=3,
        depth in (0usize..=3).prop_map(|d| match d {
            0 => None,
            1 => Some(1),
            2 => Some(2),
            _ => Some(usize::MAX),
        }),
        workers in (0usize..=2).prop_map(|i| WORKER_SWEEP[i + 1]),
    ) {
        let config = GemmConfig { stages, ..GemmConfig::default() };
        let shape = GemmShape::new(
            m_tiles * config.block_m,
            config.block_n,
            config.block_k * 2,
        );
        let program = fp16_gemm(shape, config).unwrap();
        let arch = hexcute_arch::GpuArch::a100();
        let serial = compile_with_workers(&program, &arch, 1, Some(0));
        let parallel = compile_with_workers(&program, &arch, workers, depth);
        prop_assert_eq!(serial.len(), parallel.len());
        for ((sc, scost, sperf), (pc, pcost, pperf)) in serial.iter().zip(parallel.iter()) {
            prop_assert_eq!(sc, pc);
            prop_assert_eq!(scost.total_cycles.to_bits(), pcost.total_cycles.to_bits());
            prop_assert_eq!(sperf.latency_us.to_bits(), pperf.latency_us.to_bits());
        }
    }
}
