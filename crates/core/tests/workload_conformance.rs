//! Workload-conformance suite (PR 5): a randomized differential harness over
//! the *whole* workload zoo — GEMM (FP16/BF16), warp-specialized GEMM, FP8
//! GEMM, attention, mixed-type MoE, Mamba scan, W4A16 quantized GEMM and
//! grouped GEMM — asserting that the ordered candidate list and every
//! cost-model / performance-simulator score is **bit-identical** across the
//! full execution-toggle matrix:
//!
//! * flat-layout fast path on/off (`HEXCUTE_DISABLE_FAST_PATH` /
//!   `hexcute_layout::set_fast_path`),
//! * incremental prefix-shared search on/off
//!   (`HEXCUTE_DISABLE_INCREMENTAL` / `SynthesisOptions::incremental`),
//! * worker counts 1 and 4 (`HEXCUTE_THREADS` /
//!   `SynthesisOptions::parallel_workers`),
//! * lossy direct-mapped memo tier on/off (`HEXCUTE_DISABLE_LOSSY_MEMO` /
//!   `hexcute_parallel::lossy::set_lossy_memo`), crossed with the fast-path
//!   and worker-count axes,
//! * deterministic node budgets (`HEXCUTE_SYNTH_BUDGET` /
//!   `SynthesisOptions::node_budget`): a budget covering the full space is
//!   bit-identical to the exhaustive search, and a small budget truncates
//!   to the same prefix at every worker count and toggle,
//! * artifact cache cold vs. warm (memory and disk hits).
//!
//! Every new workload family plugs into this harness by construction: adding
//! a variant to [`Workload`] covers it across all toggles. The CI
//! `determinism-mt` (`HEXCUTE_THREADS=4`) and `reference-paths`
//! (`HEXCUTE_DISABLE_FAST_PATH=1 HEXCUTE_DISABLE_INCREMENTAL=1
//! HEXCUTE_THREADS=1`) legs re-run this file under the env-driven toggles,
//! so the environment-variable spellings get real coverage too (mutating the
//! environment of a threaded test process is unsafe, so the in-process sweep
//! uses the options instead).

use std::sync::Mutex;

use hexcute_arch::{DType, GpuArch};
use hexcute_core::{Compiler, CompilerOptions, KernelCache, KernelCacheConfig};
use hexcute_costmodel::CostBreakdown;
use hexcute_ir::Program;
use hexcute_kernels::attention::{mha_forward, AttentionConfig, AttentionShape};
use hexcute_kernels::gemm::{
    bf16_gemm, fp16_gemm, fp8_blockwise_gemm, warp_specialized_gemm, GemmConfig, GemmShape,
};
use hexcute_kernels::grouped_gemm::{grouped_gemm, GroupedGemmConfig, GroupedGemmShape};
use hexcute_kernels::mamba::{selective_scan, ScanConfig, ScanShape};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute_kernels::quant_gemm::{w4a16_gemm, QuantGemmConfig, QuantGemmShape};
use hexcute_sim::PerfReport;
use hexcute_synthesis::{Candidate, SynthesisOptions, Synthesizer};
use proptest::prelude::*;

/// One sampled workload instance: a family plus its shape/dtype parameters.
#[derive(Debug, Clone, PartialEq)]
enum Workload {
    /// Plain GEMM at the given element type (F16 or BF16).
    Gemm {
        dtype: DType,
        m_tiles: usize,
        k_tiles: usize,
    },
    /// Hopper warp-specialized FP16 GEMM.
    WarpGemm,
    /// Blockwise-scaled FP8 GEMM (Hopper only).
    Fp8Gemm,
    /// Fused attention forward.
    Attention {
        heads: usize,
        seq_tiles: usize,
        head_dim: usize,
    },
    /// Mixed-type FP16×INT4 MoE.
    Moe { tokens: usize, efficient: bool },
    /// Mamba selective scan.
    Mamba { batch: usize },
    /// W4A16 quantized GEMM with grouped dequantization.
    QuantGemm {
        group_size: usize,
        n: usize,
        k: usize,
    },
    /// Fused grouped/batched GEMM over a per-expert problem list.
    GroupedGemm { tokens: Vec<usize> },
}

impl Workload {
    /// Whether the workload is buildable for the architecture.
    fn supports(&self, arch: &GpuArch) -> bool {
        match self {
            Workload::WarpGemm | Workload::Fp8Gemm => arch.has_wgmma,
            _ => true,
        }
    }

    fn build(&self) -> Program {
        match self {
            Workload::Gemm {
                dtype,
                m_tiles,
                k_tiles,
            } => {
                let config = GemmConfig::default();
                let shape = GemmShape::new(
                    m_tiles * config.block_m,
                    config.block_n,
                    k_tiles * config.block_k,
                );
                // Both dtypes go through the one shared GEMM builder in the
                // kernels crate, so the conformance copy cannot drift.
                match dtype {
                    DType::F16 => fp16_gemm(shape, config).unwrap(),
                    _ => bf16_gemm(shape, config).unwrap(),
                }
            }
            Workload::WarpGemm => warp_specialized_gemm(
                GemmShape::new(512, 512, 256),
                GemmConfig::warp_specialized_hopper(),
            )
            .unwrap(),
            Workload::Fp8Gemm => {
                fp8_blockwise_gemm(GemmShape::new(512, 512, 256), GemmConfig::default()).unwrap()
            }
            Workload::Attention {
                heads,
                seq_tiles,
                head_dim,
            } => {
                let config = AttentionConfig::default();
                mha_forward(
                    AttentionShape::forward(1, *heads, seq_tiles * config.block_kv, *head_dim),
                    config,
                )
                .unwrap()
            }
            Workload::Moe { tokens, efficient } => {
                let dataflow = if *efficient {
                    MoeDataflow::Efficient
                } else {
                    MoeDataflow::TritonStyle
                };
                mixed_type_moe(
                    MoeShape::deepseek_r1(*tokens),
                    MoeConfig::default(),
                    dataflow,
                )
                .unwrap()
            }
            Workload::Mamba { batch } => {
                selective_scan(ScanShape::new(*batch, 512, 16, 256), ScanConfig::default()).unwrap()
            }
            Workload::QuantGemm { group_size, n, k } => w4a16_gemm(
                QuantGemmShape::new(16, *n, *k, *group_size),
                QuantGemmConfig::default(),
            )
            .unwrap(),
            Workload::GroupedGemm { tokens } => grouped_gemm(
                &GroupedGemmShape::from_token_counts(tokens.clone(), 256, 512),
                GroupedGemmConfig::default(),
            )
            .unwrap(),
        }
    }
}

type Scored = Vec<(Candidate, CostBreakdown, PerfReport)>;

fn compile_config(
    program: &Program,
    arch: &GpuArch,
    incremental: bool,
    workers: usize,
    depth: Option<usize>,
) -> Scored {
    compile_config_budgeted(program, arch, incremental, workers, depth, None)
}

fn compile_config_budgeted(
    program: &Program,
    arch: &GpuArch,
    incremental: bool,
    workers: usize,
    depth: Option<usize>,
    node_budget: Option<usize>,
) -> Scored {
    let options = CompilerOptions {
        synthesis: SynthesisOptions {
            incremental,
            parallel_workers: Some(workers),
            parallel_subtree_depth: depth,
            node_budget,
            ..SynthesisOptions::default()
        },
        use_cost_model: true,
    };
    Compiler::with_options(arch.clone(), options)
        .compile_candidates(program)
        .unwrap()
}

/// Runs the raw search (no scoring) under a node budget and reports whether
/// it truncated plus the candidate list in enumeration order.
fn synthesize_budgeted(
    program: &Program,
    arch: &GpuArch,
    incremental: bool,
    workers: usize,
    depth: Option<usize>,
    node_budget: Option<usize>,
) -> (bool, Vec<Candidate>) {
    let options = SynthesisOptions {
        incremental,
        parallel_workers: Some(workers),
        parallel_subtree_depth: depth,
        node_budget,
        ..SynthesisOptions::default()
    };
    let (outcome, _) = Synthesizer::new(program, arch, options)
        .synthesize_outcome(None)
        .unwrap();
    (outcome.is_truncated(), outcome.into_candidates())
}

fn assert_scored_equal(label: &str, program: &Program, reference: &Scored, other: &Scored) {
    assert_eq!(
        reference.len(),
        other.len(),
        "[{label}] candidate counts diverged for {}",
        program.name
    );
    for (i, ((rc, rcost, rperf), (oc, ocost, operf))) in
        reference.iter().zip(other.iter()).enumerate()
    {
        assert_eq!(
            rc, oc,
            "[{label}] candidate {i} of {} diverged",
            program.name
        );
        assert_eq!(
            rcost.total_cycles.to_bits(),
            ocost.total_cycles.to_bits(),
            "[{label}] cost of candidate {i} of {} diverged",
            program.name
        );
        assert_eq!(rcost, ocost);
        assert_eq!(
            rperf.latency_us.to_bits(),
            operf.latency_us.to_bits(),
            "[{label}] latency of candidate {i} of {} diverged",
            program.name
        );
        assert_eq!(rperf, operf);
    }
}

/// Runs a full compile (selection + lowering) with branch-and-bound pruning
/// forced on or off, returning the compiled kernel.
fn compile_pruned_config(
    program: &Program,
    arch: &GpuArch,
    prune: bool,
    workers: usize,
    depth: Option<usize>,
) -> hexcute_core::CompiledKernel {
    let options = CompilerOptions {
        synthesis: SynthesisOptions {
            prune,
            beam_width: None,
            parallel_workers: Some(workers),
            parallel_subtree_depth: depth,
            ..SynthesisOptions::default()
        },
        use_cost_model: true,
    };
    Compiler::with_options(arch.clone(), options)
        .compile(program)
        .unwrap()
}

/// Asserts that a pruned compile's winner, score and perf are bit-identical
/// to the exhaustive reference compile.
fn assert_winner_equal(
    label: &str,
    program: &Program,
    reference: &hexcute_core::CompiledKernel,
    pruned: &hexcute_core::CompiledKernel,
) {
    assert_eq!(
        reference.candidate, pruned.candidate,
        "[{label}] pruned winner diverged for {}",
        program.name
    );
    assert_eq!(
        reference.cost.total_cycles.to_bits(),
        pruned.cost.total_cycles.to_bits(),
        "[{label}] pruned winner score diverged for {}",
        program.name
    );
    assert_eq!(
        reference.cost, pruned.cost,
        "[{label}] pruned cost breakdown diverged for {}",
        program.name
    );
    assert_eq!(
        reference.perf.latency_us.to_bits(),
        pruned.perf.latency_us.to_bits(),
        "[{label}] pruned latency diverged for {}",
        program.name
    );
    assert_eq!(
        reference.perf, pruned.perf,
        "[{label}] pruned perf report diverged for {}",
        program.name
    );
}

/// The prune axis of the matrix: exact branch-and-bound must pick the same
/// winner — same candidate, same cost bits, same perf bits, same emitted
/// artifact — as the exhaustive ranking, across fast-path on/off × lossy
/// on/off × {1, 4} workers.
fn assert_prune_conformance(workload: &Workload, arch: &GpuArch) {
    if !workload.supports(arch) {
        return;
    }
    let program = workload.build();
    let reference = compile_pruned_config(&program, arch, false, 1, Some(0));

    // Default toggles: pruned serial and pruned parallel.
    for (label, workers, depth) in [("prune/serial", 1, Some(0)), ("prune/4-workers", 4, None)] {
        let pruned = compile_pruned_config(&program, arch, true, workers, depth);
        assert_winner_equal(label, &program, &reference, &pruned);
    }

    // Fast path × lossy memo off-cells (the on×on cells ran above). The
    // switches are process-global, so hold the lock while they are flipped.
    {
        let _guard = FASTPATH_LOCK.lock().unwrap();
        let was_fast = hexcute_layout::fast_path_enabled();
        let was_lossy = hexcute_parallel::lossy::lossy_memo_enabled();
        let mut runs = Vec::new();
        for (fast, lossy) in [(false, true), (false, false), (true, false)] {
            hexcute_layout::set_fast_path(fast);
            hexcute_parallel::lossy::set_lossy_memo(lossy);
            for (workers, depth) in [(1, Some(0)), (4, None)] {
                runs.push((
                    format!("prune/fast={fast}/lossy={lossy}/{workers}-workers"),
                    compile_pruned_config(&program, arch, true, workers, depth),
                ));
            }
        }
        hexcute_layout::set_fast_path(was_fast);
        hexcute_parallel::lossy::set_lossy_memo(was_lossy);
        for (label, pruned) in &runs {
            assert_winner_equal(label, &program, &reference, pruned);
        }
    }

    // The emitted artifact must be bit-identical too — pruning must be
    // invisible in the persistent cache (same fingerprint, same JSON).
    let pruned_artifact = Compiler::with_options(
        arch.clone(),
        CompilerOptions {
            synthesis: SynthesisOptions {
                prune: true,
                ..SynthesisOptions::default()
            },
            use_cost_model: true,
        },
    )
    .compile_artifact(&program)
    .unwrap();
    let exhaustive_artifact = Compiler::with_options(
        arch.clone(),
        CompilerOptions {
            synthesis: SynthesisOptions {
                prune: false,
                ..SynthesisOptions::default()
            },
            use_cost_model: true,
        },
    )
    .compile_artifact(&program)
    .unwrap();
    assert_eq!(
        pruned_artifact.fingerprint, exhaustive_artifact.fingerprint,
        "the prune toggle must not fragment the artifact fingerprint for {}",
        program.name
    );
    assert_eq!(
        pruned_artifact.to_json(),
        exhaustive_artifact.to_json(),
        "pruned artifact JSON diverged for {}",
        program.name
    );
}

/// Serializes the sections that flip the process-global fast-path switch so
/// parallel test threads in this binary never observe each other's toggles.
static FASTPATH_LOCK: Mutex<()> = Mutex::new(());

fn unique_temp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "hexcute-conformance-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The full toggle matrix for one (workload, arch) pair.
fn assert_conformance(workload: &Workload, arch: &GpuArch) {
    if !workload.supports(arch) {
        return;
    }
    let program = workload.build();

    // Reference: full re-evaluation, one worker, serial walk.
    let reference = compile_config(&program, arch, false, 1, Some(0));

    // Incremental, serial.
    let inc_serial = compile_config(&program, arch, true, 1, Some(0));
    assert_scored_equal("incremental/serial", &program, &reference, &inc_serial);

    // Incremental, 4 workers, auto subtree depth (the HEXCUTE_THREADS=4
    // configuration).
    let inc_parallel = compile_config(&program, arch, true, 4, None);
    assert_scored_equal("incremental/4-workers", &program, &reference, &inc_parallel);

    // Reference evaluation on 4 workers (parallel scoring path).
    let ref_parallel = compile_config(&program, arch, false, 4, None);
    assert_scored_equal("reference/4-workers", &program, &reference, &ref_parallel);

    // Node budget ≥ the full search space is a no-op: bit-identical to the
    // unbudgeted exhaustive search, at any worker count and on both the
    // incremental and reference paths (HEXCUTE_SYNTH_BUDGET axis, PR 8).
    let big_serial = compile_config_budgeted(&program, arch, true, 1, Some(0), Some(usize::MAX));
    assert_scored_equal("budget-max/serial", &program, &reference, &big_serial);
    let big_parallel = compile_config_budgeted(&program, arch, false, 4, None, Some(usize::MAX));
    assert_scored_equal(
        "budget-max/reference/4-workers",
        &program,
        &reference,
        &big_parallel,
    );

    // A small budget truncates deterministically: every (incremental ×
    // worker-count) configuration reports the same truncation flag and the
    // same `best_so_far` list — a prefix of the exhaustive enumeration.
    let exhaustive = synthesize_budgeted(&program, arch, true, 1, Some(0), None);
    let budget = Some(2usize);
    let truncated_ref = synthesize_budgeted(&program, arch, true, 1, Some(0), budget);
    for (label, other) in [
        (
            "budget-2/incremental/4-workers",
            synthesize_budgeted(&program, arch, true, 4, None, budget),
        ),
        (
            "budget-2/reference/serial",
            synthesize_budgeted(&program, arch, false, 1, Some(0), budget),
        ),
        (
            "budget-2/reference/4-workers",
            synthesize_budgeted(&program, arch, false, 4, None, budget),
        ),
    ] {
        assert_eq!(
            truncated_ref, other,
            "[{label}] budgeted outcome diverged for {}",
            program.name
        );
    }
    let (was_truncated, truncated_candidates) = truncated_ref;
    assert_eq!(
        truncated_candidates,
        exhaustive.1[..truncated_candidates.len()],
        "a truncated search must return a prefix of the exhaustive \
         enumeration for {}",
        program.name
    );
    if !was_truncated {
        // Tiny search spaces fit inside the budget; then the outcome must
        // be the complete list.
        assert_eq!(truncated_candidates.len(), exhaustive.1.len());
    }

    // Fast path off: the recursive layout algebra and the element-by-element
    // simulator (the HEXCUTE_DISABLE_FAST_PATH configuration). The switch is
    // process-global, so hold the lock while it is flipped. Crossed with the
    // lossy direct-mapped memo tier (HEXCUTE_DISABLE_LOSSY_MEMO), which must
    // be invisible to results: its tables tag-check and full-key-compare
    // before returning, so a lossy hit is always the value the sharded maps
    // would have produced. The on×on×{1,4} cells are the reference /
    // inc_parallel runs above (both switches default on); the remaining six
    // cells of the lossy × fast-path × workers cube run here.
    {
        let _guard = FASTPATH_LOCK.lock().unwrap();
        let was_fast = hexcute_layout::fast_path_enabled();
        let was_lossy = hexcute_parallel::lossy::lossy_memo_enabled();

        hexcute_layout::set_fast_path(false);
        let slow = compile_config(&program, arch, false, 1, Some(0));
        let slow_parallel = compile_config(&program, arch, true, 4, None);

        hexcute_parallel::lossy::set_lossy_memo(false);
        let slow_lossless = compile_config(&program, arch, false, 1, Some(0));
        let slow_lossless_parallel = compile_config(&program, arch, true, 4, None);

        hexcute_layout::set_fast_path(was_fast);
        let lossless = compile_config(&program, arch, false, 1, Some(0));
        let lossless_parallel = compile_config(&program, arch, true, 4, None);

        hexcute_parallel::lossy::set_lossy_memo(was_lossy);
        assert_scored_equal("fast-path-off", &program, &reference, &slow);
        assert_scored_equal(
            "fast-path-off/4-workers",
            &program,
            &reference,
            &slow_parallel,
        );
        assert_scored_equal(
            "lossy-off/fast-path-off",
            &program,
            &reference,
            &slow_lossless,
        );
        assert_scored_equal(
            "lossy-off/fast-path-off/4-workers",
            &program,
            &reference,
            &slow_lossless_parallel,
        );
        assert_scored_equal("lossy-off", &program, &reference, &lossless);
        assert_scored_equal(
            "lossy-off/4-workers",
            &program,
            &reference,
            &lossless_parallel,
        );
    }

    // Prune axis: exact branch-and-bound vs. the exhaustive ranking.
    assert_prune_conformance(workload, arch);

    // Cache cold vs. warm: a memory hit and a disk hit (fresh cache over the
    // same directory) must both return the cold artifact bit for bit.
    let dir = unique_temp_dir("matrix");
    let cache = KernelCache::new(KernelCacheConfig {
        dir: Some(dir.clone()),
        ..KernelCacheConfig::default()
    });
    let compiler = Compiler::new(arch.clone());
    let (cold, cold_src) = compiler.compile_with_cache(&program, &cache).unwrap();
    assert_eq!(cold_src, hexcute_core::ArtifactSource::Synthesized);
    let (mem, mem_src) = compiler.compile_with_cache(&program, &cache).unwrap();
    assert_eq!(mem_src, hexcute_core::ArtifactSource::Memory);
    assert_eq!(*mem, *cold, "memory hit differs for {}", program.name);
    let fresh = KernelCache::new(KernelCacheConfig {
        dir: Some(dir.clone()),
        ..KernelCacheConfig::default()
    });
    let (disk, disk_src) = compiler.compile_with_cache(&program, &fresh).unwrap();
    assert_eq!(disk_src, hexcute_core::ArtifactSource::Disk);
    assert_eq!(*disk, *cold, "disk hit differs for {}", program.name);
    std::fs::remove_dir_all(&dir).ok();
}

/// Every family once (one representative instance each), on its natural
/// architecture — the deterministic anchor of the suite.
#[test]
fn every_family_conforms_across_the_toggle_matrix() {
    let a100 = GpuArch::a100();
    let h100 = GpuArch::h100();
    let cases: Vec<(Workload, &GpuArch)> = vec![
        (
            Workload::Gemm {
                dtype: DType::F16,
                m_tiles: 1,
                k_tiles: 2,
            },
            &a100,
        ),
        (
            Workload::Gemm {
                dtype: DType::BF16,
                m_tiles: 1,
                k_tiles: 2,
            },
            &a100,
        ),
        (Workload::WarpGemm, &h100),
        (Workload::Fp8Gemm, &h100),
        (
            Workload::Attention {
                heads: 4,
                seq_tiles: 2,
                head_dim: 64,
            },
            &a100,
        ),
        (
            Workload::Moe {
                tokens: 4,
                efficient: true,
            },
            &h100,
        ),
        (Workload::Mamba { batch: 4 }, &a100),
        (
            Workload::QuantGemm {
                group_size: 64,
                n: 128,
                k: 256,
            },
            &h100,
        ),
        (
            Workload::GroupedGemm {
                tokens: vec![16, 0, 5, 32],
            },
            &h100,
        ),
    ];
    for (workload, arch) in &cases {
        assert_conformance(workload, arch);
    }
}

/// Maps a sampled (family index, parameter draws) tuple to a workload
/// instance — the generator of the (family × shape × dtype) dimensions.
fn workload_from(family: usize, a: usize, b: usize, c: usize, tokens: Vec<usize>) -> Workload {
    match family % 8 {
        0 => Workload::Gemm {
            dtype: [DType::F16, DType::BF16][a % 2],
            m_tiles: 1 + b % 2,
            k_tiles: 1 + c % 2,
        },
        1 => Workload::WarpGemm,
        2 => Workload::Fp8Gemm,
        3 => Workload::Attention {
            heads: 1 + a % 4,
            seq_tiles: 1 + b % 2,
            head_dim: [64, 128][c % 2],
        },
        4 => Workload::Moe {
            tokens: [2, 4, 16][a % 3],
            efficient: b.is_multiple_of(2),
        },
        5 => Workload::Mamba { batch: 1 + a % 4 },
        6 => Workload::QuantGemm {
            // Groups below, at, and above block_k (64): the third exercises
            // the shared-scale-column (stride-0) tile→group mapping.
            group_size: [32, 64, 128][a % 3],
            n: [128, 256][b % 2],
            k: 256,
        },
        _ => Workload::GroupedGemm { tokens },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized sweep over (family × shape × dtype × arch): the toggle
    /// matrix must hold for every sampled instance.
    #[test]
    fn random_workloads_conform(
        family in 0usize..8,
        a in 0usize..12,
        b in 0usize..12,
        c in 0usize..12,
        tokens in collection::vec(0usize..=48, 2..=6),
        on_h100 in 0usize..2,
    ) {
        let workload = workload_from(family, a, b, c, tokens);
        let arch = if on_h100 == 1 { GpuArch::h100() } else { GpuArch::a100() };
        assert_conformance(&workload, &arch);
    }
}
