//! Randomized equivalence sweep (satellite of the incremental-search PR):
//! across GEMM, attention and mixed-type MoE kernels from `hexcute-kernels`,
//! the incremental prefix-shared search must produce the *identical* ordered
//! candidate list — and identical cost-model and performance-simulator
//! scores, bit for bit — as the full re-evaluation path.

use hexcute_core::{Compiler, CompilerOptions};
use hexcute_ir::Program;
use hexcute_kernels::attention::{mha_forward, AttentionConfig, AttentionShape};
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute_synthesis::SynthesisOptions;
use proptest::prelude::*;

fn compile_both_ways(program: &Program) {
    for arch in [hexcute_arch::GpuArch::a100(), hexcute_arch::GpuArch::h100()] {
        let with_incremental = |incremental: bool| {
            let options = CompilerOptions {
                synthesis: SynthesisOptions {
                    incremental,
                    ..SynthesisOptions::default()
                },
                use_cost_model: true,
            };
            Compiler::with_options(arch.clone(), options)
                .compile_candidates(program)
                .unwrap()
        };
        let reference = with_incremental(false);
        let incremental = with_incremental(true);
        assert_eq!(
            reference.len(),
            incremental.len(),
            "candidate counts diverged for {} on {}",
            program.name,
            arch.name
        );
        for (i, ((rc, rcost, rperf), (ic, icost, iperf))) in
            reference.iter().zip(incremental.iter()).enumerate()
        {
            assert_eq!(rc, ic, "candidate {i} of {} diverged", program.name);
            assert_eq!(
                rcost.total_cycles.to_bits(),
                icost.total_cycles.to_bits(),
                "cost of candidate {i} of {} diverged",
                program.name
            );
            assert_eq!(rcost, icost);
            assert_eq!(
                rperf.latency_us.to_bits(),
                iperf.latency_us.to_bits(),
                "latency of candidate {i} of {} diverged",
                program.name
            );
            assert_eq!(rperf, iperf);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn gemm_rankings_are_bit_identical(
        m_tiles in 1usize..=2,
        n_tiles in 1usize..=2,
        k in 1usize..=2,
        stages in 1usize..=3,
    ) {
        let config = GemmConfig { stages, ..GemmConfig::default() };
        let shape = GemmShape::new(
            m_tiles * config.block_m,
            n_tiles * config.block_n,
            k * config.block_k * 2,
        );
        let program = fp16_gemm(shape, config).unwrap();
        compile_both_ways(&program);
    }

    #[test]
    fn attention_rankings_are_bit_identical(
        heads in 1usize..=8,
        seq_tiles in 1usize..=3,
        head_dim in (0usize..=1).prop_map(|i| [64usize, 128][i]),
    ) {
        let config = AttentionConfig::default();
        let shape = AttentionShape::forward(1, heads, seq_tiles * config.block_kv, head_dim);
        let program = mha_forward(shape, config).unwrap();
        compile_both_ways(&program);
    }

    #[test]
    fn moe_rankings_are_bit_identical(
        tokens in (0usize..=2).prop_map(|i| [2usize, 4, 16][i]),
        efficient in (0usize..=1).prop_map(|i| i == 1),
    ) {
        let dataflow = if efficient { MoeDataflow::Efficient } else { MoeDataflow::TritonStyle };
        let program =
            mixed_type_moe(MoeShape::deepseek_r1(tokens), MoeConfig::default(), dataflow).unwrap();
        compile_both_ways(&program);
    }
}
