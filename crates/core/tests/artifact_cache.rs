//! Robustness and bit-identity tests for the persistent kernel-artifact
//! cache (PR 4): a cache hit — memory or disk — must return artifacts
//! bit-identical to a fresh synthesis across all four kernel families, and
//! every defective file (corrupt, stale version, expired) must be rejected
//! and transparently re-synthesized.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use hexcute_arch::GpuArch;
use hexcute_core::{
    ArtifactSource, Compiler, FaultInjector, FaultKind, FaultSpec, KernelArtifact, KernelCache,
    KernelCacheConfig, ARTIFACT_VERSION,
};
use hexcute_ir::Program;
use hexcute_kernels::attention::{mha_forward, AttentionConfig, AttentionShape};
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
use hexcute_kernels::grouped_gemm::{grouped_gemm, GroupedGemmConfig, GroupedGemmShape};
use hexcute_kernels::mamba::{selective_scan, ScanConfig, ScanShape};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute_kernels::quant_gemm::{w4a16_gemm, QuantGemmConfig, QuantGemmShape};

fn unique_temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "hexcute-artifact-cache-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn disk_config(dir: &std::path::Path) -> KernelCacheConfig {
    KernelCacheConfig {
        dir: Some(dir.to_path_buf()),
        ..KernelCacheConfig::default()
    }
}

/// One program per kernel family of the paper's evaluation.
fn kernel_families() -> Vec<(&'static str, Program)> {
    vec![
        (
            "gemm",
            fp16_gemm(GemmShape::new(512, 512, 256), GemmConfig::default()).unwrap(),
        ),
        (
            "attention",
            mha_forward(
                AttentionShape::forward(2, 8, 512, 128),
                AttentionConfig::default(),
            )
            .unwrap(),
        ),
        (
            "moe",
            mixed_type_moe(
                MoeShape::deepseek_r1(16),
                MoeConfig::default(),
                MoeDataflow::Efficient,
            )
            .unwrap(),
        ),
        (
            "mamba",
            selective_scan(ScanShape::new(4, 512, 16, 256), ScanConfig::default()).unwrap(),
        ),
        (
            "quant_gemm",
            w4a16_gemm(
                QuantGemmShape::new(16, 128, 256, 64),
                QuantGemmConfig::default(),
            )
            .unwrap(),
        ),
        (
            "grouped_gemm",
            grouped_gemm(
                &GroupedGemmShape::uniform(8, 16, 256, 512),
                GroupedGemmConfig::default(),
            )
            .unwrap(),
        ),
    ]
}

#[test]
fn cache_hits_are_bit_identical_to_fresh_synthesis_across_families() {
    let dir = unique_temp_dir("bitident");
    let cache = KernelCache::new(disk_config(&dir));
    for (family, program) in kernel_families() {
        let arch = GpuArch::h100();
        // A reference artifact from a compiler that never touches the cache.
        let reference = Compiler::new(arch.clone())
            .compile_artifact(&program)
            .unwrap_or_else(|e| panic!("{family}: reference compilation failed: {e}"));

        // Cold: synthesized and stored.
        let (cold, source) = Compiler::new(arch.clone())
            .compile_with_cache(&program, &cache)
            .unwrap();
        assert_eq!(source, ArtifactSource::Synthesized, "{family}");
        assert_eq!(*cold, reference, "{family}: cold artifact differs");

        // Memory hit: bit-identical.
        let (mem, source) = Compiler::new(arch.clone())
            .compile_with_cache(&program, &cache)
            .unwrap();
        assert_eq!(source, ArtifactSource::Memory, "{family}");
        assert_eq!(*mem, reference, "{family}: memory hit differs");

        // Disk hit through a fresh cache over the same directory (fresh
        // memory front): the JSON round-trip must also be bit-identical —
        // including every f64 in the cost/perf breakdowns.
        let fresh = KernelCache::new(disk_config(&dir));
        let (disk, source) = Compiler::new(arch)
            .compile_with_cache(&program, &fresh)
            .unwrap();
        assert_eq!(source, ArtifactSource::Disk, "{family}");
        assert_eq!(*disk, reference, "{family}: disk hit differs");
    }
    let stats = cache.stats();
    assert_eq!(stats.stores, 6);
    assert_eq!(stats.corrupt + stats.stale_version + stats.expired, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_artifact_files_are_rejected_and_resynthesized() {
    let dir = unique_temp_dir("corrupt");
    let cache = KernelCache::new(disk_config(&dir));
    let program = fp16_gemm(GemmShape::new(256, 256, 128), GemmConfig::default()).unwrap();
    let compiler = Compiler::new(GpuArch::a100());
    let (original, _) = compiler.compile_with_cache(&program, &cache).unwrap();

    let path = cache
        .artifact_path(original.fingerprint)
        .expect("disk-backed cache has a path");
    // Current version but wrong types / missing fields: a schema reject, not
    // a stale-version one.
    let wrong_types = format!("{{\"version\": {ARTIFACT_VERSION}, \"fingerprint\": 3}}");
    for garbage in [
        "not json at all",
        "{\"version\": ", // truncated
        wrong_types.as_str(),
        "",
    ] {
        std::fs::write(&path, garbage).unwrap();
        // A fresh cache (empty memory front) must reject the file, delete
        // it, and let the compiler re-synthesize.
        let fresh = KernelCache::new(disk_config(&dir));
        let (artifact, source) = compiler.compile_with_cache(&program, &fresh).unwrap();
        assert_eq!(source, ArtifactSource::Synthesized);
        assert_eq!(*artifact, *original, "re-synthesis must be bit-identical");
        assert!(fresh.stats().corrupt >= 1, "corruption must be counted");
        // The store after re-synthesis replaced the file with a valid one.
        let healed = KernelCache::new(disk_config(&dir));
        let (_, source) = compiler.compile_with_cache(&program, &healed).unwrap();
        assert_eq!(source, ArtifactSource::Disk, "cache must self-heal");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_mismatch_is_rejected_and_resynthesized() {
    let dir = unique_temp_dir("version");
    let cache = KernelCache::new(disk_config(&dir));
    let program = fp16_gemm(GemmShape::new(256, 256, 128), GemmConfig::default()).unwrap();
    let compiler = Compiler::new(GpuArch::a100());
    let (original, _) = compiler.compile_with_cache(&program, &cache).unwrap();

    // Rewrite the stored artifact as if a future (or ancient) schema wrote
    // it: same JSON, different version number.
    let path = cache.artifact_path(original.fingerprint).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let needle = format!("\"version\": {ARTIFACT_VERSION}");
    assert!(text.contains(&needle), "artifact must carry its version");
    std::fs::write(&path, text.replace(&needle, "\"version\": 999")).unwrap();

    let fresh = KernelCache::new(disk_config(&dir));
    let (artifact, source) = compiler.compile_with_cache(&program, &fresh).unwrap();
    assert_eq!(source, ArtifactSource::Synthesized);
    assert_eq!(*artifact, *original);
    let stats = fresh.stats();
    assert_eq!(stats.stale_version, 1, "{stats}");
    assert_eq!(stats.corrupt, 0, "{stats}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ttl_expiry_forces_resynthesis() {
    let dir = unique_temp_dir("ttl");
    let config = KernelCacheConfig {
        dir: Some(dir.clone()),
        ttl: Some(Duration::ZERO), // everything is immediately stale
        ..KernelCacheConfig::default()
    };
    let program = fp16_gemm(GemmShape::new(256, 256, 128), GemmConfig::default()).unwrap();
    let compiler = Compiler::new(GpuArch::a100());
    let (original, _) = compiler
        .compile_with_cache(&program, &KernelCache::new(config.clone()))
        .unwrap();

    let expiring = KernelCache::new(config);
    let (artifact, source) = compiler.compile_with_cache(&program, &expiring).unwrap();
    assert_eq!(source, ArtifactSource::Synthesized);
    assert_eq!(*artifact, *original);
    assert_eq!(expiring.stats().expired, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_capacity_prunes_oldest_artifacts() {
    let dir = unique_temp_dir("capacity");
    let cache = KernelCache::new(KernelCacheConfig {
        dir: Some(dir.clone()),
        disk_capacity: 2,
        ..KernelCacheConfig::default()
    });
    // Three distinct fingerprints: three K extents (K changes the main-loop
    // trip count; since PR 5 a different M would also fingerprint
    // differently through the grid).
    let compiler = Compiler::new(GpuArch::a100());
    for k in [128usize, 256, 512] {
        let program = fp16_gemm(GemmShape::new(256, 256, k), GemmConfig::default()).unwrap();
        compiler.compile_with_cache(&program, &cache).unwrap();
    }
    let stats = cache.stats();
    assert!(stats.disk_entries <= 2, "{stats}");
    assert!(stats.file_evictions >= 1, "{stats}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn artifact_json_round_trips_exactly() {
    let program = mha_forward(
        AttentionShape::decoding(2, 4, 256, 64),
        AttentionConfig::default(),
    )
    .unwrap();
    let artifact = Compiler::new(GpuArch::h100())
        .compile_artifact(&program)
        .unwrap();
    let round = KernelArtifact::from_json(&artifact.to_json()).unwrap();
    assert_eq!(round, artifact);
    // The artifact carries the pieces the issue requires: layouts, the
    // lowered program, the emitted pseudo-CUDA and the cost breakdown.
    assert!(!round.smem_layouts.is_empty() || !round.tv_layouts.is_empty());
    assert!(!round.lowered.is_empty());
    assert!(round.cuda.contains("__global__"));
    assert!(round.cost.total_cycles > 0.0);
    assert!(round.perf.latency_us > 0.0);
}

#[test]
fn fingerprints_sense_quant_groups_and_batch_shapes() {
    use hexcute_core::{artifact_fingerprint, CompilerOptions};
    let defaults = CompilerOptions::new();
    let h100 = GpuArch::h100();
    let fp = |program: &Program| artifact_fingerprint(program, &h100, &defaults);

    // Quantized GEMM: the group size changes the scale-tensor geometry and
    // the dequant operation, so it must change the fingerprint.
    let config = QuantGemmConfig::default();
    let g64 = w4a16_gemm(QuantGemmShape::new(16, 128, 256, 64), config).unwrap();
    let g32 = w4a16_gemm(QuantGemmShape::new(16, 128, 256, 32), config).unwrap();
    let g64_again = w4a16_gemm(QuantGemmShape::new(16, 128, 256, 64), config).unwrap();
    assert_eq!(fp(&g64), fp(&g64_again), "same shape must be stable");
    assert_ne!(
        fp(&g64),
        fp(&g32),
        "group size must fingerprint differently"
    );

    // Grouped GEMM: a different group count changes the batched tile list
    // (the grid), so it must change the fingerprint too.
    let gconfig = GroupedGemmConfig::default();
    let four = grouped_gemm(&GroupedGemmShape::uniform(4, 16, 256, 512), gconfig).unwrap();
    let eight = grouped_gemm(&GroupedGemmShape::uniform(8, 16, 256, 512), gconfig).unwrap();
    let ragged = grouped_gemm(
        &GroupedGemmShape::from_token_counts(vec![16, 16, 16, 32], 256, 512),
        gconfig,
    )
    .unwrap();
    assert_ne!(
        fp(&four),
        fp(&eight),
        "group count must fingerprint differently"
    );
    assert_ne!(
        fp(&four),
        fp(&ragged),
        "token routing must fingerprint differently"
    );
}

/// One compiler shared across the chaos tests: its internal per-kernel memo
/// makes the repeated re-syntheses forced by injected faults cheap, without
/// touching the artifact cache under test.
fn shared_compiler() -> &'static Compiler {
    static COMPILER: OnceLock<Compiler> = OnceLock::new();
    COMPILER.get_or_init(|| Compiler::new(GpuArch::h100()))
}

/// Fault-free reference artifacts for every kernel family, compiled once.
fn reference_artifacts() -> &'static Vec<(&'static str, Program, KernelArtifact)> {
    static REFS: OnceLock<Vec<(&'static str, Program, KernelArtifact)>> = OnceLock::new();
    REFS.get_or_init(|| {
        kernel_families()
            .into_iter()
            .map(|(family, program)| {
                let artifact = shared_compiler()
                    .compile_artifact(&program)
                    .unwrap_or_else(|e| panic!("{family}: reference compilation failed: {e}"));
                (family, program, artifact)
            })
            .collect()
    })
}

/// Satellite (b): a crash can leave a truncated JSON file behind. It must be
/// quarantined (renamed aside, counted) — never served, never fatal — and
/// the cache must heal itself on the next store.
#[test]
fn truncated_artifact_is_quarantined_and_healed() {
    let dir = unique_temp_dir("truncated");
    let cache = KernelCache::new(disk_config(&dir));
    let program = fp16_gemm(GemmShape::new(256, 256, 192), GemmConfig::default()).unwrap();
    let compiler = Compiler::new(GpuArch::a100());
    let (original, _) = compiler.compile_with_cache(&program, &cache).unwrap();

    // Simulate a crash mid-write: keep only the first half of the file.
    let path = cache.artifact_path(original.fingerprint).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();

    let fresh = KernelCache::new(disk_config(&dir));
    let (artifact, source) = compiler.compile_with_cache(&program, &fresh).unwrap();
    assert_eq!(source, ArtifactSource::Synthesized);
    assert_eq!(*artifact, *original, "re-synthesis must be bit-identical");
    let stats = fresh.stats();
    assert_eq!(stats.corrupt, 1, "{stats}");
    assert_eq!(stats.quarantined, 1, "{stats}");

    // The defective file was renamed aside, not deleted: it is available
    // for post-mortem inspection but invisible to the cache.
    let quarantined = path.with_extension("quarantined");
    assert!(quarantined.exists(), "defective file must be kept aside");
    assert!(
        path.exists(),
        "the store after re-synthesis must heal the slot"
    );

    // A healed cache serves from disk again and never reads the
    // quarantined copy.
    let healed = KernelCache::new(disk_config(&dir));
    let (served, source) = compiler.compile_with_cache(&program, &healed).unwrap();
    assert_eq!(source, ArtifactSource::Disk, "cache must self-heal");
    assert_eq!(*served, *original);
    assert_eq!(healed.stats().corrupt, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Persistent write failures trip the circuit breaker into memory-only
/// mode; once the disk recovers, a probe write closes it again.
#[test]
fn write_failures_trip_breaker_and_probe_recovers() {
    let dir = unique_temp_dir("breaker");
    let injector =
        FaultInjector::new(FaultSpec::default().with_rate(FaultKind::DiskWriteFail, 1.0));
    let config = KernelCacheConfig {
        dir: Some(dir.clone()),
        breaker_threshold: 2,
        breaker_probe_interval: Duration::from_millis(10),
        ..KernelCacheConfig::default()
    };
    let cache = KernelCache::with_faults(config, Some(injector.clone()));

    let base = reference_artifacts()
        .iter()
        .find(|(family, _, _)| *family == "gemm")
        .map(|(_, _, artifact)| artifact.clone())
        .unwrap();
    let variant = |i: u64| {
        let mut a = base.clone();
        a.fingerprint = base.fingerprint.wrapping_add(i);
        Arc::new(a)
    };

    // Two consecutive write failures reach the threshold and trip the
    // breaker; the third insert is skipped without touching the disk.
    cache.insert(variant(1));
    cache.insert(variant(2));
    cache.insert(variant(3));
    let stats = cache.stats();
    assert_eq!(stats.write_failures, 2, "{stats}");
    assert_eq!(stats.breaker_trips, 1, "{stats}");
    assert!(stats.breaker_skips >= 1, "{stats}");
    assert!(stats.breaker_open, "{stats}");
    assert_eq!(stats.stores, 0, "{stats}");
    assert_eq!(stats.disk_entries, 0, "{stats}");

    // Memory-only degradation: the front still serves what it holds.
    let (_, source) = cache.get(base.fingerprint.wrapping_add(1)).unwrap();
    assert_eq!(source, ArtifactSource::Memory);

    // Heal the disk and wait out the probe interval: the next insert is a
    // probe, succeeds, and closes the breaker.
    injector.set_enabled(false);
    std::thread::sleep(Duration::from_millis(20));
    cache.insert(variant(4));
    let stats = cache.stats();
    assert_eq!(stats.breaker_recoveries, 1, "{stats}");
    assert!(!stats.breaker_open, "{stats}");
    assert_eq!(stats.stores, 1, "{stats}");
    std::fs::remove_dir_all(&dir).ok();
}

// Satellite (c): randomized chaos sweep. Under any mix of disk faults —
// read corruption, write failures, stale versions — every compile still
// returns an artifact bit-identical to the fault-free reference, corrupt
// files are always quarantined (never served), and the cache never
// deadlocks or errors out.
proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
    #[test]
    fn chaos_sweep_preserves_bit_identity(
        read_corrupt_pct in 0u32..=60,
        write_fail_pct in 0u32..=50,
        stale_pct in 0u32..=30,
        seed in 0u64..=0xFFFF_FFFF,
    ) {
        let dir = unique_temp_dir("chaos");
        let spec = FaultSpec::default()
            .with_rate(FaultKind::DiskReadCorrupt, read_corrupt_pct as f64 / 100.0)
            .with_rate(FaultKind::DiskWriteFail, write_fail_pct as f64 / 100.0)
            .with_rate(FaultKind::StaleVersion, stale_pct as f64 / 100.0)
            .with_seed(seed);
        let injector = FaultInjector::new(spec);
        let compiler = shared_compiler();

        // Pass 1: cold compiles under write faults.
        let cache = KernelCache::with_faults(disk_config(&dir), Some(injector.clone()));
        for (family, program, reference) in reference_artifacts() {
            let (artifact, _) = compiler.compile_with_cache(program, &cache).unwrap();
            proptest::prop_assert_eq!(
                &*artifact, reference,
                "{} diverged under faults (pass 1)", family
            );
        }

        // Pass 2: a fresh memory front forces disk reads under read faults.
        let fresh = KernelCache::with_faults(disk_config(&dir), Some(injector));
        for (family, program, reference) in reference_artifacts() {
            let (artifact, _) = compiler.compile_with_cache(program, &fresh).unwrap();
            proptest::prop_assert_eq!(
                &*artifact, reference,
                "{} diverged under faults (pass 2)", family
            );
        }

        // Every corrupt read was quarantined, and quarantined files are
        // invisible to the cache: re-listing the directory only counts
        // live `.json` entries.
        let stats = fresh.stats();
        proptest::prop_assert_eq!(stats.quarantined, stats.corrupt, "{}", stats);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn fingerprints_separate_programs_arches_and_options() {
    use hexcute_core::{artifact_fingerprint, CompilerOptions, SynthesisOptions};
    let gemm = fp16_gemm(GemmShape::new(256, 256, 128), GemmConfig::default()).unwrap();
    let other = fp16_gemm(GemmShape::new(256, 256, 256), GemmConfig::default()).unwrap();
    let defaults = CompilerOptions::new();
    let a100 = GpuArch::a100();
    let h100 = GpuArch::h100();

    let base = artifact_fingerprint(&gemm, &a100, &defaults);
    // Stable across calls.
    assert_eq!(base, artifact_fingerprint(&gemm, &a100, &defaults));
    // Sensitive to the program, the architecture and the options…
    assert_ne!(base, artifact_fingerprint(&other, &a100, &defaults));
    assert_ne!(base, artifact_fingerprint(&gemm, &h100, &defaults));
    let scalar = CompilerOptions {
        synthesis: SynthesisOptions::scalar_fallback(),
        ..CompilerOptions::new()
    };
    assert_ne!(base, artifact_fingerprint(&gemm, &a100, &scalar));
    // …but deliberately *not* to execution-strategy toggles, which are
    // cross-checked bit-for-bit: one artifact serves every thread count.
    let parallel = CompilerOptions {
        synthesis: SynthesisOptions {
            parallel_workers: Some(7),
            parallel_subtree_depth: Some(2),
            incremental: false,
            ..SynthesisOptions::default()
        },
        ..CompilerOptions::new()
    };
    assert_eq!(base, artifact_fingerprint(&gemm, &a100, &parallel));
}

#[test]
fn prefetch_warms_the_memory_tier_without_demand_counters() {
    let dir = unique_temp_dir("prefetch");
    let program = fp16_gemm(GemmShape::new(256, 256, 128), GemmConfig::default()).unwrap();
    let compiler = Compiler::new(GpuArch::a100());

    // Seed the disk store, then restart with an empty memory front.
    let seed_cache = KernelCache::new(disk_config(&dir));
    let (artifact, _) = compiler.compile_with_cache(&program, &seed_cache).unwrap();
    let fingerprint = artifact.fingerprint;
    drop(seed_cache);

    let cache = KernelCache::new(disk_config(&dir));
    assert!(!cache.peek_memory(fingerprint));
    // Prefetch promotes the on-disk artifact into the warm tier; the
    // synthesize closure must not run.
    let warmed = cache.prefetch_with(fingerprint, || {
        panic!("a disk-resident artifact must be promoted, not re-synthesized")
    });
    assert!(warmed);
    assert!(cache.peek_memory(fingerprint));
    let stats = cache.stats();
    assert_eq!(stats.prefetch_stores, 1, "{stats}");
    assert_eq!(
        (stats.disk_hits, stats.disk_misses, stats.memory.hits),
        (0, 0, 0),
        "speculative work must not be attributed to demand counters: {stats}"
    );
    // The demand request that follows is a plain memory hit, bit-identical.
    let (hit, source) = cache.get(fingerprint).expect("prefetched artifact");
    assert_eq!(source, ArtifactSource::Memory);
    assert_eq!(*hit, *artifact);

    // A full miss falls back to the caller's synthesize closure...
    let other = fp16_gemm(GemmShape::new(256, 256, 256), GemmConfig::default()).unwrap();
    let other_fp = hexcute_core::artifact_fingerprint(
        &other,
        compiler.arch(),
        &hexcute_core::CompilerOptions::new(),
    );
    let warmed = cache.prefetch_with(other_fp, || {
        Some(Arc::new(compiler.compile_artifact(&other).unwrap()))
    });
    assert!(warmed);
    assert!(cache.peek_memory(other_fp));
    assert_eq!(cache.stats().prefetch_stores, 2);
    // ...and a cancelled speculative synthesis leaves the cache untouched.
    let missing = 0xdead_beef_u64;
    assert!(!cache.prefetch_with(missing, || None));
    assert!(!cache.peek_memory(missing));
    std::fs::remove_dir_all(&dir).ok();
}
