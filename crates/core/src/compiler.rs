//! The compiler driver.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::cache::{ArtifactSource, KernelArtifact, KernelCache};

use hexcute_arch::GpuArch;
use hexcute_codegen::{emit_cuda_like, lower, LoweredKernel};
use hexcute_costmodel::{CompletionBounds, CostBreakdown, CostModel};
use hexcute_ir::Program;
use hexcute_sim::{estimate_kernel, FunctionalSim, PerfEvaluator, PerfReport, SimError};
use hexcute_synthesis::{
    CancelReason, CancelToken, Candidate, SynthesisError, SynthesisOptions, Synthesizer,
};

/// Options controlling compilation.
#[derive(Debug, Clone, Default)]
pub struct CompilerOptions {
    /// Options forwarded to the layout-synthesis engine.
    pub synthesis: SynthesisOptions,
    /// When `false`, candidate selection bypasses the analytical cost model
    /// and exhaustively evaluates every candidate with the performance
    /// simulator (used by the Fig. 12 accuracy experiment as ground truth).
    pub use_cost_model: bool,
}

impl CompilerOptions {
    /// Default options: full instruction set, cost-model-guided selection.
    pub fn new() -> Self {
        CompilerOptions {
            synthesis: SynthesisOptions::default(),
            use_cost_model: true,
        }
    }
}

/// Statistics about one compilation, including the data needed for the
/// cost-model accuracy study (Section VII-C / Fig. 12).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileStats {
    /// Number of candidate programs produced by the search tree.
    pub candidates_explored: usize,
    /// Index of the candidate selected by the analytical cost model.
    pub selected_by_cost_model: usize,
    /// Index of the candidate with the lowest simulated latency.
    pub best_by_simulation: usize,
    /// Ratio of the selected candidate's simulated latency to the true
    /// optimum (1.0 = the cost model picked the best candidate).
    pub selection_quality: f64,
    /// Wall-clock compilation time in milliseconds.
    pub compile_time_ms: f64,
}

/// A fully compiled kernel: the selected candidate, its lowering, and its
/// estimated cost and performance.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The source program.
    pub program: Program,
    /// The selected candidate (layouts + instructions).
    pub candidate: Candidate,
    /// The lowered per-block kernel.
    pub lowered: LoweredKernel,
    /// The analytical cost-model estimate for the selected candidate.
    pub cost: CostBreakdown,
    /// The simulated device-level performance of the selected candidate.
    pub perf: PerfReport,
    /// Compilation statistics.
    pub stats: CompileStats,
}

impl CompiledKernel {
    /// The estimated kernel latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.perf.latency_us
    }

    /// Renders the kernel as CUDA-like source text.
    pub fn cuda_source(&self) -> String {
        emit_cuda_like(&self.program, &self.lowered)
    }

    /// Runs the functional simulator on the compiled kernel.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (missing layouts, short buffers).
    pub fn simulate(
        &self,
        inputs: &HashMap<String, Vec<f32>>,
    ) -> Result<HashMap<String, Vec<f32>>, SimError> {
        FunctionalSim::new(&self.program, &self.candidate).run(inputs)
    }
}

/// Errors produced by compilation and by the serving layer on top of it.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Layout synthesis failed.
    Synthesis(SynthesisError),
    /// The serving layer shed this request: its admission queue was full.
    Overloaded {
        /// Requests already waiting for an admission slot.
        queued: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The request's deadline elapsed while it was queued or while it
    /// waited on a coalesced in-flight synthesis.
    DeadlineExceeded {
        /// How long the request had been waiting when it gave up.
        elapsed: std::time::Duration,
    },
    /// The synthesis panicked (a worker-job crash, possibly injected). The
    /// kernel itself may be fine — this error is transient and retryable.
    Panicked(String),
    /// The in-flight synthesis was cancelled cooperatively (the request's
    /// deadline, the service watchdog, or a shutdown tripped its
    /// [`CancelToken`]). Cancellation yields this typed error only — never a
    /// partial result, and cancelled compiles are never cached.
    Cancelled {
        /// Which trigger won the cancel.
        reason: CancelReason,
    },
    /// The service watchdog tripped on a runaway compile
    /// (`HEXCUTE_WATCHDOG_MS`).
    SynthesisTimeout {
        /// How long the synthesis had been running when the watchdog fired.
        elapsed: std::time::Duration,
    },
}

impl CompileError {
    /// Whether a retry of the same request could plausibly succeed.
    /// Synthesis failures are deterministic, overload/deadline outcomes are
    /// the caller's backpressure signal, and cancellations/watchdog trips
    /// are deliberate bounds; only a panicked synthesis — a crashed worker,
    /// not a property of the program — is worth retrying.
    pub fn is_transient(&self) -> bool {
        matches!(self, CompileError::Panicked(_))
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Synthesis(e) => write!(f, "layout synthesis failed: {e}"),
            CompileError::Overloaded { queued, capacity } => write!(
                f,
                "request shed: admission queue full ({queued} waiting, capacity {capacity})"
            ),
            CompileError::DeadlineExceeded { elapsed } => {
                write!(
                    f,
                    "deadline exceeded after {:.1}ms",
                    elapsed.as_secs_f64() * 1e3
                )
            }
            CompileError::Panicked(msg) => write!(f, "synthesis panicked: {msg}"),
            CompileError::Cancelled { reason } => {
                write!(f, "compile cancelled ({reason})")
            }
            CompileError::SynthesisTimeout { elapsed } => write!(
                f,
                "watchdog tripped: synthesis still running after {:.1}ms",
                elapsed.as_secs_f64() * 1e3
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<SynthesisError> for CompileError {
    fn from(e: SynthesisError) -> Self {
        match e {
            // A cancelled search is not a synthesis *failure*: surface it as
            // the typed cancellation so callers can map it per trigger.
            SynthesisError::Cancelled(reason) => CompileError::Cancelled { reason },
            other => CompileError::Synthesis(other),
        }
    }
}

/// The Hexcute compiler for a fixed target architecture.
#[derive(Debug)]
pub struct Compiler {
    arch: GpuArch,
    options: CompilerOptions,
    cache: Mutex<HashMap<String, CompiledKernel>>,
}

impl Compiler {
    /// Creates a compiler targeting the given architecture with default
    /// options.
    pub fn new(arch: GpuArch) -> Self {
        Compiler {
            arch,
            options: CompilerOptions::new(),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Creates a compiler with explicit options.
    pub fn with_options(arch: GpuArch, options: CompilerOptions) -> Self {
        Compiler {
            arch,
            options,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The target architecture.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// The compiler options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Compiles a program: synthesizes candidate layouts and instructions,
    /// ranks them, and lowers the selected candidate.
    ///
    /// Results are cached by kernel name, so repeated compilations of the
    /// same kernel (e.g. inside the end-to-end serving loop) are free.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when layout synthesis fails.
    pub fn compile(&self, program: &Program) -> Result<CompiledKernel, CompileError> {
        self.compile_cancellable(program, None)
    }

    /// [`Compiler::compile`] with a cooperative [`CancelToken`]: the token is
    /// polled at row granularity by the synthesis walks and at job
    /// granularity by the scoring fan-out, so a cancel aborts the compile
    /// promptly with a typed [`CompileError::Cancelled`]. A cancelled
    /// compile is never inserted into the name-keyed memo — reissuing the
    /// request recompiles from scratch and yields the exact same result a
    /// never-cancelled compile would.
    ///
    /// # Errors
    ///
    /// Same as [`Compiler::compile`], plus [`CompileError::Cancelled`] when
    /// `token` trips mid-compile.
    pub fn compile_cancellable(
        &self,
        program: &Program,
        token: Option<&CancelToken>,
    ) -> Result<CompiledKernel, CompileError> {
        let key = format!("{}::{}", self.arch.name, program.name);
        if let Some(hit) = self.cache.lock().get(&key) {
            if hit.program == *program {
                return Ok(hit.clone());
            }
        }
        let start = Instant::now();
        if self.prunes() {
            if let Some(compiled) = self.compile_pruned(program, token, start)? {
                self.cache.lock().insert(key, compiled.clone());
                return Ok(compiled);
            }
        }
        let ranked = self.compile_candidates_cancellable(program, token)?;
        let candidates_explored = ranked.len();

        // Ground truth: the candidate with the lowest simulated latency.
        let best_by_simulation = ranked
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .2.latency_us.total_cmp(&b.1 .2.latency_us))
            .map(|(i, _)| i)
            .unwrap_or(0);
        // Selection: analytical cost model (the paper's approach) or the
        // simulator itself when the cost model is disabled.
        let selected_by_cost_model = if self.options.use_cost_model {
            ranked
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .1.total_cycles.total_cmp(&b.1 .1.total_cycles))
                .map(|(i, _)| i)
                .unwrap_or(0)
        } else {
            best_by_simulation
        };
        let selected_latency = ranked[selected_by_cost_model].2.latency_us;
        let best_latency = ranked[best_by_simulation].2.latency_us;
        let selection_quality = if best_latency > 0.0 {
            selected_latency / best_latency
        } else {
            1.0
        };

        let (candidate, cost, perf) = ranked
            .into_iter()
            .nth(selected_by_cost_model)
            .expect("selected index is valid");
        let lowered = lower(program, &candidate);
        let stats = CompileStats {
            candidates_explored,
            selected_by_cost_model,
            best_by_simulation,
            selection_quality,
            compile_time_ms: start.elapsed().as_secs_f64() * 1e3,
        };
        let compiled = CompiledKernel {
            program: program.clone(),
            candidate,
            lowered,
            cost,
            perf,
            stats,
        };
        self.cache.lock().insert(key, compiled.clone());
        Ok(compiled)
    }

    /// Whether [`Compiler::compile`] takes the branch-and-bound pruned
    /// search. Pruning needs the cost model for scoring (so the Fig. 12
    /// ground-truth mode, `use_cost_model = false`, still exhaustively
    /// simulates every candidate) and rides on the incremental prefix walk;
    /// both the per-request option and the process-wide kill switch
    /// (`HEXCUTE_DISABLE_PRUNE`) must be on.
    fn prunes(&self) -> bool {
        self.options.use_cost_model
            && self.options.synthesis.prune
            && hexcute_synthesis::prune_enabled()
            && self.options.synthesis.incremental
            && hexcute_synthesis::incremental_enabled()
    }

    /// The branch-and-bound compile path: scores only the leaves the
    /// admissible bound cannot rule out, yielding the same winning candidate
    /// — and the same cost and perf breakdowns, bit for bit — as the
    /// exhaustive ranking. Returns `Ok(None)` when the search declines to
    /// prune (the enumeration exceeds `max_candidates`, where the exhaustive
    /// path's truncation semantics apply), in which case the caller falls
    /// back to the exhaustive ranking.
    fn compile_pruned(
        &self,
        program: &Program,
        token: Option<&CancelToken>,
        start: Instant,
    ) -> Result<Option<CompiledKernel>, CompileError> {
        let synthesizer = Synthesizer::new(program, &self.arch, self.options.synthesis.clone());
        let model = CostModel::new(&self.arch);
        let mut bounder = CompletionBounds::new(&model, program);
        let Some(outcome) = synthesizer.synthesize_pruned(&mut bounder, token)? else {
            return Ok(None);
        };
        // Same calls the exhaustive scorer makes for the same candidate, so
        // the breakdowns are bit-identical to the unpruned compile's.
        let cost = model.estimate(program, &outcome.winner);
        let perf = PerfEvaluator::new(&self.arch).evaluate(program, &outcome.winner, &cost);
        let lowered = lower(program, &outcome.winner);
        let stats = CompileStats {
            candidates_explored: outcome.enumerated,
            // The winner is the only candidate scored end to end; the
            // simulated ranking of the pruned non-winners does not exist.
            selected_by_cost_model: 0,
            best_by_simulation: 0,
            selection_quality: 1.0,
            compile_time_ms: start.elapsed().as_secs_f64() * 1e3,
        };
        Ok(Some(CompiledKernel {
            program: program.clone(),
            candidate: outcome.winner,
            lowered,
            cost,
            perf,
            stats,
        }))
    }

    /// The stable cache key for compiling `program` on this compiler (see
    /// [`crate::cache::artifact_fingerprint`]): a fingerprint of the program
    /// structure, the target architecture and every result-affecting option.
    pub fn artifact_fingerprint(&self, program: &Program) -> u64 {
        crate::cache::artifact_fingerprint(program, &self.arch, &self.options)
    }

    /// Compiles a program and packages the result as a cacheable
    /// [`KernelArtifact`] (the winning candidate's layouts, the lowered
    /// instruction stream, the emitted pseudo-CUDA and the cost/perf
    /// breakdowns). The artifact is a deterministic function of the
    /// fingerprint inputs: compiling the same program twice yields equal
    /// artifacts bit for bit.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when layout synthesis fails.
    pub fn compile_artifact(&self, program: &Program) -> Result<KernelArtifact, CompileError> {
        self.compile_artifact_cancellable(program, None)
    }

    /// [`Compiler::compile_artifact`] with a cooperative [`CancelToken`]
    /// (see [`Compiler::compile_cancellable`] for the cancellation
    /// contract).
    ///
    /// # Errors
    ///
    /// Same as [`Compiler::compile_artifact`], plus
    /// [`CompileError::Cancelled`] when `token` trips mid-compile.
    pub fn compile_artifact_cancellable(
        &self,
        program: &Program,
        token: Option<&CancelToken>,
    ) -> Result<KernelArtifact, CompileError> {
        let fingerprint = self.artifact_fingerprint(program);
        let compiled = self.compile_cancellable(program, token)?;
        Ok(KernelArtifact::from_compiled(
            fingerprint,
            &compiled,
            &self.arch,
        ))
    }

    /// Compiles through a [`KernelCache`]: a cached artifact (memory or
    /// disk) is returned without synthesizing; a miss synthesizes, stores
    /// the artifact, and reports [`ArtifactSource::Synthesized`].
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when a miss's synthesis fails; cache
    /// defects (corrupt or stale files) never error — they re-synthesize.
    pub fn compile_with_cache(
        &self,
        program: &Program,
        cache: &KernelCache,
    ) -> Result<(Arc<KernelArtifact>, ArtifactSource), CompileError> {
        let fingerprint = self.artifact_fingerprint(program);
        if let Some((artifact, source)) = cache.get(fingerprint) {
            return Ok((artifact, source));
        }
        let artifact = Arc::new(self.compile_artifact(program)?);
        cache.insert(artifact.clone());
        Ok((artifact, ArtifactSource::Synthesized))
    }

    /// Synthesizes every candidate for the program and evaluates each with
    /// both the analytical cost model and the performance simulator.
    ///
    /// When the fast path is enabled (see [`hexcute_layout::fastpath`]) the
    /// candidates are scored in parallel across CPU cores, sharing one
    /// memoizing cost model; order (and therefore candidate selection) is
    /// identical to the serial reference. With the incremental search on
    /// (the default, see [`hexcute_synthesis::prefix`]), the performance
    /// simulator additionally reuses the shared cost model's instruction
    /// timeline and memoizes per-operation bank-conflict charges across
    /// sibling candidates — bit-identical to the re-evaluating reference,
    /// which stays available behind `HEXCUTE_DISABLE_INCREMENTAL=1` /
    /// `SynthesisOptions::incremental = false`.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when layout synthesis fails.
    pub fn compile_candidates(
        &self,
        program: &Program,
    ) -> Result<Vec<(Candidate, CostBreakdown, PerfReport)>, CompileError> {
        self.compile_candidates_cancellable(program, None)
    }

    /// [`Compiler::compile_candidates`] with a cooperative [`CancelToken`]
    /// threaded through both the synthesis walks and the scoring fan-out.
    ///
    /// # Errors
    ///
    /// Same as [`Compiler::compile_candidates`], plus
    /// [`CompileError::Cancelled`] when `token` trips.
    pub fn compile_candidates_cancellable(
        &self,
        program: &Program,
        token: Option<&CancelToken>,
    ) -> Result<Vec<(Candidate, CostBreakdown, PerfReport)>, CompileError> {
        let synthesizer = Synthesizer::new(program, &self.arch, self.options.synthesis.clone());
        let (outcome, _) = synthesizer.synthesize_outcome(token)?;
        // A budget-truncated outcome still ranks normally: `best_so_far` is
        // a deterministic prefix of the exhaustive candidate list.
        let candidates = outcome.into_candidates();
        let model = CostModel::new(&self.arch);
        let workers = self
            .options
            .synthesis
            .parallel_workers
            .unwrap_or_else(hexcute_parallel::worker_count);
        if self.options.synthesis.incremental && hexcute_synthesis::incremental_enabled() {
            let evaluator = PerfEvaluator::new(&self.arch);
            score_all(
                candidates,
                |candidate| {
                    let cost = model.estimate(program, &candidate);
                    let perf = evaluator.evaluate(program, &candidate, &cost);
                    (candidate, cost, perf)
                },
                workers,
                token,
            )
        } else {
            score_all(
                candidates,
                |candidate| {
                    let cost = model.estimate(program, &candidate);
                    let perf = estimate_kernel(program, &candidate, &self.arch);
                    (candidate, cost, perf)
                },
                workers,
                token,
            )
        }
    }
}

/// The typed error for a tripped token (the reason defaults defensively —
/// a token that cancelled a map always carries one).
fn cancelled_error(token: &CancelToken) -> CompileError {
    CompileError::Cancelled {
        reason: token.reason().unwrap_or(CancelReason::Shutdown),
    }
}

/// Scores every candidate, in parallel on the persistent worker pool when
/// the fast path is on (order preserved) and serially otherwise. `workers`
/// follows [`hexcute_synthesis::SynthesisOptions::parallel_workers`], so an
/// explicit override applies to scoring and to the subtree search alike.
/// A carried token cancels between items (and per pool job in parallel).
fn score_all<F>(
    candidates: Vec<Candidate>,
    score: F,
    workers: usize,
    token: Option<&CancelToken>,
) -> Result<Vec<(Candidate, CostBreakdown, PerfReport)>, CompileError>
where
    F: Fn(Candidate) -> (Candidate, CostBreakdown, PerfReport) + Sync,
{
    if hexcute_layout::fast_path_enabled() {
        match token {
            Some(tok) => hexcute_parallel::par_map_cancellable(candidates, score, workers, tok)
                .ok_or_else(|| cancelled_error(tok)),
            None => Ok(hexcute_parallel::par_map_with_workers(
                candidates, score, workers,
            )),
        }
    } else {
        let mut scored = Vec::with_capacity(candidates.len());
        for candidate in candidates {
            if let Some(tok) = token {
                if tok.is_cancelled() {
                    return Err(cancelled_error(tok));
                }
            }
            scored.push(score(candidate));
        }
        Ok(scored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::DType;
    use hexcute_ir::KernelBuilder;
    use hexcute_layout::Layout;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn gemm_program() -> Program {
        let (m, n, k) = (64, 64, 64);
        let mut kb = KernelBuilder::new("core_gemm", 128);
        let ga = kb.global_view(
            "a",
            DType::F16,
            Layout::from_flat(&[m, k], &[k, 1]),
            &[m, k],
        );
        let gb = kb.global_view(
            "b",
            DType::F16,
            Layout::from_flat(&[n, k], &[k, 1]),
            &[n, k],
        );
        let gc = kb.global_view(
            "c",
            DType::F32,
            Layout::from_flat(&[m, n], &[n, 1]),
            &[m, n],
        );
        let sa = kb.shared_tensor("sa", DType::F16, &[m, k]);
        let sb = kb.shared_tensor("sb", DType::F16, &[n, k]);
        let ra = kb.register_tensor("ra", DType::F16, &[m, k]);
        let rb = kb.register_tensor("rb", DType::F16, &[n, k]);
        let rc = kb.register_tensor("rc", DType::F32, &[m, n]);
        kb.fill(rc, 0.0);
        kb.copy(ga, sa);
        kb.copy(gb, sb);
        kb.copy(sa, ra);
        kb.copy(sb, rb);
        kb.gemm(rc, ra, rb);
        kb.copy(rc, gc);
        kb.build().unwrap()
    }

    #[test]
    fn compiles_selects_and_lowers() {
        let compiler = Compiler::new(GpuArch::a100());
        let kernel = compiler.compile(&gemm_program()).unwrap();
        assert!(kernel.stats.candidates_explored > 1);
        assert!(kernel.stats.selection_quality >= 1.0);
        // The cost model's choice should be close to the true optimum
        // (Fig. 12 reports within 1.01x; allow a little slack here).
        assert!(
            kernel.stats.selection_quality < 1.10,
            "quality {}",
            kernel.stats.selection_quality
        );
        assert!(kernel.latency_us() > 0.0);
        assert!(kernel.cuda_source().contains("__global__"));
        assert!(kernel.lowered.smem_bytes > 0);
    }

    #[test]
    fn compiled_gemm_is_numerically_correct() {
        let compiler = Compiler::new(GpuArch::a100());
        let kernel = compiler.compile(&gemm_program()).unwrap();
        let (m, n, k) = (64usize, 64usize, 64usize);
        let mut rng = StdRng::seed_from_u64(42);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), a.clone());
        inputs.insert("b".to_string(), b.clone());
        let out = kernel.simulate(&inputs).unwrap();
        for mi in (0..m).step_by(17) {
            for ni in (0..n).step_by(13) {
                let expect: f32 = (0..k).map(|ki| a[mi * k + ki] * b[ni * k + ki]).sum();
                assert!((out["c"][mi * n + ni] - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn cache_returns_identical_results() {
        let compiler = Compiler::new(GpuArch::h100());
        let program = gemm_program();
        let first = compiler.compile(&program).unwrap();
        let second = compiler.compile(&program).unwrap();
        assert_eq!(first.candidate, second.candidate);
        assert_eq!(
            first.stats.candidates_explored,
            second.stats.candidates_explored
        );
    }

    #[test]
    fn exhaustive_selection_matches_or_beats_cost_model() {
        let program = gemm_program();
        let guided = Compiler::new(GpuArch::a100()).compile(&program).unwrap();
        let exhaustive = Compiler::with_options(
            GpuArch::a100(),
            CompilerOptions {
                use_cost_model: false,
                ..CompilerOptions::new()
            },
        )
        .compile(&program)
        .unwrap();
        assert!(exhaustive.latency_us() <= guided.latency_us() + 1e-9);
    }
}
