//! Deterministic, seedable fault injection for chaos testing.
//!
//! Production serving systems are validated by injecting the failures they
//! claim to survive — disk corruption, failed writes, stale cache schemas,
//! slow I/O, crashing workers — and asserting the system degrades instead of
//! corrupting results. This module is the injection substrate: a
//! [`FaultInjector`] draws a deterministic pseudo-random stream per fault
//! kind from a seed, so any chaos run can be replayed exactly by rerunning
//! with the same [`FaultSpec`].
//!
//! The spec is a comma-separated `key=value` string (the `HEXCUTE_FAULTS`
//! environment variable), e.g.:
//!
//! ```text
//! HEXCUTE_FAULTS=disk_read_corrupt=0.05,write_fail=0.02,seed=42
//! ```
//!
//! | Key | Value | Injected failure |
//! |---|---|---|
//! | `disk_read_corrupt` | probability | artifact file content corrupted on read |
//! | `disk_write_fail` / `write_fail` | probability | artifact store fails mid-write (ENOSPC-style) |
//! | `stale_version` | probability | artifact file rewritten with a wrong [`ARTIFACT_VERSION`] |
//! | `synth_panic` | probability | an in-flight synthesis panics |
//! | `worker_panic` | probability | a pool worker panics while running one job item |
//! | `worker_death` | probability | a pool worker thread dies before claiming a job |
//! | `synth_stall` | probability | a synthesis walk stalls for `synth_stall_ms` (interruptibly) |
//! | `cancel_race` | probability | a cancellation poll is delayed ~1 ms, widening the cancel race |
//! | `io_delay_us` | microseconds | artificial latency added to each disk access |
//! | `synth_stall_ms` | milliseconds | how long each injected `synth_stall` lasts (default 0 = no-op) |
//! | `seed` | u64 | the replay seed (default 0) |
//!
//! Probabilities are clamped to `[0, 1]`. Unknown keys are an error so typos
//! fail loudly. When `HEXCUTE_FAULTS` is unset, [`global()`] is `None` and
//! every injection site reduces to one relaxed atomic load (or, in the pool,
//! a process-global flag check) — the injector is compiled in but inert.
//!
//! Consumers: `hexcute_core::cache` threads an injector through its disk
//! tier, `hexcute-e2e`'s `CompileService` uses `synth_panic`,
//! [`install_pool_hook`] wires `worker_panic`/`worker_death` into the
//! `hexcute_parallel` worker pool, and [`install_synth_hook`] wires
//! `synth_stall`/`cancel_race` into the synthesis walks of
//! `hexcute_synthesis` (exercising the watchdog and cancellation paths).
//!
//! [`ARTIFACT_VERSION`]: crate::cache::ARTIFACT_VERSION

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use hexcute_parallel::{set_pool_fault_hook, PoolFaultPoint};
use hexcute_synthesis::{set_synth_fault_hook, SynthFaultPoint};

/// The failure classes the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Artifact file content is corrupted when read from disk.
    DiskReadCorrupt,
    /// An artifact store fails mid-write (ENOSPC-style partial write).
    DiskWriteFail,
    /// An artifact file carries a wrong schema version.
    StaleVersion,
    /// An in-flight synthesis panics.
    SynthPanic,
    /// A pool worker panics while running a job item.
    WorkerPanic,
    /// A pool worker thread dies before claiming a job.
    WorkerDeath,
    /// A synthesis walk stalls for [`FaultSpec::synth_stall`] (interruptibly:
    /// the stall re-polls the walk's cancel token every ~1 ms). Exercises
    /// the watchdog and deadline-abort paths deterministically.
    SynthStall,
    /// A cancellation poll inside the walk is delayed ~1 ms before reading
    /// the flag, deterministically widening the window in which a cancel can
    /// land "just before" the poll.
    CancelRace,
}

/// All fault kinds, indexable by `FaultKind as usize`.
pub const FAULT_KINDS: [FaultKind; 8] = [
    FaultKind::DiskReadCorrupt,
    FaultKind::DiskWriteFail,
    FaultKind::StaleVersion,
    FaultKind::SynthPanic,
    FaultKind::WorkerPanic,
    FaultKind::WorkerDeath,
    FaultKind::SynthStall,
    FaultKind::CancelRace,
];

impl FaultKind {
    /// The canonical spec-string key.
    pub fn key(self) -> &'static str {
        match self {
            FaultKind::DiskReadCorrupt => "disk_read_corrupt",
            FaultKind::DiskWriteFail => "disk_write_fail",
            FaultKind::StaleVersion => "stale_version",
            FaultKind::SynthPanic => "synth_panic",
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::WorkerDeath => "worker_death",
            FaultKind::SynthStall => "synth_stall",
            FaultKind::CancelRace => "cancel_race",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// A malformed fault-spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// A parsed fault schedule: per-kind probabilities, I/O latency and the
/// replay seed. See the [module docs](self) for the grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Per-kind injection probability, indexed by `FaultKind as usize`.
    pub rates: [f64; FAULT_KINDS.len()],
    /// Artificial latency added to each disk access.
    pub io_delay: Duration,
    /// How long each injected [`FaultKind::SynthStall`] lasts. Zero (the
    /// default) makes an injected stall a no-op, so `synth_stall` schedules
    /// must set `synth_stall_ms` explicitly.
    pub synth_stall: Duration,
    /// Seed of the deterministic draw streams.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            rates: [0.0; FAULT_KINDS.len()],
            io_delay: Duration::ZERO,
            synth_stall: Duration::ZERO,
            seed: 0,
        }
    }
}

impl FaultSpec {
    /// The injection probability for one fault kind.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        self.rates[kind as usize]
    }

    /// Sets one kind's probability (clamped to `[0, 1]`); builder-style.
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        self.rates[kind as usize] = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the replay seed; builder-style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Parses a `key=value,...` spec string (the `HEXCUTE_FAULTS` grammar).
    ///
    /// # Errors
    ///
    /// [`FaultSpecError`] on unknown keys, missing `=`, or unparsable
    /// values — chaos configurations must fail loudly, not silently no-op.
    pub fn parse(text: &str) -> Result<Self, FaultSpecError> {
        let mut spec = FaultSpec::default();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| FaultSpecError(format!("`{part}` is not key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            let rate = || {
                value
                    .parse::<f64>()
                    .map(|r| r.clamp(0.0, 1.0))
                    .map_err(|_| {
                        FaultSpecError(format!("`{key}` needs a probability, got `{value}`"))
                    })
            };
            match key {
                "disk_read_corrupt" | "read_corrupt" => {
                    spec.rates[FaultKind::DiskReadCorrupt as usize] = rate()?
                }
                "disk_write_fail" | "write_fail" => {
                    spec.rates[FaultKind::DiskWriteFail as usize] = rate()?
                }
                "stale_version" => spec.rates[FaultKind::StaleVersion as usize] = rate()?,
                "synth_panic" => spec.rates[FaultKind::SynthPanic as usize] = rate()?,
                "worker_panic" => spec.rates[FaultKind::WorkerPanic as usize] = rate()?,
                "worker_death" => spec.rates[FaultKind::WorkerDeath as usize] = rate()?,
                "synth_stall" => spec.rates[FaultKind::SynthStall as usize] = rate()?,
                "cancel_race" => spec.rates[FaultKind::CancelRace as usize] = rate()?,
                "synth_stall_ms" => {
                    spec.synth_stall =
                        Duration::from_millis(value.parse::<u64>().map_err(|_| {
                            FaultSpecError(format!(
                                "`synth_stall_ms` needs milliseconds, got `{value}`"
                            ))
                        })?)
                }
                "io_delay_us" => {
                    spec.io_delay = Duration::from_micros(value.parse::<u64>().map_err(|_| {
                        FaultSpecError(format!("`io_delay_us` needs microseconds, got `{value}`"))
                    })?)
                }
                "seed" => {
                    spec.seed = value
                        .parse::<u64>()
                        .map_err(|_| FaultSpecError(format!("`seed` needs a u64, got `{value}`")))?
                }
                _ => return Err(FaultSpecError(format!("unknown key `{key}`"))),
            }
        }
        Ok(spec)
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            Ok(())
        };
        for kind in FAULT_KINDS {
            if self.rate(kind) > 0.0 {
                sep(f)?;
                write!(f, "{}={}", kind.key(), self.rate(kind))?;
            }
        }
        if !self.io_delay.is_zero() {
            sep(f)?;
            write!(f, "io_delay_us={}", self.io_delay.as_micros())?;
        }
        if !self.synth_stall.is_zero() {
            sep(f)?;
            write!(f, "synth_stall_ms={}", self.synth_stall.as_millis())?;
        }
        sep(f)?;
        write!(f, "seed={}", self.seed)
    }
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of its input.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic fault source for one chaos run.
///
/// Each fault kind has its own draw counter: the `n`-th query for a kind
/// fires iff `hash(seed, kind, n) < rate`, so whether one site fires never
/// depends on how many *other* sites were queried — schedules stay replayable
/// even when thread interleavings differ. Per-kind injected-event counters
/// make every chaos run auditable.
#[derive(Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    enabled: AtomicBool,
    draws: [AtomicU64; FAULT_KINDS.len()],
    injected: [AtomicU64; FAULT_KINDS.len()],
}

impl FaultInjector {
    /// Creates an injector for the given schedule.
    pub fn new(spec: FaultSpec) -> Arc<Self> {
        Arc::new(FaultInjector {
            spec,
            enabled: AtomicBool::new(true),
            draws: Default::default(),
            injected: Default::default(),
        })
    }

    /// The schedule this injector replays.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Turns injection on or off without losing draw positions — tests use
    /// this to "heal" the system mid-run and assert recovery.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// Whether the next query for `kind` injects a fault. Deterministic in
    /// (seed, kind, per-kind draw index); counts the event when it fires.
    pub fn should(&self, kind: FaultKind) -> bool {
        let rate = self.spec.rate(kind);
        if rate <= 0.0 || !self.enabled.load(Ordering::Acquire) {
            return false;
        }
        let idx = kind as usize;
        let draw = self.draws[idx].fetch_add(1, Ordering::Relaxed);
        let bits = mix(self
            .spec
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((idx as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add(draw));
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        let fires = unit < rate;
        if fires {
            self.injected[idx].fetch_add(1, Ordering::Relaxed);
        }
        fires
    }

    /// Number of injected events of one kind so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind as usize].load(Ordering::Relaxed)
    }

    /// Total injected events across all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Corrupts artifact text the way a torn read / bad sector would:
    /// truncation to half length (an artifact file is one JSON object, so
    /// the lost closing brace guarantees the result no longer parses).
    pub fn corrupt_text(&self, text: &str) -> String {
        let cut = text.len() / 2;
        let mut cut = cut.min(text.len());
        while cut > 0 && !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text[..cut].to_string()
    }

    /// Sleeps for the schedule's artificial I/O latency (no-op when zero or
    /// disabled). Called once per disk access by the cache.
    pub fn io_delay(&self) {
        if !self.spec.io_delay.is_zero() && self.enabled.load(Ordering::Acquire) {
            std::thread::sleep(self.spec.io_delay);
        }
    }
}

/// The process-global injector parsed from `HEXCUTE_FAULTS`, or `None` when
/// the variable is unset (the common, zero-overhead case). A malformed spec
/// warns once on stderr and disables injection rather than aborting.
pub fn global() -> Option<&'static Arc<FaultInjector>> {
    static GLOBAL: OnceLock<Option<Arc<FaultInjector>>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| match std::env::var("HEXCUTE_FAULTS") {
            Ok(text) => match FaultSpec::parse(&text) {
                Ok(spec) => Some(FaultInjector::new(spec)),
                Err(e) => {
                    eprintln!("hexcute: ignoring HEXCUTE_FAULTS: {e}");
                    None
                }
            },
            Err(_) => None,
        })
        .as_ref()
}

/// Wires `worker_panic` / `worker_death` into the `hexcute_parallel` worker
/// pool. The hook holds a clone of the injector; [`clear_pool_hook`] (or
/// installing another) releases it. When the injector's schedule has zero
/// rates for both kinds this is a no-op, keeping the pool's fast path free.
pub fn install_pool_hook(injector: &Arc<FaultInjector>) {
    if injector.spec.rate(FaultKind::WorkerPanic) <= 0.0
        && injector.spec.rate(FaultKind::WorkerDeath) <= 0.0
    {
        return;
    }
    let injector = injector.clone();
    set_pool_fault_hook(Some(Arc::new(move |point| match point {
        PoolFaultPoint::JobItem => injector.should(FaultKind::WorkerPanic),
        PoolFaultPoint::WorkerClaim => injector.should(FaultKind::WorkerDeath),
    })));
}

/// Removes any installed pool fault hook.
pub fn clear_pool_hook() {
    set_pool_fault_hook(None);
}

/// Installs the pool hook for the global `HEXCUTE_FAULTS` injector, if any.
/// Idempotent; called by the serving layer on construction.
pub fn install_global_pool_hook() {
    if let Some(injector) = global() {
        install_pool_hook(injector);
    }
}

/// Wires `synth_stall` / `cancel_race` into the synthesis walks of
/// `hexcute_synthesis`. The hook holds a clone of the injector;
/// [`clear_synth_hook`] (or installing another) releases it. When both rates
/// are zero this is a no-op, keeping the walks' poll sites on their one-load
/// fast path.
pub fn install_synth_hook(injector: &Arc<FaultInjector>) {
    if injector.spec.rate(FaultKind::SynthStall) <= 0.0
        && injector.spec.rate(FaultKind::CancelRace) <= 0.0
    {
        return;
    }
    let injector = injector.clone();
    set_synth_fault_hook(Some(Arc::new(move |point| match point {
        SynthFaultPoint::Stall => injector
            .should(FaultKind::SynthStall)
            .then_some(injector.spec.synth_stall),
        SynthFaultPoint::CancelPoll => injector
            .should(FaultKind::CancelRace)
            .then_some(Duration::from_millis(1)),
    })));
}

/// Removes any installed synthesis fault hook.
pub fn clear_synth_hook() {
    set_synth_fault_hook(None);
}

/// Installs the synthesis hook for the global `HEXCUTE_FAULTS` injector, if
/// any. Idempotent; called by the serving layer on construction.
pub fn install_global_synth_hook() {
    if let Some(injector) = global() {
        install_synth_hook(injector);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_issue_example() {
        let spec = FaultSpec::parse("disk_read_corrupt=0.05,write_fail=0.02,seed=42").unwrap();
        assert_eq!(spec.rate(FaultKind::DiskReadCorrupt), 0.05);
        assert_eq!(spec.rate(FaultKind::DiskWriteFail), 0.02);
        assert_eq!(spec.rate(FaultKind::SynthPanic), 0.0);
        assert_eq!(spec.seed, 42);
        let reparsed = FaultSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn parse_rejects_garbage_loudly() {
        assert!(FaultSpec::parse("disk_read_corrupt").is_err());
        assert!(FaultSpec::parse("no_such_fault=0.5").is_err());
        assert!(FaultSpec::parse("seed=abc").is_err());
        assert!(FaultSpec::parse("worker_panic=maybe").is_err());
        // Empty parts and whitespace are tolerated.
        let spec = FaultSpec::parse(" io_delay_us=250 , , seed=7 ").unwrap();
        assert_eq!(spec.io_delay, Duration::from_micros(250));
        assert_eq!(spec.seed, 7);
    }

    #[test]
    fn parse_round_trips_the_cancellation_faults() {
        let spec =
            FaultSpec::parse("synth_stall=0.25,cancel_race=0.1,synth_stall_ms=40,seed=9").unwrap();
        assert_eq!(spec.rate(FaultKind::SynthStall), 0.25);
        assert_eq!(spec.rate(FaultKind::CancelRace), 0.1);
        assert_eq!(spec.synth_stall, Duration::from_millis(40));
        let reparsed = FaultSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(spec, reparsed);
        assert!(FaultSpec::parse("synth_stall_ms=soon").is_err());
    }

    #[test]
    fn rates_clamp_to_unit_interval() {
        let spec = FaultSpec::parse("synth_panic=3.5,worker_death=-1").unwrap();
        assert_eq!(spec.rate(FaultKind::SynthPanic), 1.0);
        assert_eq!(spec.rate(FaultKind::WorkerDeath), 0.0);
    }

    #[test]
    fn draws_are_deterministic_per_seed_and_kind() {
        let spec = FaultSpec::default()
            .with_rate(FaultKind::DiskReadCorrupt, 0.3)
            .with_rate(FaultKind::DiskWriteFail, 0.3)
            .with_seed(42);
        let a = FaultInjector::new(spec.clone());
        let b = FaultInjector::new(spec.clone());
        let stream_a: Vec<bool> = (0..256)
            .map(|_| a.should(FaultKind::DiskReadCorrupt))
            .collect();
        // Interleave queries of another kind on `b`: the per-kind streams
        // must not shift.
        let stream_b: Vec<bool> = (0..256)
            .map(|_| {
                b.should(FaultKind::DiskWriteFail);
                b.should(FaultKind::DiskReadCorrupt)
            })
            .collect();
        assert_eq!(stream_a, stream_b);
        assert!(
            stream_a.iter().any(|&f| f),
            "rate 0.3 must fire in 256 draws"
        );
        assert!(!stream_a.iter().all(|&f| f), "rate 0.3 must also not fire");
        assert_eq!(
            a.injected(FaultKind::DiskReadCorrupt),
            b.injected(FaultKind::DiskReadCorrupt)
        );

        let other_seed = FaultInjector::new(spec.with_seed(43));
        let stream_c: Vec<bool> = (0..256)
            .map(|_| other_seed.should(FaultKind::DiskReadCorrupt))
            .collect();
        assert_ne!(stream_a, stream_c, "different seeds, different schedule");
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let inj = FaultInjector::new(FaultSpec::default().with_rate(FaultKind::SynthPanic, 1.0));
        assert!((0..64).all(|_| inj.should(FaultKind::SynthPanic)));
        assert!((0..64).all(|_| !inj.should(FaultKind::WorkerPanic)));
        assert_eq!(inj.injected(FaultKind::SynthPanic), 64);
        assert_eq!(inj.injected_total(), 64);
    }

    #[test]
    fn disabling_suppresses_without_losing_the_stream() {
        let spec = FaultSpec::default().with_rate(FaultKind::DiskWriteFail, 1.0);
        let inj = FaultInjector::new(spec);
        assert!(inj.should(FaultKind::DiskWriteFail));
        inj.set_enabled(false);
        assert!(!inj.should(FaultKind::DiskWriteFail));
        inj.set_enabled(true);
        assert!(inj.should(FaultKind::DiskWriteFail));
        assert_eq!(inj.injected(FaultKind::DiskWriteFail), 2);
    }

    #[test]
    fn corrupt_text_breaks_json() {
        let inj = FaultInjector::new(FaultSpec::default());
        let json = r#"{"version": 1, "fingerprint": "00000000000000ff"}"#;
        let corrupted = inj.corrupt_text(json);
        assert!(corrupted.len() < json.len());
        assert!(crate::json::JsonValue::parse(&corrupted).is_err());
    }

    #[test]
    fn pool_hook_installation_skips_zero_rate_schedules() {
        // A schedule with no pool faults must not pay for a hook.
        let inj = FaultInjector::new(FaultSpec::default().with_rate(FaultKind::SynthPanic, 1.0));
        install_pool_hook(&inj);
        // No way to observe the hook directly from here, but clearing is
        // always safe and leaves the pool pristine for other tests.
        clear_pool_hook();
    }
}
