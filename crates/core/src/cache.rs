//! A persistent, disk-backed kernel-artifact cache.
//!
//! Synthesizing a kernel is the expensive step of serving it: PRs 1–3 made a
//! *single* synthesis fast and parallel, but a vLLM-style deployment compiles
//! the same few dozen kernels on every process start. This module caches the
//! *result* of a compilation — the winning candidate's layouts, the lowered
//! program, the emitted pseudo-CUDA and the cost/perf breakdowns — keyed by a
//! **stable fingerprint** of everything that determines it:
//!
//! ```text
//! fingerprint = stable_hash(program structure, target GpuArch, CompilerOptions)
//! ```
//!
//! Toggles that are cross-checked to be bit-identical (the fast path, the
//! incremental search, worker counts) deliberately do *not* participate, so
//! one artifact serves every execution configuration.
//!
//! Artifacts are stored as versioned JSON files (`<fingerprint>.json`) under
//! a cache directory, with an in-memory [`ShardedMap`] front so repeat
//! lookups in one process never touch the filesystem. The cache is
//! defensive: corrupt files, artifacts written by a different
//! [`ARTIFACT_VERSION`], fingerprint mismatches and TTL-expired entries are
//! rejected (and deleted) so the caller re-synthesizes; every outcome is
//! counted in [`KernelCacheStats`].
//!
//! ```
//! use hexcute_arch::{DType, GpuArch};
//! use hexcute_core::{Compiler, KernelCache, KernelCacheConfig, ArtifactSource};
//! use hexcute_ir::KernelBuilder;
//! use hexcute_layout::Layout;
//!
//! let mut kb = KernelBuilder::new("cached_scale", 128);
//! let x = kb.global_view("x", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
//! let y = kb.global_view("y", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
//! let r = kb.register_tensor("r", DType::F32, &[64, 64]);
//! kb.copy(x, r);
//! kb.copy(r, y);
//! let program = kb.build()?;
//!
//! // A memory-only cache (no `dir`): the second compile is a cache hit and
//! // returns a bit-identical artifact.
//! let cache = KernelCache::new(KernelCacheConfig::default());
//! let compiler = Compiler::new(GpuArch::a100());
//! let (cold, source) = compiler.compile_with_cache(&program, &cache)?;
//! assert_eq!(source, ArtifactSource::Synthesized);
//! let (warm, source) = compiler.compile_with_cache(&program, &cache)?;
//! assert_eq!(source, ArtifactSource::Memory);
//! assert_eq!(*cold, *warm);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use hexcute_arch::GpuArch;
use hexcute_ir::Program;
use hexcute_parallel::cache::{CacheStats, ShardedMap};

use crate::compiler::{CompiledKernel, CompilerOptions};
use crate::faults::{self, FaultInjector, FaultKind};
use crate::json::{JsonError, JsonValue};

/// Version tag written into every artifact file. Bump it whenever the
/// artifact schema *or* the semantics of any serialized field change: files
/// carrying a different version are rejected on read and re-synthesized.
pub const ARTIFACT_VERSION: usize = 2;

// ---------------------------------------------------------------------------
// Stable fingerprints.
// ---------------------------------------------------------------------------

/// A [`Hasher`] with a fixed algorithm (FNV-1a over the byte stream), so
/// fingerprints are stable across processes and Rust versions — unlike
/// `DefaultHasher`, whose algorithm is unspecified. Multi-byte integer
/// writes follow the platform's native byte order, so fingerprints are
/// per-machine (which is all a local disk cache needs); [`ARTIFACT_VERSION`]
/// plus the fingerprint-match check on read guard everything else.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher {
            state: Self::FNV_OFFSET,
        }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StableHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// The stable cache key for compiling `program` for `arch` under `options`.
///
/// The hash covers the full program structure (name, schedule, every tensor
/// declaration, every operation), the complete architecture model (so A100
/// and H100 artifacts never collide) and every result-affecting compiler
/// option (see [`SynthesisOptions::hash_stable`]). Execution-strategy
/// toggles that are cross-checked bit-for-bit — the fast path, the
/// incremental search, worker counts — are excluded on purpose.
///
/// [`SynthesisOptions::hash_stable`]: hexcute_synthesis::SynthesisOptions::hash_stable
pub fn artifact_fingerprint(program: &Program, arch: &GpuArch, options: &CompilerOptions) -> u64 {
    let mut h = StableHasher::new();
    // Program structure. The grid participates: two programs differing only
    // in `grid_blocks` (e.g. the same tile kernel at two batch sizes, or two
    // grouped-GEMM problem lists with different routings) produce different
    // device-level performance reports, so they must not share an artifact.
    program.name.hash(&mut h);
    program.threads_per_block.hash(&mut h);
    program.grid_blocks.hash(&mut h);
    program.main_loop_trip_count.hash(&mut h);
    program.schedule.pipeline_stages.hash(&mut h);
    program.schedule.warp_specialized.hash(&mut h);
    for decl in program.tensors() {
        decl.id.hash(&mut h);
        decl.name.hash(&mut h);
        decl.dtype.hash(&mut h);
        decl.space.hash(&mut h);
        decl.shape.hash(&mut h);
        decl.global_layout.hash(&mut h);
    }
    for op in program.ops() {
        op.id.hash(&mut h);
        // `OpKind`'s debug rendering spells out the operation and its
        // operands deterministically; hashing it keeps this function
        // independent of per-variant field churn.
        format!("{:?}", op.kind).hash(&mut h);
        op.in_main_loop.hash(&mut h);
    }
    // Target architecture: the debug rendering covers every modelled
    // parameter (clocks, bandwidths, instruction catalog), so two arches
    // that would compile differently fingerprint differently.
    format!("{:?}", arch).hash(&mut h);
    // Compiler options.
    options.use_cost_model.hash(&mut h);
    options.synthesis.hash_stable(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// The artifact.
// ---------------------------------------------------------------------------

/// The synthesized shared-memory layout of one tensor, rendered stably.
#[derive(Debug, Clone, PartialEq)]
pub struct SmemLayoutRecord {
    /// Tensor name.
    pub tensor: String,
    /// Byte offset within dynamic shared memory.
    pub offset_bytes: usize,
    /// Allocation size in bytes.
    pub size_bytes: usize,
    /// The synthesized (possibly swizzled) layout, rendered via `Display`.
    pub layout: String,
}

/// The synthesized thread-value layout of one register tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct TvLayoutRecord {
    /// Tensor name.
    pub tensor: String,
    /// The thread-value layout, rendered via `Display`.
    pub layout: String,
}

/// One operation's slice of the cost breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct OpCostRecord {
    /// Cycles the issuing warps are occupied.
    pub issue_cycles: f64,
    /// Cycles stalled waiting for in-flight producers.
    pub stall_cycles: f64,
    /// Cycles until the result is available after issuing.
    pub completion_cycles: f64,
}

/// The analytical cost breakdown of the winning candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRecord {
    /// Estimated cycles for one thread block.
    pub total_cycles: f64,
    /// Prologue cycles.
    pub prologue_cycles: f64,
    /// Cycles of one (pipelined) main-loop iteration.
    pub loop_iteration_cycles: f64,
    /// Epilogue cycles.
    pub epilogue_cycles: f64,
    /// Cycles charged to register-layout conversions.
    pub rearrange_cycles: f64,
    /// Per-operation attribution, in program order.
    pub per_op: Vec<OpCostRecord>,
}

/// The simulated device-level performance of the winning candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// End-to-end latency in microseconds.
    pub latency_us: f64,
    /// Cycles for one thread block including bank-conflict penalties.
    pub block_cycles: f64,
    /// DRAM-bound latency component.
    pub dram_us: f64,
    /// Tensor-Core-bound latency component.
    pub compute_us: f64,
    /// SM-execution latency component.
    pub sm_us: f64,
    /// Waves of thread blocks across the device.
    pub waves: usize,
    /// Extra cycles per block from shared-memory bank conflicts.
    pub bank_conflict_cycles: f64,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
}

/// A cached compilation result: everything downstream consumers (the
/// serving layer, code emission, reporting) need, without re-running
/// synthesis. Every field is a deterministic function of the fingerprint
/// inputs, so a cache hit is bit-identical to a fresh synthesis — enforced
/// by `crates/core/tests/artifact_cache.rs` across all four kernel families.
///
/// Wall-clock compile time is deliberately *not* part of the artifact: it
/// differs run to run and would break the bit-identical contract.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelArtifact {
    /// Schema version ([`ARTIFACT_VERSION`] at write time).
    pub version: usize,
    /// The cache key this artifact was stored under.
    pub fingerprint: u64,
    /// Kernel (program) name.
    pub kernel: String,
    /// Target architecture name.
    pub arch: String,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Blocks launched for the modelled problem.
    pub grid_blocks: usize,
    /// Main-loop trip count.
    pub main_loop_trip_count: usize,
    /// Software pipeline depth.
    pub pipeline_stages: usize,
    /// Whether the kernel is warp specialized.
    pub warp_specialized: bool,
    /// Total dynamic shared memory in bytes.
    pub smem_bytes: usize,
    /// Estimated 32-bit registers per thread.
    pub registers_per_thread: usize,
    /// Winning candidate's thread-value layouts (register tensors).
    pub tv_layouts: Vec<TvLayoutRecord>,
    /// Winning candidate's synthesized shared-memory layouts.
    pub smem_layouts: Vec<SmemLayoutRecord>,
    /// The lowered per-block instruction stream, one line per instruction.
    pub lowered: Vec<String>,
    /// The emitted pseudo-CUDA source.
    pub cuda: String,
    /// Analytical cost breakdown of the winner.
    pub cost: CostRecord,
    /// Simulated performance of the winner.
    pub perf: PerfRecord,
}

/// Why an artifact file could not be used.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// The file is not valid JSON (truncated, garbage, partial write).
    Json(JsonError),
    /// The JSON parses but does not match the artifact schema.
    Schema(String),
    /// The artifact was written by a different [`ARTIFACT_VERSION`].
    Version {
        /// The version found in the file.
        found: usize,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Json(e) => write!(f, "corrupt artifact: {e}"),
            ArtifactError::Schema(msg) => write!(f, "artifact schema mismatch: {msg}"),
            ArtifactError::Version { found } => write!(
                f,
                "artifact version {found} != supported version {ARTIFACT_VERSION}"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<JsonError> for ArtifactError {
    fn from(e: JsonError) -> Self {
        ArtifactError::Json(e)
    }
}

fn schema_err(msg: impl Into<String>) -> ArtifactError {
    ArtifactError::Schema(msg.into())
}

fn get_f64(v: &JsonValue, key: &str) -> Result<f64, ArtifactError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| schema_err(format!("missing or non-numeric `{key}`")))
}

fn get_usize(v: &JsonValue, key: &str) -> Result<usize, ArtifactError> {
    v.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| schema_err(format!("missing or non-integral `{key}`")))
}

fn get_str(v: &JsonValue, key: &str) -> Result<String, ArtifactError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| schema_err(format!("missing or non-string `{key}`")))
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, ArtifactError> {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| schema_err(format!("missing or non-boolean `{key}`")))
}

fn get_arr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], ArtifactError> {
    v.get(key)
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| schema_err(format!("missing or non-array `{key}`")))
}

fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl KernelArtifact {
    /// Builds the artifact for a finished compilation. `fingerprint` must be
    /// the [`artifact_fingerprint`] of the inputs that produced `compiled`.
    pub fn from_compiled(fingerprint: u64, compiled: &CompiledKernel, arch: &GpuArch) -> Self {
        let program = &compiled.program;
        KernelArtifact {
            version: ARTIFACT_VERSION,
            fingerprint,
            kernel: program.name.clone(),
            arch: arch.name.clone(),
            threads_per_block: compiled.lowered.threads_per_block,
            grid_blocks: compiled.lowered.grid_blocks,
            main_loop_trip_count: compiled.lowered.main_loop_trip_count,
            pipeline_stages: compiled.lowered.pipeline_stages,
            warp_specialized: compiled.lowered.warp_specialized,
            smem_bytes: compiled.lowered.smem_bytes,
            registers_per_thread: compiled.lowered.registers_per_thread,
            tv_layouts: compiled
                .candidate
                .tv_layouts
                .iter()
                .map(|(id, tv)| TvLayoutRecord {
                    tensor: program.tensor(*id).name.clone(),
                    layout: tv.to_string(),
                })
                .collect(),
            smem_layouts: compiled
                .lowered
                .smem_allocs
                .iter()
                .map(|a| SmemLayoutRecord {
                    tensor: program.tensor(a.tensor).name.clone(),
                    offset_bytes: a.offset_bytes,
                    size_bytes: a.size_bytes,
                    layout: a.layout.to_string(),
                })
                .collect(),
            lowered: compiled.lowered.instruction_lines(program),
            cuda: compiled.cuda_source(),
            cost: CostRecord {
                total_cycles: compiled.cost.total_cycles,
                prologue_cycles: compiled.cost.prologue_cycles,
                loop_iteration_cycles: compiled.cost.loop_iteration_cycles,
                epilogue_cycles: compiled.cost.epilogue_cycles,
                rearrange_cycles: compiled.cost.rearrange_cycles,
                per_op: compiled
                    .cost
                    .per_op
                    .iter()
                    .map(|c| OpCostRecord {
                        issue_cycles: c.issue_cycles,
                        stall_cycles: c.stall_cycles,
                        completion_cycles: c.completion_cycles,
                    })
                    .collect(),
            },
            perf: PerfRecord {
                latency_us: compiled.perf.latency_us,
                block_cycles: compiled.perf.block_cycles,
                dram_us: compiled.perf.dram_us,
                compute_us: compiled.perf.compute_us,
                sm_us: compiled.perf.sm_us,
                waves: compiled.perf.waves,
                bank_conflict_cycles: compiled.perf.bank_conflict_cycles,
                launch_overhead_us: compiled.perf.launch_overhead_us,
            },
        }
    }

    /// The estimated kernel latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.perf.latency_us
    }

    /// Serializes the artifact as versioned JSON (the on-disk format).
    pub fn to_json(&self) -> String {
        let num = JsonValue::Num;
        let layouts = self
            .smem_layouts
            .iter()
            .map(|l| {
                obj(vec![
                    ("tensor", JsonValue::Str(l.tensor.clone())),
                    ("offset_bytes", num(l.offset_bytes as f64)),
                    ("size_bytes", num(l.size_bytes as f64)),
                    ("layout", JsonValue::Str(l.layout.clone())),
                ])
            })
            .collect();
        let tv = self
            .tv_layouts
            .iter()
            .map(|l| {
                obj(vec![
                    ("tensor", JsonValue::Str(l.tensor.clone())),
                    ("layout", JsonValue::Str(l.layout.clone())),
                ])
            })
            .collect();
        let per_op = self
            .cost
            .per_op
            .iter()
            .map(|c| {
                obj(vec![
                    ("issue_cycles", num(c.issue_cycles)),
                    ("stall_cycles", num(c.stall_cycles)),
                    ("completion_cycles", num(c.completion_cycles)),
                ])
            })
            .collect();
        obj(vec![
            ("version", num(self.version as f64)),
            (
                "fingerprint",
                JsonValue::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("kernel", JsonValue::Str(self.kernel.clone())),
            ("arch", JsonValue::Str(self.arch.clone())),
            ("threads_per_block", num(self.threads_per_block as f64)),
            ("grid_blocks", num(self.grid_blocks as f64)),
            (
                "main_loop_trip_count",
                num(self.main_loop_trip_count as f64),
            ),
            ("pipeline_stages", num(self.pipeline_stages as f64)),
            ("warp_specialized", JsonValue::Bool(self.warp_specialized)),
            ("smem_bytes", num(self.smem_bytes as f64)),
            (
                "registers_per_thread",
                num(self.registers_per_thread as f64),
            ),
            ("tv_layouts", JsonValue::Arr(tv)),
            ("smem_layouts", JsonValue::Arr(layouts)),
            (
                "lowered",
                JsonValue::Arr(
                    self.lowered
                        .iter()
                        .map(|l| JsonValue::Str(l.clone()))
                        .collect(),
                ),
            ),
            ("cuda", JsonValue::Str(self.cuda.clone())),
            (
                "cost",
                obj(vec![
                    ("total_cycles", num(self.cost.total_cycles)),
                    ("prologue_cycles", num(self.cost.prologue_cycles)),
                    (
                        "loop_iteration_cycles",
                        num(self.cost.loop_iteration_cycles),
                    ),
                    ("epilogue_cycles", num(self.cost.epilogue_cycles)),
                    ("rearrange_cycles", num(self.cost.rearrange_cycles)),
                    ("per_op", JsonValue::Arr(per_op)),
                ]),
            ),
            (
                "perf",
                obj(vec![
                    ("latency_us", num(self.perf.latency_us)),
                    ("block_cycles", num(self.perf.block_cycles)),
                    ("dram_us", num(self.perf.dram_us)),
                    ("compute_us", num(self.perf.compute_us)),
                    ("sm_us", num(self.perf.sm_us)),
                    ("waves", num(self.perf.waves as f64)),
                    ("bank_conflict_cycles", num(self.perf.bank_conflict_cycles)),
                    ("launch_overhead_us", num(self.perf.launch_overhead_us)),
                ]),
            ),
        ])
        .write()
    }

    /// Parses an artifact file.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Json`] for malformed JSON, [`ArtifactError::Version`]
    /// when the file was written by a different schema version, and
    /// [`ArtifactError::Schema`] when fields are missing or mistyped.
    pub fn from_json(text: &str) -> Result<Self, ArtifactError> {
        let v = JsonValue::parse(text)?;
        let version = get_usize(&v, "version")?;
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::Version { found: version });
        }
        let fingerprint = u64::from_str_radix(&get_str(&v, "fingerprint")?, 16)
            .map_err(|_| schema_err("`fingerprint` is not a hex u64"))?;
        let tv_layouts = get_arr(&v, "tv_layouts")?
            .iter()
            .map(|l| {
                Ok(TvLayoutRecord {
                    tensor: get_str(l, "tensor")?,
                    layout: get_str(l, "layout")?,
                })
            })
            .collect::<Result<_, ArtifactError>>()?;
        let smem_layouts = get_arr(&v, "smem_layouts")?
            .iter()
            .map(|l| {
                Ok(SmemLayoutRecord {
                    tensor: get_str(l, "tensor")?,
                    offset_bytes: get_usize(l, "offset_bytes")?,
                    size_bytes: get_usize(l, "size_bytes")?,
                    layout: get_str(l, "layout")?,
                })
            })
            .collect::<Result<_, ArtifactError>>()?;
        let lowered = get_arr(&v, "lowered")?
            .iter()
            .map(|l| {
                l.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| schema_err("non-string `lowered` entry"))
            })
            .collect::<Result<_, ArtifactError>>()?;
        let cost_v = v.get("cost").ok_or_else(|| schema_err("missing `cost`"))?;
        let per_op = get_arr(cost_v, "per_op")?
            .iter()
            .map(|c| {
                Ok(OpCostRecord {
                    issue_cycles: get_f64(c, "issue_cycles")?,
                    stall_cycles: get_f64(c, "stall_cycles")?,
                    completion_cycles: get_f64(c, "completion_cycles")?,
                })
            })
            .collect::<Result<_, ArtifactError>>()?;
        let perf_v = v.get("perf").ok_or_else(|| schema_err("missing `perf`"))?;
        Ok(KernelArtifact {
            version,
            fingerprint,
            kernel: get_str(&v, "kernel")?,
            arch: get_str(&v, "arch")?,
            threads_per_block: get_usize(&v, "threads_per_block")?,
            grid_blocks: get_usize(&v, "grid_blocks")?,
            main_loop_trip_count: get_usize(&v, "main_loop_trip_count")?,
            pipeline_stages: get_usize(&v, "pipeline_stages")?,
            warp_specialized: get_bool(&v, "warp_specialized")?,
            smem_bytes: get_usize(&v, "smem_bytes")?,
            registers_per_thread: get_usize(&v, "registers_per_thread")?,
            tv_layouts,
            smem_layouts,
            lowered,
            cuda: get_str(&v, "cuda")?,
            cost: CostRecord {
                total_cycles: get_f64(cost_v, "total_cycles")?,
                prologue_cycles: get_f64(cost_v, "prologue_cycles")?,
                loop_iteration_cycles: get_f64(cost_v, "loop_iteration_cycles")?,
                epilogue_cycles: get_f64(cost_v, "epilogue_cycles")?,
                rearrange_cycles: get_f64(cost_v, "rearrange_cycles")?,
                per_op,
            },
            perf: PerfRecord {
                latency_us: get_f64(perf_v, "latency_us")?,
                block_cycles: get_f64(perf_v, "block_cycles")?,
                dram_us: get_f64(perf_v, "dram_us")?,
                compute_us: get_f64(perf_v, "compute_us")?,
                sm_us: get_f64(perf_v, "sm_us")?,
                waves: get_usize(perf_v, "waves")?,
                bank_conflict_cycles: get_f64(perf_v, "bank_conflict_cycles")?,
                launch_overhead_us: get_f64(perf_v, "launch_overhead_us")?,
            },
        })
    }
}

// ---------------------------------------------------------------------------
// The cache.
// ---------------------------------------------------------------------------

/// Where a served artifact came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactSource {
    /// Served from the in-memory front.
    Memory,
    /// Loaded (and validated) from the disk store.
    Disk,
    /// Freshly synthesized (a cache miss).
    Synthesized,
}

impl fmt::Display for ArtifactSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArtifactSource::Memory => "memory",
            ArtifactSource::Disk => "disk",
            ArtifactSource::Synthesized => "synthesized",
        })
    }
}

/// Configuration of a [`KernelCache`].
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCacheConfig {
    /// Directory for the persistent store. `None` (the default) keeps the
    /// cache memory-only.
    pub dir: Option<PathBuf>,
    /// Approximate bound on resident in-memory artifacts (shard-wise
    /// eviction, see [`ShardedMap::bounded`]).
    pub memory_capacity: usize,
    /// Maximum artifact files kept on disk; the oldest (by modification
    /// time) are pruned after each store.
    pub disk_capacity: usize,
    /// Entries older than this — by insertion time for the memory front, by
    /// file modification time on disk — are treated as stale (disk files are
    /// deleted) and re-synthesized. `None` disables expiry.
    pub ttl: Option<Duration>,
    /// Consecutive disk-write failures that trip the circuit breaker into
    /// memory-only mode. `0` disables the breaker.
    pub breaker_threshold: usize,
    /// While the breaker is open, one probe write per interval tests whether
    /// the disk tier has recovered; a successful probe closes the breaker.
    pub breaker_probe_interval: Duration,
}

impl Default for KernelCacheConfig {
    fn default() -> Self {
        KernelCacheConfig {
            dir: None,
            memory_capacity: 256,
            disk_capacity: 1024,
            ttl: None,
            breaker_threshold: 8,
            breaker_probe_interval: Duration::from_millis(500),
        }
    }
}

impl KernelCacheConfig {
    /// Reads the configuration from the environment:
    ///
    /// | Variable | Meaning | Default |
    /// |---|---|---|
    /// | `HEXCUTE_CACHE_DIR` | persistent store directory | unset → memory-only |
    /// | `HEXCUTE_CACHE_CAPACITY` | in-memory artifact bound | 256 |
    /// | `HEXCUTE_CACHE_DISK_CAPACITY` | max artifact files on disk | 1024 |
    /// | `HEXCUTE_CACHE_TTL_SECS` | artifact time-to-live in seconds (`0` = everything is immediately stale) | unset → no expiry |
    /// | `HEXCUTE_CACHE_BREAKER_THRESHOLD` | consecutive write failures tripping memory-only mode (`0` = never) | 8 |
    /// | `HEXCUTE_CACHE_BREAKER_PROBE_MS` | milliseconds between recovery probes while tripped | 500 |
    ///
    /// Unparsable numeric values fall back to the defaults.
    pub fn from_env() -> Self {
        let defaults = Self::default();
        let parse = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(default)
        };
        KernelCacheConfig {
            dir: std::env::var("HEXCUTE_CACHE_DIR").ok().map(PathBuf::from),
            memory_capacity: parse("HEXCUTE_CACHE_CAPACITY", defaults.memory_capacity),
            disk_capacity: parse("HEXCUTE_CACHE_DISK_CAPACITY", defaults.disk_capacity),
            ttl: std::env::var("HEXCUTE_CACHE_TTL_SECS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(Duration::from_secs),
            breaker_threshold: parse(
                "HEXCUTE_CACHE_BREAKER_THRESHOLD",
                defaults.breaker_threshold,
            ),
            breaker_probe_interval: std::env::var("HEXCUTE_CACHE_BREAKER_PROBE_MS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(Duration::from_millis)
                .unwrap_or(defaults.breaker_probe_interval),
        }
    }
}

// ---------------------------------------------------------------------------
// The disk-tier circuit breaker.
// ---------------------------------------------------------------------------

/// What the breaker allows a disk write to do right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerDecision {
    /// Breaker closed: writes proceed normally.
    Closed,
    /// Breaker open, probe interval elapsed: this one write may test the
    /// disk tier; its outcome closes or re-arms the breaker.
    Probe,
    /// Breaker open: skip the disk tier (memory-only mode).
    Skip,
}

#[derive(Debug)]
struct BreakerState {
    consecutive_failures: usize,
    open: bool,
    last_probe: Option<Instant>,
}

/// A consecutive-failure circuit breaker over the disk store. Writes drive
/// it: `threshold` failures in a row open it (the cache degrades to
/// memory-only), after which one probe write per `probe_interval` tests for
/// recovery; any successful write closes it again.
#[derive(Debug)]
struct Breaker {
    threshold: usize,
    probe_interval: Duration,
    state: std::sync::Mutex<BreakerState>,
    trips: AtomicU64,
    recoveries: AtomicU64,
}

impl Breaker {
    fn new(threshold: usize, probe_interval: Duration) -> Self {
        Breaker {
            threshold,
            probe_interval,
            state: std::sync::Mutex::new(BreakerState {
                consecutive_failures: 0,
                open: false,
                last_probe: None,
            }),
            trips: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn is_open(&self) -> bool {
        self.lock().open
    }

    fn decide(&self) -> BreakerDecision {
        let mut s = self.lock();
        if !s.open {
            return BreakerDecision::Closed;
        }
        let now = Instant::now();
        match s.last_probe {
            Some(t) if now.duration_since(t) < self.probe_interval => BreakerDecision::Skip,
            _ => {
                s.last_probe = Some(now);
                BreakerDecision::Probe
            }
        }
    }

    fn success(&self) {
        let mut s = self.lock();
        s.consecutive_failures = 0;
        if s.open {
            s.open = false;
            s.last_probe = None;
            self.recoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn failure(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut s = self.lock();
        s.consecutive_failures += 1;
        if !s.open && s.consecutive_failures >= self.threshold {
            s.open = true;
            s.last_probe = Some(Instant::now());
            self.trips.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Counters describing a [`KernelCache`]'s behaviour. Snapshot via
/// [`KernelCache::stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelCacheStats {
    /// Hit/miss/eviction counters of the in-memory front.
    pub memory: CacheStats,
    /// Artifacts served from the disk store.
    pub disk_hits: u64,
    /// Lookups that found no usable artifact file.
    pub disk_misses: u64,
    /// Files rejected as corrupt (unparsable JSON, schema or fingerprint
    /// mismatch) and deleted.
    pub corrupt: u64,
    /// Files rejected for carrying a different [`ARTIFACT_VERSION`] and
    /// deleted.
    pub stale_version: u64,
    /// Files expired by the TTL and deleted.
    pub expired: u64,
    /// Artifacts written to disk.
    pub stores: u64,
    /// Files pruned by the disk-capacity bound.
    pub file_evictions: u64,
    /// Artifact files currently on disk (0 for memory-only caches).
    pub disk_entries: usize,
    /// Defective files renamed aside (`.quarantined`) for post-mortem
    /// inspection instead of being served.
    pub quarantined: u64,
    /// Disk writes that failed (I/O error or injected fault).
    pub write_failures: u64,
    /// Atomic-rename races lost to a concurrent writer of the same artifact
    /// (benign: the other writer's bit-identical file stands).
    pub rename_races: u64,
    /// Artifacts placed in the warm (memory) tier by speculative prefetch
    /// ([`KernelCache::prefetch_with`] syntheses plus prefetch-triggered
    /// disk promotions) rather than by a demand request.
    pub prefetch_stores: u64,
    /// Disk operations skipped because the circuit breaker was open.
    pub breaker_skips: u64,
    /// Times the breaker tripped into memory-only mode.
    pub breaker_trips: u64,
    /// Times a probe write closed the breaker again.
    pub breaker_recoveries: u64,
    /// Whether the breaker is open right now (disk tier bypassed).
    pub breaker_open: bool,
}

impl fmt::Display for KernelCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory: {}; disk: {} hits / {} misses, {} stored, {} resident, \
             {} corrupt, {} stale-version, {} expired, {} pruned, \
             {} quarantined, {} write-failures, {} rename-races; \
             {} prefetch-stores; breaker: {} ({} trips, {} recoveries, {} skips)",
            self.memory,
            self.disk_hits,
            self.disk_misses,
            self.stores,
            self.disk_entries,
            self.corrupt,
            self.stale_version,
            self.expired,
            self.file_evictions,
            self.quarantined,
            self.write_failures,
            self.rename_races,
            self.prefetch_stores,
            if self.breaker_open { "open" } else { "closed" },
            self.breaker_trips,
            self.breaker_recoveries,
            self.breaker_skips
        )
    }
}

/// A persistent, disk-backed kernel-artifact cache with an in-memory
/// [`ShardedMap`] front.
///
/// Lookups go memory → disk → miss; a disk hit is promoted into memory.
/// Artifacts are written crash-consistently (temp file, fsync, atomic
/// rename), so a concurrent reader never observes a partial file even across
/// power loss, and every defect a reader *can* observe (corruption, version
/// drift, expiry) is rejected and counted instead of surfacing as an error —
/// corrupt files are quarantined (renamed aside for post-mortem inspection)
/// and the caller just re-synthesizes. Persistent write failure trips a
/// circuit breaker into memory-only mode with probe-based recovery, and
/// a [`FaultInjector`] can be threaded through every disk path for chaos
/// testing. See the [module docs](self) for a usage example.
#[derive(Debug)]
pub struct KernelCache {
    config: KernelCacheConfig,
    /// Each resident artifact carries its insertion instant so the TTL
    /// applies to the memory front too, not just the disk files.
    memory: ShardedMap<u64, (Arc<KernelArtifact>, Instant)>,
    faults: Option<Arc<FaultInjector>>,
    breaker: Breaker,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    corrupt: AtomicU64,
    stale_version: AtomicU64,
    expired: AtomicU64,
    stores: AtomicU64,
    file_evictions: AtomicU64,
    quarantined: AtomicU64,
    write_failures: AtomicU64,
    rename_races: AtomicU64,
    prefetch_stores: AtomicU64,
    breaker_skips: AtomicU64,
}

impl KernelCache {
    /// Creates a cache with the given configuration. The cache directory is
    /// created lazily on first store. Fault injection follows the global
    /// `HEXCUTE_FAULTS` injector ([`faults::global`]); use
    /// [`KernelCache::with_faults`] to inject a schedule in-process.
    pub fn new(config: KernelCacheConfig) -> Self {
        Self::with_faults(config, faults::global().cloned())
    }

    /// Creates a cache with an explicit fault injector (or `None` for a
    /// fault-free cache regardless of the environment).
    pub fn with_faults(config: KernelCacheConfig, faults: Option<Arc<FaultInjector>>) -> Self {
        let memory = ShardedMap::bounded(config.memory_capacity.max(1));
        let breaker = Breaker::new(config.breaker_threshold, config.breaker_probe_interval);
        KernelCache {
            config,
            memory,
            faults,
            breaker,
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            stale_version: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            file_evictions: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
            rename_races: AtomicU64::new(0),
            prefetch_stores: AtomicU64::new(0),
            breaker_skips: AtomicU64::new(0),
        }
    }

    /// A cache configured from the `HEXCUTE_CACHE_*` environment variables
    /// (see [`KernelCacheConfig::from_env`]).
    pub fn from_env() -> Self {
        Self::new(KernelCacheConfig::from_env())
    }

    /// The active configuration.
    pub fn config(&self) -> &KernelCacheConfig {
        &self.config
    }

    /// The on-disk path an artifact with this fingerprint is stored at
    /// (`None` for memory-only caches).
    pub fn artifact_path(&self, fingerprint: u64) -> Option<PathBuf> {
        self.config
            .dir
            .as_ref()
            .map(|d| d.join(format!("{fingerprint:016x}.json")))
    }

    /// Looks up an artifact: the in-memory front first, then the disk store.
    /// A disk hit is promoted into memory; a defective file (corrupt, wrong
    /// version, wrong fingerprint, expired) is deleted and counted, and the
    /// lookup reports a miss so the caller re-synthesizes. The TTL applies
    /// to both tiers: an expired memory entry falls through (and is
    /// overwritten by the re-synthesis), an expired file is deleted.
    pub fn get(&self, fingerprint: u64) -> Option<(Arc<KernelArtifact>, ArtifactSource)> {
        if let Some((hit, inserted)) = self.memory.get(&fingerprint) {
            match self.config.ttl {
                Some(ttl) if inserted.elapsed() >= ttl => {
                    self.expired.fetch_add(1, Ordering::Relaxed);
                    // Fall through to disk (typically expired too) and on to
                    // re-synthesis; the insert overwrites this entry.
                }
                _ => return Some((hit, ArtifactSource::Memory)),
            }
        }
        let path = self.artifact_path(fingerprint)?;
        if self.breaker.is_open() {
            // Memory-only mode: the disk tier is misbehaving, don't touch it
            // on the read path (probes happen on writes).
            self.breaker_skips.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match self.load(&path, fingerprint) {
            Some(artifact) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let artifact = Arc::new(artifact);
                self.memory
                    .insert(fingerprint, (artifact.clone(), Instant::now()));
                Some((artifact, ArtifactSource::Disk))
            }
            None => {
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn load(&self, path: &Path, fingerprint: u64) -> Option<KernelArtifact> {
        let metadata = std::fs::metadata(path).ok()?;
        if let (Some(ttl), Ok(modified)) = (self.config.ttl, metadata.modified()) {
            let age = SystemTime::now()
                .duration_since(modified)
                .unwrap_or(Duration::ZERO);
            if age >= ttl {
                self.expired.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(path);
                return None;
            }
        }
        if let Some(f) = &self.faults {
            f.io_delay();
        }
        let mut text = std::fs::read_to_string(path).ok()?;
        let parsed = match &self.faults {
            Some(f) if f.should(FaultKind::DiskReadCorrupt) => {
                text = f.corrupt_text(&text);
                KernelArtifact::from_json(&text)
            }
            Some(f) if f.should(FaultKind::StaleVersion) => Err(ArtifactError::Version {
                found: ARTIFACT_VERSION + 1,
            }),
            _ => KernelArtifact::from_json(&text),
        };
        match parsed {
            Ok(artifact) if artifact.fingerprint == fingerprint => Some(artifact),
            Ok(_) => {
                // A file whose content disagrees with its name: treat as
                // corruption (e.g. a hand-copied or bit-flipped file).
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.quarantine(path);
                None
            }
            Err(ArtifactError::Version { .. }) => {
                // Version drift is expected across upgrades, not worth a
                // post-mortem: delete rather than quarantine.
                self.stale_version.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(path);
                None
            }
            Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.quarantine(path);
                None
            }
        }
    }

    /// Moves a defective artifact file aside as `<fingerprint>.quarantined`
    /// so it can never be served again but survives for inspection. Falls
    /// back to deletion if the rename fails; either way the `.json` name is
    /// free for the re-synthesized replacement.
    fn quarantine(&self, path: &Path) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let aside = path.with_extension("quarantined");
        if std::fs::rename(path, &aside).is_err() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Inserts an artifact into the memory front and (when a directory is
    /// configured) the disk store. Disk writes are crash-consistent — temp
    /// file, fsync, atomic rename — and filesystem failures degrade to a
    /// memory-only insert rather than an error: the cache is an accelerator,
    /// not a dependency. Enough consecutive write failures trip the circuit
    /// breaker, after which the disk tier is skipped entirely except for one
    /// probe write per probe interval.
    pub fn insert(&self, artifact: Arc<KernelArtifact>) {
        let fingerprint = artifact.fingerprint;
        self.memory
            .insert(fingerprint, (artifact.clone(), Instant::now()));
        let Some(path) = self.artifact_path(fingerprint) else {
            return;
        };
        if self.breaker.decide() == BreakerDecision::Skip {
            self.breaker_skips.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let dir = path.parent().expect("artifact path has a parent");
        if std::fs::create_dir_all(dir).is_err() {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
            self.breaker.failure();
            return;
        }
        // The counter keeps concurrent writers of the *same* fingerprint in
        // one process from sharing a temp file.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = dir.join(format!(
            "{fingerprint:016x}.tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if let Some(f) = &self.faults {
            f.io_delay();
        }
        let json = artifact.to_json();
        let injected_fail = self
            .faults
            .as_ref()
            .is_some_and(|f| f.should(FaultKind::DiskWriteFail));
        let written = if injected_fail {
            // Simulate ENOSPC mid-write: leave a truncated temp file behind,
            // then report failure. The rename never happens, so readers
            // never see the partial content.
            let _ = std::fs::write(&tmp, &json[..json.len() / 2]);
            false
        } else {
            Self::write_durable(&tmp, json.as_bytes()).is_ok()
        };
        if !written {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
            self.breaker.failure();
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        match std::fs::rename(&tmp, &path) {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                self.breaker.success();
                self.prune(dir);
            }
            Err(_) if path.exists() => {
                // Lost an atomic-rename race: a concurrent writer landed its
                // (bit-identical) file first. Benign — count and move on.
                self.rename_races.fetch_add(1, Ordering::Relaxed);
                self.breaker.success();
                let _ = std::fs::remove_file(&tmp);
            }
            Err(_) => {
                self.write_failures.fetch_add(1, Ordering::Relaxed);
                self.breaker.failure();
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    /// Whether `fingerprint` is already warm — resident **and unexpired** in
    /// the memory tier — without promoting, loading or touching any hit/miss
    /// counter. The speculative-prefetch predictor probes with this so its
    /// speculation never distorts the demand-path hit rate; TTL-expired
    /// entries read as cold so they are eligible for re-warming.
    pub fn peek_memory(&self, fingerprint: u64) -> bool {
        match self.memory.peek(&fingerprint) {
            Some((_, inserted)) => match self.config.ttl {
                Some(ttl) => inserted.elapsed() < ttl,
                None => true,
            },
            None => false,
        }
    }

    /// Speculatively warms `fingerprint`: promotes an on-disk artifact into
    /// the memory tier (cheap JSON load) or — when `synthesize` produces one
    /// — inserts a freshly synthesized artifact through the ordinary
    /// crash-consistent [`KernelCache::insert`] path. Returns whether the
    /// fingerprint is warm afterwards. Either way the work is attributed to
    /// [`KernelCacheStats::prefetch_stores`], not to the demand counters a
    /// serving dashboard watches.
    ///
    /// `synthesize` runs only on a full miss (not on disk promotions), and
    /// may return `None` (e.g. a cancelled speculative compile), which
    /// leaves the cache untouched.
    pub fn prefetch_with(
        &self,
        fingerprint: u64,
        synthesize: impl FnOnce() -> Option<Arc<KernelArtifact>>,
    ) -> bool {
        if self.peek_memory(fingerprint) {
            return true;
        }
        // Disk promotion, bypassing `get` so the speculative probe is never
        // attributed to the demand-path disk hit/miss counters (defect
        // counters — corrupt, stale, expired — still apply; those are real).
        if let Some(path) = self.artifact_path(fingerprint) {
            if !self.breaker.is_open() {
                if let Some(artifact) = self.load(&path, fingerprint) {
                    let artifact = Arc::new(artifact);
                    self.memory.insert(fingerprint, (artifact, Instant::now()));
                    self.prefetch_stores.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
        if self.peek_memory(fingerprint) {
            // Lost a race with a concurrent demand insert: already warm.
            return true;
        }
        let Some(artifact) = synthesize() else {
            return false;
        };
        debug_assert_eq!(artifact.fingerprint, fingerprint);
        self.insert(artifact);
        self.prefetch_stores.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Writes `bytes` and fsyncs before returning, so the subsequent rename
    /// never publishes a file whose content could still be lost to a crash.
    fn write_durable(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::File::create(path)?;
        file.write_all(bytes)?;
        file.sync_all()
    }

    /// Enforces the disk-capacity bound by deleting the oldest artifact
    /// files (by modification time), and sweeps up temp files orphaned by
    /// crashed writers (a live write is younger than a minute — it is a
    /// single write + rename — so old stragglers are safe to delete).
    fn prune(&self, dir: &Path) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut files: Vec<(SystemTime, PathBuf)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let Ok(modified) = entry.metadata().and_then(|m| m.modified()) else {
                continue;
            };
            if path.extension().is_some_and(|x| x == "json") {
                files.push((modified, path));
            } else if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".tmp-") || n.ends_with(".quarantined"))
                && SystemTime::now()
                    .duration_since(modified)
                    .is_ok_and(|age| age >= Duration::from_secs(60))
            {
                // Orphaned temp files and inspected quarantine debris: both
                // are invisible to lookups; sweep once they are stale.
                let _ = std::fs::remove_file(&path);
            }
        }
        if files.len() <= self.config.disk_capacity {
            return;
        }
        files.sort_by_key(|(modified, _)| *modified);
        let excess = files.len() - self.config.disk_capacity;
        for (_, path) in files.into_iter().take(excess) {
            if std::fs::remove_file(path).is_ok() {
                self.file_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of artifact files currently on disk (0 for memory-only).
    pub fn disk_entries(&self) -> usize {
        let Some(dir) = self.config.dir.as_ref() else {
            return 0;
        };
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// A snapshot of every counter plus the current disk occupancy.
    pub fn stats(&self) -> KernelCacheStats {
        KernelCacheStats {
            memory: self.memory.stats(),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stale_version: self.stale_version.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            file_evictions: self.file_evictions.load(Ordering::Relaxed),
            disk_entries: self.disk_entries(),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
            rename_races: self.rename_races.load(Ordering::Relaxed),
            prefetch_stores: self.prefetch_stores.load(Ordering::Relaxed),
            breaker_skips: self.breaker_skips.load(Ordering::Relaxed),
            breaker_trips: self.breaker.trips.load(Ordering::Relaxed),
            breaker_recoveries: self.breaker.recoveries.load(Ordering::Relaxed),
            breaker_open: self.breaker.is_open(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hasher_is_deterministic_and_sensitive() {
        let mut a = StableHasher::new();
        "hello".hash(&mut a);
        42usize.hash(&mut a);
        let mut b = StableHasher::new();
        "hello".hash(&mut b);
        42usize.hash(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut c = StableHasher::new();
        "hellp".hash(&mut c);
        42usize.hash(&mut c);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn config_defaults_are_memory_only() {
        let config = KernelCacheConfig::default();
        assert!(config.dir.is_none());
        assert!(config.ttl.is_none());
        let cache = KernelCache::new(config);
        assert!(cache.get(123).is_none());
        assert_eq!(cache.artifact_path(123), None);
        assert_eq!(cache.stats().disk_entries, 0);
    }
}
