//! A persistent, disk-backed kernel-artifact cache.
//!
//! Synthesizing a kernel is the expensive step of serving it: PRs 1–3 made a
//! *single* synthesis fast and parallel, but a vLLM-style deployment compiles
//! the same few dozen kernels on every process start. This module caches the
//! *result* of a compilation — the winning candidate's layouts, the lowered
//! program, the emitted pseudo-CUDA and the cost/perf breakdowns — keyed by a
//! **stable fingerprint** of everything that determines it:
//!
//! ```text
//! fingerprint = stable_hash(program structure, target GpuArch, CompilerOptions)
//! ```
//!
//! Toggles that are cross-checked to be bit-identical (the fast path, the
//! incremental search, worker counts) deliberately do *not* participate, so
//! one artifact serves every execution configuration.
//!
//! Artifacts are stored as versioned JSON files (`<fingerprint>.json`) under
//! a cache directory, with an in-memory [`ShardedMap`] front so repeat
//! lookups in one process never touch the filesystem. The cache is
//! defensive: corrupt files, artifacts written by a different
//! [`ARTIFACT_VERSION`], fingerprint mismatches and TTL-expired entries are
//! rejected (and deleted) so the caller re-synthesizes; every outcome is
//! counted in [`KernelCacheStats`].
//!
//! ```
//! use hexcute_arch::{DType, GpuArch};
//! use hexcute_core::{Compiler, KernelCache, KernelCacheConfig, ArtifactSource};
//! use hexcute_ir::KernelBuilder;
//! use hexcute_layout::Layout;
//!
//! let mut kb = KernelBuilder::new("cached_scale", 128);
//! let x = kb.global_view("x", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
//! let y = kb.global_view("y", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
//! let r = kb.register_tensor("r", DType::F32, &[64, 64]);
//! kb.copy(x, r);
//! kb.copy(r, y);
//! let program = kb.build()?;
//!
//! // A memory-only cache (no `dir`): the second compile is a cache hit and
//! // returns a bit-identical artifact.
//! let cache = KernelCache::new(KernelCacheConfig::default());
//! let compiler = Compiler::new(GpuArch::a100());
//! let (cold, source) = compiler.compile_with_cache(&program, &cache)?;
//! assert_eq!(source, ArtifactSource::Synthesized);
//! let (warm, source) = compiler.compile_with_cache(&program, &cache)?;
//! assert_eq!(source, ArtifactSource::Memory);
//! assert_eq!(*cold, *warm);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use hexcute_arch::GpuArch;
use hexcute_ir::Program;
use hexcute_parallel::cache::{CacheStats, ShardedMap};

use crate::compiler::{CompiledKernel, CompilerOptions};
use crate::json::{JsonError, JsonValue};

/// Version tag written into every artifact file. Bump it whenever the
/// artifact schema *or* the semantics of any serialized field change: files
/// carrying a different version are rejected on read and re-synthesized.
pub const ARTIFACT_VERSION: usize = 1;

// ---------------------------------------------------------------------------
// Stable fingerprints.
// ---------------------------------------------------------------------------

/// A [`Hasher`] with a fixed algorithm (FNV-1a over the byte stream), so
/// fingerprints are stable across processes and Rust versions — unlike
/// `DefaultHasher`, whose algorithm is unspecified. Multi-byte integer
/// writes follow the platform's native byte order, so fingerprints are
/// per-machine (which is all a local disk cache needs); [`ARTIFACT_VERSION`]
/// plus the fingerprint-match check on read guard everything else.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher {
            state: Self::FNV_OFFSET,
        }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StableHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// The stable cache key for compiling `program` for `arch` under `options`.
///
/// The hash covers the full program structure (name, schedule, every tensor
/// declaration, every operation), the complete architecture model (so A100
/// and H100 artifacts never collide) and every result-affecting compiler
/// option (see [`SynthesisOptions::hash_stable`]). Execution-strategy
/// toggles that are cross-checked bit-for-bit — the fast path, the
/// incremental search, worker counts — are excluded on purpose.
///
/// [`SynthesisOptions::hash_stable`]: hexcute_synthesis::SynthesisOptions::hash_stable
pub fn artifact_fingerprint(program: &Program, arch: &GpuArch, options: &CompilerOptions) -> u64 {
    let mut h = StableHasher::new();
    // Program structure. The grid participates: two programs differing only
    // in `grid_blocks` (e.g. the same tile kernel at two batch sizes, or two
    // grouped-GEMM problem lists with different routings) produce different
    // device-level performance reports, so they must not share an artifact.
    program.name.hash(&mut h);
    program.threads_per_block.hash(&mut h);
    program.grid_blocks.hash(&mut h);
    program.main_loop_trip_count.hash(&mut h);
    program.schedule.pipeline_stages.hash(&mut h);
    program.schedule.warp_specialized.hash(&mut h);
    for decl in program.tensors() {
        decl.id.hash(&mut h);
        decl.name.hash(&mut h);
        decl.dtype.hash(&mut h);
        decl.space.hash(&mut h);
        decl.shape.hash(&mut h);
        decl.global_layout.hash(&mut h);
    }
    for op in program.ops() {
        op.id.hash(&mut h);
        // `OpKind`'s debug rendering spells out the operation and its
        // operands deterministically; hashing it keeps this function
        // independent of per-variant field churn.
        format!("{:?}", op.kind).hash(&mut h);
        op.in_main_loop.hash(&mut h);
    }
    // Target architecture: the debug rendering covers every modelled
    // parameter (clocks, bandwidths, instruction catalog), so two arches
    // that would compile differently fingerprint differently.
    format!("{:?}", arch).hash(&mut h);
    // Compiler options.
    options.use_cost_model.hash(&mut h);
    options.synthesis.hash_stable(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// The artifact.
// ---------------------------------------------------------------------------

/// The synthesized shared-memory layout of one tensor, rendered stably.
#[derive(Debug, Clone, PartialEq)]
pub struct SmemLayoutRecord {
    /// Tensor name.
    pub tensor: String,
    /// Byte offset within dynamic shared memory.
    pub offset_bytes: usize,
    /// Allocation size in bytes.
    pub size_bytes: usize,
    /// The synthesized (possibly swizzled) layout, rendered via `Display`.
    pub layout: String,
}

/// The synthesized thread-value layout of one register tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct TvLayoutRecord {
    /// Tensor name.
    pub tensor: String,
    /// The thread-value layout, rendered via `Display`.
    pub layout: String,
}

/// One operation's slice of the cost breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct OpCostRecord {
    /// Cycles the issuing warps are occupied.
    pub issue_cycles: f64,
    /// Cycles stalled waiting for in-flight producers.
    pub stall_cycles: f64,
    /// Cycles until the result is available after issuing.
    pub completion_cycles: f64,
}

/// The analytical cost breakdown of the winning candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRecord {
    /// Estimated cycles for one thread block.
    pub total_cycles: f64,
    /// Prologue cycles.
    pub prologue_cycles: f64,
    /// Cycles of one (pipelined) main-loop iteration.
    pub loop_iteration_cycles: f64,
    /// Epilogue cycles.
    pub epilogue_cycles: f64,
    /// Cycles charged to register-layout conversions.
    pub rearrange_cycles: f64,
    /// Per-operation attribution, in program order.
    pub per_op: Vec<OpCostRecord>,
}

/// The simulated device-level performance of the winning candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// End-to-end latency in microseconds.
    pub latency_us: f64,
    /// Cycles for one thread block including bank-conflict penalties.
    pub block_cycles: f64,
    /// DRAM-bound latency component.
    pub dram_us: f64,
    /// Tensor-Core-bound latency component.
    pub compute_us: f64,
    /// SM-execution latency component.
    pub sm_us: f64,
    /// Waves of thread blocks across the device.
    pub waves: usize,
    /// Extra cycles per block from shared-memory bank conflicts.
    pub bank_conflict_cycles: f64,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
}

/// A cached compilation result: everything downstream consumers (the
/// serving layer, code emission, reporting) need, without re-running
/// synthesis. Every field is a deterministic function of the fingerprint
/// inputs, so a cache hit is bit-identical to a fresh synthesis — enforced
/// by `crates/core/tests/artifact_cache.rs` across all four kernel families.
///
/// Wall-clock compile time is deliberately *not* part of the artifact: it
/// differs run to run and would break the bit-identical contract.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelArtifact {
    /// Schema version ([`ARTIFACT_VERSION`] at write time).
    pub version: usize,
    /// The cache key this artifact was stored under.
    pub fingerprint: u64,
    /// Kernel (program) name.
    pub kernel: String,
    /// Target architecture name.
    pub arch: String,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Blocks launched for the modelled problem.
    pub grid_blocks: usize,
    /// Main-loop trip count.
    pub main_loop_trip_count: usize,
    /// Software pipeline depth.
    pub pipeline_stages: usize,
    /// Whether the kernel is warp specialized.
    pub warp_specialized: bool,
    /// Total dynamic shared memory in bytes.
    pub smem_bytes: usize,
    /// Estimated 32-bit registers per thread.
    pub registers_per_thread: usize,
    /// Winning candidate's thread-value layouts (register tensors).
    pub tv_layouts: Vec<TvLayoutRecord>,
    /// Winning candidate's synthesized shared-memory layouts.
    pub smem_layouts: Vec<SmemLayoutRecord>,
    /// The lowered per-block instruction stream, one line per instruction.
    pub lowered: Vec<String>,
    /// The emitted pseudo-CUDA source.
    pub cuda: String,
    /// Analytical cost breakdown of the winner.
    pub cost: CostRecord,
    /// Simulated performance of the winner.
    pub perf: PerfRecord,
    /// Number of candidates the search explored.
    pub candidates_explored: usize,
    /// Simulated latency of the winner over the true optimum (1.0 = the
    /// cost model picked the best candidate).
    pub selection_quality: f64,
}

/// Why an artifact file could not be used.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// The file is not valid JSON (truncated, garbage, partial write).
    Json(JsonError),
    /// The JSON parses but does not match the artifact schema.
    Schema(String),
    /// The artifact was written by a different [`ARTIFACT_VERSION`].
    Version {
        /// The version found in the file.
        found: usize,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Json(e) => write!(f, "corrupt artifact: {e}"),
            ArtifactError::Schema(msg) => write!(f, "artifact schema mismatch: {msg}"),
            ArtifactError::Version { found } => write!(
                f,
                "artifact version {found} != supported version {ARTIFACT_VERSION}"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<JsonError> for ArtifactError {
    fn from(e: JsonError) -> Self {
        ArtifactError::Json(e)
    }
}

fn schema_err(msg: impl Into<String>) -> ArtifactError {
    ArtifactError::Schema(msg.into())
}

fn get_f64(v: &JsonValue, key: &str) -> Result<f64, ArtifactError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| schema_err(format!("missing or non-numeric `{key}`")))
}

fn get_usize(v: &JsonValue, key: &str) -> Result<usize, ArtifactError> {
    v.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| schema_err(format!("missing or non-integral `{key}`")))
}

fn get_str(v: &JsonValue, key: &str) -> Result<String, ArtifactError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| schema_err(format!("missing or non-string `{key}`")))
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, ArtifactError> {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| schema_err(format!("missing or non-boolean `{key}`")))
}

fn get_arr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], ArtifactError> {
    v.get(key)
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| schema_err(format!("missing or non-array `{key}`")))
}

fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl KernelArtifact {
    /// Builds the artifact for a finished compilation. `fingerprint` must be
    /// the [`artifact_fingerprint`] of the inputs that produced `compiled`.
    pub fn from_compiled(fingerprint: u64, compiled: &CompiledKernel, arch: &GpuArch) -> Self {
        let program = &compiled.program;
        KernelArtifact {
            version: ARTIFACT_VERSION,
            fingerprint,
            kernel: program.name.clone(),
            arch: arch.name.clone(),
            threads_per_block: compiled.lowered.threads_per_block,
            grid_blocks: compiled.lowered.grid_blocks,
            main_loop_trip_count: compiled.lowered.main_loop_trip_count,
            pipeline_stages: compiled.lowered.pipeline_stages,
            warp_specialized: compiled.lowered.warp_specialized,
            smem_bytes: compiled.lowered.smem_bytes,
            registers_per_thread: compiled.lowered.registers_per_thread,
            tv_layouts: compiled
                .candidate
                .tv_layouts
                .iter()
                .map(|(id, tv)| TvLayoutRecord {
                    tensor: program.tensor(*id).name.clone(),
                    layout: tv.to_string(),
                })
                .collect(),
            smem_layouts: compiled
                .lowered
                .smem_allocs
                .iter()
                .map(|a| SmemLayoutRecord {
                    tensor: program.tensor(a.tensor).name.clone(),
                    offset_bytes: a.offset_bytes,
                    size_bytes: a.size_bytes,
                    layout: a.layout.to_string(),
                })
                .collect(),
            lowered: compiled.lowered.instruction_lines(program),
            cuda: compiled.cuda_source(),
            cost: CostRecord {
                total_cycles: compiled.cost.total_cycles,
                prologue_cycles: compiled.cost.prologue_cycles,
                loop_iteration_cycles: compiled.cost.loop_iteration_cycles,
                epilogue_cycles: compiled.cost.epilogue_cycles,
                rearrange_cycles: compiled.cost.rearrange_cycles,
                per_op: compiled
                    .cost
                    .per_op
                    .iter()
                    .map(|c| OpCostRecord {
                        issue_cycles: c.issue_cycles,
                        stall_cycles: c.stall_cycles,
                        completion_cycles: c.completion_cycles,
                    })
                    .collect(),
            },
            perf: PerfRecord {
                latency_us: compiled.perf.latency_us,
                block_cycles: compiled.perf.block_cycles,
                dram_us: compiled.perf.dram_us,
                compute_us: compiled.perf.compute_us,
                sm_us: compiled.perf.sm_us,
                waves: compiled.perf.waves,
                bank_conflict_cycles: compiled.perf.bank_conflict_cycles,
                launch_overhead_us: compiled.perf.launch_overhead_us,
            },
            candidates_explored: compiled.stats.candidates_explored,
            selection_quality: compiled.stats.selection_quality,
        }
    }

    /// The estimated kernel latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.perf.latency_us
    }

    /// Serializes the artifact as versioned JSON (the on-disk format).
    pub fn to_json(&self) -> String {
        let num = JsonValue::Num;
        let layouts = self
            .smem_layouts
            .iter()
            .map(|l| {
                obj(vec![
                    ("tensor", JsonValue::Str(l.tensor.clone())),
                    ("offset_bytes", num(l.offset_bytes as f64)),
                    ("size_bytes", num(l.size_bytes as f64)),
                    ("layout", JsonValue::Str(l.layout.clone())),
                ])
            })
            .collect();
        let tv = self
            .tv_layouts
            .iter()
            .map(|l| {
                obj(vec![
                    ("tensor", JsonValue::Str(l.tensor.clone())),
                    ("layout", JsonValue::Str(l.layout.clone())),
                ])
            })
            .collect();
        let per_op = self
            .cost
            .per_op
            .iter()
            .map(|c| {
                obj(vec![
                    ("issue_cycles", num(c.issue_cycles)),
                    ("stall_cycles", num(c.stall_cycles)),
                    ("completion_cycles", num(c.completion_cycles)),
                ])
            })
            .collect();
        obj(vec![
            ("version", num(self.version as f64)),
            (
                "fingerprint",
                JsonValue::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("kernel", JsonValue::Str(self.kernel.clone())),
            ("arch", JsonValue::Str(self.arch.clone())),
            ("threads_per_block", num(self.threads_per_block as f64)),
            ("grid_blocks", num(self.grid_blocks as f64)),
            (
                "main_loop_trip_count",
                num(self.main_loop_trip_count as f64),
            ),
            ("pipeline_stages", num(self.pipeline_stages as f64)),
            ("warp_specialized", JsonValue::Bool(self.warp_specialized)),
            ("smem_bytes", num(self.smem_bytes as f64)),
            (
                "registers_per_thread",
                num(self.registers_per_thread as f64),
            ),
            ("tv_layouts", JsonValue::Arr(tv)),
            ("smem_layouts", JsonValue::Arr(layouts)),
            (
                "lowered",
                JsonValue::Arr(
                    self.lowered
                        .iter()
                        .map(|l| JsonValue::Str(l.clone()))
                        .collect(),
                ),
            ),
            ("cuda", JsonValue::Str(self.cuda.clone())),
            (
                "cost",
                obj(vec![
                    ("total_cycles", num(self.cost.total_cycles)),
                    ("prologue_cycles", num(self.cost.prologue_cycles)),
                    (
                        "loop_iteration_cycles",
                        num(self.cost.loop_iteration_cycles),
                    ),
                    ("epilogue_cycles", num(self.cost.epilogue_cycles)),
                    ("rearrange_cycles", num(self.cost.rearrange_cycles)),
                    ("per_op", JsonValue::Arr(per_op)),
                ]),
            ),
            (
                "perf",
                obj(vec![
                    ("latency_us", num(self.perf.latency_us)),
                    ("block_cycles", num(self.perf.block_cycles)),
                    ("dram_us", num(self.perf.dram_us)),
                    ("compute_us", num(self.perf.compute_us)),
                    ("sm_us", num(self.perf.sm_us)),
                    ("waves", num(self.perf.waves as f64)),
                    ("bank_conflict_cycles", num(self.perf.bank_conflict_cycles)),
                    ("launch_overhead_us", num(self.perf.launch_overhead_us)),
                ]),
            ),
            ("candidates_explored", num(self.candidates_explored as f64)),
            ("selection_quality", num(self.selection_quality)),
        ])
        .write()
    }

    /// Parses an artifact file.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Json`] for malformed JSON, [`ArtifactError::Version`]
    /// when the file was written by a different schema version, and
    /// [`ArtifactError::Schema`] when fields are missing or mistyped.
    pub fn from_json(text: &str) -> Result<Self, ArtifactError> {
        let v = JsonValue::parse(text)?;
        let version = get_usize(&v, "version")?;
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::Version { found: version });
        }
        let fingerprint = u64::from_str_radix(&get_str(&v, "fingerprint")?, 16)
            .map_err(|_| schema_err("`fingerprint` is not a hex u64"))?;
        let tv_layouts = get_arr(&v, "tv_layouts")?
            .iter()
            .map(|l| {
                Ok(TvLayoutRecord {
                    tensor: get_str(l, "tensor")?,
                    layout: get_str(l, "layout")?,
                })
            })
            .collect::<Result<_, ArtifactError>>()?;
        let smem_layouts = get_arr(&v, "smem_layouts")?
            .iter()
            .map(|l| {
                Ok(SmemLayoutRecord {
                    tensor: get_str(l, "tensor")?,
                    offset_bytes: get_usize(l, "offset_bytes")?,
                    size_bytes: get_usize(l, "size_bytes")?,
                    layout: get_str(l, "layout")?,
                })
            })
            .collect::<Result<_, ArtifactError>>()?;
        let lowered = get_arr(&v, "lowered")?
            .iter()
            .map(|l| {
                l.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| schema_err("non-string `lowered` entry"))
            })
            .collect::<Result<_, ArtifactError>>()?;
        let cost_v = v.get("cost").ok_or_else(|| schema_err("missing `cost`"))?;
        let per_op = get_arr(cost_v, "per_op")?
            .iter()
            .map(|c| {
                Ok(OpCostRecord {
                    issue_cycles: get_f64(c, "issue_cycles")?,
                    stall_cycles: get_f64(c, "stall_cycles")?,
                    completion_cycles: get_f64(c, "completion_cycles")?,
                })
            })
            .collect::<Result<_, ArtifactError>>()?;
        let perf_v = v.get("perf").ok_or_else(|| schema_err("missing `perf`"))?;
        Ok(KernelArtifact {
            version,
            fingerprint,
            kernel: get_str(&v, "kernel")?,
            arch: get_str(&v, "arch")?,
            threads_per_block: get_usize(&v, "threads_per_block")?,
            grid_blocks: get_usize(&v, "grid_blocks")?,
            main_loop_trip_count: get_usize(&v, "main_loop_trip_count")?,
            pipeline_stages: get_usize(&v, "pipeline_stages")?,
            warp_specialized: get_bool(&v, "warp_specialized")?,
            smem_bytes: get_usize(&v, "smem_bytes")?,
            registers_per_thread: get_usize(&v, "registers_per_thread")?,
            tv_layouts,
            smem_layouts,
            lowered,
            cuda: get_str(&v, "cuda")?,
            cost: CostRecord {
                total_cycles: get_f64(cost_v, "total_cycles")?,
                prologue_cycles: get_f64(cost_v, "prologue_cycles")?,
                loop_iteration_cycles: get_f64(cost_v, "loop_iteration_cycles")?,
                epilogue_cycles: get_f64(cost_v, "epilogue_cycles")?,
                rearrange_cycles: get_f64(cost_v, "rearrange_cycles")?,
                per_op,
            },
            perf: PerfRecord {
                latency_us: get_f64(perf_v, "latency_us")?,
                block_cycles: get_f64(perf_v, "block_cycles")?,
                dram_us: get_f64(perf_v, "dram_us")?,
                compute_us: get_f64(perf_v, "compute_us")?,
                sm_us: get_f64(perf_v, "sm_us")?,
                waves: get_usize(perf_v, "waves")?,
                bank_conflict_cycles: get_f64(perf_v, "bank_conflict_cycles")?,
                launch_overhead_us: get_f64(perf_v, "launch_overhead_us")?,
            },
            candidates_explored: get_usize(&v, "candidates_explored")?,
            selection_quality: get_f64(&v, "selection_quality")?,
        })
    }
}

// ---------------------------------------------------------------------------
// The cache.
// ---------------------------------------------------------------------------

/// Where a served artifact came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactSource {
    /// Served from the in-memory front.
    Memory,
    /// Loaded (and validated) from the disk store.
    Disk,
    /// Freshly synthesized (a cache miss).
    Synthesized,
}

impl fmt::Display for ArtifactSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArtifactSource::Memory => "memory",
            ArtifactSource::Disk => "disk",
            ArtifactSource::Synthesized => "synthesized",
        })
    }
}

/// Configuration of a [`KernelCache`].
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCacheConfig {
    /// Directory for the persistent store. `None` (the default) keeps the
    /// cache memory-only.
    pub dir: Option<PathBuf>,
    /// Approximate bound on resident in-memory artifacts (shard-wise
    /// eviction, see [`ShardedMap::bounded`]).
    pub memory_capacity: usize,
    /// Maximum artifact files kept on disk; the oldest (by modification
    /// time) are pruned after each store.
    pub disk_capacity: usize,
    /// Entries older than this — by insertion time for the memory front, by
    /// file modification time on disk — are treated as stale (disk files are
    /// deleted) and re-synthesized. `None` disables expiry.
    pub ttl: Option<Duration>,
}

impl Default for KernelCacheConfig {
    fn default() -> Self {
        KernelCacheConfig {
            dir: None,
            memory_capacity: 256,
            disk_capacity: 1024,
            ttl: None,
        }
    }
}

impl KernelCacheConfig {
    /// Reads the configuration from the environment:
    ///
    /// | Variable | Meaning | Default |
    /// |---|---|---|
    /// | `HEXCUTE_CACHE_DIR` | persistent store directory | unset → memory-only |
    /// | `HEXCUTE_CACHE_CAPACITY` | in-memory artifact bound | 256 |
    /// | `HEXCUTE_CACHE_DISK_CAPACITY` | max artifact files on disk | 1024 |
    /// | `HEXCUTE_CACHE_TTL_SECS` | artifact time-to-live in seconds (`0` = everything is immediately stale) | unset → no expiry |
    ///
    /// Unparsable numeric values fall back to the defaults.
    pub fn from_env() -> Self {
        let defaults = Self::default();
        let parse = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(default)
        };
        KernelCacheConfig {
            dir: std::env::var("HEXCUTE_CACHE_DIR").ok().map(PathBuf::from),
            memory_capacity: parse("HEXCUTE_CACHE_CAPACITY", defaults.memory_capacity),
            disk_capacity: parse("HEXCUTE_CACHE_DISK_CAPACITY", defaults.disk_capacity),
            ttl: std::env::var("HEXCUTE_CACHE_TTL_SECS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(Duration::from_secs),
        }
    }
}

/// Counters describing a [`KernelCache`]'s behaviour. Snapshot via
/// [`KernelCache::stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelCacheStats {
    /// Hit/miss/eviction counters of the in-memory front.
    pub memory: CacheStats,
    /// Artifacts served from the disk store.
    pub disk_hits: u64,
    /// Lookups that found no usable artifact file.
    pub disk_misses: u64,
    /// Files rejected as corrupt (unparsable JSON, schema or fingerprint
    /// mismatch) and deleted.
    pub corrupt: u64,
    /// Files rejected for carrying a different [`ARTIFACT_VERSION`] and
    /// deleted.
    pub stale_version: u64,
    /// Files expired by the TTL and deleted.
    pub expired: u64,
    /// Artifacts written to disk.
    pub stores: u64,
    /// Files pruned by the disk-capacity bound.
    pub file_evictions: u64,
    /// Artifact files currently on disk (0 for memory-only caches).
    pub disk_entries: usize,
}

impl fmt::Display for KernelCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory: {}; disk: {} hits / {} misses, {} stored, {} resident, \
             {} corrupt, {} stale-version, {} expired, {} pruned",
            self.memory,
            self.disk_hits,
            self.disk_misses,
            self.stores,
            self.disk_entries,
            self.corrupt,
            self.stale_version,
            self.expired,
            self.file_evictions
        )
    }
}

/// A persistent, disk-backed kernel-artifact cache with an in-memory
/// [`ShardedMap`] front.
///
/// Lookups go memory → disk → miss; a disk hit is promoted into memory.
/// Artifacts are written atomically (temp file + rename), so a concurrent
/// reader never observes a partial file, and every defect a reader *can*
/// observe (corruption, version drift, expiry) is rejected, deleted and
/// counted instead of surfacing as an error — the caller just re-synthesizes.
/// See the [module docs](self) for a usage example.
#[derive(Debug)]
pub struct KernelCache {
    config: KernelCacheConfig,
    /// Each resident artifact carries its insertion instant so the TTL
    /// applies to the memory front too, not just the disk files.
    memory: ShardedMap<u64, (Arc<KernelArtifact>, Instant)>,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    corrupt: AtomicU64,
    stale_version: AtomicU64,
    expired: AtomicU64,
    stores: AtomicU64,
    file_evictions: AtomicU64,
}

impl KernelCache {
    /// Creates a cache with the given configuration. The cache directory is
    /// created lazily on first store.
    pub fn new(config: KernelCacheConfig) -> Self {
        let memory = ShardedMap::bounded(config.memory_capacity.max(1));
        KernelCache {
            config,
            memory,
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            stale_version: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            file_evictions: AtomicU64::new(0),
        }
    }

    /// A cache configured from the `HEXCUTE_CACHE_*` environment variables
    /// (see [`KernelCacheConfig::from_env`]).
    pub fn from_env() -> Self {
        Self::new(KernelCacheConfig::from_env())
    }

    /// The active configuration.
    pub fn config(&self) -> &KernelCacheConfig {
        &self.config
    }

    /// The on-disk path an artifact with this fingerprint is stored at
    /// (`None` for memory-only caches).
    pub fn artifact_path(&self, fingerprint: u64) -> Option<PathBuf> {
        self.config
            .dir
            .as_ref()
            .map(|d| d.join(format!("{fingerprint:016x}.json")))
    }

    /// Looks up an artifact: the in-memory front first, then the disk store.
    /// A disk hit is promoted into memory; a defective file (corrupt, wrong
    /// version, wrong fingerprint, expired) is deleted and counted, and the
    /// lookup reports a miss so the caller re-synthesizes. The TTL applies
    /// to both tiers: an expired memory entry falls through (and is
    /// overwritten by the re-synthesis), an expired file is deleted.
    pub fn get(&self, fingerprint: u64) -> Option<(Arc<KernelArtifact>, ArtifactSource)> {
        if let Some((hit, inserted)) = self.memory.get(&fingerprint) {
            match self.config.ttl {
                Some(ttl) if inserted.elapsed() >= ttl => {
                    self.expired.fetch_add(1, Ordering::Relaxed);
                    // Fall through to disk (typically expired too) and on to
                    // re-synthesis; the insert overwrites this entry.
                }
                _ => return Some((hit, ArtifactSource::Memory)),
            }
        }
        let path = self.artifact_path(fingerprint)?;
        match self.load(&path, fingerprint) {
            Some(artifact) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let artifact = Arc::new(artifact);
                self.memory
                    .insert(fingerprint, (artifact.clone(), Instant::now()));
                Some((artifact, ArtifactSource::Disk))
            }
            None => {
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn load(&self, path: &Path, fingerprint: u64) -> Option<KernelArtifact> {
        let metadata = std::fs::metadata(path).ok()?;
        if let (Some(ttl), Ok(modified)) = (self.config.ttl, metadata.modified()) {
            let age = SystemTime::now()
                .duration_since(modified)
                .unwrap_or(Duration::ZERO);
            if age >= ttl {
                self.expired.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(path);
                return None;
            }
        }
        let text = std::fs::read_to_string(path).ok()?;
        match KernelArtifact::from_json(&text) {
            Ok(artifact) if artifact.fingerprint == fingerprint => Some(artifact),
            Ok(_) => {
                // A file whose content disagrees with its name: treat as
                // corruption (e.g. a hand-copied or bit-flipped file).
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(path);
                None
            }
            Err(ArtifactError::Version { .. }) => {
                self.stale_version.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(path);
                None
            }
            Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(path);
                None
            }
        }
    }

    /// Inserts an artifact into the memory front and (when a directory is
    /// configured) the disk store. Disk writes are atomic — temp file then
    /// rename — and filesystem failures degrade to a memory-only insert
    /// rather than an error: the cache is an accelerator, not a dependency.
    pub fn insert(&self, artifact: Arc<KernelArtifact>) {
        let fingerprint = artifact.fingerprint;
        self.memory
            .insert(fingerprint, (artifact.clone(), Instant::now()));
        let Some(path) = self.artifact_path(fingerprint) else {
            return;
        };
        let dir = path.parent().expect("artifact path has a parent");
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!("{fingerprint:016x}.tmp-{}", std::process::id()));
        if std::fs::write(&tmp, artifact.to_json()).is_ok() && std::fs::rename(&tmp, &path).is_ok()
        {
            self.stores.fetch_add(1, Ordering::Relaxed);
            self.prune(dir);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Enforces the disk-capacity bound by deleting the oldest artifact
    /// files (by modification time), and sweeps up temp files orphaned by
    /// crashed writers (a live write is younger than a minute — it is a
    /// single write + rename — so old stragglers are safe to delete).
    fn prune(&self, dir: &Path) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut files: Vec<(SystemTime, PathBuf)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let Ok(modified) = entry.metadata().and_then(|m| m.modified()) else {
                continue;
            };
            if path.extension().is_some_and(|x| x == "json") {
                files.push((modified, path));
            } else if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".tmp-"))
                && SystemTime::now()
                    .duration_since(modified)
                    .is_ok_and(|age| age >= Duration::from_secs(60))
            {
                let _ = std::fs::remove_file(&path);
            }
        }
        if files.len() <= self.config.disk_capacity {
            return;
        }
        files.sort_by_key(|(modified, _)| *modified);
        let excess = files.len() - self.config.disk_capacity;
        for (_, path) in files.into_iter().take(excess) {
            if std::fs::remove_file(path).is_ok() {
                self.file_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of artifact files currently on disk (0 for memory-only).
    pub fn disk_entries(&self) -> usize {
        let Some(dir) = self.config.dir.as_ref() else {
            return 0;
        };
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// A snapshot of every counter plus the current disk occupancy.
    pub fn stats(&self) -> KernelCacheStats {
        KernelCacheStats {
            memory: self.memory.stats(),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stale_version: self.stale_version.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            file_evictions: self.file_evictions.load(Ordering::Relaxed),
            disk_entries: self.disk_entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hasher_is_deterministic_and_sensitive() {
        let mut a = StableHasher::new();
        "hello".hash(&mut a);
        42usize.hash(&mut a);
        let mut b = StableHasher::new();
        "hello".hash(&mut b);
        42usize.hash(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut c = StableHasher::new();
        "hellp".hash(&mut c);
        42usize.hash(&mut c);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn config_defaults_are_memory_only() {
        let config = KernelCacheConfig::default();
        assert!(config.dir.is_none());
        assert!(config.ttl.is_none());
        let cache = KernelCache::new(config);
        assert!(cache.get(123).is_none());
        assert_eq!(cache.artifact_path(123), None);
        assert_eq!(cache.stats().disk_entries, 0);
    }
}
