//! # hexcute-core
//!
//! The Hexcute compiler driver: ties the tile-level IR, the layout-synthesis
//! engine, the analytical cost model, lowering and the simulator into the
//! compilation workflow of Fig. 6(c) of the paper:
//!
//! 1. the program's thread-value layout constraints are built and solved;
//! 2. instruction selection expands a search tree of candidate programs;
//! 3. shared-memory layouts (and swizzles) are synthesized per candidate;
//! 4. the analytical cost model ranks the candidates and the cheapest one is
//!    lowered to a kernel.
//!
//! ```
//! use hexcute_arch::{DType, GpuArch};
//! use hexcute_core::Compiler;
//! use hexcute_ir::KernelBuilder;
//! use hexcute_layout::Layout;
//!
//! let mut kb = KernelBuilder::new("scale", 128);
//! let x = kb.global_view("x", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
//! let y = kb.global_view("y", DType::F32, Layout::row_major(&[64, 64]), &[64, 64]);
//! let r = kb.register_tensor("r", DType::F32, &[64, 64]);
//! kb.copy(x, r);
//! let doubled = kb.elementwise(hexcute_ir::ElementwiseOp::MulScalar(2.0), &[r]);
//! kb.copy(doubled, y);
//! let program = kb.build()?;
//!
//! let compiler = Compiler::new(GpuArch::a100());
//! let kernel = compiler.compile(&program)?;
//! assert!(kernel.stats.candidates_explored >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Compilation results can be persisted across processes through the
//! [`cache`] module: [`Compiler::compile_with_cache`] answers repeat
//! requests from a versioned JSON-on-disk [`KernelCache`] keyed by a stable
//! fingerprint of (program, architecture, options), bit-identically to a
//! fresh synthesis. The serving layer (`hexcute-e2e`) builds its batched
//! `CompileService` on top of it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
mod compiler;
pub mod faults;
pub mod json;

pub use cache::{
    artifact_fingerprint, ArtifactError, ArtifactSource, KernelArtifact, KernelCache,
    KernelCacheConfig, KernelCacheStats, StableHasher, ARTIFACT_VERSION,
};
pub use compiler::{CompileError, CompileStats, CompiledKernel, Compiler, CompilerOptions};
pub use faults::{FaultInjector, FaultKind, FaultSpec, FaultSpecError};

pub use hexcute_costmodel::CostBreakdown;
pub use hexcute_sim::PerfReport;
pub use hexcute_synthesis::{
    prune_enabled, set_pruning, CancelReason, CancelToken, Candidate, SynthesisOptions,
    SynthesisOutcome,
};
