//! A minimal JSON reader/writer for the kernel-artifact cache.
//!
//! The build is fully offline (no `serde`), so the persistent cache brings
//! its own JSON: a small value tree ([`JsonValue`]), a strict recursive
//! descent parser ([`JsonValue::parse`]) and a deterministic pretty-printer
//! ([`JsonValue::write`]). Two properties matter for the cache:
//!
//! * **Bit-exact float round-trips.** Numbers are written with Rust's
//!   shortest-round-trip `Display` for `f64`, so `parse(write(v)) == v`
//!   bit-for-bit for every finite value — a cache hit reproduces the exact
//!   cost and latency numbers of the synthesis that produced it.
//! * **Deterministic output.** Objects store their members in a `BTreeMap`,
//!   so the same artifact always serializes to the same bytes.
//!
//! ```
//! use hexcute_core::json::JsonValue;
//!
//! let v = JsonValue::parse(r#"{"latency_us": 1.25, "name": "gemm"}"#)?;
//! assert_eq!(v.get("latency_us").and_then(JsonValue::as_f64), Some(1.25));
//! let round = JsonValue::parse(&v.write())?;
//! assert_eq!(round, v);
//! # Ok::<(), hexcute_core::json::JsonError>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; members are kept sorted so output is deterministic.
    Obj(BTreeMap<String, JsonValue>),
}

/// A parse error: byte offset into the input plus a message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a JSON document. Trailing non-whitespace is an error, so a
    /// truncated or garbage-appended artifact file is rejected rather than
    /// silently half-read.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed byte.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Serializes the value as pretty-printed JSON (2-space indent, members
    /// in sorted order, floats in shortest-round-trip form).
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(out, *n),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_into(out, indent + 1);
                    if i + 1 != items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_into(out, indent + 1);
                    if i + 1 != members.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up an object member.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.get(key),
            _ => None,
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes `n` so that parsing the text recovers the exact bits: Rust's
/// `Display` for `f64` is the shortest decimal form that round-trips.
/// Non-finite values are not valid JSON and are written as `null` (the
/// artifact structs never contain them; a `null` where a number is expected
/// is then rejected on read).
fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| self.err("invalid UTF-8 in string"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u escape (surrogate)"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("unescaped control character")),
                Some(b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("non-hex \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("malformed number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"nested": true, "s": "hi\nthere"}, "n": null}"#;
        let v = JsonValue::parse(text).unwrap();
        let round = JsonValue::parse(&v.write()).unwrap();
        assert_eq!(v, round);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("b").unwrap().get("s").unwrap().as_str(),
            Some("hi\nthere")
        );
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [
            0x3ff0_0000_0000_0001u64, // 1.0 + ulp
            0x3fb9_9999_9999_999au64, // 0.1
            0x7fef_ffff_ffff_ffffu64, // f64::MAX
            0x0000_0000_0000_0001u64, // smallest subnormal
            0xbff8_0000_0000_0000u64, // -1.5
        ] {
            let v = f64::from_bits(bits);
            let text = JsonValue::Num(v).write();
            let parsed = JsonValue::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), bits, "{v} did not round-trip");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "{\"a\" 1}",
            "[1 2]",
            "\u{1}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_and_escapes() {
        let v = JsonValue::parse(r#""swizzle ∘ layout \"q\"""#).unwrap();
        assert_eq!(v.as_str(), Some("swizzle ∘ layout \"q\""));
        // Multibyte characters survive writing too.
        let s = JsonValue::Str("a∘b".to_string());
        assert_eq!(JsonValue::parse(&s.write()).unwrap(), s);
    }

    #[test]
    fn usize_accessor_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::Num(3.0).as_usize(), Some(3));
        assert_eq!(JsonValue::Num(3.5).as_usize(), None);
        assert_eq!(JsonValue::Num(-1.0).as_usize(), None);
        assert_eq!(JsonValue::Str("3".into()).as_usize(), None);
    }
}
