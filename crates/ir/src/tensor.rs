//! Tensor declarations of the tile-level IR.

use std::fmt;

use hexcute_arch::{DType, MemSpace};
use hexcute_layout::Layout;

/// An opaque identifier for a tensor within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub(crate) usize);

impl TensorId {
    /// The raw index of the tensor within its program.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%t{}", self.0)
    }
}

/// A tensor declaration: a statically shaped tile living in global, shared or
/// register memory.
///
/// * Global tensors are *views* of kernel-argument buffers with a
///   user-specified layout (`global_view` in Table I of the paper).
/// * Shared and register tensors declare only a data type and a shape; their
///   layouts are synthesized by the compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorDecl {
    /// Identifier within the program.
    pub id: TensorId,
    /// Human-readable name used in diagnostics and generated code.
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Memory space.
    pub space: MemSpace,
    /// Logical tile shape. For global views this is the shape of the view
    /// (which may include an iteration dimension, e.g. `(BM, BK, k/BK)`).
    pub shape: Vec<usize>,
    /// The user-specified memory layout for global views; `None` for shared
    /// and register tensors whose layouts are synthesized.
    pub global_layout: Option<Layout>,
}

impl TensorDecl {
    /// Number of elements in the logical tile.
    pub fn num_elements(&self) -> usize {
        self.shape.iter().product()
    }

    /// Number of bytes occupied by the tile (packed for sub-byte types).
    pub fn num_bytes(&self) -> usize {
        self.dtype.bytes_for(self.num_elements())
    }

    /// The rank of the tile.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The shape of the tile restricted to its first two dimensions, used by
    /// operations that treat trailing dimensions as loop iterations.
    pub fn tile_shape_2d(&self) -> Vec<usize> {
        self.shape.iter().copied().take(2).collect()
    }

    /// Number of elements in one 2-D tile (excluding iteration dimensions).
    pub fn tile_elements_2d(&self) -> usize {
        self.tile_shape_2d().iter().product()
    }
}

impl fmt::Display for TensorDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {}<{}, {:?}> ({})",
            self.id, self.name, self.dtype, self.shape, self.space
        )?;
        if let Some(layout) = &self.global_layout {
            write!(f, " layout {layout}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decl(dtype: DType, space: MemSpace, shape: &[usize]) -> TensorDecl {
        TensorDecl {
            id: TensorId(0),
            name: "t".to_string(),
            dtype,
            space,
            shape: shape.to_vec(),
            global_layout: None,
        }
    }

    #[test]
    fn element_and_byte_counts() {
        let t = decl(DType::F16, MemSpace::Register, &[64, 64]);
        assert_eq!(t.num_elements(), 4096);
        assert_eq!(t.num_bytes(), 8192);
        let q = decl(DType::I4, MemSpace::Shared, &[64, 64]);
        assert_eq!(q.num_bytes(), 2048);
    }

    #[test]
    fn tile_shape_excludes_iteration_dims() {
        let t = decl(DType::F16, MemSpace::Global, &[128, 64, 16]);
        assert_eq!(t.tile_shape_2d(), vec![128, 64]);
        assert_eq!(t.tile_elements_2d(), 8192);
        assert_eq!(t.rank(), 3);
    }

    #[test]
    fn display_includes_space_and_dtype() {
        let t = decl(DType::BF16, MemSpace::Shared, &[32, 32]);
        let s = t.to_string();
        assert!(s.contains("bfloat16"));
        assert!(s.contains("shared"));
    }
}
