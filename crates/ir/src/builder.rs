//! The kernel builder: Hexcute's embedded DSL for constructing tile-level
//! programs (the Rust analogue of the Python-embedded DSL of Fig. 6(b) /
//! Fig. 15 of the paper).

use hexcute_arch::{DType, MemSpace};
use hexcute_layout::Layout;

use crate::error::Result;
use crate::op::{ElementwiseOp, Op, OpId, OpKind, ReduceOp};
use crate::program::{Program, ScheduleAnnotations};
use crate::tensor::{TensorDecl, TensorId};

/// Builds a [`Program`] with the tile-level primitives of Table I.
///
/// # Examples
///
/// A miniature GEMM kernel (compare Fig. 15 of the paper):
///
/// ```
/// use hexcute_arch::DType;
/// use hexcute_ir::KernelBuilder;
/// use hexcute_layout::Layout;
///
/// let mut kb = KernelBuilder::new("tiny_gemm", 128);
/// let ga = kb.global_view("a", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
/// let gb = kb.global_view("b", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
/// let gc = kb.global_view("c", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
/// let ra = kb.register_tensor("ra", DType::F16, &[64, 64]);
/// let rb = kb.register_tensor("rb", DType::F16, &[64, 64]);
/// let rc = kb.register_tensor("rc", DType::F32, &[64, 64]);
/// kb.fill(rc, 0.0);
/// kb.copy(ga, ra);
/// kb.copy(gb, rb);
/// kb.gemm(rc, ra, rb);
/// let rc16 = kb.cast(rc, DType::F16);
/// kb.copy(rc16, gc);
/// let program = kb.build()?;
/// assert!(program.has_gemm());
/// # Ok::<(), hexcute_ir::IrError>(())
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    threads_per_block: usize,
    grid_blocks: usize,
    main_loop_trip_count: usize,
    in_loop: bool,
    schedule: ScheduleAnnotations,
    tensors: Vec<TensorDecl>,
    ops: Vec<Op>,
}

impl KernelBuilder {
    /// Creates a builder for a kernel executed by `threads_per_block`
    /// threads per thread block.
    pub fn new(name: impl Into<String>, threads_per_block: usize) -> Self {
        KernelBuilder {
            name: name.into(),
            threads_per_block,
            grid_blocks: 1,
            main_loop_trip_count: 1,
            in_loop: false,
            schedule: ScheduleAnnotations::default(),
            tensors: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Sets the number of thread blocks launched for the modelled problem.
    pub fn set_grid_blocks(&mut self, blocks: usize) -> &mut Self {
        self.grid_blocks = blocks.max(1);
        self
    }

    /// Sets the software-pipelining depth of the main loop.
    pub fn set_pipeline_stages(&mut self, stages: usize) -> &mut Self {
        self.schedule.pipeline_stages = stages.max(1);
        self
    }

    /// Enables producer/consumer warp specialization.
    pub fn set_warp_specialized(&mut self, enabled: bool) -> &mut Self {
        self.schedule.warp_specialized = enabled;
        self
    }

    /// Controls whether all `gemm` operations are annotated with a single
    /// consistent thread arrangement (default: true).
    pub fn set_consistent_gemm_arrangement(&mut self, enabled: bool) -> &mut Self {
        self.schedule.consistent_gemm_arrangement = enabled;
        self
    }

    fn add_tensor(
        &mut self,
        name: impl Into<String>,
        dtype: DType,
        space: MemSpace,
        shape: &[usize],
        layout: Option<Layout>,
    ) -> TensorId {
        let id = TensorId(self.tensors.len());
        self.tensors.push(TensorDecl {
            id,
            name: name.into(),
            dtype,
            space,
            shape: shape.to_vec(),
            global_layout: layout,
        });
        id
    }

    /// `global_view(buffer, layout)`: views a global-memory buffer as a
    /// tensor with a user-specified layout.
    pub fn global_view(
        &mut self,
        name: impl Into<String>,
        dtype: DType,
        layout: Layout,
        shape: &[usize],
    ) -> TensorId {
        self.add_tensor(name, dtype, MemSpace::Global, shape, Some(layout))
    }

    /// `register_tensor(dtype, shape)`: a tile distributed across the thread
    /// block's register files; its thread-value layout is synthesized.
    pub fn register_tensor(
        &mut self,
        name: impl Into<String>,
        dtype: DType,
        shape: &[usize],
    ) -> TensorId {
        self.add_tensor(name, dtype, MemSpace::Register, shape, None)
    }

    /// `shared_tensor(dtype, shape)`: a tile in shared memory; its memory
    /// layout (and swizzle) is synthesized.
    pub fn shared_tensor(
        &mut self,
        name: impl Into<String>,
        dtype: DType,
        shape: &[usize],
    ) -> TensorId {
        self.add_tensor(name, dtype, MemSpace::Shared, shape, None)
    }

    fn add_op(&mut self, kind: OpKind) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push(Op {
            id,
            kind,
            in_main_loop: self.in_loop,
        });
        id
    }

    /// Marks the start of the kernel's main loop (e.g. over K tiles); the
    /// operations added until [`KernelBuilder::end_loop`] execute
    /// `trip_count` times.
    pub fn begin_loop(&mut self, trip_count: usize) -> &mut Self {
        self.in_loop = true;
        self.main_loop_trip_count = trip_count.max(1);
        self
    }

    /// Marks the end of the kernel's main loop.
    pub fn end_loop(&mut self) -> &mut Self {
        self.in_loop = false;
        self
    }

    /// `copy(src, dst)`.
    pub fn copy(&mut self, src: TensorId, dst: TensorId) -> OpId {
        self.add_op(OpKind::Copy { src, dst })
    }

    /// `gemm(c, a, b)`: `c += a · bᵀ`.
    pub fn gemm(&mut self, c: TensorId, a: TensorId, b: TensorId) -> OpId {
        self.add_op(OpKind::Gemm { c, a, b })
    }

    /// `cast(src, dtype)`: creates the destination tensor and the cast
    /// operation, returning the new tensor.
    pub fn cast(&mut self, src: TensorId, dtype: DType) -> TensorId {
        let src_decl = self.tensors[src.0].clone();
        let dst = self.add_tensor(
            format!("{}_{}", src_decl.name, dtype),
            dtype,
            MemSpace::Register,
            &src_decl.shape,
            None,
        );
        self.add_op(OpKind::Cast { src, dst });
        dst
    }

    /// `rearrange(src)`: redistributes a register tensor across threads via
    /// shared memory, returning the redistributed tensor.
    pub fn rearrange(&mut self, src: TensorId) -> TensorId {
        let src_decl = self.tensors[src.0].clone();
        let dst = self.add_tensor(
            format!("{}_rearranged", src_decl.name),
            src_decl.dtype,
            MemSpace::Register,
            &src_decl.shape,
            None,
        );
        self.add_op(OpKind::Rearrange { src, dst });
        dst
    }

    /// `elementwise(op, inputs...)`: creates the output tensor (same shape
    /// and dtype as the first input) and the operation.
    pub fn elementwise(&mut self, op: ElementwiseOp, inputs: &[TensorId]) -> TensorId {
        let first = self.tensors[inputs[0].0].clone();
        let output = self.add_tensor(
            format!("{}_{:?}", first.name, op).to_lowercase(),
            first.dtype,
            MemSpace::Register,
            &first.shape,
            None,
        );
        self.add_op(OpKind::Elementwise {
            inputs: inputs.to_vec(),
            output,
            op,
        });
        output
    }

    /// Like [`KernelBuilder::elementwise`] but writes into an existing
    /// destination tensor.
    pub fn elementwise_into(
        &mut self,
        op: ElementwiseOp,
        inputs: &[TensorId],
        output: TensorId,
    ) -> OpId {
        self.add_op(OpKind::Elementwise {
            inputs: inputs.to_vec(),
            output,
            op,
        })
    }

    /// `reduce(src, dim, op)`: creates the reduced output tensor (dimension
    /// `dim` collapsed to 1) and the operation.
    pub fn reduce(&mut self, src: TensorId, dim: usize, op: ReduceOp) -> TensorId {
        let src_decl = self.tensors[src.0].clone();
        let mut shape = src_decl.shape.clone();
        if dim < shape.len() {
            shape[dim] = 1;
        }
        let dst = self.add_tensor(
            format!("{}_reduce{}", src_decl.name, dim),
            src_decl.dtype,
            MemSpace::Register,
            &shape,
            None,
        );
        self.add_op(OpKind::Reduce { src, dst, dim, op });
        dst
    }

    /// `fill(dst, value)`: initializes a register tensor with a constant.
    pub fn fill(&mut self, dst: TensorId, value: f64) -> OpId {
        self.add_op(OpKind::Fill { dst, value })
    }

    /// `dequant(src, scale, zero, dtype, group_size)`: creates the
    /// dequantized destination tensor (same shape as `src`, element type
    /// `dtype`) and the operation `dst = (src - zero) * scale`, with one
    /// scale/zero column per `group_size` elements along dimension 1.
    pub fn dequant(
        &mut self,
        src: TensorId,
        scale: TensorId,
        zero: Option<TensorId>,
        dtype: DType,
        group_size: usize,
    ) -> TensorId {
        let src_decl = self.tensors[src.0].clone();
        let dst = self.add_tensor(
            format!("{}_dq", src_decl.name),
            dtype,
            MemSpace::Register,
            &src_decl.shape,
            None,
        );
        self.add_op(OpKind::Dequant {
            src,
            scale,
            zero,
            dst,
            group_size,
        });
        dst
    }

    /// Finalizes and verifies the program.
    ///
    /// # Errors
    ///
    /// Returns the first verification failure (see [`Program::verify`]).
    pub fn build(self) -> Result<Program> {
        let program = Program::from_parts(
            self.name,
            self.threads_per_block,
            self.grid_blocks,
            self.main_loop_trip_count,
            self.schedule,
            self.tensors,
            self.ops,
        );
        program.verify()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::IrError;

    #[test]
    fn builds_the_fig15_gemm_skeleton() {
        // A down-scaled version of the kernel of Fig. 15.
        let (bm, bn, bk, k) = (64, 64, 32, 256);
        let mut kb = KernelBuilder::new("fig15_gemm", 128);
        kb.set_grid_blocks(16).set_pipeline_stages(2);
        let ga = kb.global_view(
            "a",
            DType::F16,
            Layout::from_flat(&[bm, bk, k / bk], &[k, 1, bk]),
            &[bm, bk, k / bk],
        );
        let gb = kb.global_view(
            "b",
            DType::F16,
            Layout::from_flat(&[bn, bk, k / bk], &[k, 1, bk]),
            &[bn, bk, k / bk],
        );
        let gc = kb.global_view("c", DType::F16, Layout::row_major(&[bm, bn]), &[bm, bn]);
        let ra = kb.register_tensor("ra", DType::F16, &[bm, bk]);
        let rb = kb.register_tensor("rb", DType::F16, &[bn, bk]);
        let rc = kb.register_tensor("rc", DType::F32, &[bm, bn]);
        kb.fill(rc, 0.0);
        kb.begin_loop(k / bk);
        kb.copy(ga, ra);
        kb.copy(gb, rb);
        kb.gemm(rc, ra, rb);
        kb.end_loop();
        let rc16 = kb.cast(rc, DType::F16);
        let sc = kb.shared_tensor("sc", DType::F16, &[bm, bn]);
        kb.copy(rc16, sc);
        let rd = kb.register_tensor("rd", DType::F16, &[bm, bn]);
        kb.copy(sc, rd);
        kb.copy(rd, gc);
        let p = kb.build().unwrap();

        assert_eq!(p.main_loop_trip_count, 8);
        assert_eq!(p.grid_blocks, 16);
        assert_eq!(p.schedule.pipeline_stages, 2);
        let loop_ops: Vec<_> = p.ops().iter().filter(|o| o.in_main_loop).collect();
        assert_eq!(loop_ops.len(), 3);
        // Components: (fill, copies into ra/rb, gemm, cast, store to sc) are
        // linked through registers; (sc→rd, rd→gc) is a separate component.
        assert_eq!(p.register_connected_components().len(), 2);
    }

    #[test]
    fn cast_and_reduce_create_tensors() {
        let mut kb = KernelBuilder::new("k", 32);
        let x = kb.register_tensor("x", DType::F32, &[16, 64]);
        let y = kb.cast(x, DType::F16);
        let z = kb.reduce(x, 1, ReduceOp::Sum);
        let p = kb.build().unwrap();
        assert_eq!(p.tensor(y).dtype, DType::F16);
        assert_eq!(p.tensor(y).shape, vec![16, 64]);
        assert_eq!(p.tensor(z).shape, vec![16, 1]);
    }

    #[test]
    fn elementwise_builder_matches_arity() {
        let mut kb = KernelBuilder::new("k", 32);
        let a = kb.register_tensor("a", DType::F32, &[8, 8]);
        let b = kb.register_tensor("b", DType::F32, &[8, 8]);
        let c = kb.elementwise(ElementwiseOp::Add, &[a, b]);
        let _d = kb.elementwise(ElementwiseOp::Exp, &[c]);
        assert!(kb.build().is_ok());

        let mut bad = KernelBuilder::new("k", 32);
        let a = bad.register_tensor("a", DType::F32, &[8, 8]);
        bad.elementwise(ElementwiseOp::Add, &[a]);
        assert!(matches!(bad.build(), Err(IrError::InvalidOperands { .. })));
    }

    #[test]
    fn dequant_creates_the_float_output() {
        let mut kb = KernelBuilder::new("dq", 32);
        let w = kb.register_tensor("w", DType::I4, &[16, 64]);
        let scale = kb.register_tensor("scale", DType::F16, &[16, 2]);
        let zp = kb.register_tensor("zp", DType::F16, &[16, 2]);
        let dq = kb.dequant(w, scale, Some(zp), DType::F16, 32);
        let p = kb.build().unwrap();
        assert_eq!(p.tensor(dq).dtype, DType::F16);
        assert_eq!(p.tensor(dq).shape, vec![16, 64]);
        assert_eq!(p.ops()[0].mnemonic(), "dequant");
        assert_eq!(p.ops()[0].inputs().len(), 3);
    }

    #[test]
    fn dequant_validates_group_shapes_and_dtypes() {
        // Scale column count must match ceil(k / group_size) (or broadcast 1).
        let mut kb = KernelBuilder::new("dq_bad", 32);
        let w = kb.register_tensor("w", DType::I4, &[16, 64]);
        let scale = kb.register_tensor("scale", DType::F16, &[16, 3]);
        kb.dequant(w, scale, None, DType::F16, 32);
        assert!(matches!(kb.build(), Err(IrError::InvalidOperands { .. })));

        // A float source is rejected: dequant consumes quantized integers.
        let mut kb = KernelBuilder::new("dq_float_src", 32);
        let w = kb.register_tensor("w", DType::F16, &[16, 64]);
        let scale = kb.register_tensor("scale", DType::F16, &[16, 2]);
        kb.dequant(w, scale, None, DType::F16, 32);
        assert!(kb.build().is_err());

        // Odd group sizes with a tail group are fine: ceil(64 / 24) = 3.
        let mut kb = KernelBuilder::new("dq_tail", 32);
        let w = kb.register_tensor("w", DType::I4, &[16, 64]);
        let scale = kb.register_tensor("scale", DType::F16, &[16, 3]);
        kb.dequant(w, scale, None, DType::F16, 24);
        assert!(kb.build().is_ok());
    }

    #[test]
    fn rejects_global_tensor_in_gemm() {
        let mut kb = KernelBuilder::new("k", 32);
        let a = kb.global_view("a", DType::F16, Layout::row_major(&[16, 16]), &[16, 16]);
        let b = kb.register_tensor("b", DType::F16, &[8, 16]);
        let c = kb.register_tensor("c", DType::F32, &[16, 8]);
        kb.gemm(c, a, b);
        assert!(matches!(kb.build(), Err(IrError::InvalidOperands { .. })));
    }

    #[test]
    fn rejects_mismatched_gemm_shapes() {
        let mut kb = KernelBuilder::new("k", 32);
        let a = kb.register_tensor("a", DType::F16, &[16, 16]);
        let b = kb.register_tensor("b", DType::F16, &[8, 32]);
        let c = kb.register_tensor("c", DType::F32, &[16, 8]);
        kb.gemm(c, a, b);
        let err = kb.build().unwrap_err();
        assert!(err.to_string().contains("K extents differ"));
    }

    #[test]
    fn rejects_copy_dtype_conversion() {
        let mut kb = KernelBuilder::new("k", 32);
        let a = kb.register_tensor("a", DType::F16, &[16, 16]);
        let b = kb.register_tensor("b", DType::F32, &[16, 16]);
        kb.copy(a, b);
        assert!(kb.build().is_err());
    }

    #[test]
    fn rejects_bad_thread_counts() {
        let kb = KernelBuilder::new("k", 48);
        assert!(matches!(kb.build(), Err(IrError::InvalidProgram(_))));
    }

    #[test]
    fn rejects_zero_sized_tensors() {
        let mut kb = KernelBuilder::new("k", 32);
        kb.register_tensor("empty", DType::F16, &[0, 4]);
        assert!(matches!(kb.build(), Err(IrError::InvalidTensor { .. })));
    }
}
