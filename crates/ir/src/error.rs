//! Error type for IR construction and verification.

use std::fmt;

/// Errors produced while building or verifying a tile-level program.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// An operation references a tensor that does not exist in the program.
    UnknownTensor(String),
    /// The operands of an operation are inconsistent (shape, dtype or memory
    /// space mismatch).
    InvalidOperands {
        /// Operation mnemonic.
        op: String,
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// A tensor declaration is malformed.
    InvalidTensor {
        /// Tensor name.
        tensor: String,
        /// Explanation.
        reason: String,
    },
    /// The program structure is malformed (e.g. unterminated loop).
    InvalidProgram(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownTensor(name) => write!(f, "unknown tensor {name}"),
            IrError::InvalidOperands { op, reason } => {
                write!(f, "invalid operands for {op}: {reason}")
            }
            IrError::InvalidTensor { tensor, reason } => {
                write!(f, "invalid tensor {tensor}: {reason}")
            }
            IrError::InvalidProgram(reason) => write!(f, "invalid program: {reason}"),
        }
    }
}

impl std::error::Error for IrError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, IrError>;
