//! The tile-level program: a DAG of operations over declared tensors, plus
//! launch configuration and the explicit scheduling knobs (pipelining, warp
//! specialization) that Hexcute exposes to the programmer.

use std::collections::HashMap;
use std::fmt;

use hexcute_arch::{DType, MemSpace};

use crate::error::{IrError, Result};
use crate::op::{Op, OpId, OpKind};
use crate::tensor::{TensorDecl, TensorId};

/// Explicit scheduling annotations: the optimizations Hexcute lets kernel
/// authors control directly (Section III, "Explicit Tile-level Programming
/// Model").
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleAnnotations {
    /// Software-pipelining depth of the main loop (1 = no pipelining).
    pub pipeline_stages: usize,
    /// Whether the kernel uses producer/consumer warp specialization.
    pub warp_specialized: bool,
    /// Whether the programmer annotated a single consistent thread
    /// arrangement for all `gemm` operations (avoids `rearrange` insertion,
    /// Section IV-B "Conflict Handling").
    pub consistent_gemm_arrangement: bool,
}

impl Default for ScheduleAnnotations {
    fn default() -> Self {
        ScheduleAnnotations {
            pipeline_stages: 1,
            warp_specialized: false,
            consistent_gemm_arrangement: true,
        }
    }
}

/// A complete tile-level kernel program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Kernel name.
    pub name: String,
    /// Threads per thread block.
    pub threads_per_block: usize,
    /// Number of thread blocks launched for the problem instance being
    /// modelled.
    pub grid_blocks: usize,
    /// Trip count of the main loop (1 when the kernel has no loop).
    pub main_loop_trip_count: usize,
    /// Scheduling annotations.
    pub schedule: ScheduleAnnotations,
    tensors: Vec<TensorDecl>,
    ops: Vec<Op>,
}

impl Program {
    pub(crate) fn from_parts(
        name: String,
        threads_per_block: usize,
        grid_blocks: usize,
        main_loop_trip_count: usize,
        schedule: ScheduleAnnotations,
        tensors: Vec<TensorDecl>,
        ops: Vec<Op>,
    ) -> Self {
        Program {
            name,
            threads_per_block,
            grid_blocks,
            main_loop_trip_count,
            schedule,
            tensors,
            ops,
        }
    }

    /// Number of warps per thread block.
    pub fn num_warps(&self) -> usize {
        self.threads_per_block / 32
    }

    /// All tensor declarations.
    pub fn tensors(&self) -> &[TensorDecl] {
        &self.tensors
    }

    /// All operations in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Looks up a tensor declaration.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn tensor(&self, id: TensorId) -> &TensorDecl {
        &self.tensors[id.0]
    }

    /// Looks up an operation.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.0]
    }

    /// Finds a tensor by name.
    pub fn tensor_by_name(&self, name: &str) -> Option<&TensorDecl> {
        self.tensors.iter().find(|t| t.name == name)
    }

    /// Operations that write the given tensor.
    pub fn producers_of(&self, tensor: TensorId) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|op| op.outputs().contains(&tensor))
            .map(|op| op.id)
            .collect()
    }

    /// Operations that read the given tensor.
    pub fn consumers_of(&self, tensor: TensorId) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|op| op.inputs().contains(&tensor))
            .map(|op| op.id)
            .collect()
    }

    /// All register-space tensors.
    pub fn register_tensors(&self) -> Vec<TensorId> {
        self.tensors
            .iter()
            .filter(|t| t.space == MemSpace::Register)
            .map(|t| t.id)
            .collect()
    }

    /// All shared-memory tensors.
    pub fn shared_tensors(&self) -> Vec<TensorId> {
        self.tensors
            .iter()
            .filter(|t| t.space == MemSpace::Shared)
            .map(|t| t.id)
            .collect()
    }

    /// Total shared memory required by the program in bytes.
    pub fn shared_memory_bytes(&self) -> usize {
        self.tensors
            .iter()
            .filter(|t| t.space == MemSpace::Shared)
            .map(|t| t.num_bytes())
            .sum()
    }

    /// Whether the program contains at least one `gemm`.
    pub fn has_gemm(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op.kind, OpKind::Gemm { .. }))
    }

    /// Partitions the operations into connected components separated by
    /// shared-memory and global-memory tensors (Algorithm 1, line 1): two
    /// operations belong to the same component when they are connected
    /// through a *register* tensor.
    pub fn register_connected_components(&self) -> Vec<Vec<OpId>> {
        let n = self.ops.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        // Union ops that share a register tensor.
        let mut by_tensor: HashMap<TensorId, Vec<usize>> = HashMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            for t in op.operands() {
                if self.tensor(t).space == MemSpace::Register {
                    by_tensor.entry(t).or_default().push(i);
                }
            }
        }
        for indices in by_tensor.values() {
            for w in indices.windows(2) {
                let a = find(&mut parent, w[0]);
                let b = find(&mut parent, w[1]);
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let mut groups: HashMap<usize, Vec<OpId>> = HashMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(OpId(i));
        }
        let mut components: Vec<Vec<OpId>> = groups.into_values().collect();
        for c in &mut components {
            c.sort();
        }
        components.sort_by_key(|c| c[0]);
        components
    }

    /// Structural verification of the program (shapes, dtypes, memory spaces
    /// and operand arities). Called by [`crate::KernelBuilder::build`].
    pub fn verify(&self) -> Result<()> {
        for t in &self.tensors {
            if t.shape.is_empty() || t.shape.contains(&0) {
                return Err(IrError::InvalidTensor {
                    tensor: t.name.clone(),
                    reason: "tensor shapes must be non-empty and positive".to_string(),
                });
            }
            match t.space {
                MemSpace::Global => {
                    if t.global_layout.is_none() {
                        return Err(IrError::InvalidTensor {
                            tensor: t.name.clone(),
                            reason: "global views must specify a layout".to_string(),
                        });
                    }
                }
                _ => {
                    if t.global_layout.is_some() {
                        return Err(IrError::InvalidTensor {
                            tensor: t.name.clone(),
                            reason: "only global views carry a user-specified layout".to_string(),
                        });
                    }
                }
            }
        }
        if self.threads_per_block == 0 || !self.threads_per_block.is_multiple_of(32) {
            return Err(IrError::InvalidProgram(format!(
                "threads per block must be a positive multiple of 32, got {}",
                self.threads_per_block
            )));
        }
        for op in &self.ops {
            for t in op.operands() {
                if t.0 >= self.tensors.len() {
                    return Err(IrError::UnknownTensor(t.to_string()));
                }
            }
            self.verify_op(op)?;
        }
        Ok(())
    }

    fn verify_op(&self, op: &Op) -> Result<()> {
        let invalid = |reason: String| {
            Err(IrError::InvalidOperands {
                op: op.mnemonic().to_string(),
                reason,
            })
        };
        match &op.kind {
            OpKind::Copy { src, dst } => {
                let s = self.tensor(*src);
                let d = self.tensor(*dst);
                if s.dtype != d.dtype {
                    return invalid(format!(
                        "copy does not convert dtypes ({} vs {}); use cast",
                        s.dtype, d.dtype
                    ));
                }
                if s.tile_elements_2d() != d.tile_elements_2d() {
                    return invalid(format!(
                        "copy tiles have different sizes ({:?} vs {:?})",
                        s.shape, d.shape
                    ));
                }
                if s.space == MemSpace::Global && d.space == MemSpace::Global {
                    return invalid(
                        "copy between two global views is not a tile operation".to_string(),
                    );
                }
                Ok(())
            }
            OpKind::Gemm { c, a, b } => {
                let (ta, tb, tc) = (self.tensor(*a), self.tensor(*b), self.tensor(*c));
                if tc.space != MemSpace::Register {
                    return invalid("gemm accumulator must live in registers".to_string());
                }
                if ta.space == MemSpace::Global || tb.space == MemSpace::Global {
                    return invalid(
                        "gemm operands must be staged in shared memory or registers".to_string(),
                    );
                }
                if ta.dtype != tb.dtype {
                    return invalid(format!(
                        "gemm operand dtypes differ ({} vs {})",
                        ta.dtype, tb.dtype
                    ));
                }
                let (m, k) = (ta.shape[0], ta.shape[1]);
                let (n, k2) = (tb.shape[0], tb.shape[1]);
                if k != k2 {
                    return invalid(format!("gemm K extents differ ({k} vs {k2})"));
                }
                if tc.shape[0] != m || tc.shape[1] != n {
                    return invalid(format!(
                        "gemm accumulator shape {:?} does not match ({m}, {n})",
                        tc.shape
                    ));
                }
                if !tc.dtype.is_float() && tc.dtype != DType::I32 {
                    return invalid("gemm accumulator must be a float type or int32".to_string());
                }
                Ok(())
            }
            OpKind::Cast { src, dst } => {
                let s = self.tensor(*src);
                let d = self.tensor(*dst);
                if s.space != MemSpace::Register || d.space != MemSpace::Register {
                    return invalid("cast operates on register tensors".to_string());
                }
                if s.shape != d.shape {
                    return invalid("cast preserves the tile shape".to_string());
                }
                Ok(())
            }
            OpKind::Rearrange { src, dst } => {
                let s = self.tensor(*src);
                let d = self.tensor(*dst);
                if s.space != MemSpace::Register || d.space != MemSpace::Register {
                    return invalid("rearrange operates on register tensors".to_string());
                }
                if s.shape != d.shape || s.dtype != d.dtype {
                    return invalid("rearrange preserves shape and dtype".to_string());
                }
                Ok(())
            }
            OpKind::Elementwise {
                inputs,
                output,
                op: eop,
            } => {
                if inputs.len() != eop.arity() {
                    return invalid(format!(
                        "{:?} expects {} inputs, got {}",
                        eop,
                        eop.arity(),
                        inputs.len()
                    ));
                }
                let out = self.tensor(*output);
                if out.space != MemSpace::Register {
                    return invalid("elementwise outputs live in registers".to_string());
                }
                for &i in inputs {
                    let t = self.tensor(i);
                    if t.space != MemSpace::Register {
                        return invalid("elementwise inputs live in registers".to_string());
                    }
                    // Inputs must match the output shape dimension by
                    // dimension, or broadcast (extent 1) along a dimension.
                    let compatible = t
                        .tile_shape_2d()
                        .iter()
                        .zip(out.tile_shape_2d().iter())
                        .all(|(&ts, &os)| ts == os || ts == 1)
                        && t.rank() <= out.rank() + 1;
                    if !compatible {
                        return invalid(format!(
                            "elementwise shapes are incompatible ({:?} vs {:?})",
                            t.shape, out.shape
                        ));
                    }
                }
                Ok(())
            }
            OpKind::Reduce { src, dst, dim, .. } => {
                let s = self.tensor(*src);
                let d = self.tensor(*dst);
                if *dim >= s.rank() {
                    return invalid(format!(
                        "reduce dimension {dim} out of range for {:?}",
                        s.shape
                    ));
                }
                let mut expect = s.shape.clone();
                expect[*dim] = 1;
                if d.shape != expect {
                    return invalid(format!(
                        "reduce output shape {:?} should be {:?}",
                        d.shape, expect
                    ));
                }
                Ok(())
            }
            OpKind::Fill { dst, .. } => {
                let d = self.tensor(*dst);
                if d.space != MemSpace::Register {
                    return invalid("fill targets register tensors".to_string());
                }
                Ok(())
            }
            OpKind::Dequant {
                src,
                scale,
                zero,
                dst,
                group_size,
            } => {
                let (s, d) = (self.tensor(*src), self.tensor(*dst));
                if *group_size == 0 {
                    return invalid("dequant group size must be positive".to_string());
                }
                if s.space != MemSpace::Register || d.space != MemSpace::Register {
                    return invalid("dequant operates on register tensors".to_string());
                }
                if !s.dtype.is_integer() {
                    return invalid(format!(
                        "dequant source must be an integer type, got {}",
                        s.dtype
                    ));
                }
                if !d.dtype.is_float() {
                    return invalid(format!(
                        "dequant output must be a float type, got {}",
                        d.dtype
                    ));
                }
                if s.shape != d.shape {
                    return invalid("dequant preserves the tile shape".to_string());
                }
                let groups = s
                    .shape
                    .get(1)
                    .copied()
                    .unwrap_or(1)
                    .div_ceil(*group_size)
                    .max(1);
                let mut params = vec![*scale];
                params.extend(zero.iter().copied());
                for &p in &params {
                    let t = self.tensor(p);
                    if t.space != MemSpace::Register {
                        return invalid("dequant scales/zeros live in registers".to_string());
                    }
                    if !t.dtype.is_float() {
                        return invalid("dequant scales/zeros must be float tensors".to_string());
                    }
                    let cols = t.shape.get(1).copied().unwrap_or(1);
                    if t.shape.first().copied().unwrap_or(1) != s.shape[0]
                        || (cols != groups && cols != 1)
                    {
                        return invalid(format!(
                            "dequant scale/zero shape {:?} does not match [{}, {groups}] \
                             (or broadcast [{}, 1]) for group size {group_size}",
                            t.shape, s.shape[0], s.shape[0]
                        ));
                    }
                }
                Ok(())
            }
        }
    }

    /// Total floating-point operations performed by one thread block per
    /// kernel execution (gemm contributions only), used for roofline
    /// comparisons.
    pub fn block_flops(&self) -> usize {
        let mut flops = 0usize;
        for op in &self.ops {
            if let OpKind::Gemm { a, b, .. } = op.kind {
                let ta = self.tensor(a);
                let tb = self.tensor(b);
                let m = ta.shape[0];
                let k = ta.shape[1];
                let n = tb.shape[0];
                let reps = if op.in_main_loop {
                    self.main_loop_trip_count
                } else {
                    1
                };
                flops += 2 * m * n * k * reps;
            }
        }
        flops
    }

    /// Bytes moved between global memory and the chip by one thread block.
    pub fn block_global_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for op in &self.ops {
            if let OpKind::Copy { src, dst } = op.kind {
                let s = self.tensor(src);
                let d = self.tensor(dst);
                let reps = if op.in_main_loop {
                    self.main_loop_trip_count
                } else {
                    1
                };
                if s.space == MemSpace::Global {
                    bytes += s.dtype.bytes_for(d.tile_elements_2d()) * reps;
                } else if d.space == MemSpace::Global {
                    bytes += d.dtype.bytes_for(s.tile_elements_2d()) * reps;
                }
            }
        }
        bytes
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel {} (threads={}, blocks={}, loop={}x, stages={}, warp_specialized={})",
            self.name,
            self.threads_per_block,
            self.grid_blocks,
            self.main_loop_trip_count,
            self.schedule.pipeline_stages,
            self.schedule.warp_specialized
        )?;
        for t in &self.tensors {
            writeln!(f, "  {t}")?;
        }
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use hexcute_layout::Layout;

    fn simple_gemm() -> Program {
        let mut kb = KernelBuilder::new("gemm", 128);
        let ga = kb.global_view("a", DType::F16, Layout::row_major(&[64, 32]), &[64, 32]);
        let gb = kb.global_view("b", DType::F16, Layout::row_major(&[64, 32]), &[64, 32]);
        let gc = kb.global_view("c", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
        let ra = kb.register_tensor("ra", DType::F16, &[64, 32]);
        let rb = kb.register_tensor("rb", DType::F16, &[64, 32]);
        let rc = kb.register_tensor("rc", DType::F32, &[64, 64]);
        kb.fill(rc, 0.0);
        kb.copy(ga, ra);
        kb.copy(gb, rb);
        kb.gemm(rc, ra, rb);
        let rc16 = kb.cast(rc, DType::F16);
        kb.copy(rc16, gc);
        kb.build().unwrap()
    }

    #[test]
    fn def_use_chains() {
        let p = simple_gemm();
        let rc = p.tensor_by_name("rc").unwrap().id;
        let producers = p.producers_of(rc);
        assert_eq!(producers.len(), 2); // fill + gemm
        let consumers = p.consumers_of(rc);
        assert_eq!(consumers.len(), 2); // gemm reads it, cast reads it
        assert!(p.has_gemm());
        assert_eq!(p.num_warps(), 4);
    }

    #[test]
    fn register_components_split_at_memory_boundaries() {
        let mut kb = KernelBuilder::new("two_components", 128);
        let g = kb.global_view("g", DType::F16, Layout::row_major(&[32, 32]), &[32, 32]);
        let s = kb.shared_tensor("s", DType::F16, &[32, 32]);
        let r1 = kb.register_tensor("r1", DType::F16, &[32, 32]);
        let r2 = kb.register_tensor("r2", DType::F16, &[32, 32]);
        kb.copy(g, r1);
        kb.copy(r1, s);
        kb.copy(s, r2);
        let r3 = kb.cast(r2, DType::F32);
        let _ = r3;
        let p = kb.build().unwrap();
        let components = p.register_connected_components();
        // Component 1: g→r1, r1→s. Component 2: s→r2, cast.
        assert_eq!(components.len(), 2);
        assert_eq!(components[0].len(), 2);
        assert_eq!(components[1].len(), 2);
    }

    #[test]
    fn flops_and_bytes_accounting() {
        let p = simple_gemm();
        assert_eq!(p.block_flops(), 2 * 64 * 64 * 32);
        // Loads a (64x32) + b (64x32) + stores c (64x64), all fp16.
        assert_eq!(p.block_global_bytes(), (64 * 32 + 64 * 32 + 64 * 64) * 2);
    }

    #[test]
    fn shared_memory_accounting() {
        let mut kb = KernelBuilder::new("smem", 128);
        let _sa = kb.shared_tensor("sa", DType::F16, &[128, 64]);
        let _sb = kb.shared_tensor("sb", DType::I4, &[128, 64]);
        let p = kb.build().unwrap();
        assert_eq!(p.shared_memory_bytes(), 128 * 64 * 2 + 128 * 64 / 2);
        assert_eq!(p.shared_tensors().len(), 2);
        assert!(p.register_tensors().is_empty());
    }

    #[test]
    fn display_lists_ops() {
        let p = simple_gemm();
        let s = p.to_string();
        assert!(s.contains("kernel gemm"));
        assert!(s.contains("gemm("));
        assert!(s.contains("copy("));
    }
}
