//! Tile-level operations (Table I of the paper).

use std::fmt;

use crate::tensor::TensorId;

/// An opaque identifier for an operation within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// The raw index of the operation within its program.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Scalar elementwise operators supported by `elementwise`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ElementwiseOp {
    /// `out = a + b`
    Add,
    /// `out = a - b`
    Sub,
    /// `out = a * b`
    Mul,
    /// `out = a / b`
    Div,
    /// `out = max(a, b)`
    Max,
    /// `out = min(a, b)`
    Min,
    /// `out = exp(a)`
    Exp,
    /// `out = a + constant`
    AddScalar(f64),
    /// `out = a * constant`
    MulScalar(f64),
    /// `out = max(a, 0)`
    Relu,
    /// `out = a * sigmoid(a)` (SiLU, used by MoE gates and Mamba)
    Silu,
    /// `out = sigmoid(a)`
    Sigmoid,
    /// Fused multiply-add over three inputs: `out = a * b + c`
    Fma,
    /// Identity (used to materialize a copy within registers).
    Identity,
}

impl ElementwiseOp {
    /// Number of input tensors the operator consumes.
    pub fn arity(&self) -> usize {
        match self {
            ElementwiseOp::Add
            | ElementwiseOp::Sub
            | ElementwiseOp::Mul
            | ElementwiseOp::Div
            | ElementwiseOp::Max
            | ElementwiseOp::Min => 2,
            ElementwiseOp::Fma => 3,
            _ => 1,
        }
    }
}

/// Reduction operators supported by `reduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Sum reduction.
    Sum,
    /// Maximum reduction.
    Max,
    /// Minimum reduction.
    Min,
}

/// The kind of a tile-level operation, mirroring Table I of the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// `copy(src, dst)`: move a tile between memory spaces.
    Copy {
        /// Source tensor.
        src: TensorId,
        /// Destination tensor.
        dst: TensorId,
    },
    /// `gemm(c, a, b)`: `c += a · bᵀ`, with `a` of shape `(M, K)`, `b` of
    /// shape `(N, K)` and `c` of shape `(M, N)`.
    Gemm {
        /// Accumulator tensor (read-modify-write).
        c: TensorId,
        /// Left operand.
        a: TensorId,
        /// Right operand (stored `N × K`).
        b: TensorId,
    },
    /// `cast(src, dst)`: element type conversion.
    Cast {
        /// Source tensor.
        src: TensorId,
        /// Destination tensor (may have a different dtype).
        dst: TensorId,
    },
    /// `rearrange(src, dst)`: redistribute a register tensor across threads
    /// (through shared memory); inserted by the compiler to resolve layout
    /// conflicts or requested explicitly.
    Rearrange {
        /// Source register tensor.
        src: TensorId,
        /// Destination register tensor.
        dst: TensorId,
    },
    /// `elementwise(inputs..) -> output`.
    Elementwise {
        /// Input tensors (1, 2 or 3 depending on the operator).
        inputs: Vec<TensorId>,
        /// Output tensor.
        output: TensorId,
        /// The scalar operator applied element by element.
        op: ElementwiseOp,
    },
    /// `reduce(src, dim) -> dst` with the given reduction operator.
    Reduce {
        /// Input tensor.
        src: TensorId,
        /// Output tensor (the reduced dimension collapsed to 1).
        dst: TensorId,
        /// The dimension being reduced.
        dim: usize,
        /// The reduction operator.
        op: ReduceOp,
    },
    /// `fill(dst, value)`: initialize a register tensor with a constant
    /// (e.g. zeroing an accumulator).
    Fill {
        /// Destination tensor.
        dst: TensorId,
        /// The fill value.
        value: f64,
    },
    /// `dequant(src, scale, zero, dst)`: weight-only dequantization
    /// `dst = (src - zero) * scale`, entirely within registers. `scale` (and
    /// the optional `zero`) carry one column per *group* of `group_size`
    /// elements along the K dimension (dimension 1) of `src` — the W4A16
    /// grouped-quantization scheme of Marlin/AWQ. A trailing partial group is
    /// served by the last scale column.
    Dequant {
        /// The quantized source tensor (a sub-byte or narrow integer type).
        src: TensorId,
        /// Per-group scales, shape `[src.shape[0], ceil(src.shape[1]/group_size)]`.
        scale: TensorId,
        /// Optional per-group zero points (same shape as `scale`).
        zero: Option<TensorId>,
        /// The dequantized output tensor (a float type, same shape as `src`).
        dst: TensorId,
        /// Elements along dimension 1 sharing one scale/zero column.
        group_size: usize,
    },
}

/// A tile-level operation together with scheduling metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Identifier within the program.
    pub id: OpId,
    /// The operation itself.
    pub kind: OpKind,
    /// Whether the operation sits inside the program's main loop.
    pub in_main_loop: bool,
}

impl Op {
    /// Tensors read by the operation.
    pub fn inputs(&self) -> Vec<TensorId> {
        match &self.kind {
            OpKind::Copy { src, .. } => vec![*src],
            OpKind::Gemm { c, a, b } => vec![*a, *b, *c],
            OpKind::Cast { src, .. } => vec![*src],
            OpKind::Rearrange { src, .. } => vec![*src],
            OpKind::Elementwise { inputs, .. } => inputs.clone(),
            OpKind::Reduce { src, .. } => vec![*src],
            OpKind::Fill { .. } => vec![],
            OpKind::Dequant {
                src, scale, zero, ..
            } => {
                let mut inputs = vec![*src, *scale];
                if let Some(z) = zero {
                    inputs.push(*z);
                }
                inputs
            }
        }
    }

    /// Tensors written by the operation.
    pub fn outputs(&self) -> Vec<TensorId> {
        match &self.kind {
            OpKind::Copy { dst, .. } => vec![*dst],
            OpKind::Gemm { c, .. } => vec![*c],
            OpKind::Cast { dst, .. } => vec![*dst],
            OpKind::Rearrange { dst, .. } => vec![*dst],
            OpKind::Elementwise { output, .. } => vec![*output],
            OpKind::Reduce { dst, .. } => vec![*dst],
            OpKind::Fill { dst, .. } => vec![*dst],
            OpKind::Dequant { dst, .. } => vec![*dst],
        }
    }

    /// All tensors touched by the operation.
    pub fn operands(&self) -> Vec<TensorId> {
        let mut all = self.inputs();
        for out in self.outputs() {
            if !all.contains(&out) {
                all.push(out);
            }
        }
        all
    }

    /// A short mnemonic for the operation kind.
    pub fn mnemonic(&self) -> &'static str {
        match self.kind {
            OpKind::Copy { .. } => "copy",
            OpKind::Gemm { .. } => "gemm",
            OpKind::Cast { .. } => "cast",
            OpKind::Rearrange { .. } => "rearrange",
            OpKind::Elementwise { .. } => "elementwise",
            OpKind::Reduce { .. } => "reduce",
            OpKind::Fill { .. } => "fill",
            OpKind::Dequant { .. } => "dequant",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}(", self.id, self.mnemonic())?;
        let operands = self.operands();
        for (i, t) in operands.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")?;
        if self.in_main_loop {
            write!(f, " [loop]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_arity() {
        assert_eq!(ElementwiseOp::Add.arity(), 2);
        assert_eq!(ElementwiseOp::Exp.arity(), 1);
        assert_eq!(ElementwiseOp::Fma.arity(), 3);
        assert_eq!(ElementwiseOp::MulScalar(2.0).arity(), 1);
    }

    #[test]
    fn gemm_reads_its_accumulator() {
        let op = Op {
            id: OpId(0),
            kind: OpKind::Gemm {
                c: TensorId(2),
                a: TensorId(0),
                b: TensorId(1),
            },
            in_main_loop: true,
        };
        assert_eq!(op.inputs(), vec![TensorId(0), TensorId(1), TensorId(2)]);
        assert_eq!(op.outputs(), vec![TensorId(2)]);
        assert_eq!(op.operands().len(), 3);
        assert_eq!(op.mnemonic(), "gemm");
        assert!(op.to_string().contains("[loop]"));
    }

    #[test]
    fn fill_has_no_inputs() {
        let op = Op {
            id: OpId(1),
            kind: OpKind::Fill {
                dst: TensorId(3),
                value: 0.0,
            },
            in_main_loop: false,
        };
        assert!(op.inputs().is_empty());
        assert_eq!(op.outputs(), vec![TensorId(3)]);
    }

    #[test]
    fn copy_display() {
        let op = Op {
            id: OpId(7),
            kind: OpKind::Copy {
                src: TensorId(1),
                dst: TensorId(2),
            },
            in_main_loop: false,
        };
        assert_eq!(op.to_string(), "op7: copy(%t1, %t2)");
    }
}
