//! # hexcute-ir
//!
//! The Hexcute tile-level intermediate representation: statically shaped
//! tensor tiles placed explicitly in global, shared or register memory, and
//! the tile-level operations of Table I of the paper (`copy`, `gemm`, `cast`,
//! `rearrange`, `elementwise`, `reduce`).
//!
//! Programs are constructed through the [`KernelBuilder`] DSL — the Rust
//! analogue of Hexcute's Python-embedded DSL — and verified structurally
//! before layout synthesis.
//!
//! ```
//! use hexcute_arch::DType;
//! use hexcute_ir::KernelBuilder;
//! use hexcute_layout::Layout;
//!
//! let mut kb = KernelBuilder::new("copy_kernel", 128);
//! let src = kb.global_view("src", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
//! let dst = kb.global_view("dst", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
//! let tile = kb.register_tensor("tile", DType::F16, &[64, 64]);
//! kb.copy(src, tile);
//! kb.copy(tile, dst);
//! let program = kb.build()?;
//! assert_eq!(program.ops().len(), 2);
//! # Ok::<(), hexcute_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod error;
mod op;
mod program;
mod tensor;

pub use builder::KernelBuilder;
pub use error::{IrError, Result};
pub use op::{ElementwiseOp, Op, OpId, OpKind, ReduceOp};
pub use program::{Program, ScheduleAnnotations};
pub use tensor::{TensorDecl, TensorId};

// Re-export the types that appear throughout the IR's public API so that
// downstream crates can depend on `hexcute-ir` alone for most tasks.
pub use hexcute_arch::{DType, MemSpace};
pub use hexcute_layout::Layout;
