//! Process-wide switch for the incremental prefix-shared candidate
//! evaluation (see [`crate::prefix`]).
//!
//! Mirrors `hexcute_layout::fastpath`: the switch is initialized from the
//! `HEXCUTE_DISABLE_INCREMENTAL` environment variable and can be flipped at
//! runtime so before/after benchmarks and cross-check tests exercise both
//! the incremental search and the full per-candidate re-evaluation in one
//! process. The per-search override lives in
//! [`crate::SynthesisOptions::incremental`]; the search is incremental only
//! when *both* are on.

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = uninitialized, 1 = enabled, 2 = disabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Returns `true` when the incremental prefix-shared candidate evaluation is
/// globally enabled (the default; `HEXCUTE_DISABLE_INCREMENTAL=1` disables
/// it at startup).
pub fn incremental_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let disabled = std::env::var("HEXCUTE_DISABLE_INCREMENTAL")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            STATE.store(if disabled { 2 } else { 1 }, Ordering::Relaxed);
            !disabled
        }
    }
}

/// Globally enables or disables the incremental evaluation (all threads,
/// process-wide).
pub fn set_incremental(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_round_trips() {
        let initial = incremental_enabled();
        set_incremental(false);
        assert!(!incremental_enabled());
        set_incremental(true);
        assert!(incremental_enabled());
        set_incremental(initial);
    }
}
