//! The thread-value layout constraints of Fig. 19 of the paper, implemented
//! both algebraically (for solving) and numerically (for verification).
//!
//! * `copy(a, b)` implemented by instruction `I` with operand layouts `p`
//!   (source side) and `q` (destination side) requires `f ∘ p⁻¹ = g ∘ q⁻¹`.
//! * `gemm(a, b, c)` implemented by a Tensor Core atom requires the three
//!   dimension-wise consistency equations of Theorem 1.
//! * `elementwise` requires identical layouts; `reduce` requires the output
//!   layout to equal the input layout with the reduced dimension collapsed.

use hexcute_arch::MmaAtom;
use hexcute_layout::{Layout, LayoutError, TvLayout};

/// Solves the copy constraint for the unknown source-side layout:
/// `f = g ∘ q⁻¹ ∘ p` (the rewriting of Fig. 19(a) used in Algorithm 1,
/// line 22).
///
/// # Errors
///
/// Propagates layout-algebra errors (non-invertible `q`, indivisible
/// composition).
pub fn solve_copy_peer(g: &TvLayout, q: &TvLayout, p: &TvLayout) -> Result<TvLayout, LayoutError> {
    let q_inv = q.inverse()?;
    let g_of_qinv = g.as_layout().compose(&q_inv)?;
    let thread = g_of_qinv.compose(&p.thread().clone())?;
    let value = g_of_qinv.compose(&p.value().clone())?;
    TvLayout::new(thread, value, g.tile_shape().to_vec())
}

/// Numerically verifies the copy constraint `f ∘ p⁻¹ = g ∘ q⁻¹` over the
/// instruction tile.
pub fn copy_constraint_holds(f: &TvLayout, p: &TvLayout, g: &TvLayout, q: &TvLayout) -> bool {
    let p_inv = match p.inverse() {
        Ok(inv) => inv,
        Err(_) => return false,
    };
    let q_inv = match q.inverse() {
        Ok(inv) => inv,
        Err(_) => return false,
    };
    let tile = p.tile_size();
    if tile != q.tile_size() {
        return false;
    }
    for x in 0..tile {
        let via_p = tv_apply(f, p.num_threads(), p_inv.map(x));
        let via_q = tv_apply(g, q.num_threads(), q_inv.map(x));
        if via_p != via_q {
            return false;
        }
    }
    true
}

/// Applies an operation-level TV layout to a thread-value *linear* index that
/// was produced with `threads` threads (column-major `(t, v)` packing).
fn tv_apply(layout: &TvLayout, threads: usize, tv_index: usize) -> usize {
    let t = tv_index % threads;
    let v = tv_index / threads;
    layout.map(t, v)
}

/// Numerically verifies the three `gemm` consistency equations of Theorem 1
/// for operation-level layouts `fa`, `fb`, `fc` and the instruction atom.
///
/// The check enumerates the atom's coordinates; because the synthesis engine
/// embeds the atom as the innermost modes of the expanded layouts, the atom's
/// `(thread, value)` indices address the first instruction invocation of the
/// operation directly.
pub fn gemm_constraint_holds(fa: &TvLayout, fb: &TvLayout, fc: &TvLayout, atom: &MmaAtom) -> bool {
    let (pa_inv, pb_inv, pc_inv) = match (atom.a.inverse(), atom.b.inverse(), atom.c.inverse()) {
        (Ok(a), Ok(b), Ok(c)) => (a, b, c),
        _ => return false,
    };
    let threads = atom.threads;

    // M dimension: embed m_i as (m_i, 0) in both the C tile and the A tile.
    for m_i in 0..atom.m {
        let c_idx = m_i; // column-major (m, n) with n = 0
        let a_idx = m_i; // column-major (m, k) with k = 0
        let m_via_c = fc_coord(fc, threads, pc_inv.map(c_idx))[0];
        let m_via_a = fc_coord(fa, threads, pa_inv.map(a_idx))[0];
        if m_via_c != m_via_a {
            return false;
        }
    }
    // N dimension: embed n_i as (0, n_i) in C and (n_i, 0) in B.
    for n_i in 0..atom.n {
        let c_idx = n_i * atom.m;
        let b_idx = n_i;
        let n_via_c = fc_coord(fc, threads, pc_inv.map(c_idx))[1];
        let n_via_b = fc_coord(fb, threads, pb_inv.map(b_idx))[0];
        if n_via_c != n_via_b {
            return false;
        }
    }
    // K dimension: embed k_i as (0, k_i) in both A and B.
    for k_i in 0..atom.k {
        let a_idx = k_i * atom.m;
        let b_idx = k_i * atom.n;
        let k_via_a = fc_coord(fa, threads, pa_inv.map(a_idx))[1];
        let k_via_b = fc_coord(fb, threads, pb_inv.map(b_idx))[1];
        if k_via_a != k_via_b {
            return false;
        }
    }
    true
}

fn fc_coord(layout: &TvLayout, threads: usize, tv_index: usize) -> Vec<usize> {
    let t = tv_index % threads;
    let v = tv_index / threads;
    layout.tile_coords(t, v)
}

/// Returns `true` when two layouts distribute a tile identically (the
/// `elementwise` constraint of Fig. 19(c)).
pub fn same_distribution(a: &TvLayout, b: &TvLayout) -> bool {
    a.num_threads() == b.num_threads()
        && a.values_per_thread() == b.values_per_thread()
        && a.as_layout().equivalent(&b.as_layout())
}

/// Collapses the given tile dimension of a thread-value layout, producing the
/// output layout of a `reduce` operation (Fig. 19(d)): every element that
/// differed only in the reduced coordinate now maps to the same position.
///
/// # Errors
///
/// Propagates composition errors (should not occur for synthesized layouts).
pub fn collapse_dim(tv: &TvLayout, dim: usize) -> Result<TvLayout, LayoutError> {
    let src_shape = tv.tile_shape();
    let mut dst_shape = src_shape.to_vec();
    if dim < dst_shape.len() {
        dst_shape[dim] = 1;
    }
    // Column-major strides of the destination tile, with the reduced
    // dimension projected out (stride 0).
    let mut strides = Vec::with_capacity(src_shape.len());
    let mut acc = 1usize;
    for (d, &extent) in dst_shape.iter().enumerate() {
        if d == dim {
            strides.push(0);
        } else {
            strides.push(acc);
        }
        acc *= extent.max(1);
    }
    let projection = Layout::from_flat(src_shape, &strides);
    let thread = projection.compose(tv.thread())?;
    let value = projection.compose(tv.value())?;
    TvLayout::new(thread, value, dst_shape)
}

/// Computes the length of the longest run of values held by a single thread
/// that is contiguous along tile dimension `dim` — the quantity that bounds
/// the usable vector width of a copy instruction.
pub fn contiguous_run_along(tv: &TvLayout, dim: usize) -> usize {
    let tile = tv.tile_shape();
    if tv.values_per_thread() == 0 {
        return 1;
    }
    // The stride (in the tile's column-major linearization) of one step along
    // `dim`.
    let mut step = 1usize;
    for &extent in tile.iter().take(dim) {
        step *= extent;
    }
    let values = tv.values_per_thread();
    let mut best = 1usize;
    let mut run = 1usize;
    for v in 1..values {
        let prev = tv.map(0, v - 1);
        let cur = tv.map(0, v);
        if cur == prev + step {
            run += 1;
            best = best.max(run);
        } else {
            run = 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::{ldmatrix_layouts, mma_m16n8k16, DType};
    use hexcute_layout::RepeatMode;

    #[test]
    fn solve_copy_peer_round_trips_on_ldmatrix() {
        // Given the register-side layout g = q (the ldmatrix destination
        // fragment), the source-side layout solved from the constraint must
        // equal p (the row-pointer coverage), and vice versa.
        let (p, q) = ldmatrix_layouts(4);
        let f = solve_copy_peer(&q, &q, &p).unwrap();
        assert!(same_distribution(&f, &p));
        assert!(copy_constraint_holds(&f, &p, &q, &q));
    }

    #[test]
    fn copy_constraint_detects_mismatch() {
        let (p, q) = ldmatrix_layouts(4);
        // Claiming the register side is also distributed like the row
        // coverage violates the constraint.
        assert!(!copy_constraint_holds(&p, &p, &p, &q));
        assert!(copy_constraint_holds(&p, &p, &q, &q));
    }

    #[test]
    fn identity_instruction_keeps_distributions_equal() {
        // A plain vector copy has p == q, so the constraint degenerates to
        // f == g.
        let atom = TvLayout::contiguous(32, 8, vec![256]).unwrap();
        assert!(copy_constraint_holds(&atom, &atom, &atom, &atom));
    }

    #[test]
    fn gemm_constraints_hold_for_the_atom_itself() {
        let atom = mma_m16n8k16(DType::F16, DType::F32);
        assert!(gemm_constraint_holds(&atom.a, &atom.b, &atom.c, &atom));
    }

    #[test]
    fn gemm_constraints_hold_for_expanded_tiles() {
        let atom = mma_m16n8k16(DType::F16, DType::F32);
        // 2x2 warps over a 64x32 C tile, K tile of 32.
        let fc = atom
            .c
            .expand(
                &[RepeatMode::along(2, 0), RepeatMode::along(2, 1)],
                &[RepeatMode::along(2, 0), RepeatMode::along(2, 1)],
            )
            .unwrap();
        let fa = atom
            .a
            .expand(
                &[RepeatMode::along(2, 0), RepeatMode::broadcast(2)],
                &[RepeatMode::along(2, 0), RepeatMode::along(2, 1)],
            )
            .unwrap();
        let fb = atom
            .b
            .expand(
                &[RepeatMode::broadcast(2), RepeatMode::along(2, 0)],
                &[RepeatMode::along(2, 0), RepeatMode::along(2, 1)],
            )
            .unwrap();
        assert!(gemm_constraint_holds(&fa, &fb, &fc, &atom));
    }

    #[test]
    fn gemm_constraints_reject_inconsistent_layouts() {
        let atom = mma_m16n8k16(DType::F16, DType::F32);
        // Swapping the A and B layouts breaks the M/N correspondences.
        assert!(!gemm_constraint_holds(&atom.b, &atom.a, &atom.c, &atom));
    }

    #[test]
    fn collapse_dim_projects_the_reduced_axis() {
        let atom = mma_m16n8k16(DType::F16, DType::F32);
        let collapsed = collapse_dim(&atom.c, 1).unwrap();
        assert_eq!(collapsed.tile_shape(), &[16, 1]);
        // Every value of thread 0 now maps to rows 0 or 8 with column 0.
        for v in 0..collapsed.values_per_thread() {
            let coords = collapsed.tile_coords(0, v);
            assert_eq!(coords[1], 0);
            assert!(coords[0] == 0 || coords[0] == 8);
        }
        // Threads that differed only in the N coordinate now alias.
        assert_eq!(collapsed.map(0, 0), collapsed.map(1, 0));
    }

    #[test]
    fn contiguous_runs() {
        // 8 contiguous elements per thread along a flat tile.
        let flat = TvLayout::contiguous(32, 8, vec![256]).unwrap();
        assert_eq!(contiguous_run_along(&flat, 0), 8);
        // The mma C fragment holds pairs contiguous along N (dim 1).
        let atom = mma_m16n8k16(DType::F16, DType::F32);
        assert_eq!(contiguous_run_along(&atom.c, 1), 2);
        assert_eq!(contiguous_run_along(&atom.c, 0), 1);
    }
}
