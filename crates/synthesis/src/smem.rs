//! Shared-memory layout synthesis (Section V of the paper).
//!
//! The layout of a shared tensor is represented as `M = S ∘ m`: a base
//! memory layout `m` subject to instruction alignment constraints, composed
//! with a swizzle `S` that permutes addresses to avoid bank conflicts.
//! Constraints from every copy touching the buffer are *unified*; the
//! undetermined strides of the unified constraint are then materialized into
//! a concrete compact layout, and finally a swizzle is selected by counting
//! bank conflicts of the actual warp access patterns.

use std::fmt;

use hexcute_arch::{CopyAtom, CopyKind, DType, GpuArch};
use hexcute_ir::{OpKind, Program};
use hexcute_layout::{IntTuple, Layout, Swizzle, SwizzledLayout};

use crate::choice::{Candidate, CopyChoice};
use crate::error::SynthesisError;
use crate::options::SynthesisOptions;

/// An interned constraint-conflict code: why unification or materialization
/// of a shared-memory layout constraint failed.
///
/// The prefix-shared search stores one of these per tensor per tree node and
/// clones that state along every stateful edge, so the type is deliberately
/// `Copy` — the hot path never allocates for an error. The human-readable
/// description (what the old `Result<_, String>` carried) is produced by the
/// `Display` impl only at the API boundary
/// ([`crate::synthesize_smem_layouts`] converting into
/// [`SynthesisError::SmemUnsatisfiable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintError {
    /// Two constraints describe tiles of different ranks.
    RankMismatch,
    /// Two constraints disagree on a dimension's total extent.
    ExtentMismatch {
        /// Total extent on the left-hand side.
        a: usize,
        /// Total extent on the right-hand side.
        b: usize,
    },
    /// Mode factorizations cannot be refined into a common one.
    IncompatibleFactorization {
        /// Remaining left-hand extent at the point of failure.
        a: usize,
        /// Remaining right-hand extent at the point of failure.
        b: usize,
    },
    /// Two determined strides disagree for one shared mode.
    StrideConflict {
        /// The left-hand stride.
        a: usize,
        /// The right-hand stride.
        b: usize,
        /// The size of the shared mode.
        size: usize,
    },
    /// Two different dimensions both require stride-1 modes (Case 2 of
    /// Fig. 10(c)): distinct elements would alias.
    AliasingContiguity {
        /// The first dimension demanding contiguity.
        first: usize,
        /// The second dimension demanding contiguity.
        second: usize,
    },
    /// A determined mode cannot be placed at the next free address offset.
    ModePlacement {
        /// The mode's extent.
        size: usize,
        /// The mode's determined stride.
        stride: usize,
        /// The dimension the mode belongs to.
        dim: usize,
        /// The offset at which placement was attempted.
        offset: usize,
    },
    /// The materialized layout maps distinct coordinates to one address.
    NotInjective,
    /// The assembled shape/stride pair was rejected by the layout algebra.
    LayoutBuild,
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConstraintError::RankMismatch => {
                write!(f, "constraints describe tiles of different ranks")
            }
            ConstraintError::ExtentMismatch { a, b } => {
                write!(f, "dimension extents differ ({a} vs {b})")
            }
            ConstraintError::IncompatibleFactorization { a, b } => {
                write!(f, "mode factorizations are incompatible ({a} vs {b})")
            }
            ConstraintError::StrideConflict { a, b, size } => {
                write!(f, "conflicting strides {a} and {b} for a shared mode of size {size}")
            }
            ConstraintError::AliasingContiguity { first, second } => write!(
                f,
                "dimensions [{first}, {second}] all require stride-1 modes; distinct elements would alias"
            ),
            ConstraintError::ModePlacement {
                size,
                stride,
                dim,
                offset,
            } => write!(
                f,
                "mode {size}:{stride} of dimension {dim} cannot be placed at offset {offset}"
            ),
            ConstraintError::NotInjective => {
                write!(f, "materialized layout is not injective")
            }
            ConstraintError::LayoutBuild => {
                write!(f, "materialized shape and stride are inconsistent")
            }
        }
    }
}

impl std::error::Error for ConstraintError {}

/// One factor of a layout constraint: a mode whose stride is either pinned
/// (e.g. `1` for an alignment requirement) or still a free variable
/// (`D₁, …, Dₙ` in Fig. 10 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstraintMode {
    /// The extent of the mode.
    pub size: usize,
    /// The stride, if already determined.
    pub stride: Option<usize>,
}

impl ConstraintMode {
    /// A mode with a known stride.
    pub fn known(size: usize, stride: usize) -> Self {
        ConstraintMode {
            size,
            stride: Some(stride),
        }
    }

    /// A mode whose stride is a free variable.
    pub fn free(size: usize) -> Self {
        ConstraintMode { size, stride: None }
    }
}

/// A partially determined layout for a shared-memory tile: one factor list
/// per tile dimension, innermost factor first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutConstraint {
    dims: Vec<Vec<ConstraintMode>>,
}

impl LayoutConstraint {
    /// The unconstrained layout of a tile (every dimension a single free
    /// mode).
    pub fn unconstrained(tile: &[usize]) -> Self {
        LayoutConstraint {
            dims: tile
                .iter()
                .map(|&s| vec![ConstraintMode::free(s)])
                .collect(),
        }
    }

    /// The constraint generated by a copy that accesses `vector` contiguous
    /// elements along dimension `dim` (the `(8 : 1)` red-box mode of
    /// Fig. 10(b)).
    pub fn aligned(tile: &[usize], dim: usize, vector: usize) -> Self {
        let mut c = LayoutConstraint::unconstrained(tile);
        let extent = tile[dim];
        let vector = vector.clamp(1, extent);
        if vector > 1 && extent.is_multiple_of(vector) {
            if vector == extent {
                c.dims[dim] = vec![ConstraintMode::known(extent, 1)];
            } else {
                c.dims[dim] = vec![
                    ConstraintMode::known(vector, 1),
                    ConstraintMode::free(extent / vector),
                ];
            }
        }
        c
    }

    /// The per-dimension factor lists.
    pub fn dims(&self) -> &[Vec<ConstraintMode>] {
        &self.dims
    }

    /// Unifies two constraints over the same tile, refining modes where
    /// needed (Fig. 10(c)). Returns an error when the determined strides
    /// conflict.
    ///
    /// # Errors
    ///
    /// Returns the interned [`ConstraintError`] code of the conflict (its
    /// `Display` impl produces the human-readable description).
    pub fn unify(&self, other: &LayoutConstraint) -> Result<LayoutConstraint, ConstraintError> {
        if self.dims.len() != other.dims.len() {
            return Err(ConstraintError::RankMismatch);
        }
        let mut dims = Vec::with_capacity(self.dims.len());
        for (a, b) in self.dims.iter().zip(other.dims.iter()) {
            dims.push(unify_dim(a, b)?);
        }
        Ok(LayoutConstraint { dims })
    }

    /// Materializes the undetermined strides into a concrete, compact layout
    /// whose hierarchy mirrors the tile dimensions.
    ///
    /// Dimensions carrying a stride-1 alignment requirement are placed
    /// innermost. Two different dimensions both demanding stride-1 modes are
    /// a conflict (Case 2 of Fig. 10(c)): distinct elements would map to the
    /// same address.
    ///
    /// # Errors
    ///
    /// Returns the interned [`ConstraintError`] code when no valid assignment
    /// exists.
    pub fn materialize(&self) -> Result<Layout, ConstraintError> {
        // Which dimensions require contiguity (a known stride-1 mode of size > 1)?
        let contiguous_dims: Vec<usize> = self
            .dims
            .iter()
            .enumerate()
            .filter(|(_, modes)| modes.iter().any(|m| m.stride == Some(1) && m.size > 1))
            .map(|(d, _)| d)
            .collect();
        if contiguous_dims.len() > 1 {
            return Err(ConstraintError::AliasingContiguity {
                first: contiguous_dims[0],
                second: contiguous_dims[1],
            });
        }
        // Order: the contiguous dimension first, then the remaining
        // dimensions in index order.
        let mut order: Vec<usize> = Vec::with_capacity(self.dims.len());
        if let Some(&d) = contiguous_dims.first() {
            order.push(d);
        }
        for d in 0..self.dims.len() {
            if !order.contains(&d) {
                order.push(d);
            }
        }
        // Assign strides greedily in that order.
        let mut strides: Vec<Vec<usize>> = self.dims.iter().map(|m| vec![0; m.len()]).collect();
        let mut current = 1usize;
        for &d in &order {
            for (i, mode) in self.dims[d].iter().enumerate() {
                match mode.stride {
                    Some(s) => {
                        if s != current && mode.size > 1 {
                            return Err(ConstraintError::ModePlacement {
                                size: mode.size,
                                stride: s,
                                dim: d,
                                offset: current,
                            });
                        }
                        strides[d][i] = s;
                        current = current.max(s * mode.size);
                    }
                    None => {
                        strides[d][i] = current;
                        current *= mode.size;
                    }
                }
            }
        }
        // Build the hierarchical layout mirroring the tile dimensions.
        let shape = IntTuple::Tuple(
            self.dims
                .iter()
                .map(|modes| {
                    if modes.len() == 1 {
                        IntTuple::Int(modes[0].size)
                    } else {
                        IntTuple::Tuple(modes.iter().map(|m| IntTuple::Int(m.size)).collect())
                    }
                })
                .collect(),
        );
        let stride = IntTuple::Tuple(
            self.dims
                .iter()
                .zip(strides.iter())
                .map(|(modes, s)| {
                    if modes.len() == 1 {
                        IntTuple::Int(s[0])
                    } else {
                        IntTuple::Tuple(s.iter().map(|&v| IntTuple::Int(v)).collect())
                    }
                })
                .collect(),
        );
        let layout = Layout::new(shape, stride).map_err(|_| ConstraintError::LayoutBuild)?;
        if !layout.is_injective() {
            return Err(ConstraintError::NotInjective);
        }
        Ok(layout)
    }
}

fn unify_dim(
    a: &[ConstraintMode],
    b: &[ConstraintMode],
) -> Result<Vec<ConstraintMode>, ConstraintError> {
    let total_a: usize = a.iter().map(|m| m.size).product();
    let total_b: usize = b.iter().map(|m| m.size).product();
    if total_a != total_b {
        return Err(ConstraintError::ExtentMismatch {
            a: total_a,
            b: total_b,
        });
    }
    let mut out = Vec::new();
    let mut ai = 0usize;
    let mut bi = 0usize;
    let mut a_rem = a.first().map(|m| m.size).unwrap_or(1);
    let mut b_rem = b.first().map(|m| m.size).unwrap_or(1);
    let mut a_stride = a.first().and_then(|m| m.stride);
    let mut b_stride = b.first().and_then(|m| m.stride);
    while ai < a.len() && bi < b.len() {
        let take = a_rem.min(b_rem);
        if take > 0 && (!a_rem.is_multiple_of(take) || !b_rem.is_multiple_of(take)) {
            return Err(ConstraintError::IncompatibleFactorization { a: a_rem, b: b_rem });
        }
        if take > 0 {
            let stride = match (a_stride, b_stride) {
                (Some(x), Some(y)) if x != y => {
                    return Err(ConstraintError::StrideConflict {
                        a: x,
                        b: y,
                        size: take,
                    })
                }
                (Some(x), _) => Some(x),
                (_, Some(y)) => Some(y),
                _ => None,
            };
            out.push(ConstraintMode { size: take, stride });
            // Advance both factorizations by `take`.
            advance(&mut a_rem, &mut a_stride, take);
            advance(&mut b_rem, &mut b_stride, take);
        }
        if a_rem == 1 {
            ai += 1;
            if ai < a.len() {
                a_rem = a[ai].size;
                a_stride = a[ai].stride;
            }
        }
        if b_rem == 1 {
            bi += 1;
            if bi < b.len() {
                b_rem = b[bi].size;
                b_stride = b[bi].stride;
            }
        }
    }
    // Merge adjacent modes that are both free or contiguous continuations.
    let mut merged: Vec<ConstraintMode> = Vec::new();
    for m in out {
        if let Some(last) = merged.last_mut() {
            if last.stride.is_none() && m.stride.is_none() {
                last.size *= m.size;
                continue;
            }
        }
        merged.push(m);
    }
    Ok(merged)
}

fn advance(rem: &mut usize, stride: &mut Option<usize>, take: usize) {
    debug_assert_eq!(*rem % take, 0);
    *rem /= take;
    if let Some(s) = stride {
        *stride = Some(*s * take);
    }
}

/// Counts shared-memory bank conflicts for a set of simultaneous per-thread
/// element accesses under the given layout: the result is the worst-case
/// number of serialized passes minus one (0 = conflict free).
pub fn bank_conflict_degree(
    layout: &SwizzledLayout,
    element_indices: &[usize],
    element_bits: usize,
    arch: &GpuArch,
) -> usize {
    // A warp touches at most 32 addresses, so a flat sort-and-dedup of
    // (bank, word) pairs beats nested hash maps: distinct words per bank
    // are runs in the sorted order.
    let mut accesses: Vec<(usize, usize)> = Vec::with_capacity(element_indices.len());
    for &idx in element_indices {
        let byte = layout.map(idx) * element_bits / 8;
        let word = byte / arch.smem_bank_bytes;
        let bank = word % arch.smem_banks;
        accesses.push((bank, word));
    }
    accesses.sort_unstable();
    accesses.dedup();
    let mut worst = 0usize;
    let mut run = 0usize;
    let mut prev_bank = usize::MAX;
    for &(bank, _) in &accesses {
        if bank == prev_bank {
            run += 1;
        } else {
            prev_bank = bank;
            run = 1;
        }
        worst = worst.max(run);
    }
    worst.saturating_sub(1)
}

/// Builds the warp access pattern of a copy: the element index (within the
/// shared tile) touched first by each of the 32 threads of warp 0.
fn warp_access_pattern(choice: &CopyChoice, tile: &[usize]) -> Vec<usize> {
    match choice.atom.kind {
        CopyKind::LdMatrix { .. } => {
            // Each thread provides one 8-element row pointer (Fig. 7(a)).
            let rows = tile[0].max(1);
            let cols = tile.get(1).copied().unwrap_or(1).max(1);
            (0..32)
                .map(|t| {
                    let row = t % rows.min(16);
                    let col_block = (t / rows.min(16)) * 8 % cols.max(1);
                    row + col_block * rows
                })
                .collect()
        }
        _ => (0..32.min(choice.coverage.num_threads()))
            .map(|t| choice.coverage.map(t, 0))
            .collect(),
    }
}

/// The alignment-aware layout constraint one copy instruction imposes on the
/// shared tile it touches (Fig. 10(b)). Depends only on the instruction atom,
/// the vector dimension, the per-thread width, the tile shape and the dtype —
/// the prefix-shared search keys its memoization on exactly these inputs.
pub(crate) fn copy_constraint(
    atom: &CopyAtom,
    vector_dim: usize,
    elements_per_thread: usize,
    tile: &[usize],
    dtype: DType,
) -> LayoutConstraint {
    match atom.kind {
        CopyKind::LdMatrix { .. } => {
            // ldmatrix reads 8 contiguous 16-bit-unit elements along
            // the K dimension of the operand tile.
            let dim = 1.min(tile.len() - 1);
            LayoutConstraint::aligned(tile, dim, 8.min(tile[dim]))
        }
        CopyKind::Tma => LayoutConstraint::aligned(
            tile,
            vector_dim,
            dtype.elements_per_bytes(128).min(tile[vector_dim]),
        ),
        _ => LayoutConstraint::aligned(tile, vector_dim, elements_per_thread),
    }
}

/// Unifies the constraints of every copy touching one shared tile, in the
/// order given (program order). Returns the first conflict as an interned
/// [`ConstraintError`] code.
pub(crate) fn unify_touching(
    tile: &[usize],
    touching: &[&CopyChoice],
    dtype: DType,
) -> Result<LayoutConstraint, ConstraintError> {
    let mut constraint = LayoutConstraint::unconstrained(tile);
    for choice in touching {
        let c = copy_constraint(
            &choice.atom,
            choice.vector_dim,
            choice.elements_per_thread,
            tile,
            dtype,
        );
        constraint = constraint.unify(&c)?;
    }
    Ok(constraint)
}

/// Materializes a unified constraint into a concrete layout and selects the
/// swizzle minimizing the total bank-conflict degree over the touching
/// copies (the second half of the per-tensor synthesis of Section V).
pub(crate) fn materialize_and_swizzle(
    constraint: &LayoutConstraint,
    touching: &[&CopyChoice],
    tile: &[usize],
    dtype_bits: usize,
    arch: &GpuArch,
    options: &SynthesisOptions,
) -> Result<SwizzledLayout, ConstraintError> {
    let base_layout = constraint.materialize()?;
    if options.disable_swizzles {
        return Ok(SwizzledLayout::unswizzled(base_layout));
    }
    // The warp access patterns depend only on the choices and the tile, and
    // a bijective swizzle preserves the base layout's injectivity — hoist
    // both out of the scoring loop so each swizzle costs only the (at most
    // 32-element) bank count per touching copy.
    let patterns: Vec<Vec<usize>> = touching
        .iter()
        .map(|choice| warp_access_pattern(choice, tile))
        .collect();
    let base_injective = base_layout.is_injective();
    let mut best = SwizzledLayout::unswizzled(base_layout.clone());
    let mut best_score = usize::MAX;
    for swizzle in Swizzle::candidates() {
        let sl = SwizzledLayout::new(swizzle, base_layout.clone());
        let injective = if swizzle.is_bijective() {
            base_injective
        } else {
            sl.is_injective()
        };
        if !injective {
            continue;
        }
        let score: usize = patterns
            .iter()
            .map(|pattern| bank_conflict_degree(&sl, pattern, dtype_bits, arch))
            .sum();
        if score < best_score || (score == best_score && swizzle.is_identity()) {
            best_score = score;
            best = sl;
        }
    }
    Ok(best)
}

/// The copies (and their instruction choices) of `candidate` touching the
/// shared tensor, in program order.
pub(crate) fn touching_choices<'c>(
    program: &Program,
    candidate: &'c Candidate,
    tensor: hexcute_ir::TensorId,
) -> Vec<&'c CopyChoice> {
    let mut touching = Vec::new();
    for op in program.ops() {
        let OpKind::Copy { src, dst } = op.kind else {
            continue;
        };
        if src != tensor && dst != tensor {
            continue;
        }
        if let Some(choice) = candidate.copy_choices.get(&op.id) {
            touching.push(choice);
        }
    }
    touching
}

/// Synthesizes the layouts (base layout + swizzle) of every shared-memory
/// tensor of the program for the given candidate, updating the candidate in
/// place.
///
/// # Errors
///
/// Returns [`SynthesisError::SmemUnsatisfiable`] when the alignment
/// constraints of the copies touching a buffer cannot be unified; the caller
/// then degrades the copies to scalar instructions (Section V,
/// "Integration").
pub fn synthesize_smem_layouts(
    program: &Program,
    arch: &GpuArch,
    options: &SynthesisOptions,
    candidate: &mut Candidate,
) -> Result<(), SynthesisError> {
    for &tensor in &program.shared_tensors() {
        let decl = program.tensor(tensor);
        let tile = decl.tile_shape_2d();

        if options.force_row_major_smem {
            let layout = Layout::row_major(&tile);
            candidate
                .smem_layouts
                .insert(tensor, SwizzledLayout::unswizzled(layout));
            continue;
        }

        // Gather the copies (and their instruction choices) touching this
        // buffer, unify their alignment-aware constraints, then materialize
        // and select a swizzle.
        let touching = touching_choices(program, candidate, tensor);
        let chosen = unify_touching(&tile, &touching, decl.dtype)
            .and_then(|constraint| {
                materialize_and_swizzle(
                    &constraint,
                    &touching,
                    &tile,
                    decl.dtype.bits(),
                    arch,
                    options,
                )
            })
            .map_err(|code| SynthesisError::SmemUnsatisfiable {
                tensor: decl.name.clone(),
                // The String materializes only here, at the API boundary; the
                // search paths below carry the `Copy` code.
                reason: code.to_string(),
            })?;
        candidate.smem_layouts.insert(tensor, chosen);
    }
    // Shared tensors never touched by copies (rare) keep a row-major layout.
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::GpuArch;

    #[test]
    fn aligned_constraint_pins_the_vector_mode() {
        let c = LayoutConstraint::aligned(&[64, 64], 0, 8);
        assert_eq!(
            c.dims()[0],
            vec![ConstraintMode::known(8, 1), ConstraintMode::free(8)]
        );
        assert_eq!(c.dims()[1], vec![ConstraintMode::free(64)]);
    }

    #[test]
    fn unification_refines_modes_like_fig10_case1() {
        // C1: ((8,8),64) : ((1,D1),D2)  — 8 contiguous along dim 0.
        // C2: ((16,4),64) : ((1,D1'),D2') — 16 contiguous along dim 0.
        let c1 = LayoutConstraint::aligned(&[64, 64], 0, 8);
        let c2 = LayoutConstraint::aligned(&[64, 64], 0, 16);
        let merged = c1.unify(&c2).unwrap();
        // The merged constraint keeps the finer decomposition with the
        // stride-1 requirement on the first 8 elements and a determined
        // stride continuation (8) for the next factor.
        assert_eq!(merged.dims()[0][0], ConstraintMode::known(8, 1));
        assert_eq!(merged.dims()[0][1], ConstraintMode::known(2, 8));
        let layout = merged.materialize().unwrap();
        assert!(layout.is_injective());
        // Elements along dim 0 are contiguous for at least 16 entries.
        for i in 0..16 {
            assert_eq!(layout.map_coords(&split_coords(&layout, &[i, 0])), i);
        }
    }

    #[test]
    fn unification_fails_like_fig10_case2() {
        // Two copies demanding contiguity along *different* dimensions of the
        // same buffer cannot both be satisfied by a single memory layout.
        let c1 = LayoutConstraint::aligned(&[64, 64], 0, 8);
        let c2 = LayoutConstraint::aligned(&[64, 64], 1, 8);
        let merged = c1.unify(&c2).unwrap();
        assert!(merged.materialize().is_err());
    }

    #[test]
    fn unification_detects_stride_conflicts() {
        let mut a = LayoutConstraint::unconstrained(&[64]);
        a.dims[0] = vec![ConstraintMode::known(8, 1), ConstraintMode::free(8)];
        let mut b = LayoutConstraint::unconstrained(&[64]);
        b.dims[0] = vec![ConstraintMode::known(8, 4), ConstraintMode::free(8)];
        assert!(a.unify(&b).is_err());
    }

    #[test]
    fn materialized_layouts_are_compact_and_respect_alignment() {
        let c = LayoutConstraint::aligned(&[64, 32], 1, 8);
        let layout = c.materialize().unwrap();
        assert_eq!(layout.size(), 64 * 32);
        assert!(layout.is_compact_bijection());
        // Dim 1 is the innermost: stepping along it by one changes the
        // address by one for the first 8 steps.
        let base = layout.map_coords(&split_coords(&layout, &[0, 0]));
        let step = layout.map_coords(&split_coords(&layout, &[0, 1]));
        assert_eq!(step, base + 1);
    }

    /// Converts a per-dimension coordinate into the flat per-leaf coordinate
    /// expected by `map_coords`, accounting for dimensions that were split
    /// into several factors during unification.
    fn split_coords(layout: &Layout, coords: &[usize]) -> Vec<usize> {
        let mut out = Vec::new();
        for (d, &c) in coords.iter().enumerate() {
            let mode = layout.shape().mode(d).flatten();
            let mut rest = c;
            for (i, &s) in mode.iter().enumerate() {
                if i + 1 == mode.len() {
                    out.push(rest);
                } else {
                    out.push(rest % s);
                    rest /= s;
                }
            }
        }
        out
    }

    #[test]
    fn swizzles_remove_column_access_conflicts() {
        let arch = GpuArch::a100();
        // Row-major 64-wide fp32 tile: a column access conflicts heavily.
        let base = Layout::row_major(&[32, 64]);
        // Element (r, 0) for every thread r, in the tile's column-major
        // linearization.
        let column_access: Vec<usize> = (0..32).collect();
        let plain = SwizzledLayout::unswizzled(base.clone());
        let plain_degree = bank_conflict_degree(&plain, &column_access, 32, &arch);
        assert!(
            plain_degree >= 15,
            "expected heavy conflicts, got {plain_degree}"
        );
        let best = Swizzle::candidates()
            .into_iter()
            .map(|s| SwizzledLayout::new(s, base.clone()))
            .min_by_key(|sl| bank_conflict_degree(sl, &column_access, 32, &arch))
            .unwrap();
        let best_degree = bank_conflict_degree(&best, &column_access, 32, &arch);
        assert!(best_degree < plain_degree / 2);
    }
}
