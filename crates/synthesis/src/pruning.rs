//! Process-wide switch for the branch-and-bound pruned candidate search
//! (see [`crate::prefix`] and [`crate::SearchBounder`]).
//!
//! Mirrors [`crate::incremental`]: the switch is initialized from the
//! `HEXCUTE_DISABLE_PRUNE` environment variable and can be flipped at
//! runtime so before/after benchmarks and the prune-conformance matrix
//! exercise both the pruned walk and the exhaustive enumeration in one
//! process. The per-search override lives in
//! [`crate::SynthesisOptions::prune`]; the compiler prunes only when *both*
//! are on (and the incremental walk is available to prune).

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = uninitialized, 1 = enabled, 2 = disabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Returns `true` when branch-and-bound pruning is globally enabled (the
/// default; `HEXCUTE_DISABLE_PRUNE=1` disables it at startup).
pub fn prune_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let disabled = std::env::var("HEXCUTE_DISABLE_PRUNE")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            STATE.store(if disabled { 2 } else { 1 }, Ordering::Relaxed);
            !disabled
        }
    }
}

/// Globally enables or disables branch-and-bound pruning (all threads,
/// process-wide).
pub fn set_pruning(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_round_trips() {
        let initial = prune_enabled();
        set_pruning(false);
        assert!(!prune_enabled());
        set_pruning(true);
        assert!(prune_enabled());
        set_pruning(initial);
    }
}
