//! The thread-value layout synthesis engine (Algorithm 1 of the paper) and
//! the DFS candidate enumeration of Section IV-B.

use std::collections::BTreeMap;

use hexcute_arch::{
    copy_candidates, ldmatrix_layouts, mma_candidates_sorted, mma_m16n8k16, CopyAtom, CopyKind,
    DType, GpuArch, MemSpace,
};
use hexcute_ir::{Op, OpId, OpKind, Program, TensorId};
use hexcute_layout::{Layout, RepeatMode, TvLayout};
use hexcute_parallel::cancel::{CancelReason, CancelToken};

use crate::choice::{Candidate, CopyChoice, MmaChoice, RearrangeFix};
use crate::constraints::{collapse_dim, contiguous_run_along, same_distribution};
use crate::error::{Result, SynthesisError};
use crate::hooks;
use crate::options::SynthesisOptions;
use crate::smem::synthesize_smem_layouts;

/// The result of a (possibly budgeted) synthesis search.
///
/// The deterministic node budget ([`SynthesisOptions::node_budget`]) bounds
/// how many selections the enumeration evaluates by truncating the
/// deterministic selection list *before* the walk fans out, so a truncated
/// outcome is bit-identical at any worker count and for the incremental and
/// reference paths alike. Contrast with wall-clock cancellation, which
/// yields a typed [`SynthesisError::Cancelled`] and never a partial result.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisOutcome {
    /// The full enumeration was evaluated.
    Complete(Vec<Candidate>),
    /// The node budget truncated the enumeration; these are the candidates
    /// finished within the budget (in enumeration order, preferred first).
    Truncated {
        /// Candidates finished before the budget ran out.
        best_so_far: Vec<Candidate>,
    },
}

impl SynthesisOutcome {
    /// The finished candidates, complete or not.
    pub fn candidates(&self) -> &[Candidate] {
        match self {
            SynthesisOutcome::Complete(c) => c,
            SynthesisOutcome::Truncated { best_so_far } => best_so_far,
        }
    }

    /// Consumes the outcome, returning the finished candidates.
    pub fn into_candidates(self) -> Vec<Candidate> {
        match self {
            SynthesisOutcome::Complete(c) => c,
            SynthesisOutcome::Truncated { best_so_far } => best_so_far,
        }
    }

    /// Whether the node budget truncated the search.
    pub fn is_truncated(&self) -> bool {
        matches!(self, SynthesisOutcome::Truncated { .. })
    }
}

/// The layout synthesis engine: produces candidate programs for a tile-level
/// program on a target architecture.
///
/// ```
/// use hexcute_arch::{DType, GpuArch};
/// use hexcute_ir::KernelBuilder;
/// use hexcute_layout::Layout;
/// use hexcute_synthesis::{SynthesisOptions, Synthesizer};
///
/// let mut kb = KernelBuilder::new("roundtrip", 128);
/// let src = kb.global_view("src", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
/// let dst = kb.global_view("dst", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
/// let tile = kb.register_tensor("tile", DType::F16, &[64, 64]);
/// kb.copy(src, tile);
/// kb.copy(tile, dst);
/// let program = kb.build()?;
///
/// let arch = GpuArch::a100();
/// let synthesizer = Synthesizer::new(&program, &arch, SynthesisOptions::default());
/// let preferred = synthesizer.synthesize_preferred()?;
/// assert!(preferred.tv_layouts.contains_key(&tile));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Synthesizer<'a> {
    program: &'a Program,
    arch: &'a GpuArch,
    options: SynthesisOptions,
}

/// The result of thread-value synthesis before instruction enumeration. The
/// whole search shares one `TvBase`: it is the root of the prefix tree.
#[derive(Debug, Clone)]
pub(crate) struct TvBase {
    pub(crate) tv: BTreeMap<TensorId, TvLayout>,
    pub(crate) mma: BTreeMap<OpId, MmaChoice>,
    pub(crate) rearranges: Vec<RearrangeFix>,
    pub(crate) notes: Vec<String>,
}

/// The instruction alternatives available for one copy operation.
#[derive(Debug, Clone)]
pub(crate) struct CopyPlan {
    pub(crate) op: OpId,
    pub(crate) tile_elems: usize,
    pub(crate) vector_dim: usize,
    /// Valid alternatives, widest first: (atom, elements per thread).
    pub(crate) alternatives: Vec<(CopyAtom, usize)>,
    pub(crate) coverage: TvLayout,
}

impl<'a> Synthesizer<'a> {
    /// Creates a synthesizer for the program on the given architecture.
    pub fn new(program: &'a Program, arch: &'a GpuArch, options: SynthesisOptions) -> Self {
        Synthesizer {
            program,
            arch,
            options,
        }
    }

    /// The program being synthesized.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// The target architecture.
    pub(crate) fn arch(&self) -> &GpuArch {
        self.arch
    }

    /// The active search options.
    pub(crate) fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// Runs the full synthesis: thread-value layouts, instruction selection
    /// (expanding the search tree into candidates) and shared-memory layout
    /// synthesis for every candidate.
    ///
    /// The first returned candidate is the preferred one (widest
    /// instructions); the remainder are the alternatives explored by the
    /// search tree, ending with the all-scalar fallback.
    /// `max_candidates` bounds the number of *finished* candidates: the
    /// enumeration itself is never truncated, so a workload whose first
    /// selections are all shared-memory-infeasible still reaches the feasible
    /// ones further down the tree.
    ///
    /// By default the candidates are evaluated incrementally along shared
    /// choice prefixes (see [`crate::prefix`]); the full per-candidate
    /// re-evaluation stays available via
    /// [`SynthesisOptions::incremental`]` = false` or
    /// `HEXCUTE_DISABLE_INCREMENTAL=1` and produces bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns an error when the program cannot be mapped at all (e.g. no
    /// Tensor Core instruction for the operand types).
    pub fn synthesize(&self) -> Result<Vec<Candidate>> {
        Ok(self.synthesize_with_stats()?.0)
    }

    /// [`Synthesizer::synthesize`] plus the prefix-sharing and parallel-walk
    /// counters (see [`crate::prefix::PrefixStats`]); the stats are `None`
    /// when the re-evaluating reference path ran instead of the incremental
    /// search.
    ///
    /// # Errors
    ///
    /// Same as [`Synthesizer::synthesize`].
    pub fn synthesize_with_stats(
        &self,
    ) -> Result<(Vec<Candidate>, Option<crate::prefix::PrefixStats>)> {
        let (outcome, stats) = self.synthesize_outcome(None)?;
        Ok((outcome.into_candidates(), stats))
    }

    /// The full synthesis with both bounding mechanisms exposed: the
    /// deterministic node budget of [`SynthesisOptions::node_budget`]
    /// (reported as [`SynthesisOutcome::Truncated`]) and an optional
    /// wall-clock [`CancelToken`] polled cooperatively at row granularity by
    /// the walks and at job granularity by the worker pool.
    ///
    /// # Errors
    ///
    /// Same as [`Synthesizer::synthesize`], plus
    /// [`SynthesisError::Cancelled`] when `token` trips mid-search —
    /// cancellation never yields a partial candidate list.
    pub fn synthesize_outcome(
        &self,
        token: Option<&CancelToken>,
    ) -> Result<(SynthesisOutcome, Option<crate::prefix::PrefixStats>)> {
        let base = self.solve_tv()?;
        let plans = self.build_copy_plans(&base)?;
        let mut selections = self.enumerate_selections(&plans);
        // The node budget truncates the deterministic enumeration *before*
        // either evaluation path fans out, which is what makes a truncated
        // outcome bit-identical across worker counts and toggles. (A budget
        // of 0 is clamped to 1: the preferred selection always runs.)
        let truncated = match self.options.node_budget {
            Some(budget) if selections.len() > budget.max(1) => {
                selections.truncate(budget.max(1));
                true
            }
            _ => false,
        };
        let max = self.options.max_candidates.max(1);
        let (finished, stats) = if self.options.incremental && crate::incremental_enabled() {
            let (finished, stats) =
                self.evaluate_incremental_with_stats(&base, &plans, &selections, max, token)?;
            (finished, Some(stats))
        } else {
            (
                self.evaluate_reference(&base, &plans, &selections, max, token)?,
                None,
            )
        };
        if finished.is_empty() {
            return Err(SynthesisError::NoCandidates);
        }
        let outcome = if truncated {
            SynthesisOutcome::Truncated {
                best_so_far: finished,
            }
        } else {
            SynthesisOutcome::Complete(finished)
        };
        Ok((outcome, stats))
    }

    /// The reference evaluation: every candidate is materialized and its
    /// shared-memory layouts are synthesized from scratch. When the fast
    /// path is on the candidates are finished in parallel (order preserved);
    /// the serial loop is the pre-fast-path behaviour. `token` (when
    /// carried) cancels cooperatively, per candidate here and per job in
    /// the pool — a tripped token yields [`SynthesisError::Cancelled`].
    pub(crate) fn evaluate_reference(
        &self,
        base: &TvBase,
        plans: &[CopyPlan],
        selections: &[Vec<usize>],
        max: usize,
        token: Option<&CancelToken>,
    ) -> Result<Vec<Candidate>> {
        // Shared-memory synthesis; drop candidates whose constraints cannot
        // be satisfied even after falling back.
        let finish = |mut candidate: Candidate| -> Option<Candidate> {
            match synthesize_smem_layouts(self.program, self.arch, &self.options, &mut candidate) {
                Ok(()) => Some(candidate),
                Err(_) => {
                    // Degrade every shared-memory copy to its scalar
                    // alternative and retry once (Section V: "the compiler
                    // falls back to scalar instructions").
                    let mut fallback = candidate.clone();
                    degrade_to_scalar(plans, &mut fallback);
                    if synthesize_smem_layouts(
                        self.program,
                        self.arch,
                        &self.options,
                        &mut fallback,
                    )
                    .is_ok()
                    {
                        fallback
                            .notes
                            .push("fell back to scalar copies for shared memory".to_string());
                        Some(fallback)
                    } else {
                        None
                    }
                }
            }
        };
        if hexcute_layout::fast_path_enabled() {
            // The parallel branch finishes every selection and applies the
            // cap afterwards (workers cannot know how many earlier
            // selections will survive feasibility filtering); with the
            // default `max_candidates` (larger than any enumeration) no
            // discarded work occurs.
            let candidates: Vec<Candidate> = selections
                .iter()
                .map(|sel| self.materialize_candidate(base, plans, sel))
                .collect();
            let finish_checked =
                |candidate: Candidate| -> std::result::Result<Option<Candidate>, CancelReason> {
                    if let Some(reason) = hooks::injected_stall(token) {
                        return Err(reason);
                    }
                    Ok(finish(candidate))
                };
            let results = match token {
                Some(tok) => hexcute_parallel::par_map_cancellable(
                    candidates,
                    finish_checked,
                    hexcute_parallel::worker_count().max(1),
                    tok,
                )
                .ok_or_else(|| {
                    SynthesisError::Cancelled(tok.reason().unwrap_or(CancelReason::Shutdown))
                })?,
                None => hexcute_parallel::par_map(candidates, finish_checked),
            };
            let mut finished = Vec::with_capacity(max.min(results.len()));
            for result in results {
                if let Some(done) = result.map_err(SynthesisError::Cancelled)? {
                    if finished.len() < max {
                        finished.push(done);
                    }
                }
            }
            Ok(finished)
        } else {
            let mut finished = Vec::new();
            for sel in selections {
                if finished.len() >= max {
                    break;
                }
                if let Some(reason) = hooks::injected_stall(token) {
                    return Err(SynthesisError::Cancelled(reason));
                }
                if let Some(reason) = hooks::poll_cancelled(token) {
                    return Err(SynthesisError::Cancelled(reason));
                }
                if let Some(done) = finish(self.materialize_candidate(base, plans, sel)) {
                    finished.push(done);
                }
            }
            Ok(finished)
        }
    }

    /// Convenience wrapper returning only the preferred candidate.
    ///
    /// # Errors
    ///
    /// Same as [`Synthesizer::synthesize`].
    pub fn synthesize_preferred(&self) -> Result<Candidate> {
        Ok(self.synthesize()?.remove(0))
    }

    // ------------------------------------------------------------------
    // Thread-value layout synthesis (Algorithm 1).
    // ------------------------------------------------------------------

    pub(crate) fn solve_tv(&self) -> Result<TvBase> {
        let mut base = TvBase {
            tv: BTreeMap::new(),
            mma: BTreeMap::new(),
            rearranges: Vec::new(),
            notes: Vec::new(),
        };
        let components = self.program.register_connected_components();
        for component in &components {
            let ops: Vec<&Op> = component.iter().map(|id| self.program.op(*id)).collect();
            let gemms: Vec<&Op> = ops
                .iter()
                .copied()
                .filter(|op| matches!(op.kind, OpKind::Gemm { .. }))
                .collect();
            if !gemms.is_empty() {
                for gemm in &gemms {
                    self.anchor_gemm(gemm, &mut base)?;
                }
            } else if let Some(anchor) = self.largest_copy(&ops) {
                self.anchor_copy(anchor, &mut base)?;
            }
            self.propagate(&ops, &mut base)?;
            // Assign coalesced layouts to register tensors that are only
            // constrained by memory copies, then propagate once more.
            self.assign_remaining(&ops, &mut base)?;
            self.propagate(&ops, &mut base)?;
        }
        Ok(base)
    }

    /// Algorithm 1, lines 6-12: anchor a `gemm`, pick the fastest Tensor Core
    /// instruction, tile C with it, and solve the A and B layouts.
    fn anchor_gemm(&self, op: &Op, base: &mut TvBase) -> Result<()> {
        let OpKind::Gemm { c, a, b } = op.kind else {
            unreachable!("anchor_gemm on non-gemm")
        };
        let (ta, tb, tc) = (
            self.program.tensor(a),
            self.program.tensor(b),
            self.program.tensor(c),
        );
        let operands_in_smem = ta.space == MemSpace::Shared && tb.space == MemSpace::Shared;
        let allow_wgmma = self.options.allow_wgmma && self.arch.has_wgmma && operands_in_smem;
        let atoms = mma_candidates_sorted(self.arch, ta.dtype, tb.dtype, tc.dtype, allow_wgmma);
        if atoms.is_empty() {
            return Err(SynthesisError::NoMmaInstruction {
                requested: format!("{} x {} -> {}", ta.dtype, tb.dtype, tc.dtype),
            });
        }

        // Walk the atoms from the fastest down until one tiles the operation.
        let (bm, bn) = (tc.shape[0], tc.shape[1]);
        let bk = ta.shape[1];
        let mut selected = None;
        for atom in &atoms {
            let units = (self.program.threads_per_block / atom.threads).max(1);
            if bk % atom.k != 0 {
                continue;
            }
            if let Some(grid) = choose_unit_grid(bm, bn, atom.m, atom.n, units) {
                selected = Some((atom.clone(), grid));
                break;
            }
        }
        let Some((atom, (unit_m, unit_n))) = selected else {
            let fastest = &atoms[0];
            if bk % fastest.k != 0 {
                return Err(SynthesisError::BadKExtent {
                    tile_k: bk,
                    instruction_k: fastest.k,
                });
            }
            return Err(SynthesisError::NoWarpTiling {
                tile: (bm, bn),
                instruction: (fastest.m, fastest.n),
                units: (self.program.threads_per_block / fastest.threads).max(1),
            });
        };
        let (rep_m, rep_n, rep_k) = (bm / (atom.m * unit_m), bn / (atom.n * unit_n), bk / atom.k);

        let fc = atom.c.expand(
            &[RepeatMode::along(unit_m, 0), RepeatMode::along(unit_n, 1)],
            &[RepeatMode::along(rep_m, 0), RepeatMode::along(rep_n, 1)],
        )?;
        let fa = atom.a.expand(
            &[RepeatMode::along(unit_m, 0), RepeatMode::broadcast(unit_n)],
            &[RepeatMode::along(rep_m, 0), RepeatMode::along(rep_k, 1)],
        )?;
        let fb = atom.b.expand(
            &[RepeatMode::broadcast(unit_m), RepeatMode::along(unit_n, 0)],
            &[RepeatMode::along(rep_n, 0), RepeatMode::along(rep_k, 1)],
        )?;

        if atom.a.is_exclusive() && atom.b.is_exclusive() && atom.c.is_exclusive() {
            debug_assert!(crate::constraints::gemm_constraint_holds(
                &fa, &fb, &fc, &atom
            ));
        }

        if tc.space == MemSpace::Register {
            self.assign(c, fc, base);
        }
        if ta.space == MemSpace::Register {
            self.assign(a, fa, base);
        }
        if tb.space == MemSpace::Register {
            self.assign(b, fb, base);
        }
        base.mma.insert(
            op.id,
            MmaChoice {
                atom,
                unit_m,
                unit_n,
                invocations: rep_m * rep_n * rep_k,
            },
        );
        Ok(())
    }

    /// Algorithm 1, lines 14-16: pick the copy transferring the most data as
    /// the anchor and construct its layout by coalescing memory accesses.
    fn largest_copy<'b>(&self, ops: &[&'b Op]) -> Option<&'b Op> {
        ops.iter()
            .copied()
            .filter(|op| matches!(op.kind, OpKind::Copy { .. }))
            .max_by_key(|op| {
                let OpKind::Copy { src, dst } = op.kind else {
                    return 0;
                };
                let s = self.program.tensor(src);
                let d = self.program.tensor(dst);
                s.num_bytes().max(d.num_bytes())
            })
    }

    fn anchor_copy(&self, op: &Op, base: &mut TvBase) -> Result<()> {
        let OpKind::Copy { src, dst } = op.kind else {
            unreachable!("anchor_copy on non-copy")
        };
        let (s, d) = (self.program.tensor(src), self.program.tensor(dst));
        let register_side = if d.space == MemSpace::Register {
            Some(dst)
        } else if s.space == MemSpace::Register {
            Some(src)
        } else {
            None
        };
        let Some(reg) = register_side else {
            return Ok(());
        };
        if base.tv.contains_key(&reg) {
            return Ok(());
        }
        let mem = if reg == dst { s } else { d };
        let reg_decl = self.program.tensor(reg);
        let tile = reg_decl.tile_shape_2d();
        let (vector_dim, mem_run) = self.memory_contiguity(mem.id, &tile);
        let max_bytes = 16usize;
        let vec = vector_elems(reg_decl.dtype, mem_run, max_bytes, &tile, vector_dim);
        let tv = coalesced_tv(&tile, vector_dim, self.program.threads_per_block, vec)?;
        self.assign(reg, tv, base);
        Ok(())
    }

    /// Which tile dimension of `tensor` is contiguous in memory and how long
    /// the contiguous run is (in elements). Shared tensors, whose layout is
    /// synthesized later, are unconstrained and report the full extent of the
    /// requested dimension.
    fn memory_contiguity(&self, tensor: TensorId, tile: &[usize]) -> (usize, usize) {
        let decl = self.program.tensor(tensor);
        match (&decl.global_layout, decl.space) {
            (Some(layout), MemSpace::Global) => {
                // Find the tile dimension whose top-level mode has stride 1.
                let rank = layout.rank().min(tile.len());
                for (d, &extent) in tile.iter().enumerate().take(rank) {
                    let mode = layout.mode(d);
                    let modes = mode.coalesce().flat_modes();
                    if let Some(&(_, stride)) = modes.first() {
                        if stride == 1 {
                            return (d, extent);
                        }
                    }
                }
                (0, 1)
            }
            _ => (0, tile.first().copied().unwrap_or(1)),
        }
    }

    /// Fixpoint propagation of the equality-style constraints (copy between
    /// registers, cast, elementwise, reduce).
    fn propagate(&self, ops: &[&Op], base: &mut TvBase) -> Result<()> {
        let mut changed = true;
        let mut guard = 0usize;
        while changed && guard < ops.len() + 8 {
            changed = false;
            guard += 1;
            for op in ops {
                match &op.kind {
                    OpKind::Copy { src, dst } => {
                        let (s, d) = (self.program.tensor(*src), self.program.tensor(*dst));
                        // Register-to-register copies with identical shapes
                        // propagate distributions; shape-changing copies
                        // (e.g. logical transposes) leave both ends free.
                        if s.space == MemSpace::Register
                            && d.space == MemSpace::Register
                            && s.shape == d.shape
                        {
                            changed |= self.propagate_equal(*src, *dst, base);
                        }
                    }
                    OpKind::Cast { src, dst } => {
                        changed |= self.propagate_equal(*src, *dst, base);
                    }
                    OpKind::Dequant { src, dst, .. } => {
                        // Like cast: the dequantized tensor keeps the source
                        // distribution, so the unpack + arithmetic stay
                        // within each thread's own lanes (no exchange). The
                        // scale/zero tensors have their own (smaller) shapes
                        // and are constrained by their memory copies instead.
                        changed |= self.propagate_equal(*src, *dst, base);
                    }
                    OpKind::Elementwise { inputs, output, .. } => {
                        changed |= self.propagate_elementwise(inputs, *output, base)?;
                    }
                    OpKind::Reduce { src, dst, dim, .. } => {
                        if let (Some(f), false) =
                            (base.tv.get(src).cloned(), base.tv.contains_key(dst))
                        {
                            let collapsed = collapse_dim(&f, *dim)?;
                            self.assign(*dst, collapsed, base);
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Equality constraint between two register tensors: if exactly one side
    /// is known, assign the other; if both are known and disagree, record a
    /// rearrange.
    fn propagate_equal(&self, a: TensorId, b: TensorId, base: &mut TvBase) -> bool {
        match (base.tv.get(&a).cloned(), base.tv.get(&b).cloned()) {
            (Some(la), None) => {
                self.assign(b, la, base);
                true
            }
            (None, Some(lb)) => {
                self.assign(a, lb, base);
                true
            }
            (Some(la), Some(lb)) => {
                // Both ends already constrained: if the distributions differ,
                // a register-layout conversion is required (Fig. 9 scenario).
                if !same_distribution(&la, &lb)
                    && !base
                        .rearranges
                        .iter()
                        .any(|r| r.tensor == b || r.tensor == a)
                {
                    let decl = self.program.tensor(b);
                    base.rearranges.push(RearrangeFix {
                        tensor: b,
                        producer: la,
                        consumer: lb,
                        bytes: decl.num_bytes(),
                    });
                    base.notes.push(format!(
                        "inserted rearrange between {} and {} (conflicting thread-value layouts)",
                        self.program.tensor(a).name,
                        decl.name
                    ));
                }
                false
            }
            _ => false,
        }
    }

    fn propagate_elementwise(
        &self,
        inputs: &[TensorId],
        output: TensorId,
        base: &mut TvBase,
    ) -> Result<bool> {
        let out_decl = self.program.tensor(output);
        // Find a known layout among the output and the same-shaped inputs.
        let mut known: Option<TvLayout> = base.tv.get(&output).cloned();
        if known.is_none() {
            for &i in inputs {
                if self.program.tensor(i).shape == out_decl.shape {
                    if let Some(l) = base.tv.get(&i) {
                        known = Some(l.clone());
                        break;
                    }
                }
            }
        }
        let Some(layout) = known else {
            return Ok(false);
        };
        let mut changed = false;
        if !base.tv.contains_key(&output) {
            self.assign(output, layout.clone(), base);
            changed = true;
        }
        for &i in inputs {
            if base.tv.contains_key(&i) {
                continue;
            }
            let decl = self.program.tensor(i);
            if decl.shape == out_decl.shape {
                self.assign(i, layout.clone(), base);
                changed = true;
            } else {
                // Broadcast input: collapse every dimension where the input
                // extent is 1 but the output extent is larger.
                let mut collapsed = layout.clone();
                for (dim, (&is, &os)) in decl.shape.iter().zip(out_decl.shape.iter()).enumerate() {
                    if is == 1 && os > 1 {
                        collapsed = collapse_dim(&collapsed, dim)?;
                    }
                }
                self.assign(i, collapsed, base);
                changed = true;
            }
        }
        Ok(changed)
    }

    /// Assign coalesced layouts to register tensors that only participate in
    /// memory copies and remained unconstrained after propagation.
    ///
    /// Copies whose peer lives in *global* memory are processed first: the
    /// global layout is fixed by the user, so coalescing against it is the
    /// binding constraint, while shared-memory layouts adapt afterwards.
    fn assign_remaining(&self, ops: &[&Op], base: &mut TvBase) -> Result<()> {
        let mut passes: [Vec<(hexcute_ir::TensorId, hexcute_ir::TensorId)>; 2] =
            [Vec::new(), Vec::new()];
        for op in ops {
            if let OpKind::Copy { src, dst } = op.kind {
                for tensor in [src, dst] {
                    let decl = self.program.tensor(tensor);
                    if decl.space == MemSpace::Register {
                        let other = if tensor == src { dst } else { src };
                        let pass = if self.program.tensor(other).space == MemSpace::Global {
                            0
                        } else {
                            1
                        };
                        passes[pass].push((tensor, other));
                    }
                }
            }
        }
        for pass in &passes {
            for &(tensor, other) in pass {
                if base.tv.contains_key(&tensor) {
                    continue;
                }
                let decl = self.program.tensor(tensor);
                let tile = decl.tile_shape_2d();
                let (dim, run) = self.memory_contiguity(other, &tile);
                let vec = vector_elems(decl.dtype, run, 16, &tile, dim);
                let tv = coalesced_tv(&tile, dim, self.program.threads_per_block, vec)?;
                self.assign(tensor, tv, base);
            }
            // Propagate after the global-peer pass so downstream equality
            // constraints see the coalesced layouts before the shared-memory
            // pass invents its own.
            self.propagate(ops, base)?;
        }
        // Any register tensor still unknown (pure elementwise chains without
        // anchors): default contiguous distribution.
        for op in ops {
            for tensor in op.operands() {
                let decl = self.program.tensor(tensor);
                if decl.space == MemSpace::Register && !base.tv.contains_key(&tensor) {
                    let tile = decl.tile_shape_2d();
                    let vec = vector_elems(decl.dtype, tile[0], 16, &tile, 0);
                    let tv = coalesced_tv(&tile, 0, self.program.threads_per_block, vec)?;
                    self.assign(tensor, tv, base);
                }
            }
        }
        Ok(())
    }

    fn assign(&self, tensor: TensorId, layout: TvLayout, base: &mut TvBase) {
        if let Some(existing) = base.tv.get(&tensor) {
            if !same_distribution(existing, &layout) {
                let decl = self.program.tensor(tensor);
                base.rearranges.push(RearrangeFix {
                    tensor,
                    producer: existing.clone(),
                    consumer: layout,
                    bytes: decl.num_bytes(),
                });
                base.notes.push(format!(
                    "inserted rearrange for {} (conflicting thread-value layouts)",
                    decl.name
                ));
            }
            return;
        }
        base.tv.insert(tensor, layout);
    }

    // ------------------------------------------------------------------
    // Instruction selection / search tree expansion.
    // ------------------------------------------------------------------

    pub(crate) fn build_copy_plans(&self, base: &TvBase) -> Result<Vec<CopyPlan>> {
        let mut plans = Vec::new();
        for op in self.program.ops() {
            let OpKind::Copy { src, dst } = op.kind else {
                continue;
            };
            let (s, d) = (self.program.tensor(src), self.program.tensor(dst));
            if s.space == MemSpace::Register && d.space == MemSpace::Register {
                // Register-to-register moves need no memory instruction; the
                // cost model charges them as cheap SIMT moves.
                continue;
            }
            let dtype = s.dtype;
            let _ = &dtype;
            let tile = if s.space == MemSpace::Register {
                s.tile_shape_2d()
            } else {
                d.tile_shape_2d()
            };
            let tile_elems: usize = tile.iter().product();

            // The register side (if any) bounds the usable vector width.
            let reg_layout = if d.space == MemSpace::Register {
                base.tv.get(&dst)
            } else if s.space == MemSpace::Register {
                base.tv.get(&src)
            } else {
                None
            };
            let mem_side = if s.space != MemSpace::Register {
                src
            } else {
                dst
            };
            let (mem_dim, mem_run) = self.memory_contiguity(mem_side, &tile);
            let (vector_dim, reg_run) = match reg_layout {
                Some(f) => {
                    if self.program.tensor(mem_side).space == MemSpace::Global {
                        (mem_dim, contiguous_run_along(f, mem_dim))
                    } else {
                        // Shared side adapts to the register layout: pick the
                        // register tensor's best dimension.
                        let best = (0..tile.len())
                            .max_by_key(|&dim| contiguous_run_along(f, dim))
                            .unwrap_or(0);
                        (best, contiguous_run_along(f, best))
                    }
                }
                None => (mem_dim, usize::MAX),
            };
            let max_elems =
                reg_run.min(if self.program.tensor(mem_side).space == MemSpace::Global {
                    mem_run
                } else {
                    usize::MAX
                });

            let mut alternatives: Vec<(CopyAtom, usize)> = Vec::new();
            for atom in copy_candidates(self.arch, s.space, d.space) {
                if !self.atom_allowed(&atom) {
                    continue;
                }
                match atom.kind {
                    CopyKind::Tma => {
                        // TMA needs a 128-byte-aligned contiguous run in
                        // global memory; Hexcute pairs it with warp
                        // specialization (a producer warp issues the copy).
                        if dtype.bytes_for(mem_run) >= 128
                            && reg_layout.is_none()
                            && self.program.schedule.warp_specialized
                        {
                            alternatives.push((atom, dtype.elements_per_bytes(128)));
                        }
                    }
                    CopyKind::LdMatrix { matrices } => {
                        if let Some(f) = reg_layout {
                            if let Some(frag_values) = ldmatrix_match(f, matrices) {
                                alternatives.push((atom, frag_values));
                            }
                        }
                    }
                    CopyKind::Unpack => {
                        // Unpack loads only apply to packed sub-byte tensors
                        // being expanded into a register fragment (the W4A16
                        // weight path). Like Marlin's offline weight
                        // permutation, the *shared* layout adapts so each
                        // thread's packed nibbles are stored consecutively;
                        // the filter is therefore the thread's lane count,
                        // not the fragment's tile contiguity.
                        if dtype.is_sub_byte() {
                            if let Some(f) = reg_layout {
                                let elems = atom.elements_per_thread(dtype).max(1);
                                if f.values_per_thread() >= elems {
                                    alternatives.push((atom, elems));
                                }
                            }
                        }
                    }
                    _ => {
                        let elems = atom.elements_per_thread(dtype).max(1);
                        if elems <= max_elems && tile[vector_dim] % elems.min(tile[vector_dim]) == 0
                        {
                            alternatives.push((atom, elems));
                        }
                    }
                }
            }
            // Deduplicate by element width, keep the first (preferred) atom
            // for each width; always keep a scalar fallback.
            alternatives.sort_by(|x, y| {
                y.1.cmp(&x.1)
                    .then_with(|| copy_kind_rank(&x.0).cmp(&copy_kind_rank(&y.0)))
            });
            alternatives.dedup_by_key(|alt| alt.1);
            if alternatives.is_empty() {
                // Guaranteed fallback: one element per thread per instruction.
                let scalars = copy_candidates(self.arch, s.space, d.space);
                if let Some(atom) = scalars.into_iter().min_by_key(|a| a.bytes_per_thread) {
                    alternatives.push((atom, 1));
                }
            }
            if self.options.force_scalar_copies {
                if let Some(last) = alternatives.last().cloned() {
                    alternatives = vec![(last.0, 1)];
                }
            }

            let coverage = match reg_layout {
                Some(f) => f.clone(),
                None => {
                    let vec = alternatives
                        .first()
                        .map(|a| a.1)
                        .unwrap_or(1)
                        .min(tile[vector_dim].max(1));
                    coalesced_tv(&tile, vector_dim, self.program.threads_per_block, vec)?
                }
            };

            plans.push(CopyPlan {
                op: op.id,
                tile_elems,
                vector_dim,
                alternatives,
                coverage,
            });
        }
        Ok(plans)
    }

    fn atom_allowed(&self, atom: &CopyAtom) -> bool {
        match atom.kind {
            CopyKind::LdMatrix { .. } => {
                self.options.allow_ldmatrix && !self.options.force_scalar_copies
            }
            CopyKind::CpAsync => self.options.allow_cp_async,
            CopyKind::Unpack => self.options.allow_unpack && !self.options.force_scalar_copies,
            CopyKind::Tma => self.options.allow_tma && !self.options.force_scalar_copies,
            _ => true,
        }
    }

    /// Expands the search tree into selection vectors (one alternative index
    /// per copy plan): the preferred candidate first, then the one-at-a-time
    /// deviations in plan order, then the all-scalar fallback.
    ///
    /// `max_candidates` is deliberately *not* applied here: shared-memory
    /// feasibility filtering happens after finishing, so truncating the
    /// enumeration would return an empty set for workloads whose first
    /// `max_candidates` selections are all infeasible even though feasible
    /// candidates exist past the cutoff. The cap is applied to finished
    /// candidates only (see [`Synthesizer::synthesize`]).
    pub(crate) fn enumerate_selections(&self, plans: &[CopyPlan]) -> Vec<Vec<usize>> {
        let preferred: Vec<usize> = vec![0; plans.len()];
        let mut selections = vec![preferred.clone()];
        // One-at-a-time alternatives (the branches of the DFS tree).
        for (i, plan) in plans.iter().enumerate() {
            for j in 1..plan.alternatives.len() {
                let mut sel = preferred.clone();
                sel[i] = j;
                selections.push(sel);
            }
        }
        // All-scalar fallback (the guaranteed-valid leaf of Section V).
        if plans.iter().any(|p| p.alternatives.len() > 1) {
            let scalar: Vec<usize> = plans
                .iter()
                .map(|p| p.alternatives.len().saturating_sub(1))
                .collect();
            selections.push(scalar);
        }
        selections
    }

    pub(crate) fn materialize_candidate(
        &self,
        base: &TvBase,
        plans: &[CopyPlan],
        selection: &[usize],
    ) -> Candidate {
        let mut candidate = Candidate {
            tv_layouts: base.tv.clone(),
            mma_choices: base.mma.clone(),
            rearranges: base.rearranges.clone(),
            notes: base.notes.clone(),
            ..Candidate::default()
        };
        for (plan, &choice_idx) in plans.iter().zip(selection.iter()) {
            candidate
                .copy_choices
                .insert(plan.op, self.plan_choice(plan, choice_idx));
        }
        // SIMT widths for compute operations.
        for op in self.program.ops() {
            match &op.kind {
                OpKind::Cast { dst, .. }
                | OpKind::Reduce { dst, .. }
                | OpKind::Fill { dst, .. }
                | OpKind::Rearrange { dst, .. }
                | OpKind::Dequant { dst, .. }
                | OpKind::Elementwise { output: dst, .. } => {
                    let width = candidate
                        .tv_layouts
                        .get(dst)
                        .map(|l| l.values_per_thread())
                        .unwrap_or_else(|| {
                            let decl = self.program.tensor(*dst);
                            (decl.tile_elements_2d() / self.program.threads_per_block).max(1)
                        });
                    candidate.simt_widths.insert(op.id, width);
                }
                _ => {}
            }
        }
        candidate
    }

    /// The [`CopyChoice`] a selection picking alternative `choice_idx` of
    /// `plan` produces (the index is clamped like the enumeration clamps
    /// it). Shared by [`Synthesizer::materialize_candidate`] and the search
    /// space handed to bounders, so both see bit-identical choices.
    pub(crate) fn plan_choice(&self, plan: &CopyPlan, choice_idx: usize) -> CopyChoice {
        let (atom, elems) = plan.alternatives[choice_idx.min(plan.alternatives.len() - 1)].clone();
        let threads = self.program.threads_per_block;
        let per_round = if atom.kind == CopyKind::Tma {
            plan.tile_elems
        } else {
            threads * elems
        };
        let invocations = plan.tile_elems.div_ceil(per_round.max(1)).max(1);
        CopyChoice {
            atom,
            elements_per_thread: elems,
            invocations,
            vector_dim: plan.vector_dim,
            coverage: plan.coverage.clone(),
        }
    }

    /// The [`CopyChoice`] the all-plans scalar-degradation fallback
    /// substitutes for `plan` — field-for-field what [`degrade_to_scalar`]
    /// writes (its invocation count divides by the atom's thread count, not
    /// `threads * elems`, so it is *not* the scalar alternative's normal
    /// materialization).
    pub(crate) fn degraded_choice(&self, plan: &CopyPlan) -> CopyChoice {
        let mut choice = self.plan_choice(plan, plan.alternatives.len().saturating_sub(1));
        if let Some((atom, _)) = plan.alternatives.last() {
            choice.atom = atom.clone();
            choice.elements_per_thread = 1;
            choice.invocations = plan.tile_elems.div_ceil(choice.atom.threads).max(1);
        }
        choice
    }

    /// The search space of this problem — one materialized instruction menu
    /// per copy plan (see [`crate::SearchSpace`]) — for preparing a
    /// [`crate::SearchBounder`] outside the engine.
    ///
    /// # Errors
    ///
    /// Same as [`Synthesizer::synthesize`]: the thread-value solve and copy
    /// planning can fail (e.g. no Tensor Core instruction).
    pub fn search_space(&self) -> Result<crate::SearchSpace> {
        let base = self.solve_tv()?;
        let plans = self.build_copy_plans(&base)?;
        Ok(self.space_from_plans(&plans))
    }

    pub(crate) fn space_from_plans(&self, plans: &[CopyPlan]) -> crate::SearchSpace {
        crate::SearchSpace {
            plans: plans
                .iter()
                .map(|plan| crate::PlanAlternatives {
                    op: plan.op,
                    choices: (0..plan.alternatives.len())
                        .map(|j| self.plan_choice(plan, j))
                        .collect(),
                    degraded: self.degraded_choice(plan),
                })
                .collect(),
        }
    }

    /// The branch-and-bound search: enumerates the same deterministic
    /// selection list as [`Synthesizer::synthesize_outcome`] (including the
    /// node-budget truncation), but walks it best-known-first with an
    /// incumbent `(score, index)` pair, cutting every subtree and leaf whose
    /// admissible completion bound (from `bounder`) cannot beat the
    /// incumbent lexicographically — equal-bound subtrees behind the
    /// incumbent's index lose the first-minimal tie-break too. Only the
    /// winner is finished, scored and returned; in exact mode (no beam) it
    /// is **bit-identical** — candidate and score — to the argmin the
    /// exhaustive selection loop computes with the same tie-breaking
    /// (earliest enumeration index among equal scores, matching
    /// `Iterator::min_by`, which keeps the first minimal element).
    ///
    /// Returns `Ok(None)` when pruning cannot reproduce exhaustive
    /// semantics: `max_candidates` caps *finished* candidates, and a pruned
    /// walk skips leaves without learning their feasibility, so whenever the
    /// cap could bind (more selections than the cap, without a beam) the
    /// caller must fall back to the exhaustive path. With the default cap
    /// this never triggers.
    ///
    /// With [`SynthesisOptions::beam_width`] set, per-depth prefix frontiers
    /// are truncated by bound rank (stable, enumeration-ordered) before the
    /// walk — lossy but bit-identical across worker counts.
    ///
    /// # Errors
    ///
    /// Same as [`Synthesizer::synthesize_outcome`]: mapping failures,
    /// [`SynthesisError::NoCandidates`] when no feasible candidate exists
    /// (nothing is pruned while the incumbent is infinite, so this is
    /// equivalent to the exhaustive search finding none), and
    /// [`SynthesisError::Cancelled`] when `token` trips.
    pub fn synthesize_pruned<B: crate::SearchBounder>(
        &self,
        bounder: &mut B,
        token: Option<&CancelToken>,
    ) -> Result<Option<crate::PrunedOutcome>> {
        let base = self.solve_tv()?;
        let plans = self.build_copy_plans(&base)?;
        let mut selections = self.enumerate_selections(&plans);
        let truncated = match self.options.node_budget {
            Some(budget) if selections.len() > budget.max(1) => {
                selections.truncate(budget.max(1));
                true
            }
            _ => false,
        };
        let beam = self.options.beam_width.map(|w| w.max(1));
        if beam.is_none() && selections.len() > self.options.max_candidates.max(1) {
            return Ok(None);
        }
        bounder.prepare(&self.space_from_plans(&plans));
        let mut beam_bound_evaluations = 0usize;
        let beamed = match beam {
            Some(width) => self.beam_filter(
                &base,
                &plans,
                &mut selections,
                width,
                &*bounder,
                &mut beam_bound_evaluations,
            ),
            None => false,
        };
        let enumerated = selections.len();
        let (winner, mut stats) =
            self.evaluate_pruned(&base, &plans, &selections, &*bounder, token)?;
        stats.bound_evaluations += beam_bound_evaluations;
        let Some((winner_index, winner, score)) = winner else {
            return Err(SynthesisError::NoCandidates);
        };
        Ok(Some(crate::PrunedOutcome {
            winner,
            score,
            winner_index,
            enumerated,
            truncated,
            beamed,
            stats,
        }))
    }

    /// Truncates each per-depth prefix frontier to the `width` prefixes with
    /// the best completion bounds. Everything is deterministic and
    /// worker-independent: prefixes are listed in first-occurrence
    /// (enumeration) order, ranked by `(bound, first occurrence)` under
    /// [`f64::total_cmp`], and surviving selections keep their enumeration
    /// order. Returns whether any prefix was dropped.
    fn beam_filter<B: crate::SearchBounder + ?Sized>(
        &self,
        base: &TvBase,
        plans: &[CopyPlan],
        selections: &mut Vec<Vec<usize>>,
        width: usize,
        bounder: &B,
        bound_evaluations: &mut usize,
    ) -> bool {
        let mut any_dropped = false;
        for depth in 1..=plans.len() {
            let mut prefixes: Vec<Vec<usize>> = Vec::new();
            for sel in selections.iter() {
                let prefix = sel[..depth].to_vec();
                if !prefixes.contains(&prefix) {
                    prefixes.push(prefix);
                }
            }
            if prefixes.len() <= width {
                continue;
            }
            any_dropped = true;
            let undecided: Vec<OpId> = plans[depth..].iter().map(|p| p.op).collect();
            let mut ranked: Vec<(f64, usize)> = prefixes
                .iter()
                .enumerate()
                .map(|(i, prefix)| {
                    let first = selections
                        .iter()
                        .find(|sel| sel[..depth] == prefix[..])
                        .expect("every prefix came from a selection");
                    let candidate = self.materialize_candidate(base, plans, first);
                    *bound_evaluations += 1;
                    (bounder.completion_bound(&candidate, &undecided), i)
                })
                .collect();
            ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let kept: std::collections::BTreeSet<Vec<usize>> = ranked
                .iter()
                .take(width)
                .map(|&(_, i)| prefixes[i].clone())
                .collect();
            selections.retain(|sel| kept.contains(&sel[..depth]));
        }
        any_dropped
    }
}

/// Prefer non-asynchronous plain vectors over exotic kinds when widths tie.
fn copy_kind_rank(atom: &CopyAtom) -> usize {
    match atom.kind {
        CopyKind::LdMatrix { .. } => 0,
        CopyKind::CpAsync => 1,
        CopyKind::Tma => 2,
        // For packed sub-byte tensors the unpack load wins width ties against
        // the plain vector load: it feeds the dequant arithmetic directly.
        CopyKind::Unpack => 3,
        CopyKind::Vector => 4,
        CopyKind::Scalar => 5,
    }
}

pub(crate) fn degrade_to_scalar(plans: &[CopyPlan], candidate: &mut Candidate) {
    for plan in plans {
        if let Some(choice) = candidate.copy_choices.get_mut(&plan.op) {
            if let Some((atom, _)) = plan.alternatives.last() {
                choice.atom = atom.clone();
                choice.elements_per_thread = 1;
                choice.invocations = plan.tile_elems.div_ceil(choice.atom.threads).max(1);
            }
        }
    }
}

/// Chooses how many warp units tile the (M, N) accumulator: `unit_m * unit_n`
/// must equal `units`, and the instruction tile must divide each extent.
/// Among valid factorizations the most balanced one is preferred.
fn choose_unit_grid(
    bm: usize,
    bn: usize,
    im: usize,
    i_n: usize,
    units: usize,
) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize)> = None;
    for unit_m in 1..=units {
        if !units.is_multiple_of(unit_m) {
            continue;
        }
        let unit_n = units / unit_m;
        if !bm.is_multiple_of(im * unit_m) || !bn.is_multiple_of(i_n * unit_n) {
            continue;
        }
        let balance = |um: usize, un: usize| {
            let a = bm / um;
            let b = bn / un;
            a.max(b) - a.min(b)
        };
        best = match best {
            None => Some((unit_m, unit_n)),
            Some(cur) if balance(unit_m, unit_n) < balance(cur.0, cur.1) => Some((unit_m, unit_n)),
            other => other,
        };
    }
    best
}

/// Largest power-of-two vector length (in elements) that fits the contiguous
/// run, the byte budget and the tile extent along the vector dimension.
fn vector_elems(dtype: DType, run: usize, max_bytes: usize, tile: &[usize], dim: usize) -> usize {
    let extent = tile.get(dim).copied().unwrap_or(1);
    let by_bytes = dtype.elements_per_bytes(max_bytes).max(1);
    let mut vec = by_bytes.min(run.max(1)).min(extent.max(1));
    // Round down to a divisor of the extent to keep invocation counts exact.
    while vec > 1 && extent % vec != 0 {
        vec -= 1;
    }
    vec.max(1)
}

/// Builds a coalesced thread-value layout over a 2-D tile: each thread owns
/// `vec` elements contiguous along `vector_dim`, consecutive threads own
/// consecutive vectors, and the block wraps around the tile as many times as
/// needed (Algorithm 1, line 15).
fn coalesced_tv(tile: &[usize], vector_dim: usize, threads: usize, vec: usize) -> Result<TvLayout> {
    let total: usize = tile.iter().product();
    let vec = vec.max(1).min(total);
    // Address layout: linear index ordered with the vector dimension fastest,
    // mapped into the tile's column-major linearization.
    let mut order: Vec<usize> = vec![vector_dim];
    order.extend((0..tile.len()).filter(|&d| d != vector_dim));
    let mut col_major_strides = vec![1usize; tile.len()];
    for d in 1..tile.len() {
        col_major_strides[d] = col_major_strides[d - 1] * tile[d - 1];
    }
    let ordered_shape: Vec<usize> = order.iter().map(|&d| tile[d]).collect();
    let ordered_strides: Vec<usize> = order.iter().map(|&d| col_major_strides[d]).collect();
    let address = Layout::from_flat(&ordered_shape, &ordered_strides);

    let per_round = (threads * vec).min(total);
    let rounds = total.div_ceil(per_round);
    let active_threads = if threads * vec > total {
        total / vec
    } else {
        threads
    };

    let thread_idx = Layout::from_flat(&[active_threads], &[vec]);
    let value_idx = if rounds > 1 {
        Layout::from_flat(&[vec, rounds], &[1, per_round])
    } else {
        Layout::from_flat(&[vec], &[1])
    };
    let mut thread = address.compose(&thread_idx)?;
    let value = address.compose(&value_idx)?;
    if active_threads < threads {
        // Remaining threads replicate the data (they stay idle in codegen).
        let extra = threads / active_threads;
        thread = Layout::concat(&[thread, Layout::from_mode(extra, 0)]);
    }
    Ok(TvLayout::new(thread, value, tile.to_vec())?)
}

/// Checks whether the atom-level portion of an operation-level register
/// layout matches one of the Tensor-Core-friendly fragments an `ldmatrix.xN`
/// instruction produces. Returns the number of elements per thread moved per
/// invocation when it matches.
fn ldmatrix_match(f: &TvLayout, matrices: usize) -> Option<usize> {
    if f.num_threads() < 32 {
        return None;
    }
    let mut fragments: Vec<TvLayout> = Vec::new();
    let (_, q) = ldmatrix_layouts(matrices);
    fragments.push(q);
    if matrices == 2 {
        // ldmatrix.x2 also serves the B operand of m16n8k16 (transposed
        // arrangement).
        fragments.push(mma_m16n8k16(DType::F16, DType::F32).b);
    }
    for frag in fragments {
        let values = frag.values_per_thread();
        if f.values_per_thread() < values {
            continue;
        }
        if f.tile_shape().len() < frag.tile_shape().len() {
            continue;
        }
        if f.tile_shape()
            .iter()
            .zip(frag.tile_shape().iter())
            .any(|(&ft, &qt)| ft < qt || ft % qt != 0)
        {
            continue;
        }
        let matches = (0..32.min(f.num_threads()))
            .all(|t| (0..values).all(|v| f.tile_coords(t, v) == frag.tile_coords(t, v)));
        if matches {
            return Some(values);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::mma_m16n8k16;
    use hexcute_ir::KernelBuilder;

    fn register_gemm_program() -> Program {
        let (bm, bn, bk) = (64, 64, 32);
        let mut kb = KernelBuilder::new("reg_gemm", 128);
        let ga = kb.global_view(
            "a",
            DType::F16,
            Layout::from_flat(&[bm, bk], &[bk, 1]),
            &[bm, bk],
        );
        let gb = kb.global_view(
            "b",
            DType::F16,
            Layout::from_flat(&[bn, bk], &[bk, 1]),
            &[bn, bk],
        );
        let gc = kb.global_view(
            "c",
            DType::F16,
            Layout::from_flat(&[bm, bn], &[bn, 1]),
            &[bm, bn],
        );
        let sa = kb.shared_tensor("sa", DType::F16, &[bm, bk]);
        let sb = kb.shared_tensor("sb", DType::F16, &[bn, bk]);
        let ra = kb.register_tensor("ra", DType::F16, &[bm, bk]);
        let rb = kb.register_tensor("rb", DType::F16, &[bn, bk]);
        let rc = kb.register_tensor("rc", DType::F32, &[bm, bn]);
        kb.fill(rc, 0.0);
        kb.copy(ga, sa);
        kb.copy(gb, sb);
        kb.copy(sa, ra);
        kb.copy(sb, rb);
        kb.gemm(rc, ra, rb);
        let rc16 = kb.cast(rc, DType::F16);
        kb.copy(rc16, gc);
        kb.build().unwrap()
    }

    #[test]
    fn choose_unit_grid_prefers_balanced_tilings() {
        assert_eq!(choose_unit_grid(64, 64, 16, 8, 4), Some((2, 2)));
        assert_eq!(choose_unit_grid(128, 64, 16, 8, 4), Some((2, 2)));
        assert_eq!(choose_unit_grid(16, 8, 16, 8, 4), None);
        assert_eq!(choose_unit_grid(64, 256, 16, 8, 8), Some((1, 8)));
    }

    #[test]
    fn coalesced_tv_orders_threads_along_the_contiguous_dim() {
        // A 64x32 fp16 tile, contiguous along dim 1 (row-major source),
        // 128 threads, 8 elements per thread.
        let tv = coalesced_tv(&[64, 32], 1, 128, 8).unwrap();
        assert!(tv.is_exclusive());
        assert_eq!(tv.values_per_thread(), 16);
        // Thread 0 owns (0, 0..8): contiguous along dim 1.
        assert_eq!(tv.tile_coords(0, 0), vec![0, 0]);
        assert_eq!(tv.tile_coords(0, 1), vec![0, 1]);
        assert_eq!(tv.tile_coords(0, 7), vec![0, 7]);
        // Thread 1 owns the next vector (0, 8..16) ... thread 4 wraps to row 1.
        assert_eq!(tv.tile_coords(1, 0), vec![0, 8]);
        assert_eq!(tv.tile_coords(4, 0), vec![1, 0]);
    }

    #[test]
    fn coalesced_tv_handles_small_tiles() {
        // Tile smaller than one full-width round: only some threads are active.
        let tv = coalesced_tv(&[64, 1], 0, 128, 4).unwrap();
        assert_eq!(tv.num_threads(), 128);
        assert_eq!(tv.values_per_thread(), 4);
        assert_eq!(tv.tile_coords(0, 3), vec![3, 0]);
        // Threads beyond the 16 active ones replicate.
        assert_eq!(tv.map(0, 0), tv.map(16, 0));
    }

    #[test]
    fn vector_elems_respects_divisibility() {
        assert_eq!(vector_elems(DType::F16, 64, 16, &[64, 64], 1), 8);
        assert_eq!(vector_elems(DType::I4, 64, 16, &[64, 64], 1), 32);
        assert_eq!(vector_elems(DType::F16, 1, 16, &[64, 64], 1), 1);
        // Extent 12 with an 8-wide request rounds down to a divisor (6).
        assert_eq!(vector_elems(DType::F16, 12, 16, &[12, 4], 0), 6);
    }

    #[test]
    fn ldmatrix_match_accepts_mma_fragments_and_rejects_plain_layouts() {
        let atom = mma_m16n8k16(DType::F16, DType::F32);
        let fa = atom
            .a
            .expand(
                &[RepeatMode::along(2, 0), RepeatMode::broadcast(2)],
                &[RepeatMode::along(2, 0), RepeatMode::along(2, 1)],
            )
            .unwrap();
        assert_eq!(ldmatrix_match(&fa, 4), Some(8));
        let plain = coalesced_tv(&[64, 64], 0, 128, 8).unwrap();
        assert_eq!(ldmatrix_match(&plain, 4), None);
    }

    #[test]
    fn synthesis_of_a_gemm_program_selects_tensor_cores_and_ldmatrix() {
        let program = register_gemm_program();
        let arch = GpuArch::a100();
        let synth = Synthesizer::new(&program, &arch, SynthesisOptions::default());
        let candidates = synth.synthesize().unwrap();
        assert!(!candidates.is_empty());
        let best = &candidates[0];

        // Exactly one gemm, mapped to m16n8k16 with a 2x2 warp grid.
        assert_eq!(best.mma_choices.len(), 1);
        let mma = best.mma_choices.values().next().unwrap();
        assert_eq!((mma.atom.m, mma.atom.n, mma.atom.k), (16, 8, 16));
        assert_eq!(mma.unit_m * mma.unit_n, 4);

        // The shared→register copies of the A/B operands use ldmatrix.
        let ra = program.tensor_by_name("ra").unwrap().id;
        let rb = program.tensor_by_name("rb").unwrap().id;
        assert!(best.tv_layouts.contains_key(&ra));
        assert!(best.tv_layouts.contains_key(&rb));
        let ldmatrix_copies = best
            .copy_choices
            .values()
            .filter(|c| matches!(c.atom.kind, CopyKind::LdMatrix { .. }))
            .count();
        assert!(
            ldmatrix_copies >= 1,
            "expected at least one ldmatrix copy, got candidate:\n{best}"
        );

        // Global→shared copies use 16-byte cp.async.
        let g2s: Vec<_> = best
            .copy_choices
            .values()
            .filter(|c| c.atom.kind == CopyKind::CpAsync)
            .collect();
        assert_eq!(g2s.len(), 2);
        assert!(g2s.iter().all(|c| c.atom.bytes_per_thread == 16));

        // Shared-memory layouts were synthesized for both staging buffers.
        assert_eq!(best.smem_layouts.len(), 2);

        // No rearranges needed for a single-gemm program.
        assert!(best.rearranges.is_empty());

        // The search tree produced more than one candidate, and the last one
        // degrades to narrower copies.
        assert!(candidates.len() > 1);
    }

    #[test]
    fn scalar_ablation_forces_narrow_copies() {
        let program = register_gemm_program();
        let arch = GpuArch::a100();
        let synth = Synthesizer::new(&program, &arch, SynthesisOptions::scalar_fallback());
        let candidates = synth.synthesize().unwrap();
        assert!(candidates[0].uses_scalar_fallback());
    }

    #[test]
    fn anchor_copy_program_without_gemm() {
        // A pure data-movement kernel (like the Mamba scan loads): the anchor
        // is the largest copy and everything is coalesced and vectorized.
        let mut kb = KernelBuilder::new("streams", 128);
        let gu = kb.global_view(
            "u",
            DType::F16,
            Layout::from_flat(&[128, 64], &[64, 1]),
            &[128, 64],
        );
        let ru = kb.register_tensor("ru", DType::F16, &[128, 64]);
        let out = kb.global_view(
            "out",
            DType::F16,
            Layout::from_flat(&[128, 64], &[64, 1]),
            &[128, 64],
        );
        kb.copy(gu, ru);
        let doubled = kb.elementwise(hexcute_ir::ElementwiseOp::MulScalar(2.0), &[ru]);
        kb.copy(doubled, out);
        let program = kb.build().unwrap();
        let arch = GpuArch::h100();
        let synth = Synthesizer::new(&program, &arch, SynthesisOptions::default());
        let best = synth.synthesize_preferred().unwrap();
        // Both copies are 16-byte vectorized.
        for choice in best.copy_choices.values() {
            assert_eq!(choice.elements_per_thread, 8, "{}", choice.atom.name);
        }
        // The elementwise op inherits the same distribution.
        let ru_id = program.tensor_by_name("ru").unwrap().id;
        let doubled_layout = best.tv_layouts.get(&doubled).unwrap();
        assert!(same_distribution(
            doubled_layout,
            best.tv_layouts.get(&ru_id).unwrap()
        ));
    }

    /// A pure copy chain `g → s → r → g` whose plans the tests below replace
    /// with fabricated alternatives.
    fn copy_chain_program() -> Program {
        let mut kb = KernelBuilder::new("chain", 128);
        let ga = kb.global_view(
            "ga",
            DType::F16,
            Layout::from_flat(&[64, 64], &[64, 1]),
            &[64, 64],
        );
        let gc = kb.global_view(
            "gc",
            DType::F16,
            Layout::from_flat(&[64, 64], &[64, 1]),
            &[64, 64],
        );
        let sa = kb.shared_tensor("sa", DType::F16, &[64, 64]);
        let ra = kb.register_tensor("ra", DType::F16, &[64, 64]);
        kb.copy(ga, sa);
        kb.copy(sa, ra);
        kb.copy(ra, gc);
        kb.build().unwrap()
    }

    fn atom_of_kind(
        arch: &GpuArch,
        src: MemSpace,
        dst: MemSpace,
        want: fn(&CopyKind) -> bool,
    ) -> CopyAtom {
        copy_candidates(arch, src, dst)
            .into_iter()
            .find(|a| want(&a.kind))
            .expect("catalog carries the requested atom kind")
    }

    /// Regression test for the `max_candidates` truncation bug: the
    /// enumeration used to be cut to `max_candidates` *before* shared-memory
    /// feasibility filtering, so a workload whose first selections are all
    /// infeasible (even after the scalar fallback) returned an empty set
    /// although feasible candidates existed past the cutoff. The cap now
    /// applies to finished candidates only.
    #[test]
    fn max_candidates_counts_finished_candidates_only() {
        let program = copy_chain_program();
        let arch = GpuArch::h100();
        let options = SynthesisOptions {
            max_candidates: 1,
            ..SynthesisOptions::default()
        };
        let synth = Synthesizer::new(&program, &arch, options);
        let base = synth.solve_tv().unwrap();
        let mut plans = synth.build_copy_plans(&base).unwrap();
        assert_eq!(plans.len(), 3);

        // Fabricate an infeasible-heavy prefix: the g→s copy prefers TMA
        // (demands 128-byte contiguity along dim 0 of `sa`, surviving the
        // scalar degrade) while the s→r copy only offers ldmatrix (demands
        // 8-element contiguity along dim 1). The preferred selection and the
        // all-scalar fallback both conflict; only the deviation picking the
        // 1-element vector for the g→s copy is feasible.
        let tma = atom_of_kind(&arch, MemSpace::Global, MemSpace::Shared, |k| {
            matches!(k, CopyKind::Tma)
        });
        let narrow = atom_of_kind(&arch, MemSpace::Global, MemSpace::Shared, |k| {
            matches!(k, CopyKind::CpAsync)
        });
        let ldmatrix = atom_of_kind(&arch, MemSpace::Shared, MemSpace::Register, |k| {
            matches!(k, CopyKind::LdMatrix { .. })
        });
        plans[0].vector_dim = 0;
        plans[0].alternatives = vec![(tma.clone(), 64), (narrow, 1), (tma, 64)];
        plans[1].vector_dim = 1;
        plans[1].alternatives = vec![(ldmatrix, 8)];

        let selections = synth.enumerate_selections(&plans);
        // The enumeration itself is never truncated by `max_candidates`.
        assert!(
            selections.len() >= 4,
            "expected the full enumeration, got {selections:?}"
        );
        assert_eq!(selections[0], vec![0, 0, 0], "preferred first");

        let reference = synth
            .evaluate_reference(&base, &plans, &selections, 1, None)
            .unwrap();
        assert_eq!(
            reference.len(),
            1,
            "the feasible deviation past the infeasible prefix must be found"
        );
        let choice = &reference[0].copy_choices[&plans[0].op];
        assert_eq!(
            (choice.atom.kind, choice.elements_per_thread),
            (CopyKind::CpAsync, 1),
            "the surviving candidate is the one-element deviation"
        );

        // The incremental path agrees bit for bit, including on fallbacks.
        let incremental = synth
            .evaluate_incremental_with_stats(&base, &plans, &selections, 1, None)
            .unwrap()
            .0;
        assert_eq!(reference, incremental);

        // Unbounded, both paths agree on the full feasible set too.
        let all_ref = synth
            .evaluate_reference(&base, &plans, &selections, usize::MAX, None)
            .unwrap();
        let all_inc = synth
            .evaluate_incremental_with_stats(&base, &plans, &selections, usize::MAX, None)
            .unwrap()
            .0;
        assert_eq!(all_ref, all_inc);
        assert_eq!(all_ref.len(), 1, "every other selection is infeasible");
    }

    #[test]
    fn incremental_and_reference_paths_agree_on_gemm() {
        let program = register_gemm_program();
        let arch = GpuArch::a100();
        let synth = Synthesizer::new(&program, &arch, SynthesisOptions::default());
        let base = synth.solve_tv().unwrap();
        let plans = synth.build_copy_plans(&base).unwrap();
        let selections = synth.enumerate_selections(&plans);
        let reference = synth
            .evaluate_reference(&base, &plans, &selections, usize::MAX, None)
            .unwrap();
        let (incremental, stats) = synth
            .evaluate_incremental_with_stats(&base, &plans, &selections, usize::MAX, None)
            .unwrap();
        assert_eq!(reference, incremental);
        // The sharing must actually kick in: siblings re-finish only the
        // tensors their differing suffix touches.
        assert!(
            stats.tensor_layout_hits > 0,
            "no prefix sharing happened: {stats:?}"
        );
        assert!(
            stats.tensor_layouts_computed < selections.len() * program.shared_tensors().len(),
            "every tensor was re-finished per candidate: {stats:?}"
        );
    }

    #[test]
    fn node_budget_truncates_deterministically() {
        let program = register_gemm_program();
        let arch = GpuArch::a100();
        let exhaustive = Synthesizer::new(&program, &arch, SynthesisOptions::default())
            .synthesize()
            .unwrap();
        assert!(exhaustive.len() > 2, "fixture must enumerate alternatives");

        // Budget ≥ the full space: a Complete outcome, identical candidates.
        let roomy = SynthesisOptions {
            node_budget: Some(10_000),
            ..SynthesisOptions::default()
        };
        let (outcome, _) = Synthesizer::new(&program, &arch, roomy)
            .synthesize_outcome(None)
            .unwrap();
        assert!(!outcome.is_truncated());
        assert_eq!(outcome.candidates(), &exhaustive[..]);

        // A tight budget truncates: the preferred prefix of the exhaustive
        // list, bit-identical across the serial and parallel walks and the
        // reference path.
        let mut results = Vec::new();
        for (incremental, workers) in [(true, 1), (true, 4), (false, 1)] {
            let tight = SynthesisOptions {
                node_budget: Some(2),
                incremental,
                parallel_workers: Some(workers),
                ..SynthesisOptions::default()
            };
            let (outcome, _) = Synthesizer::new(&program, &arch, tight)
                .synthesize_outcome(None)
                .unwrap();
            assert!(outcome.is_truncated(), "2 < full space must truncate");
            results.push(outcome.into_candidates());
        }
        assert_eq!(results[0], results[1], "serial vs parallel walk");
        assert_eq!(results[0], results[2], "incremental vs reference");
        assert_eq!(
            results[0],
            exhaustive[..results[0].len()],
            "a truncated search is a prefix of the exhaustive one"
        );
    }

    #[test]
    fn cancelled_token_yields_a_typed_error_not_a_partial_list() {
        use hexcute_parallel::cancel::{CancelReason, CancelToken};
        let program = register_gemm_program();
        let arch = GpuArch::a100();
        let token = CancelToken::new();
        token.cancel(CancelReason::Deadline);
        for incremental in [true, false] {
            let options = SynthesisOptions {
                incremental,
                ..SynthesisOptions::default()
            };
            let synth = Synthesizer::new(&program, &arch, options);
            match synth.synthesize_outcome(Some(&token)) {
                Err(SynthesisError::Cancelled(CancelReason::Deadline)) => {}
                other => panic!("expected a typed cancellation, got {other:?}"),
            }
        }
    }

    #[test]
    fn conflicting_gemm_layouts_insert_rearranges() {
        // Two gemms where the first one's accumulator feeds the second one's
        // A operand with an incompatible K extent pairing, forcing a layout
        // conversion (the Fig. 9 scenario).
        let mut kb = KernelBuilder::new("two_gemms", 128);
        let q = kb.register_tensor("q", DType::F16, &[64, 64]);
        let k = kb.register_tensor("k", DType::F16, &[64, 64]);
        let v = kb.register_tensor("v", DType::F16, &[64, 64]);
        let s = kb.register_tensor("s", DType::F32, &[64, 64]);
        let o = kb.register_tensor("o", DType::F32, &[64, 64]);
        kb.fill(s, 0.0);
        kb.fill(o, 0.0);
        kb.gemm(s, q, k);
        let p = kb.cast(s, DType::F16);
        kb.gemm(o, p, v);
        let program = kb.build().unwrap();
        let arch = GpuArch::a100();
        let synth = Synthesizer::new(&program, &arch, SynthesisOptions::default());
        let best = synth.synthesize_preferred().unwrap();
        // The accumulator of gemm 1 (an M×N fragment) cannot directly serve
        // as the A operand of gemm 2 (an M×K fragment): a rearrange appears.
        assert!(!best.rearranges.is_empty());
    }
}
