//! Fault-injection hooks and cancellation polling for the synthesis walks.
//!
//! Mirrors the pool fault hook of `hexcute_parallel`: the chaos layer
//! (`hexcute_core::faults`) installs a process-wide verdict function here,
//! and the search walks consult it at their natural poll points. With no
//! hook installed every injection site reduces to one relaxed atomic load.
//!
//! Two faults are injectable:
//!
//! * **synth stall** ([`SynthFaultPoint::Stall`]) — an artificial delay
//!   inside the walk, simulating a pathologically slow subtree. The stall
//!   sleeps in ~1 ms slices re-polling the walk's [`CancelToken`], so a
//!   deadline or watchdog cancel cuts through a stall instead of waiting it
//!   out.
//! * **cancel race** ([`SynthFaultPoint::CancelPoll`]) — a short delay
//!   injected *at a cancellation poll site*, deterministically widening the
//!   window in which a cancel can land "just before" the poll. This
//!   exercises the ordering between cancellation and the walk's progress
//!   without relying on scheduler luck.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use hexcute_parallel::cancel::{CancelReason, CancelToken};

/// Where in the synthesis walk a fault hook is consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthFaultPoint {
    /// Once per evaluated selection: a `Some(duration)` verdict stalls the
    /// walk for that long (interruptibly — see the [module docs](self)).
    Stall,
    /// At each cancellation poll: a `Some(duration)` verdict sleeps that
    /// long *before* the poll reads the flag, widening the cancel race
    /// window.
    CancelPoll,
}

/// A fault verdict function: `Some(delay)` means "inject a delay here".
/// Installed process-wide by the fault-injection layer.
pub type SynthFaultHook = Arc<dyn Fn(SynthFaultPoint) -> Option<Duration> + Send + Sync>;

static HOOK_ACTIVE: AtomicBool = AtomicBool::new(false);

fn hook_slot() -> &'static Mutex<Option<SynthFaultHook>> {
    static HOOK: OnceLock<Mutex<Option<SynthFaultHook>>> = OnceLock::new();
    HOOK.get_or_init(|| Mutex::new(None))
}

/// Installs (or, with `None`, removes) the process-wide synthesis fault
/// hook. When no hook is installed the walks' poll sites check a single
/// relaxed atomic and nothing else.
pub fn set_synth_fault_hook(hook: Option<SynthFaultHook>) {
    let mut slot = hook_slot().lock().unwrap_or_else(|p| p.into_inner());
    HOOK_ACTIVE.store(hook.is_some(), Ordering::Release);
    *slot = hook;
}

/// Consults the installed hook; `None` when none is installed.
fn fault_delay(point: SynthFaultPoint) -> Option<Duration> {
    if !HOOK_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let hook = hook_slot()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    hook.and_then(|h| h(point))
}

/// One cancellation poll: returns the cancel reason when `token` has
/// tripped, `None` otherwise (including when no token is carried). An
/// injected cancel-race delay sleeps *before* the read, so a cancel landing
/// during the widened window is observed by this very poll.
pub(crate) fn poll_cancelled(token: Option<&CancelToken>) -> Option<CancelReason> {
    let token = token?;
    if !token.is_cancelled() {
        if let Some(delay) = fault_delay(SynthFaultPoint::CancelPoll) {
            std::thread::sleep(delay);
        }
    }
    if token.is_cancelled() {
        token.reason()
    } else {
        None
    }
}

/// One stall-injection site: sleeps for the injected duration (if any) in
/// ~1 ms slices, re-polling `token` between slices. Returns the cancel
/// reason when the token trips mid-stall, `None` when the stall completed
/// (or none was injected).
pub(crate) fn injected_stall(token: Option<&CancelToken>) -> Option<CancelReason> {
    let delay = fault_delay(SynthFaultPoint::Stall)?;
    if delay.is_zero() {
        return None;
    }
    let until = Instant::now() + delay;
    loop {
        if let Some(t) = token {
            if t.is_cancelled() {
                return t.reason();
            }
        }
        let now = Instant::now();
        if now >= until {
            return None;
        }
        std::thread::sleep((until - now).min(Duration::from_millis(1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn no_hook_means_no_delay() {
        assert_eq!(fault_delay(SynthFaultPoint::Stall), None);
        assert_eq!(fault_delay(SynthFaultPoint::CancelPoll), None);
        assert_eq!(poll_cancelled(None), None);
        assert_eq!(injected_stall(None), None);
    }

    #[test]
    fn poll_reports_a_tripped_token() {
        let token = CancelToken::new();
        assert_eq!(poll_cancelled(Some(&token)), None);
        token.cancel(CancelReason::Watchdog);
        assert_eq!(poll_cancelled(Some(&token)), Some(CancelReason::Watchdog));
    }

    #[test]
    fn stall_is_interrupted_by_cancellation() {
        // Install a hook stalling 10 s; cancel from another thread after a
        // few ms: the stall must return the reason long before 10 s.
        let calls = Arc::new(AtomicUsize::new(0));
        let c = calls.clone();
        set_synth_fault_hook(Some(Arc::new(move |point| {
            (point == SynthFaultPoint::Stall && c.fetch_add(1, Ordering::Relaxed) == 0)
                .then(|| Duration::from_secs(10))
        })));
        let token = CancelToken::new();
        let t = token.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            t.cancel(CancelReason::Deadline);
        });
        let start = Instant::now();
        let reason = injected_stall(Some(&token));
        set_synth_fault_hook(None);
        canceller.join().unwrap();
        assert_eq!(reason, Some(CancelReason::Deadline));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "stall must be cut short by the cancel"
        );
    }
}
