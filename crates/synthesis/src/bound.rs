//! Branch-and-bound support types: the search space handed to a bounder,
//! the [`SearchBounder`] contract the pruned walk relies on, and the pruned
//! search's outcome.
//!
//! The cost model lives *above* this crate (`hexcute-costmodel` depends on
//! `hexcute-synthesis`), so the pruned walk cannot call it directly; instead
//! the walk is generic over a [`SearchBounder`] the caller prepares from the
//! [`SearchSpace`] — per-op minimum-cost tables in practice (see
//! `hexcute_costmodel::CompletionBounds`). What makes pruning *lossless* is
//! the admissibility contract documented on
//! [`SearchBounder::completion_bound`]; the property is checked by the
//! `bound_admissibility` proptest and the prune axis of the workload
//! conformance matrix.

use hexcute_ir::OpId;

use crate::choice::{Candidate, CopyChoice};
use crate::prefix::PrefixStats;

/// The instruction menu of one copy operation, materialized: element counts
/// and invocation counts already resolved exactly as the search would
/// resolve them, so a bounder can cost each alternative without reaching
/// into engine internals.
#[derive(Debug, Clone)]
pub struct PlanAlternatives {
    /// The copy operation this plan selects an instruction for.
    pub op: OpId,
    /// One materialized [`CopyChoice`] per alternative, widest (preferred)
    /// first — index `j` is exactly the choice a selection picking
    /// alternative `j` produces.
    pub choices: Vec<CopyChoice>,
    /// The scalar-degraded choice the shared-memory feasibility fallback
    /// substitutes for *every* planned copy when synthesis fails (Section V).
    /// Its invocation count differs from the scalar alternative's normal
    /// materialization, so bounds must account for it separately.
    pub degraded: CopyChoice,
}

/// The choice space of one synthesis problem: one [`PlanAlternatives`] per
/// copy plan, in plan (enumeration) order. Everything else a candidate
/// carries — thread-value layouts, MMA choices, SIMT widths, rearranges —
/// is fixed across the whole search, so the plans *are* the search space.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// The per-copy instruction menus, in enumeration order.
    pub plans: Vec<PlanAlternatives>,
}

/// Scores candidates and bounds completions for the branch-and-bound walk.
///
/// Implementations must be [`Sync`]: the parallel subtree walk shares one
/// bounder across workers.
pub trait SearchBounder: Sync {
    /// Precomputes whatever per-problem tables the bounder needs (per-op
    /// minimum-cost tables in practice). Called once, before any scoring.
    fn prepare(&mut self, space: &SearchSpace);

    /// The exact score of a finished candidate — **bit-identical** to the
    /// score the exhaustive selection loop would assign it (the conformance
    /// matrix compares winners by bit pattern).
    fn exact_score(&self, candidate: &Candidate) -> f64;

    /// An *admissible* lower bound for every feasible completion of a
    /// partial assignment: `candidate` carries concrete choices everywhere,
    /// but the ops listed in `undecided` are still free. The bound must not
    /// exceed `exact_score` of **any** finished candidate that agrees with
    /// `candidate` on the decided ops — including candidates produced by the
    /// all-plans scalar-degradation fallback, which rewrites *decided*
    /// choices too. Violating this makes pruning lossy; the
    /// `bound_admissibility` proptest enforces it.
    fn completion_bound(&self, candidate: &Candidate, undecided: &[OpId]) -> f64;
}

/// The result of a pruned (branch-and-bound, optionally beamed) search: the
/// winner only. Pruned walks skip dominated leaves, so — unlike
/// [`crate::SynthesisOutcome`] — no survivor *list* is reported: which
/// non-winning leaves were scored depends on incumbent timing and is not
/// deterministic across worker counts. The winner and its score are.
#[derive(Debug, Clone)]
pub struct PrunedOutcome {
    /// The winning candidate — bit-identical to the exhaustive winner in
    /// exact mode (no beam).
    pub winner: Candidate,
    /// The winner's exact score (bit-identical to the exhaustive score).
    pub score: f64,
    /// The winner's index in the deterministic selection enumeration.
    pub winner_index: usize,
    /// Selections enumerated (after the node budget and beam, before
    /// pruning).
    pub enumerated: usize,
    /// Whether the node budget truncated the enumeration (the analogue of
    /// [`crate::SynthesisOutcome::Truncated`]).
    pub truncated: bool,
    /// Whether the beam dropped any prefix (always `false` without a
    /// configured beam width).
    pub beamed: bool,
    /// Walk counters, including the pruning counters. The pruning counters
    /// depend on incumbent timing and are **not** deterministic across
    /// worker counts; the winner is.
    pub stats: PrefixStats,
}
