//! Error type for layout synthesis.

use std::fmt;

use hexcute_layout::LayoutError;
use hexcute_parallel::cancel::CancelReason;

/// Errors produced by thread-value and shared-memory layout synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// No Tensor Core instruction matches the operand data types on the
    /// target architecture.
    NoMmaInstruction {
        /// Description of the requested operand types.
        requested: String,
    },
    /// The thread-block tile cannot be partitioned across the available
    /// warps with the chosen instruction.
    NoWarpTiling {
        /// The C tile shape.
        tile: (usize, usize),
        /// The instruction tile shape.
        instruction: (usize, usize),
        /// Warps (or warp groups) available.
        units: usize,
    },
    /// The K extent of the operand tile is not divisible by the instruction's
    /// K extent.
    BadKExtent {
        /// The tile's K extent.
        tile_k: usize,
        /// The instruction's K extent.
        instruction_k: usize,
    },
    /// A layout-algebra operation failed while solving constraints.
    Layout(LayoutError),
    /// The shared-memory layout constraints could not be unified.
    SmemUnsatisfiable {
        /// The tensor whose constraints conflict.
        tensor: String,
        /// Explanation.
        reason: String,
    },
    /// No valid candidate program exists (should not happen: the scalar
    /// fallback is always valid).
    NoCandidates,
    /// The search was cancelled cooperatively (deadline, watchdog or
    /// shutdown) before it finished. Cancellation never yields a partial
    /// candidate list — only this typed error.
    Cancelled(CancelReason),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NoMmaInstruction { requested } => {
                write!(f, "no Tensor Core instruction available for {requested}")
            }
            SynthesisError::NoWarpTiling { tile, instruction, units } => write!(
                f,
                "cannot tile a {}x{} accumulator with {}x{} instructions across {units} warps",
                tile.0, tile.1, instruction.0, instruction.1
            ),
            SynthesisError::BadKExtent { tile_k, instruction_k } => write!(
                f,
                "tile K extent {tile_k} is not a multiple of the instruction K extent {instruction_k}"
            ),
            SynthesisError::Layout(e) => write!(f, "layout algebra error: {e}"),
            SynthesisError::SmemUnsatisfiable { tensor, reason } => {
                write!(f, "shared-memory layout constraints for {tensor} are unsatisfiable: {reason}")
            }
            SynthesisError::NoCandidates => write!(f, "the search produced no valid candidate programs"),
            SynthesisError::Cancelled(reason) => {
                write!(f, "the search was cancelled ({reason})")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<LayoutError> for SynthesisError {
    fn from(e: LayoutError) -> Self {
        SynthesisError::Layout(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SynthesisError>;
