//! Synthesis options: which instruction families the search may use and the
//! ablation switches used in Section VII-E of the paper.

/// Options controlling the layout-synthesis search.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisOptions {
    /// Allow `ldmatrix` for shared→register copies.
    pub allow_ldmatrix: bool,
    /// Allow `cp.async` for global→shared copies.
    pub allow_cp_async: bool,
    /// Allow unpack loads (vectorized shared→register loads of packed
    /// sub-byte elements with an in-register unpack) for quantized weight
    /// tensors — the Marlin dequant-in-flight path.
    pub allow_unpack: bool,
    /// Allow TMA bulk copies on architectures that support it.
    pub allow_tma: bool,
    /// Allow warp-group MMA (`wgmma`) on architectures that support it.
    pub allow_wgmma: bool,
    /// Upper bound on the number of candidate programs returned by the
    /// search tree expansion.
    pub max_candidates: usize,
    /// Ablation: force every copy to use scalar (1-byte-per-thread
    /// element-wise) instructions, mimicking the fallback path.
    pub force_scalar_copies: bool,
    /// Ablation: force shared-memory tensors to a plain row-major layout
    /// without alignment-aware synthesis (the "Triton layout" ablation of
    /// Fig. 14).
    pub force_row_major_smem: bool,
    /// Ablation: disable swizzle selection (keeps whatever bank conflicts the
    /// base layout has).
    pub disable_swizzles: bool,
    /// Allow non-power-of-two warp tilings of the C tile (the paper notes 28
    /// of 40 GEMM shapes pick non-power-of-two tiles on H100).
    pub allow_non_power_of_two_tiles: bool,
    /// Evaluate candidates with the shared-prefix incremental search (memoized
    /// constraint unification and shared-memory synthesis along shared choice
    /// prefixes). When `false` — or when the process-wide switch is off, see
    /// [`crate::set_incremental`] / `HEXCUTE_DISABLE_INCREMENTAL` — every
    /// candidate is re-evaluated from scratch (the pre-PR-2 reference
    /// behaviour). Both paths produce bit-identical candidate lists.
    pub incremental: bool,
    /// Depth at which the incremental search splits the choice tree into
    /// independent subtrees evaluated in parallel on the persistent worker
    /// pool (selections sharing their first `depth` choices form one
    /// subtree). `None` (the default) auto-tunes the depth from the worker
    /// count; `Some(0)` forces the serial walk — the cross-checked
    /// reference, also reachable with `HEXCUTE_THREADS=1`. The parallel walk
    /// is bit-for-bit identical to the serial one at any depth and worker
    /// count.
    pub parallel_subtree_depth: Option<usize>,
    /// Worker count for the parallel subtree walk and candidate scoring.
    /// `None` (the default) uses [`hexcute_parallel::worker_count`]
    /// (i.e. `HEXCUTE_THREADS`); tests and benchmarks set an explicit count
    /// because mutating the environment of a threaded process is unsafe.
    pub parallel_workers: Option<usize>,
    /// Deterministic node-count budget for the search: at most this many
    /// selections (leaves of the choice tree) are evaluated, truncating the
    /// deterministic enumeration *before* the walk fans out. A truncated
    /// search reports `SynthesisOutcome::Truncated` with the best candidates
    /// found so far — bit-identical at any worker count and toggle, unlike
    /// wall-clock cancellation which yields typed errors only. `None` (the
    /// default) searches exhaustively; the environment default comes from
    /// `HEXCUTE_SYNTH_BUDGET` (unset or `0` means unbudgeted).
    pub node_budget: Option<usize>,
    /// Prune the search with branch-and-bound: cut subtrees whose admissible
    /// lower bound (from [`crate::SearchBounder`]) cannot beat the incumbent
    /// best score. Pruning is *lossless* — the winning candidate and its
    /// score are bit-identical to exhaustive search — so, like
    /// `incremental`, this toggle is excluded from the stable hash. The
    /// process-wide kill switch is [`crate::set_pruning`] /
    /// `HEXCUTE_DISABLE_PRUNE`; the compiler prunes only when both are on.
    pub prune: bool,
    /// Deterministic beam width for the pruned search: at each choice depth,
    /// keep only the `width` distinct prefixes with the best completion
    /// bounds (ties broken by enumeration order) before the walk fans out.
    /// Unlike exact branch-and-bound this is *lossy* — the winner may differ
    /// from exhaustive search — so a set beam width participates in the
    /// stable hash. It is still bit-identical across worker counts and
    /// toggles. `None` (the default) disables the beam; the environment
    /// default comes from `HEXCUTE_SYNTH_BEAM` (unset or `0` means no beam).
    pub beam_width: Option<usize>,
}

/// The process-wide default node budget, parsed once from
/// `HEXCUTE_SYNTH_BUDGET`. Unset, unparsable or `0` all mean "no budget".
fn env_node_budget() -> Option<usize> {
    static BUDGET: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("HEXCUTE_SYNTH_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&b| b > 0)
    })
}

/// The process-wide default beam width, parsed once from
/// `HEXCUTE_SYNTH_BEAM`. Unset, unparsable or `0` all mean "no beam".
fn env_beam_width() -> Option<usize> {
    static BEAM: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *BEAM.get_or_init(|| {
        std::env::var("HEXCUTE_SYNTH_BEAM")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w > 0)
    })
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            allow_ldmatrix: true,
            allow_cp_async: true,
            allow_unpack: true,
            allow_tma: true,
            allow_wgmma: true,
            max_candidates: 128,
            force_scalar_copies: false,
            force_row_major_smem: false,
            disable_swizzles: false,
            allow_non_power_of_two_tiles: true,
            incremental: true,
            parallel_subtree_depth: None,
            parallel_workers: None,
            node_budget: env_node_budget(),
            prune: true,
            beam_width: env_beam_width(),
        }
    }
}

impl SynthesisOptions {
    /// The default option set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Options mimicking the scalar-fallback ablation.
    pub fn scalar_fallback() -> Self {
        SynthesisOptions {
            force_scalar_copies: true,
            ..Self::default()
        }
    }

    /// Feeds every *result-affecting* field into `state`, in a fixed order.
    /// The persistent kernel-artifact cache keys artifacts on this hash (via
    /// a stable hasher), so the contract matters:
    ///
    /// * Fields that change which candidates exist or how they rank
    ///   (instruction allowances, `max_candidates`, the ablation switches)
    ///   all participate.
    /// * `incremental`, `parallel_subtree_depth`, `parallel_workers` and
    ///   `prune` are **deliberately excluded**: the incremental, parallel
    ///   and branch-and-bound walks are cross-checked bit-for-bit against
    ///   the serial exhaustive reference, so they cannot change the winning
    ///   candidate — hashing them would only fragment the cache across
    ///   thread counts and prune toggles.
    /// * `node_budget` participates **only when set**: a budgeted search may
    ///   return different (truncated) candidates, so budgeted artifacts must
    ///   never alias full-search artifacts — while the unbudgeted hash stays
    ///   byte-compatible with caches written before budgets existed.
    /// * `beam_width` likewise participates **only when set** (under a
    ///   distinct tag): beam search is lossy, so beamed artifacts must never
    ///   alias exact-search artifacts.
    pub fn hash_stable<H: std::hash::Hasher>(&self, state: &mut H) {
        use std::hash::Hash;
        self.allow_ldmatrix.hash(state);
        self.allow_cp_async.hash(state);
        self.allow_unpack.hash(state);
        self.allow_tma.hash(state);
        self.allow_wgmma.hash(state);
        self.max_candidates.hash(state);
        self.force_scalar_copies.hash(state);
        self.force_row_major_smem.hash(state);
        self.disable_swizzles.hash(state);
        self.allow_non_power_of_two_tiles.hash(state);
        if let Some(budget) = self.node_budget {
            1u8.hash(state);
            budget.hash(state);
        }
        if let Some(width) = self.beam_width {
            2u8.hash(state);
            width.hash(state);
        }
    }

    /// Options mimicking the "Triton shared-memory layout" ablation of
    /// Fig. 14 (row-major shared memory, no swizzle search).
    pub fn triton_smem_layout() -> Self {
        SynthesisOptions {
            force_row_major_smem: true,
            disable_swizzles: true,
            allow_ldmatrix: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let o = SynthesisOptions::default();
        assert!(o.allow_ldmatrix && o.allow_cp_async && o.allow_tma && o.allow_wgmma);
        assert!(!o.force_scalar_copies);
        assert!(o.incremental);
        assert!(o.max_candidates >= 16);
        assert_eq!(o.parallel_subtree_depth, None, "default is auto-tuned");
        assert_eq!(o.parallel_workers, None, "default follows HEXCUTE_THREADS");
        assert!(
            o.prune,
            "exact branch-and-bound is lossless, so it defaults on"
        );
    }

    #[test]
    fn node_budget_fragments_the_stable_hash_only_when_set() {
        fn fp(o: &SynthesisOptions) -> u64 {
            let mut h = std::hash::DefaultHasher::new();
            o.hash_stable(&mut h);
            std::hash::Hasher::finish(&h)
        }
        let unbudgeted = SynthesisOptions {
            node_budget: None,
            ..SynthesisOptions::default()
        };
        let threaded = SynthesisOptions {
            parallel_workers: Some(7),
            ..unbudgeted.clone()
        };
        assert_eq!(fp(&unbudgeted), fp(&threaded), "workers never fragment");
        let budgeted = SynthesisOptions {
            node_budget: Some(8),
            ..unbudgeted.clone()
        };
        assert_ne!(fp(&unbudgeted), fp(&budgeted), "budgets must not alias");
    }

    #[test]
    fn beam_width_fragments_the_stable_hash_but_prune_does_not() {
        fn fp(o: &SynthesisOptions) -> u64 {
            let mut h = std::hash::DefaultHasher::new();
            o.hash_stable(&mut h);
            std::hash::Hasher::finish(&h)
        }
        let base = SynthesisOptions {
            node_budget: None,
            beam_width: None,
            ..SynthesisOptions::default()
        };
        let unpruned = SynthesisOptions {
            prune: false,
            ..base.clone()
        };
        assert_eq!(
            fp(&base),
            fp(&unpruned),
            "exact B&B is lossless, so the prune toggle never fragments"
        );
        let beamed = SynthesisOptions {
            beam_width: Some(2),
            ..base.clone()
        };
        assert_ne!(
            fp(&base),
            fp(&beamed),
            "beam search is lossy, must not alias"
        );
        // The beam tag (2u8) must not collide with the budget tag (1u8) at
        // equal widths/budgets.
        let budgeted = SynthesisOptions {
            node_budget: Some(2),
            ..base.clone()
        };
        assert_ne!(
            fp(&budgeted),
            fp(&beamed),
            "beam and budget tags are distinct"
        );
    }

    #[test]
    fn ablation_presets() {
        assert!(SynthesisOptions::scalar_fallback().force_scalar_copies);
        let t = SynthesisOptions::triton_smem_layout();
        assert!(t.force_row_major_smem && t.disable_swizzles && !t.allow_ldmatrix);
    }
}
