//! # hexcute-synthesis
//!
//! Constraint-based layout synthesis — the core contribution of the Hexcute
//! paper (Sections IV and V).
//!
//! The [`Synthesizer`] takes a tile-level [`hexcute_ir::Program`] and a
//! target [`hexcute_arch::GpuArch`] and produces [`Candidate`] programs in
//! which
//!
//! * every register tensor has a synthesized **thread-value layout**, solved
//!   from the constraints that tie tile-level operations to the collective
//!   instructions implementing them (`f ∘ p⁻¹ = g ∘ q⁻¹` for copies, the
//!   Theorem-1 equations for `gemm`, equality for `elementwise`, and a
//!   dimension collapse for `reduce`);
//! * every `copy` and `gemm` has a selected collective instruction
//!   (`mma`/`wgmma`, `ldmatrix`, `cp.async`, vectorized `ld/st`, TMA, or the
//!   scalar fallback), with alternatives enumerated as a search tree;
//! * every shared-memory tensor has a synthesized base layout (obtained by
//!   unifying the alignment-aware layout constraints of all copies touching
//!   it) composed with a swizzle selected to eliminate bank conflicts.
//!
//! The candidates are ranked by the analytical cost model in
//! `hexcute-costmodel`; the driver in `hexcute-core` ties the two together.
//!
//! Candidates are evaluated *incrementally* along shared choice prefixes by
//! default (see [`prefix`]): constraint unification and per-tensor
//! shared-memory finishing are memoized across sibling candidates. The full
//! per-candidate re-evaluation stays available behind
//! [`SynthesisOptions::incremental`]` = false` /
//! `HEXCUTE_DISABLE_INCREMENTAL=1` and is cross-checked bit-for-bit.
//!
//! Searches can be bounded two ways: a deterministic node budget
//! ([`SynthesisOptions::node_budget`] / `HEXCUTE_SYNTH_BUDGET`) truncates the
//! enumeration up front and reports [`SynthesisOutcome::Truncated`]
//! bit-identically at any worker count, while a wall-clock [`CancelToken`]
//! (deadline, watchdog, shutdown) is polled cooperatively at row granularity
//! and aborts the walk with a typed [`SynthesisError::Cancelled`] — never a
//! partial result.
//!
//! When the caller can score candidates (the compiler's cost model), the
//! search can also run as lossless branch-and-bound
//! ([`Synthesizer::synthesize_pruned`] with a [`SearchBounder`]): subtrees
//! whose admissible completion bound cannot beat the shared incumbent are
//! cut, and the winner is bit-identical to the exhaustive argmin. An
//! optional deterministic beam ([`SynthesisOptions::beam_width`] /
//! `HEXCUTE_SYNTH_BEAM`) truncates per-depth frontiers by bound rank —
//! lossy, but bit-identical across worker counts. The process-wide kill
//! switch is [`set_pruning`] / `HEXCUTE_DISABLE_PRUNE`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bound;
mod choice;
mod constraints;
mod engine;
mod error;
pub mod hooks;
mod incremental;
mod options;
pub mod prefix;
mod pruning;
mod smem;

pub use bound::{PlanAlternatives, PrunedOutcome, SearchBounder, SearchSpace};
pub use choice::{Candidate, CopyChoice, MmaChoice, RearrangeFix};
pub use constraints::{
    collapse_dim, contiguous_run_along, copy_constraint_holds, gemm_constraint_holds,
    same_distribution, solve_copy_peer,
};
pub use engine::{SynthesisOutcome, Synthesizer};
pub use error::{Result, SynthesisError};
pub use hexcute_parallel::cancel::{CancelReason, CancelToken};
pub use hooks::{set_synth_fault_hook, SynthFaultHook, SynthFaultPoint};
pub use incremental::{incremental_enabled, set_incremental};
pub use options::SynthesisOptions;
pub use prefix::{PrefixStats, TensorSlotInterner};
pub use pruning::{prune_enabled, set_pruning};
pub use smem::{
    bank_conflict_degree, synthesize_smem_layouts, ConstraintError, ConstraintMode,
    LayoutConstraint,
};
