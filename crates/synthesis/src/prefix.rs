//! Shared-prefix candidate evaluation (incremental search).
//!
//! The DFS search tree of Section IV-B varies one instruction choice at a
//! time, so sibling candidates share a *prefix* of choices: the same MMA
//! atom and the same copy plan for most edges. The reference path re-unifies
//! shared-memory constraints and re-selects swizzles from scratch for every
//! candidate; this module instead treats each selection as a path through a
//! prefix tree, carrying per-shared-tensor constraint state down the path
//! (each edge unifies only the constraint of the newly decided copy), and
//! memoizes the expensive per-tensor finishing step (materialization +
//! swizzle selection) keyed by the choices of exactly the copies touching
//! the tensor — a sibling whose differing suffix does not touch a tensor
//! reuses its finished layout outright. This is the same trick BDD packages
//! use with apply-caches over shared subgraphs.
//!
//! ## Data layout
//!
//! The tree is not a tree of owned maps. Shared tensors are interned to
//! dense slots by a [`TensorSlotInterner`], so per-node constraint state is
//! a flat `Vec<ConstraintSlot>` indexed by slot; the states live in an
//! **arena** of reusable rows, and the walk's stack holds `u32` row indices
//! instead of owned nodes. An edge whose copy touches no shared tensor
//! pushes its parent's row index (zero cost); a stateful edge clones its
//! parent's row into the next arena slot, reusing the allocations of rows
//! abandoned by earlier backtracking (allocation order = traversal order).
//! Constraint conflicts are carried as the `Copy`
//! [`ConstraintError`] code — the `String` reason
//! only materializes at the API boundary.
//!
//! The results are bit-identical to the reference path: the same constraints
//! are unified in the same (program) order and the same finishing code runs
//! on cache misses. The equivalence is cross-checked by
//! `tests/incremental_vs_reference.rs` and the randomized kernel sweep in
//! `hexcute-core`.
//!
//! ## The parallel subtree walk
//!
//! On many-core machines the walk itself is parallelized: the selections are
//! split at a configurable depth (see
//! [`crate::SynthesisOptions::parallel_subtree_depth`]) into independent
//! subtrees — selections sharing their first `depth` choices form one
//! subtree — and the subtrees are evaluated on the persistent worker pool of
//! `hexcute-parallel`. The per-tensor finishing memo is a sharded concurrent
//! map shared across all workers, and every cached value is a pure function
//! of its key, so subtree results merged back in enumeration order are
//! **bit-for-bit identical** to the serial walk (and to the re-evaluating
//! reference) at any worker count. The preferred selection is finished
//! first, serially, so the memo is warm before the fan-out and concurrent
//! subtrees rarely recompute a layout redundantly.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use hexcute_arch::DType;
use hexcute_ir::{OpKind, TensorId};
use hexcute_layout::{Layout, SwizzledLayout};
use hexcute_parallel::cache::{CacheStats, ShardedMap};
use hexcute_parallel::cancel::{CancelReason, CancelToken};

use crate::choice::{Candidate, CopyChoice};
use crate::engine::{degrade_to_scalar, CopyPlan, Synthesizer, TvBase};
use crate::error::SynthesisError;
use crate::hooks;
use crate::smem::{
    copy_constraint, materialize_and_swizzle, unify_touching, ConstraintError, LayoutConstraint,
};

/// Sentinel for "tensor not interned" in the sparse index.
const NO_SLOT: u32 = u32::MAX;

/// Interns a set of [`TensorId`]s to dense `u32` slots, so per-tensor state
/// can live in flat vectors indexed by slot instead of ordered maps keyed by
/// id. Slot order is insertion order; lookups in both directions are O(1)
/// (ids are dense per program, so the reverse index is a plain vector).
#[derive(Debug, Clone, Default)]
pub struct TensorSlotInterner {
    /// `slot -> tensor`, in insertion order.
    tensors: Vec<TensorId>,
    /// `tensor.index() -> slot`, [`NO_SLOT`] when not interned.
    slots: Vec<u32>,
}

impl TensorSlotInterner {
    /// Interns the tensors in iteration order (duplicates keep their first
    /// slot).
    pub fn new(tensors: impl IntoIterator<Item = TensorId>) -> Self {
        let mut interner = TensorSlotInterner::default();
        for tensor in tensors {
            interner.intern(tensor);
        }
        interner
    }

    /// The slot of `tensor`, interning it if new.
    pub fn intern(&mut self, tensor: TensorId) -> u32 {
        if let Some(slot) = self.slot(tensor) {
            return slot;
        }
        let slot = u32::try_from(self.tensors.len()).expect("fewer than 2^32 tensors");
        if tensor.index() >= self.slots.len() {
            self.slots.resize(tensor.index() + 1, NO_SLOT);
        }
        self.slots[tensor.index()] = slot;
        self.tensors.push(tensor);
        slot
    }

    /// The slot of `tensor`, if interned.
    pub fn slot(&self, tensor: TensorId) -> Option<u32> {
        match self.slots.get(tensor.index()) {
            Some(&slot) if slot != NO_SLOT => Some(slot),
            _ => None,
        }
    }

    /// The tensor occupying `slot`.
    ///
    /// # Panics
    ///
    /// Panics when `slot` was never handed out.
    pub fn tensor(&self, slot: u32) -> TensorId {
        self.tensors[slot as usize]
    }

    /// Number of interned tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether no tensor is interned.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// The interned tensors in slot order.
    pub fn tensors(&self) -> &[TensorId] {
        &self.tensors
    }
}

/// Per-tensor constraint state of one tree node: the unified constraint, or
/// the first unification conflict encountered along the path (which sends
/// every candidate below the node to the scalar fallback). `Copy` error
/// codes keep cloning a row allocation-free on the error side.
type ConstraintSlot = Result<LayoutConstraint, ConstraintError>;

/// Counters exposing how much work the prefix sharing saved and how the
/// parallel walk split it. Used by tests to assert that sharing actually
/// happens and reported by the `repro_*` binaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// Tree edges expanded (per-copy constraint unifications performed).
    pub nodes_expanded: usize,
    /// Per-tensor finishing computations (materialize + swizzle selection).
    pub tensor_layouts_computed: usize,
    /// Per-tensor finishing results served from the prefix cache.
    pub tensor_layout_hits: usize,
    /// Hit/miss/eviction counters of the shared finished-layout memo (the
    /// map-level view of the two counters above; under the parallel walk the
    /// map may see slightly more misses than `tensor_layouts_computed` when
    /// concurrent subtrees race on one key).
    pub finished_cache: CacheStats,
    /// Independent subtrees the walk was split into (1 = serial walk).
    pub subtrees: usize,
    /// Worker threads the walk used (1 = serial walk).
    pub workers: usize,
    /// Admissible completion bounds evaluated by the pruned walk (group
    /// prefixes, individual leaves and beam frontiers). Zero for the
    /// exhaustive walks.
    pub bound_evaluations: usize,
    /// Subtree groups cut whole because their prefix bound could not beat
    /// the incumbent. Depends on incumbent timing: **not** deterministic
    /// across worker counts (the winner is).
    pub subtrees_cut: usize,
    /// Selections skipped by pruning — members of cut groups plus
    /// individually cut leaves. Timing-dependent like `subtrees_cut`.
    pub selections_pruned: usize,
    /// Offers that actually lowered the shared incumbent score.
    pub incumbent_updates: usize,
    /// Leaves the pruned walk finished and exactly scored (the quantity the
    /// `repro_prune` bench compares against the exhaustive candidate count).
    pub candidates_scored: usize,
}

/// The shared per-tensor finishing memo: finished shared-memory layouts (or
/// the unification/materialization error code) keyed by the tensor and the
/// fingerprint of the copy choices touching it. Values are pure functions of
/// the key, which is what makes sharing it across subtree workers safe *and*
/// deterministic.
type FinishedMemo = ShardedMap<(TensorId, u64), Result<SwizzledLayout, ConstraintError>>;

/// The state of one incremental search: the current path through the prefix
/// tree plus the cross-path memo of finished per-tensor layouts.
struct PrefixSearch<'s, 'a> {
    synth: &'s Synthesizer<'a>,
    plans: &'s [CopyPlan],
    /// Shared tensors interned to dense slots, in `program.shared_tensors()`
    /// order (the order the reference path processes them in).
    interner: TensorSlotInterner,
    /// Tile shape and dtype per slot.
    info: Vec<(Vec<usize>, DType)>,
    /// Plan indices (in plan = program order) touching each slot.
    touch: Vec<Vec<u32>>,
    /// Slots touched by each plan.
    plan_touch: Vec<Vec<u32>>,
    /// Arena of constraint-state rows; `arena[..arena_len]` are live, rows
    /// beyond keep their allocations for reuse after backtracking.
    arena: Vec<Vec<ConstraintSlot>>,
    arena_len: usize,
    /// `stack[d]` is the arena row holding the state after the first `d`
    /// choices of `path`. Stateless edges repeat their parent's row, so the
    /// indices are non-decreasing along the stack.
    stack: Vec<u32>,
    path: Vec<usize>,
    /// Finished per-tensor layouts keyed by the choices of the copies
    /// touching the tensor; shared across every subtree worker of one
    /// search.
    finished: &'s FinishedMemo,
    /// Wall-clock cancellation flag, polled once per tree row (each
    /// [`PrefixSearch::extend`] is one row). `None` runs uninterruptible.
    cancel: Option<&'s CancelToken>,
    stats: PrefixStats,
}

impl<'s, 'a> PrefixSearch<'s, 'a> {
    fn new(
        synth: &'s Synthesizer<'a>,
        plans: &'s [CopyPlan],
        finished: &'s FinishedMemo,
        cancel: Option<&'s CancelToken>,
    ) -> Self {
        let program = synth.program();
        let interner = TensorSlotInterner::new(program.shared_tensors());
        let mut info = Vec::with_capacity(interner.len());
        for &tensor in interner.tensors() {
            let decl = program.tensor(tensor);
            info.push((decl.tile_shape_2d(), decl.dtype));
        }
        let mut touch: Vec<Vec<u32>> = vec![Vec::new(); interner.len()];
        let mut plan_touch: Vec<Vec<u32>> = vec![Vec::new(); plans.len()];
        for (d, plan) in plans.iter().enumerate() {
            let OpKind::Copy { src, dst } = program.op(plan.op).kind else {
                continue;
            };
            for tensor in [src, dst] {
                let Some(slot) = interner.slot(tensor) else {
                    continue;
                };
                if !plan_touch[d].contains(&slot) {
                    plan_touch[d].push(slot);
                    touch[slot as usize].push(d as u32);
                }
            }
        }
        let root: Vec<ConstraintSlot> = info
            .iter()
            .map(|(tile, _)| Ok(LayoutConstraint::unconstrained(tile)))
            .collect();
        PrefixSearch {
            synth,
            plans,
            interner,
            info,
            touch,
            plan_touch,
            arena: vec![root],
            arena_len: 1,
            stack: vec![0],
            path: Vec::new(),
            finished,
            cancel,
            stats: PrefixStats::default(),
        }
    }

    /// Repositions the walk at the leaf for `sel`, reusing the nodes of the
    /// longest prefix shared with the previous path and expanding only the
    /// differing suffix. Arena rows abandoned by the backtrack keep their
    /// allocations and are overwritten by the new branch.
    ///
    /// The cancel token (when carried) is polled once per expanded row, so a
    /// deadline or watchdog cancel aborts the walk within one row of work.
    fn walk_to(&mut self, sel: &[usize]) -> Result<(), CancelReason> {
        let common = self
            .path
            .iter()
            .zip(sel.iter())
            .take_while(|(a, b)| a == b)
            .count();
        self.path.truncate(common);
        self.stack.truncate(common + 1);
        // Row indices are non-decreasing along the stack, so everything past
        // the kept top is unreachable from the new branch.
        self.arena_len = self.stack[common] as usize + 1;
        for (depth, &alternative) in sel.iter().enumerate().skip(common) {
            if let Some(reason) = hooks::poll_cancelled(self.cancel) {
                return Err(reason);
            }
            self.extend(depth, alternative);
        }
        Ok(())
    }

    /// The arena row holding the constraint state at the current end of the
    /// path.
    fn current_row(&self) -> u32 {
        *self.stack.last().expect("the root is always on the stack")
    }

    /// Clones the parent row into the next arena slot (reusing a spare row's
    /// allocations when the walk backtracked past it) and returns its index.
    fn push_row_from(&mut self, parent: u32) -> u32 {
        let idx = self.arena_len;
        if idx < self.arena.len() {
            let (live, spare) = self.arena.split_at_mut(idx);
            spare[0].clone_from(&live[parent as usize]);
        } else {
            let row = self.arena[parent as usize].clone();
            self.arena.push(row);
        }
        self.arena_len += 1;
        u32::try_from(idx).expect("fewer than 2^32 tree rows")
    }

    /// Pushes one choice: unifies the chosen copy's constraint into the
    /// state of every shared tensor the copy touches. Choices touching no
    /// shared tensor repeat their parent's row (the ancestor state applies
    /// unchanged — edges for register/global copies cost nothing).
    fn extend(&mut self, depth: usize, alternative: usize) {
        let plan = &self.plans[depth];
        let parent = self.current_row();
        let row = if self.plan_touch[depth].is_empty() {
            parent
        } else {
            self.stats.nodes_expanded += 1;
            let row = self.push_row_from(parent);
            // Mirror the clamp `materialize_candidate` applies to the
            // alternative index.
            let (atom, elems) = &plan.alternatives[alternative.min(plan.alternatives.len() - 1)];
            for &slot in &self.plan_touch[depth] {
                let (tile, dtype) = &self.info[slot as usize];
                let entry = &mut self.arena[row as usize][slot as usize];
                if let Ok(current) = entry {
                    let c = copy_constraint(atom, plan.vector_dim, *elems, tile, *dtype);
                    *entry = current.unify(&c);
                }
            }
            row
        };
        self.stack.push(row);
        self.path.push(alternative);
    }

    /// Finishes the candidate at the current leaf: attaches memoized
    /// shared-memory layouts, falling back to all-scalar copies when the
    /// constraints conflict (and dropping the candidate when even the
    /// fallback is unsatisfiable) — exactly like the reference path.
    fn finish_leaf(&mut self, base: &TvBase, sel: &[usize]) -> Option<Candidate> {
        let mut candidate = self.synth.materialize_candidate(base, self.plans, sel);
        let leaf = self.current_row();
        if self.attach_smem(&mut candidate, Some(leaf)).is_ok() {
            return Some(candidate);
        }
        // Degrade every shared-memory copy to its scalar alternative and
        // retry once (Section V: "the compiler falls back to scalar
        // instructions"). The degraded choice set is the same for every
        // failing sibling, so its per-tensor layouts are computed once.
        degrade_to_scalar(self.plans, &mut candidate);
        if self.attach_smem(&mut candidate, None).is_ok() {
            candidate
                .notes
                .push("fell back to scalar copies for shared memory".to_string());
            return Some(candidate);
        }
        None
    }

    /// Fingerprint of the copy choices touching the tensor in `slot` —
    /// exactly the inputs `copy_constraint` and the swizzle scoring read
    /// (the per-thread coverage is plan-constant, so the op identity covers
    /// it). Walks the precomputed per-slot plan indices and hashes the
    /// choices in place — no temporary `Vec<&CopyChoice>` per tensor per
    /// leaf.
    fn touching_fingerprint(&self, candidate: &Candidate, slot: u32) -> u64 {
        let mut hasher = DefaultHasher::new();
        for &pi in &self.touch[slot as usize] {
            let choice = &candidate.copy_choices[&self.plans[pi as usize].op];
            choice.atom.name.hash(&mut hasher);
            choice.elements_per_thread.hash(&mut hasher);
            choice.vector_dim.hash(&mut hasher);
        }
        hasher.finish()
    }

    /// The touching copy choices of `slot`, materialized only on memo misses
    /// (the finishing code needs the actual slice).
    fn touching_choices_of<'c>(&self, candidate: &'c Candidate, slot: u32) -> Vec<&'c CopyChoice> {
        self.touch[slot as usize]
            .iter()
            .map(|&pi| &candidate.copy_choices[&self.plans[pi as usize].op])
            .collect()
    }

    /// Attaches a synthesized layout for every shared tensor of the program
    /// to `candidate`, reusing memoized results when the choices of the
    /// copies touching a tensor were seen before. `leaf` is the arena row
    /// carrying the prefix-unified constraints; `None` (the degraded
    /// fallback) re-unifies from the candidate's actual choices on a memo
    /// miss.
    fn attach_smem(&mut self, candidate: &mut Candidate, leaf: Option<u32>) -> Result<(), ()> {
        let options = self.synth.options();
        for slot in 0..self.interner.len() as u32 {
            let tensor = self.interner.tensor(slot);
            if options.force_row_major_smem {
                let (tile, _) = &self.info[slot as usize];
                candidate
                    .smem_layouts
                    .insert(tensor, SwizzledLayout::unswizzled(Layout::row_major(tile)));
                continue;
            }
            let key = (tensor, self.touching_fingerprint(candidate, slot));
            let result = match self.finished.get(&key) {
                Some(hit) => {
                    self.stats.tensor_layout_hits += 1;
                    hit
                }
                None => {
                    self.stats.tensor_layouts_computed += 1;
                    let (tile, dtype) = &self.info[slot as usize];
                    let touching = self.touching_choices_of(candidate, slot);
                    let constraint = match leaf {
                        Some(row) => self.arena[row as usize][slot as usize].clone(),
                        None => unify_touching(tile, &touching, *dtype),
                    };
                    let computed = constraint.and_then(|c| {
                        materialize_and_swizzle(
                            &c,
                            &touching,
                            tile,
                            dtype.bits(),
                            self.synth.arch(),
                            options,
                        )
                    });
                    // Concurrent subtrees may race here; `computed` is a
                    // pure function of `key`, so either insert wins with a
                    // bit-identical value.
                    self.finished.insert(key, computed.clone());
                    computed
                }
            };
            match result {
                Ok(layout) => {
                    candidate.smem_layouts.insert(tensor, layout);
                }
                Err(_) => return Err(()),
            }
        }
        Ok(())
    }
}

/// The subtree depth the parallel walk uses: the explicit option when set,
/// otherwise the smallest depth whose prefix split yields at least
/// `4 * workers` subtrees (so the pool has slack to balance uneven subtree
/// costs), falling back to the full selection length — every leaf its own
/// subtree, relying on the shared memo for cross-leaf reuse. Deterministic,
/// but the *output* never depends on it: any split merges back to the same
/// candidate list.
fn resolve_subtree_depth(
    explicit: Option<usize>,
    workers: usize,
    selections: &[Vec<usize>],
) -> usize {
    if let Some(depth) = explicit {
        return depth;
    }
    let max_len = selections.iter().map(Vec::len).max().unwrap_or(0);
    let target = workers.saturating_mul(4);
    for depth in 1..=max_len {
        let distinct: std::collections::HashSet<&[usize]> = selections
            .iter()
            .map(|sel| &sel[..depth.min(sel.len())])
            .collect();
        if distinct.len() >= target {
            return depth;
        }
    }
    max_len
}

/// Groups selection indices by their depth-`depth` choice prefix, preserving
/// the enumeration order of first occurrence (and of members within each
/// group).
fn subtree_groups(selections: &[Vec<usize>], depth: usize) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut index_of: HashMap<&[usize], usize> = HashMap::new();
    for (i, sel) in selections.iter().enumerate() {
        let key = &sel[..depth.min(sel.len())];
        match index_of.get(key) {
            Some(&g) => groups[g].push(i),
            None => {
                index_of.insert(key, groups.len());
                groups.push(vec![i]);
            }
        }
    }
    groups
}

impl<'a> Synthesizer<'a> {
    /// Evaluates the selections through the shared-prefix search, returning
    /// at most `max` finished candidates in enumeration order, plus the
    /// sharing counters.
    ///
    /// Dispatches between the serial walk (the cross-checked reference:
    /// one worker, `parallel_subtree_depth = 0`, or a trivial selection
    /// list) and the parallel subtree walk. Both produce bit-identical
    /// candidate lists; only the counters differ.
    ///
    /// `token` (when carried) is polled cooperatively at row granularity;
    /// a tripped token aborts with [`SynthesisError::Cancelled`] — never a
    /// partial candidate list.
    pub(crate) fn evaluate_incremental_with_stats(
        &self,
        base: &TvBase,
        plans: &[CopyPlan],
        selections: &[Vec<usize>],
        max: usize,
        token: Option<&CancelToken>,
    ) -> Result<(Vec<Candidate>, PrefixStats), SynthesisError> {
        let workers = self
            .options()
            .parallel_workers
            .unwrap_or_else(hexcute_parallel::worker_count)
            .max(1);
        let depth =
            resolve_subtree_depth(self.options().parallel_subtree_depth, workers, selections);
        let finished_memo = FinishedMemo::new();
        if workers <= 1 || depth == 0 || selections.len() <= 2 {
            return self.walk_serial(base, plans, selections, max, &finished_memo, token);
        }
        self.walk_parallel(
            base,
            plans,
            selections,
            max,
            depth,
            workers,
            &finished_memo,
            token,
        )
    }

    /// The serial incremental walk (the PR 2 behaviour).
    fn walk_serial(
        &self,
        base: &TvBase,
        plans: &[CopyPlan],
        selections: &[Vec<usize>],
        max: usize,
        finished_memo: &FinishedMemo,
        token: Option<&CancelToken>,
    ) -> Result<(Vec<Candidate>, PrefixStats), SynthesisError> {
        let mut search = PrefixSearch::new(self, plans, finished_memo, token);
        let mut finished = Vec::new();
        for sel in selections {
            if finished.len() >= max {
                break;
            }
            if let Some(reason) = hooks::injected_stall(token) {
                return Err(SynthesisError::Cancelled(reason));
            }
            search.walk_to(sel).map_err(SynthesisError::Cancelled)?;
            if let Some(candidate) = search.finish_leaf(base, sel) {
                finished.push(candidate);
            }
        }
        let mut stats = search.stats;
        stats.subtrees = 1;
        stats.workers = 1;
        stats.finished_cache = finished_memo.stats();
        Ok((finished, stats))
    }

    /// The parallel subtree walk: the first (preferred) selection is
    /// finished serially to warm the shared memo, the remaining selections
    /// are split into depth-`depth` prefix subtrees evaluated on the worker
    /// pool, and the per-selection results are merged back in enumeration
    /// order before applying the `max` cap — so the output is bit-for-bit
    /// the serial walk's at any worker count. (Like the parallel reference
    /// path, every selection is finished even when `max` would have stopped
    /// the serial walk early; with the default `max_candidates` no discarded
    /// work occurs.)
    #[allow(clippy::too_many_arguments)]
    fn walk_parallel(
        &self,
        base: &TvBase,
        plans: &[CopyPlan],
        selections: &[Vec<usize>],
        max: usize,
        depth: usize,
        workers: usize,
        finished_memo: &FinishedMemo,
        token: Option<&CancelToken>,
    ) -> Result<(Vec<Candidate>, PrefixStats), SynthesisError> {
        let mut slots: Vec<Option<Candidate>> = vec![None; selections.len()];
        let mut stats = PrefixStats::default();

        // Warm the memo with the preferred selection: it carries the common
        // choices, so concurrent subtrees mostly hit instead of racing.
        {
            let mut search = PrefixSearch::new(self, plans, finished_memo, token);
            if let Some(reason) = hooks::injected_stall(token) {
                return Err(SynthesisError::Cancelled(reason));
            }
            search
                .walk_to(&selections[0])
                .map_err(SynthesisError::Cancelled)?;
            slots[0] = search.finish_leaf(base, &selections[0]);
            stats = merge_stats(&stats, &search.stats);
        }

        let groups = subtree_groups(&selections[1..], depth);
        let subtrees = groups.len() + 1;
        type GroupResult = Result<(Vec<(usize, Option<Candidate>)>, PrefixStats), CancelReason>;
        let eval_group = |group: Vec<usize>| -> GroupResult {
            let mut search = PrefixSearch::new(self, plans, finished_memo, token);
            let mut out = Vec::with_capacity(group.len());
            for idx in group {
                let sel = &selections[idx + 1];
                if let Some(reason) = hooks::injected_stall(token) {
                    return Err(reason);
                }
                search.walk_to(sel)?;
                out.push((idx + 1, search.finish_leaf(base, sel)));
            }
            Ok((out, search.stats))
        };
        // A carried token additionally cancels at pool-job granularity:
        // subtrees not yet claimed when the token trips are never started
        // (and are counted by `PoolStats::cancelled`).
        let evaluated = match token {
            Some(tok) => hexcute_parallel::par_map_cancellable(groups, eval_group, workers, tok)
                .ok_or_else(|| {
                    SynthesisError::Cancelled(tok.reason().unwrap_or(CancelReason::Shutdown))
                })?,
            None => hexcute_parallel::par_map_with_workers(groups, eval_group, workers),
        };
        for group_result in evaluated {
            let (group, group_stats) = group_result.map_err(SynthesisError::Cancelled)?;
            stats = merge_stats(&stats, &group_stats);
            for (idx, candidate) in group {
                slots[idx] = candidate;
            }
        }
        stats.subtrees = subtrees;
        stats.workers = workers;
        stats.finished_cache = finished_memo.stats();
        let finished: Vec<Candidate> = slots.into_iter().flatten().take(max).collect();
        Ok((finished, stats))
    }

    /// The branch-and-bound walk behind [`Synthesizer::synthesize_pruned`]:
    /// evaluates the selections through the shared-prefix search, but keeps
    /// a shared incumbent `(score, index)` pair and cuts every subtree
    /// group (and individual leaf) whose admissible completion bound cannot
    /// beat it lexicographically. Returns the winner as `(enumeration
    /// index, candidate, score)` plus the walk counters.
    ///
    /// ## Why the winner is deterministic under a racing incumbent
    ///
    /// The incumbent only ever holds exact `(score, index)` pairs of
    /// finished candidates, so at any instant it is lexicographically ≥ the
    /// global minimum pair. A subtree containing the global minimizer has a
    /// bound ≤ its score and a first index ≤ its index, so its `(bound,
    /// first index)` pair is ≤ the incumbent — and pruning requires the
    /// pair to be **strictly greater** (score under [`f64::total_cmp`],
    /// then index). Every global minimizer therefore survives every
    /// interleaving; pruning on index breaks score *ties* exactly the way
    /// the final reduction does. Survivors are reduced to the lexicographic
    /// minimum of `(score, enumeration index)`, which reproduces the
    /// exhaustive argmin's first-minimal tie-break exactly. Only the
    /// *counters* (`subtrees_cut`, `selections_pruned`,
    /// `bound_evaluations`, `incumbent_updates`, `candidates_scored`)
    /// depend on timing.
    pub(crate) fn evaluate_pruned<B: crate::SearchBounder + ?Sized>(
        &self,
        base: &TvBase,
        plans: &[CopyPlan],
        selections: &[Vec<usize>],
        bounder: &B,
        token: Option<&CancelToken>,
    ) -> PrunedWalk {
        type Best = (f64, usize, Candidate);
        let mut stats = PrefixStats::default();
        if selections.is_empty() {
            stats.subtrees = 1;
            stats.workers = 1;
            return Ok((None, stats));
        }
        let workers = self
            .options()
            .parallel_workers
            .unwrap_or_else(hexcute_parallel::worker_count)
            .max(1);
        let depth =
            resolve_subtree_depth(self.options().parallel_subtree_depth, workers, selections);
        let finished_memo = FinishedMemo::new();
        let incumbent = hexcute_parallel::incumbent::IncumbentCell::new();

        // Seed: finish and score the preferred selection serially. This
        // warms the shared memo (like the exhaustive parallel walk) and —
        // because the preferred selection usually wins — gives every group
        // a near-final incumbent before the fan-out.
        let mut best: Option<Best> = None;
        {
            let mut search = PrefixSearch::new(self, plans, &finished_memo, token);
            if let Some(reason) = hooks::injected_stall(token) {
                return Err(SynthesisError::Cancelled(reason));
            }
            search
                .walk_to(&selections[0])
                .map_err(SynthesisError::Cancelled)?;
            if let Some(candidate) = search.finish_leaf(base, &selections[0]) {
                let score = bounder.exact_score(&candidate);
                search.stats.candidates_scored += 1;
                if incumbent.offer(score, 0) {
                    search.stats.incumbent_updates += 1;
                }
                best = Some((score, 0, candidate));
            }
            stats = merge_stats(&stats, &search.stats);
        }

        // Ops still open below the split depth: the prefix bound of a group
        // leaves exactly these undecided.
        let undecided: Vec<hexcute_ir::OpId> = plans.iter().skip(depth).map(|p| p.op).collect();
        // Cut when `(bound, first index)` is lexicographically above the
        // incumbent pair: a strictly larger bound can never win, and an
        // *equal* bound from a later index can only tie on score and then
        // loses the first-minimal tie-break.
        let prunes = |bound: f64, first_index: usize| {
            let (inc_score, inc_index) = incumbent.get();
            match bound.total_cmp(&inc_score) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => first_index > inc_index,
                std::cmp::Ordering::Less => false,
            }
        };
        type GroupResult = Result<(Option<(f64, usize, Candidate)>, PrefixStats), CancelReason>;
        let eval_group = |group: Vec<usize>| -> GroupResult {
            let mut search = PrefixSearch::new(self, plans, &finished_memo, token);
            let mut extra = PrefixStats::default();
            // Prefix bound: one probe for the whole group (its members share
            // the first `depth` choices, which is all the bound reads — the
            // suffix ops are passed as undecided).
            if group.len() > 1 && !undecided.is_empty() {
                if let Some(reason) = hooks::poll_cancelled(token) {
                    return Err(reason);
                }
                let probe = self.materialize_candidate(base, plans, &selections[group[0] + 1]);
                extra.bound_evaluations += 1;
                if prunes(bounder.completion_bound(&probe, &undecided), group[0] + 1) {
                    extra.subtrees_cut += 1;
                    extra.selections_pruned += group.len();
                    return Ok((None, extra));
                }
            }
            let mut local: Option<Best> = None;
            for idx in group {
                let sel = &selections[idx + 1];
                if let Some(reason) = hooks::injected_stall(token) {
                    return Err(reason);
                }
                if let Some(reason) = hooks::poll_cancelled(token) {
                    return Err(reason);
                }
                // Leaf bound: fully decided. Admissible for both ways the
                // leaf can finish — as materialized, or through the
                // all-plans scalar degradation — so a cut leaf cannot hide
                // a winner.
                let candidate = self.materialize_candidate(base, plans, sel);
                extra.bound_evaluations += 1;
                if prunes(bounder.completion_bound(&candidate, &[]), idx + 1) {
                    extra.selections_pruned += 1;
                    continue;
                }
                search.walk_to(sel)?;
                if let Some(finished) = search.finish_leaf(base, sel) {
                    let score = bounder.exact_score(&finished);
                    extra.candidates_scored += 1;
                    if incumbent.offer(score, idx + 1) {
                        extra.incumbent_updates += 1;
                    }
                    let better = match &local {
                        None => true,
                        Some((s, i, _)) => match score.total_cmp(s) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Equal => idx + 1 < *i,
                            std::cmp::Ordering::Greater => false,
                        },
                    };
                    if better {
                        local = Some((score, idx + 1, finished));
                    }
                }
            }
            Ok((local, merge_stats(&extra, &search.stats)))
        };

        let groups = subtree_groups(&selections[1..], depth);
        let subtrees = groups.len() + 1;
        let serial = workers <= 1 || depth == 0 || selections.len() <= 2;
        let evaluated: Vec<GroupResult> = if serial {
            groups.into_iter().map(eval_group).collect()
        } else {
            match token {
                Some(tok) => {
                    hexcute_parallel::par_map_cancellable(groups, eval_group, workers, tok)
                        .ok_or_else(|| {
                            SynthesisError::Cancelled(
                                tok.reason().unwrap_or(CancelReason::Shutdown),
                            )
                        })?
                }
                None => hexcute_parallel::par_map_with_workers(groups, eval_group, workers),
            }
        };
        for group_result in evaluated {
            let (local, group_stats) = group_result.map_err(SynthesisError::Cancelled)?;
            stats = merge_stats(&stats, &group_stats);
            if let Some((score, idx, candidate)) = local {
                let better = match &best {
                    None => true,
                    Some((s, i, _)) => match score.total_cmp(s) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => idx < *i,
                        std::cmp::Ordering::Greater => false,
                    },
                };
                if better {
                    best = Some((score, idx, candidate));
                }
            }
        }
        stats.subtrees = subtrees;
        stats.workers = if serial { 1 } else { workers };
        stats.finished_cache = finished_memo.stats();
        Ok((
            best.map(|(score, idx, candidate)| (idx, candidate, score)),
            stats,
        ))
    }
}

/// Result of the pruned walk: the winning `(enumeration index, candidate,
/// score)` triple, when any leaf finished, plus the walk counters.
type PrunedWalk = Result<(Option<(usize, Candidate, f64)>, PrefixStats), SynthesisError>;

/// Sums the per-walk counters (the cache snapshot is set once at the end).
fn merge_stats(a: &PrefixStats, b: &PrefixStats) -> PrefixStats {
    PrefixStats {
        nodes_expanded: a.nodes_expanded + b.nodes_expanded,
        tensor_layouts_computed: a.tensor_layouts_computed + b.tensor_layouts_computed,
        tensor_layout_hits: a.tensor_layout_hits + b.tensor_layout_hits,
        finished_cache: a.finished_cache,
        subtrees: a.subtrees,
        workers: a.workers,
        bound_evaluations: a.bound_evaluations + b.bound_evaluations,
        subtrees_cut: a.subtrees_cut + b.subtrees_cut,
        selections_pruned: a.selections_pruned + b.selections_pruned,
        incumbent_updates: a.incumbent_updates + b.incumbent_updates,
        candidates_scored: a.candidates_scored + b.candidates_scored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::DType;
    use hexcute_ir::KernelBuilder;
    use hexcute_layout::Layout as IrLayout;

    /// Builds a small program just to obtain real (dense) tensor ids.
    fn some_tensor_ids(n: usize) -> Vec<TensorId> {
        let mut kb = KernelBuilder::new("interner_fixture", 128);
        (0..n)
            .map(|i| {
                kb.global_view(
                    format!("t{i}"),
                    DType::F16,
                    IrLayout::row_major(&[8, 8]),
                    &[8, 8],
                )
            })
            .collect()
    }

    #[test]
    fn interner_assigns_dense_slots_in_insertion_order() {
        let ids = some_tensor_ids(4);
        // Intern out of order, with a duplicate.
        let interner = TensorSlotInterner::new([ids[2], ids[0], ids[2], ids[3]]);
        assert_eq!(interner.len(), 3);
        assert_eq!(interner.slot(ids[2]), Some(0));
        assert_eq!(interner.slot(ids[0]), Some(1));
        assert_eq!(interner.slot(ids[3]), Some(2));
        assert_eq!(interner.slot(ids[1]), None, "never interned");
        // Both directions agree.
        for slot in 0..interner.len() as u32 {
            assert_eq!(interner.slot(interner.tensor(slot)), Some(slot));
        }
        assert_eq!(interner.tensors(), &[ids[2], ids[0], ids[3]]);
    }

    #[test]
    fn interner_is_idempotent_and_growable() {
        let ids = some_tensor_ids(3);
        let mut interner = TensorSlotInterner::default();
        assert!(interner.is_empty());
        let s0 = interner.intern(ids[1]);
        assert_eq!(interner.intern(ids[1]), s0, "re-interning keeps the slot");
        let s1 = interner.intern(ids[0]);
        assert_ne!(s0, s1);
        assert_eq!(interner.len(), 2);
    }
}
