//! Candidate programs: the output of layout synthesis.
//!
//! A [`Candidate`] assigns every register tensor a thread-value layout, every
//! shared-memory tensor a (possibly swizzled) memory layout, and every
//! operation a concrete collective instruction. The DFS search tree of
//! Section IV-B produces several candidates; the analytical cost model picks
//! the final one.

use std::collections::BTreeMap;
use std::fmt;

use hexcute_arch::{CopyAtom, MmaAtom};
use hexcute_ir::{OpId, Program, TensorId};
use hexcute_layout::{SwizzledLayout, TvLayout};

/// The instruction choice for a `copy` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyChoice {
    /// The selected copy instruction atom.
    pub atom: CopyAtom,
    /// Elements of the tensor's dtype moved per thread per invocation.
    pub elements_per_thread: usize,
    /// Number of collective invocations needed to move the whole tile once.
    pub invocations: usize,
    /// The tile dimension the per-thread vector runs along.
    pub vector_dim: usize,
    /// The per-thread coverage of the tile (which elements each thread
    /// touches), used for coalescing and bank-conflict analysis.
    pub coverage: TvLayout,
}

impl CopyChoice {
    /// Bytes moved per instruction per thread — the quantity reported in
    /// Table III and Table IV of the paper.
    pub fn bytes_per_thread_per_instruction(&self, dtype: hexcute_arch::DType) -> usize {
        dtype.bytes_for(self.elements_per_thread)
    }
}

/// The instruction choice for a `gemm` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct MmaChoice {
    /// The selected Tensor Core atom.
    pub atom: MmaAtom,
    /// Number of warp (or warp-group) tiles along M.
    pub unit_m: usize,
    /// Number of warp (or warp-group) tiles along N.
    pub unit_n: usize,
    /// Instruction invocations per warp (or warp group) to cover the tile.
    pub invocations: usize,
}

/// A register-layout conversion inserted to resolve a conflict between two
/// constraint-derived layouts (Section IV-B, "Conflict Handling").
#[derive(Debug, Clone, PartialEq)]
pub struct RearrangeFix {
    /// The tensor whose producer and consumer disagree on distribution.
    pub tensor: TensorId,
    /// The distribution produced upstream.
    pub producer: TvLayout,
    /// The distribution required downstream.
    pub consumer: TvLayout,
    /// Bytes exchanged through shared memory to convert.
    pub bytes: usize,
}

/// A fully synthesized candidate program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Candidate {
    /// Thread-value layouts of register tensors.
    pub tv_layouts: BTreeMap<TensorId, TvLayout>,
    /// Instruction choices for `copy` operations.
    pub copy_choices: BTreeMap<OpId, CopyChoice>,
    /// Instruction choices for `gemm` operations.
    pub mma_choices: BTreeMap<OpId, MmaChoice>,
    /// Per-thread widths (in elements) chosen for SIMT operations
    /// (`cast`, `elementwise`, `reduce`, `fill`).
    pub simt_widths: BTreeMap<OpId, usize>,
    /// Synthesized shared-memory layouts.
    pub smem_layouts: BTreeMap<TensorId, SwizzledLayout>,
    /// Register-layout conversions inserted by the compiler.
    pub rearranges: Vec<RearrangeFix>,
    /// Human-readable notes about fallbacks and heuristic decisions.
    pub notes: Vec<String>,
}

impl Candidate {
    /// A short per-operation summary (instruction + bytes per thread) used by
    /// the Table III / Table IV harnesses.
    pub fn instruction_summary(&self, program: &Program) -> Vec<(OpId, String, usize)> {
        let mut rows = Vec::new();
        for op in program.ops() {
            if let Some(choice) = self.copy_choices.get(&op.id) {
                let dtype = program.tensor(op.inputs()[0]).dtype;
                rows.push((
                    op.id,
                    choice.atom.name.clone(),
                    choice.bytes_per_thread_per_instruction(dtype),
                ));
            } else if let Some(choice) = self.mma_choices.get(&op.id) {
                rows.push((op.id, choice.atom.name.clone(), 0));
            }
        }
        rows
    }

    /// Total bytes exchanged by inserted rearranges.
    pub fn rearrange_bytes(&self) -> usize {
        self.rearranges.iter().map(|r| r.bytes).sum()
    }

    /// Whether any copy fell back to scalar instructions.
    pub fn uses_scalar_fallback(&self) -> bool {
        self.copy_choices
            .values()
            .any(|c| c.elements_per_thread <= 1)
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "candidate:")?;
        for (op, choice) in &self.copy_choices {
            writeln!(
                f,
                "  {op}: {} x{} ({} elems/thread)",
                choice.atom.name, choice.invocations, choice.elements_per_thread
            )?;
        }
        for (op, choice) in &self.mma_choices {
            writeln!(
                f,
                "  {op}: {} warps {}x{} x{}",
                choice.atom.name, choice.unit_m, choice.unit_n, choice.invocations
            )?;
        }
        for (tensor, layout) in &self.smem_layouts {
            writeln!(f, "  smem {tensor}: {layout}")?;
        }
        if !self.rearranges.is_empty() {
            writeln!(f, "  rearranges: {}", self.rearranges.len())?;
        }
        Ok(())
    }
}
