//! Cross-checks the incremental prefix-shared candidate evaluation against
//! the full per-candidate re-evaluation through the public API, mirroring
//! `crates/layout/tests/flat_vs_reference.rs`: both paths must produce
//! *identical* ordered candidate lists — layouts, instruction choices,
//! shared-memory layouts, notes — not merely equivalent ones.

use hexcute_arch::{DType, GpuArch};
use hexcute_ir::{KernelBuilder, Program};
use hexcute_layout::Layout;
use hexcute_synthesis::{Candidate, SynthesisOptions, Synthesizer};

fn synthesize_with(program: &Program, arch: &GpuArch, incremental: bool) -> Vec<Candidate> {
    let options = SynthesisOptions {
        incremental,
        ..SynthesisOptions::default()
    };
    Synthesizer::new(program, arch, options)
        .synthesize()
        .unwrap()
}

fn assert_paths_agree(program: &Program, arch: &GpuArch) {
    let reference = synthesize_with(program, arch, false);
    let incremental = synthesize_with(program, arch, true);
    assert_eq!(
        reference.len(),
        incremental.len(),
        "candidate counts diverged for {}",
        program.name
    );
    for (i, (r, f)) in reference.iter().zip(incremental.iter()).enumerate() {
        assert_eq!(r, f, "candidate {i} of {} diverged", program.name);
    }
}

fn staged_gemm(m: usize, n: usize, k: usize) -> Program {
    let mut kb = KernelBuilder::new("staged_gemm", 128);
    let ga = kb.global_view(
        "a",
        DType::F16,
        Layout::from_flat(&[m, k], &[k, 1]),
        &[m, k],
    );
    let gb = kb.global_view(
        "b",
        DType::F16,
        Layout::from_flat(&[n, k], &[k, 1]),
        &[n, k],
    );
    let gc = kb.global_view(
        "c",
        DType::F32,
        Layout::from_flat(&[m, n], &[n, 1]),
        &[m, n],
    );
    let sa = kb.shared_tensor("sa", DType::F16, &[m, k]);
    let sb = kb.shared_tensor("sb", DType::F16, &[n, k]);
    let ra = kb.register_tensor("ra", DType::F16, &[m, k]);
    let rb = kb.register_tensor("rb", DType::F16, &[n, k]);
    let rc = kb.register_tensor("rc", DType::F32, &[m, n]);
    kb.fill(rc, 0.0);
    kb.copy(ga, sa);
    kb.copy(gb, sb);
    kb.copy(sa, ra);
    kb.copy(sb, rb);
    kb.gemm(rc, ra, rb);
    kb.copy(rc, gc);
    kb.build().unwrap()
}

fn copy_roundtrip() -> Program {
    let mut kb = KernelBuilder::new("roundtrip", 128);
    let src = kb.global_view("src", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
    let dst = kb.global_view("dst", DType::F16, Layout::row_major(&[64, 64]), &[64, 64]);
    let stage = kb.shared_tensor("stage", DType::F16, &[64, 64]);
    let tile = kb.register_tensor("tile", DType::F16, &[64, 64]);
    kb.copy(src, stage);
    kb.copy(stage, tile);
    kb.copy(tile, dst);
    kb.build().unwrap()
}

#[test]
fn gemm_candidates_are_bit_identical() {
    for arch in [GpuArch::a100(), GpuArch::h100()] {
        assert_paths_agree(&staged_gemm(64, 64, 32), &arch);
        assert_paths_agree(&staged_gemm(128, 64, 64), &arch);
    }
}

#[test]
fn copy_roundtrip_candidates_are_bit_identical() {
    for arch in [GpuArch::a100(), GpuArch::h100()] {
        assert_paths_agree(&copy_roundtrip(), &arch);
    }
}

#[test]
fn ablation_option_sets_agree_too() {
    let program = staged_gemm(64, 64, 32);
    let arch = GpuArch::a100();
    for base in [
        SynthesisOptions::scalar_fallback(),
        SynthesisOptions::triton_smem_layout(),
        SynthesisOptions {
            disable_swizzles: true,
            ..SynthesisOptions::default()
        },
    ] {
        let reference = Synthesizer::new(
            &program,
            &arch,
            SynthesisOptions {
                incremental: false,
                ..base.clone()
            },
        )
        .synthesize()
        .unwrap();
        let incremental = Synthesizer::new(
            &program,
            &arch,
            SynthesisOptions {
                incremental: true,
                ..base
            },
        )
        .synthesize()
        .unwrap();
        assert_eq!(reference, incremental);
    }
}

/// The parallel subtree walk must be bit-for-bit identical to the serial
/// incremental walk (and therefore to the reference path, by the tests
/// above) for every worker count and split depth — candidate order, layouts,
/// instruction choices, notes.
#[test]
fn parallel_walk_is_bit_identical_across_worker_counts_and_depths() {
    let programs = [
        staged_gemm(64, 64, 32),
        staged_gemm(128, 64, 64),
        copy_roundtrip(),
    ];
    let arch = GpuArch::a100();
    for program in &programs {
        let serial = Synthesizer::new(
            program,
            &arch,
            SynthesisOptions {
                parallel_subtree_depth: Some(0),
                parallel_workers: Some(1),
                ..SynthesisOptions::default()
            },
        )
        .synthesize()
        .unwrap();
        for workers in [1usize, 2, 4, 8] {
            for depth in [None, Some(0), Some(1), Some(2), Some(usize::MAX)] {
                let parallel = Synthesizer::new(
                    program,
                    &arch,
                    SynthesisOptions {
                        parallel_subtree_depth: depth,
                        parallel_workers: Some(workers),
                        ..SynthesisOptions::default()
                    },
                )
                .synthesize()
                .unwrap();
                assert_eq!(
                    serial, parallel,
                    "{}: workers {workers} depth {depth:?} diverged from the serial walk",
                    program.name
                );
            }
        }
    }
}

/// The walk must actually split and run on multiple workers (not silently
/// fall back to serial), which the stats expose.
#[test]
fn parallel_walk_reports_subtrees_and_workers() {
    if !hexcute_synthesis::incremental_enabled() {
        // The reference-paths CI leg disables the incremental search
        // process-wide (`HEXCUTE_DISABLE_INCREMENTAL=1`); there is no walk
        // to introspect then.
        return;
    }
    let program = staged_gemm(64, 64, 32);
    let arch = GpuArch::a100();
    let (candidates, stats) = Synthesizer::new(
        &program,
        &arch,
        SynthesisOptions {
            parallel_workers: Some(4),
            ..SynthesisOptions::default()
        },
    )
    .synthesize_with_stats()
    .unwrap();
    let stats = stats.expect("incremental search reports stats");
    assert!(candidates.len() > 1);
    assert_eq!(stats.workers, 4);
    assert!(
        stats.subtrees > 1,
        "auto depth produced a single subtree: {stats:?}"
    );
    // Sharing still happens through the shared memo.
    assert!(stats.tensor_layout_hits > 0, "no sharing: {stats:?}");
    // Concurrent subtrees may race on a key (both compute, one insert wins),
    // so resident entries are bounded by — not necessarily equal to — the
    // number of finishing computations.
    assert!(stats.finished_cache.entries > 0);
    assert!(
        stats.finished_cache.entries <= stats.tensor_layouts_computed,
        "more memo entries than computations: {stats:?}"
    );

    // The explicit serial knobs keep the reference walk reachable.
    let (_, serial_stats) = Synthesizer::new(
        &program,
        &arch,
        SynthesisOptions {
            parallel_subtree_depth: Some(0),
            ..SynthesisOptions::default()
        },
    )
    .synthesize_with_stats()
    .unwrap();
    let serial_stats = serial_stats.unwrap();
    assert_eq!(serial_stats.subtrees, 1);
    assert_eq!(serial_stats.workers, 1);
}

#[test]
fn small_max_candidates_returns_the_same_preferred_candidate() {
    let program = staged_gemm(64, 64, 32);
    let arch = GpuArch::a100();
    let full = synthesize_with(&program, &arch, true);
    assert!(full.len() > 1);
    for incremental in [false, true] {
        let options = SynthesisOptions {
            max_candidates: 1,
            incremental,
            ..SynthesisOptions::default()
        };
        let capped = Synthesizer::new(&program, &arch, options)
            .synthesize()
            .unwrap();
        assert_eq!(capped.len(), 1);
        assert_eq!(capped[0], full[0]);
    }
}
