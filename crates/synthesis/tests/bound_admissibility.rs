//! Property test for the branch-and-bound admissibility contract
//! (`SearchBounder::completion_bound`): for any partial assignment, the
//! completion bound must never exceed the exact score of *any* finished
//! candidate that agrees with the assignment on its decided ops — including
//! the all-plans scalar-degraded candidate the feasibility fallback can
//! substitute for any leaf. Pruning is lossless if and only if this holds.

use hexcute_arch::GpuArch;
use hexcute_costmodel::{CompletionBounds, CostModel};
use hexcute_ir::Program;
use hexcute_kernels::attention::{mha_forward, AttentionConfig, AttentionShape};
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
use hexcute_kernels::quant_gemm::{w4a16_gemm, QuantGemmConfig, QuantGemmShape};
use hexcute_synthesis::{SearchBounder, SynthesisOptions, Synthesizer};
use proptest::prelude::*;

fn program_for(pick: usize) -> Program {
    match pick % 3 {
        0 => fp16_gemm(GemmShape::new(128, 128, 128), GemmConfig::default()).unwrap(),
        1 => w4a16_gemm(
            QuantGemmShape::new(16, 128, 256, 64),
            QuantGemmConfig::default(),
        )
        .unwrap(),
        _ => mha_forward(
            AttentionShape::forward(1, 2, 128, 64),
            AttentionConfig::default(),
        )
        .unwrap(),
    }
}

fn arch_for(pick: usize) -> GpuArch {
    if pick.is_multiple_of(2) {
        GpuArch::a100()
    } else {
        GpuArch::h100()
    }
}

/// Checks every (prefix depth × base candidate) cut of the search space of
/// one program: the bound of the partial assignment taking `base`'s choices
/// for the first `depth` plans must lower-bound every finished candidate
/// sharing those choices, and the all-degraded fallback candidate.
fn assert_admissible(
    program: &Program,
    arch: &GpuArch,
    base_pick: usize,
    depth_pick: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let synth = Synthesizer::new(program, arch, SynthesisOptions::default());
    let space = synth.search_space().unwrap();
    let pool = synth.synthesize().unwrap();
    prop_assert!(!pool.is_empty());

    let model = CostModel::new(arch);
    let mut bounder = CompletionBounds::new(&model, program);
    bounder.prepare(&space);

    let base = &pool[base_pick % pool.len()];
    let depth = depth_pick % (space.plans.len() + 1);
    let decided: Vec<_> = space.plans[..depth].iter().map(|p| p.op).collect();
    let undecided: Vec<_> = space.plans[depth..].iter().map(|p| p.op).collect();
    let bound = bounder.completion_bound(base, &undecided);
    prop_assert!(bound.is_finite(), "bound must be finite, got {bound}");

    // Every finished candidate agreeing with the prefix is a feasible
    // completion; none may score below the bound.
    for (i, candidate) in pool.iter().enumerate() {
        let agrees = decided
            .iter()
            .all(|op| candidate.copy_choices.get(op) == base.copy_choices.get(op));
        if !agrees {
            continue;
        }
        let score = bounder.exact_score(candidate);
        prop_assert!(
            bound <= score,
            "bound {bound} exceeds score {score} of candidate {i} at depth {depth} \
             for {}",
            program.name
        );
    }

    // The scalar-degradation fallback rewrites *decided* choices too, so the
    // all-degraded candidate is a feasible completion of every prefix.
    let mut degraded = base.clone();
    for plan in &space.plans {
        degraded.copy_choices.insert(plan.op, plan.degraded.clone());
    }
    let degraded_score = bounder.exact_score(&degraded);
    prop_assert!(
        bound <= degraded_score,
        "bound {bound} exceeds the degraded fallback score {degraded_score} at \
         depth {depth} for {}",
        program.name
    );

    // A leaf (nothing undecided) must be bounded by its own exact score.
    let leaf_bound = bounder.completion_bound(base, &[]);
    let leaf_score = bounder.exact_score(base);
    prop_assert!(
        leaf_bound <= leaf_score,
        "leaf bound {leaf_bound} exceeds the leaf's own score {leaf_score} for {}",
        program.name
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn completion_bounds_are_admissible(
        program_pick in 0usize..3,
        arch_pick in 0usize..2,
        base_pick in 0usize..64,
        depth_pick in 0usize..8,
    ) {
        let program = program_for(program_pick);
        let arch = arch_for(arch_pick);
        assert_admissible(&program, &arch, base_pick, depth_pick)?;
    }
}
