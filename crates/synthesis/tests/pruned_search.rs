//! Regression tests for the branch-and-bound pruned search: the pruned
//! winner must be the exhaustive argmin bit for bit, node budgets must keep
//! their `Truncated` semantics under pruning, the deterministic beam must be
//! bit-identical across worker counts, a pre-tripped cancel token must yield
//! the typed error, and the `max_candidates` cap must make the search
//! decline (fall back to exhaustive) rather than silently change semantics.

use hexcute_arch::GpuArch;
use hexcute_costmodel::{CompletionBounds, CostModel};
use hexcute_ir::Program;
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
use hexcute_synthesis::{
    CancelReason, CancelToken, PrunedOutcome, SearchBounder, SynthesisError, SynthesisOptions,
    Synthesizer,
};

fn gemm() -> Program {
    fp16_gemm(GemmShape::new(128, 128, 128), GemmConfig::default()).unwrap()
}

fn prune_with(program: &Program, arch: &GpuArch, options: SynthesisOptions) -> PrunedOutcome {
    let synth = Synthesizer::new(program, arch, options);
    let model = CostModel::new(arch);
    let mut bounder = CompletionBounds::new(&model, program);
    synth
        .synthesize_pruned(&mut bounder, None)
        .unwrap()
        .expect("the search space fits max_candidates, so pruning must engage")
}

/// The exhaustive argmin exactly as the compiler's selection loop computes
/// it: score every candidate, keep the *first* minimal one.
fn exhaustive_argmin(
    program: &Program,
    arch: &GpuArch,
    options: SynthesisOptions,
) -> (usize, hexcute_synthesis::Candidate, f64) {
    let candidates = Synthesizer::new(program, arch, options)
        .synthesize()
        .unwrap();
    let model = CostModel::new(arch);
    let (idx, candidate) = candidates
        .into_iter()
        .enumerate()
        .min_by(|a, b| {
            model
                .estimate(program, &a.1)
                .total_cycles
                .total_cmp(&model.estimate(program, &b.1).total_cycles)
        })
        .expect("at least one candidate");
    let score = model.estimate(program, &candidate).total_cycles;
    (idx, candidate, score)
}

#[test]
fn pruned_winner_is_the_exhaustive_argmin_bit_for_bit() {
    let program = gemm();
    for arch in [GpuArch::a100(), GpuArch::h100()] {
        let outcome = prune_with(&program, &arch, SynthesisOptions::default());
        let (idx, winner, score) = exhaustive_argmin(&program, &arch, SynthesisOptions::default());
        assert_eq!(outcome.winner, winner, "winner diverged on {}", arch.name);
        assert_eq!(
            outcome.score.to_bits(),
            score.to_bits(),
            "score diverged on {}",
            arch.name
        );
        assert_eq!(outcome.winner_index, idx, "index diverged on {}", arch.name);
        assert!(!outcome.truncated && !outcome.beamed);
        assert!(outcome.enumerated >= 1);
        assert!(outcome.stats.bound_evaluations >= 1);
    }
}

/// A node budget truncates the pruned search to the same deterministic
/// prefix the budgeted exhaustive search evaluates: same truncation flag,
/// and the winner is the argmin of exactly that prefix.
#[test]
fn node_budget_keeps_truncated_semantics_under_pruning() {
    let program = gemm();
    let arch = GpuArch::a100();
    let budgeted = SynthesisOptions {
        node_budget: Some(2),
        ..SynthesisOptions::default()
    };
    let (outcome, _) = Synthesizer::new(&program, &arch, budgeted.clone())
        .synthesize_outcome(None)
        .unwrap();
    let was_truncated = outcome.is_truncated();
    let best_so_far = outcome.into_candidates();

    let pruned = prune_with(&program, &arch, budgeted);
    assert_eq!(
        pruned.truncated, was_truncated,
        "pruning must not change the truncation flag"
    );
    assert_eq!(pruned.enumerated, best_so_far.len());

    let model = CostModel::new(&arch);
    let (idx, winner) = best_so_far
        .into_iter()
        .enumerate()
        .min_by(|a, b| {
            model
                .estimate(&program, &a.1)
                .total_cycles
                .total_cmp(&model.estimate(&program, &b.1).total_cycles)
        })
        .unwrap();
    assert_eq!(pruned.winner, winner);
    assert_eq!(
        pruned.score.to_bits(),
        model.estimate(&program, &winner).total_cycles.to_bits()
    );
    assert_eq!(pruned.winner_index, idx);
}

/// The deterministic beam is lossy but worker-invariant: the whole outcome
/// (winner, score bits, index, enumerated count, beamed flag) is
/// bit-identical at 1, 2, 4 and 8 workers, serial or parallel walk.
#[test]
fn beam_outcome_is_bit_identical_across_worker_counts() {
    let program = gemm();
    let arch = GpuArch::a100();
    let reference = prune_with(
        &program,
        &arch,
        SynthesisOptions {
            beam_width: Some(1),
            parallel_workers: Some(1),
            parallel_subtree_depth: Some(0),
            ..SynthesisOptions::default()
        },
    );
    assert!(
        reference.beamed,
        "a width-1 beam over a multi-selection space must drop prefixes"
    );
    for workers in [2usize, 4, 8] {
        let other = prune_with(
            &program,
            &arch,
            SynthesisOptions {
                beam_width: Some(1),
                parallel_workers: Some(workers),
                parallel_subtree_depth: None,
                ..SynthesisOptions::default()
            },
        );
        assert_eq!(
            other.winner, reference.winner,
            "winner at {workers} workers"
        );
        assert_eq!(
            other.score.to_bits(),
            reference.score.to_bits(),
            "score at {workers} workers"
        );
        assert_eq!(other.winner_index, reference.winner_index);
        assert_eq!(other.enumerated, reference.enumerated);
        assert_eq!(other.beamed, reference.beamed);
    }
}

/// A pre-tripped token cancels the pruned search with the typed error —
/// never a partial outcome.
#[test]
fn cancelled_pruned_search_returns_the_typed_error() {
    let program = gemm();
    let arch = GpuArch::a100();
    let token = CancelToken::new();
    token.cancel(CancelReason::Shutdown);
    let synth = Synthesizer::new(&program, &arch, SynthesisOptions::default());
    let model = CostModel::new(&arch);
    let mut bounder = CompletionBounds::new(&model, &program);
    match synth.synthesize_pruned(&mut bounder, Some(&token)) {
        Err(SynthesisError::Cancelled(CancelReason::Shutdown)) => {}
        other => panic!("expected the typed cancellation, got {other:?}"),
    }
}

/// When the enumeration exceeds `max_candidates` (whose truncation-by-cap
/// semantics belong to the exhaustive path), the pruned search declines with
/// `Ok(None)` instead of guessing.
#[test]
fn pruned_search_declines_when_the_candidate_cap_binds() {
    let program = gemm();
    let arch = GpuArch::a100();
    let options = SynthesisOptions {
        max_candidates: 1,
        ..SynthesisOptions::default()
    };
    let synth = Synthesizer::new(&program, &arch, options);
    let model = CostModel::new(&arch);
    let mut bounder = CompletionBounds::new(&model, &program);
    assert!(synth
        .synthesize_pruned(&mut bounder, None)
        .unwrap()
        .is_none());
}

/// `prepare` really is what makes bounds tight: unprepared bounds still
/// admit the winner (they degrade to exact per-choice costs).
#[test]
fn unprepared_bounder_is_still_admissible() {
    let program = gemm();
    let arch = GpuArch::a100();
    let model = CostModel::new(&arch);
    let bounder = CompletionBounds::new(&model, &program);
    let synth = Synthesizer::new(&program, &arch, SynthesisOptions::default());
    let space = synth.search_space().unwrap();
    let candidates = synth.synthesize().unwrap();
    let undecided: Vec<_> = space.plans.iter().map(|p| p.op).collect();
    for candidate in &candidates {
        let bound = bounder.completion_bound(candidate, &undecided);
        let score = bounder.exact_score(candidate);
        assert!(bound <= score, "unprepared bound {bound} > score {score}");
    }
}
