//! The [`Layout`] type: a function from integers to integers described by a
//! hierarchical shape and stride pair, following the CuTe convention.

use std::fmt;

use crate::error::{LayoutError, Result};
use crate::fastpath;
use crate::flat::FlatLayout;
use crate::int_tuple::IntTuple;

/// A CuTe-style layout: a pair of congruent shape and stride tuples that
/// together define a function from a column-major linear index (or a
/// hierarchical coordinate) to an integer offset.
///
/// A layout `(s₁,…,sₙ):(d₁,…,dₙ)` maps the coordinate `(c₁,…,cₙ)` to
/// `Σ cᵢ·dᵢ`; linear indices are decomposed into coordinates column-major
/// (leftmost mode fastest).
///
/// # Examples
///
/// The row-major-interleaved layout of Fig. 1(a)/Fig. 2(a) of the Hexcute
/// paper:
///
/// ```
/// use hexcute_layout::{Layout, ituple};
///
/// let m = Layout::new(ituple![(2, 2), 8], ituple![(1, 16), 2]).unwrap();
/// // Coordinate (row=2, col=4) is the hierarchical coordinate ((0,1),4).
/// assert_eq!(m.map_coords(&[0, 1, 4]), 24);
/// assert_eq!(m.to_string(), "((2,2),8):((1,16),2)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layout {
    shape: IntTuple,
    stride: IntTuple,
}

impl Layout {
    /// Creates a layout from congruent shape and stride tuples.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::ProfileMismatch`] when the tuples do not have
    /// the same nesting profile.
    pub fn new(shape: IntTuple, stride: IntTuple) -> Result<Self> {
        if !shape.congruent(&stride) {
            return Err(LayoutError::ProfileMismatch {
                shape: shape.to_string(),
                stride: stride.to_string(),
            });
        }
        Ok(Layout { shape, stride })
    }

    /// Creates a rank-1 layout `shape:stride`.
    pub fn from_mode(shape: usize, stride: usize) -> Self {
        Layout {
            shape: IntTuple::Int(shape),
            stride: IntTuple::Int(stride),
        }
    }

    /// Creates a flat (non-hierarchical) layout from parallel shape and
    /// stride slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_flat(shape: &[usize], stride: &[usize]) -> Self {
        assert_eq!(shape.len(), stride.len(), "shape/stride length mismatch");
        Layout {
            shape: IntTuple::from(shape),
            stride: IntTuple::from(stride),
        }
    }

    /// Creates a flat layout from `(shape, stride)` mode pairs.
    pub fn from_modes(modes: &[(usize, usize)]) -> Self {
        let shape: Vec<usize> = modes.iter().map(|m| m.0).collect();
        let stride: Vec<usize> = modes.iter().map(|m| m.1).collect();
        Layout::from_flat(&shape, &stride)
    }

    /// The column-major (leftmost-fastest) layout of the given shape.
    ///
    /// ```
    /// use hexcute_layout::Layout;
    /// let l = Layout::column_major(&[4, 8]);
    /// assert_eq!(l.map(5), 5);
    /// ```
    pub fn column_major(shape: &[usize]) -> Self {
        let mut stride = Vec::with_capacity(shape.len());
        let mut acc = 1usize;
        for &s in shape {
            stride.push(acc);
            acc *= s.max(1);
        }
        Layout::from_flat(shape, &stride)
    }

    /// The row-major (rightmost-fastest) layout of the given shape.
    pub fn row_major(shape: &[usize]) -> Self {
        let mut stride = vec![0usize; shape.len()];
        let mut acc = 1usize;
        for (i, &s) in shape.iter().enumerate().rev() {
            stride[i] = acc;
            acc *= s.max(1);
        }
        Layout::from_flat(shape, &stride)
    }

    /// The identity layout on `size` elements: `size:1`.
    pub fn identity(size: usize) -> Self {
        Layout::from_mode(size, 1)
    }

    /// The shape tuple.
    pub fn shape(&self) -> &IntTuple {
        &self.shape
    }

    /// The stride tuple.
    pub fn stride(&self) -> &IntTuple {
        &self.stride
    }

    /// The number of top-level modes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// The domain size: the product of the shape.
    pub fn size(&self) -> usize {
        self.shape.product()
    }

    /// The cosize: one plus the largest value the layout produces
    /// (`layout(size-1) + 1`), or 1 for an empty layout.
    pub fn cosize(&self) -> usize {
        if self.size() == 0 {
            return 1;
        }
        self.map(self.size() - 1) + 1
    }

    /// The `i`-th top-level mode as a sub-layout.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn mode(&self, i: usize) -> Layout {
        Layout {
            shape: self.shape.mode(i).clone(),
            stride: self.stride.mode(i).clone(),
        }
    }

    /// All top-level modes as sub-layouts.
    pub fn modes(&self) -> Vec<Layout> {
        (0..self.rank()).map(|i| self.mode(i)).collect()
    }

    /// Selects a subset of top-level modes, preserving order.
    pub fn select(&self, indices: &[usize]) -> Layout {
        let modes: Vec<Layout> = indices.iter().map(|&i| self.mode(i)).collect();
        Layout::concat(&modes)
    }

    /// Flattens the hierarchy into a list of `(shape, stride)` leaf modes.
    pub fn flat_modes(&self) -> Vec<(usize, usize)> {
        self.shape
            .flatten()
            .into_iter()
            .zip(self.stride.flatten())
            .collect()
    }

    /// Rebuilds a flat layout (depth 1) with the same leaves.
    pub fn flatten(&self) -> Layout {
        let modes = self.flat_modes();
        Layout::from_modes(&modes)
    }

    /// Concatenates layouts into a single layout whose top-level modes are
    /// the arguments, i.e. `(A, B, …)`.
    pub fn concat(layouts: &[Layout]) -> Layout {
        Layout {
            shape: IntTuple::Tuple(layouts.iter().map(|l| l.shape.clone()).collect()),
            stride: IntTuple::Tuple(layouts.iter().map(|l| l.stride.clone()).collect()),
        }
    }

    /// Wraps two layouts as the two top-level modes `(A, B)`.
    pub fn make_pair(a: &Layout, b: &Layout) -> Layout {
        Layout::concat(&[a.clone(), b.clone()])
    }

    /// Evaluates the layout at a column-major linear index.
    ///
    /// Indices beyond `size()` extend along the last mode, matching CuTe.
    ///
    /// The evaluation traverses the shape and stride trees in lock step
    /// without allocating; [`Layout::map_reference`] is the original
    /// allocation-per-call implementation kept for cross-checking.
    pub fn map(&self, index: usize) -> usize {
        if !fastpath::enabled() {
            return self.map_reference(index);
        }
        // Single allocation-free traversal. This intentionally does NOT go
        // through `FlatLayout::from_layout(self).map(index)`: `map` is the
        // hottest call in synthesis (cosize/bijectivity/equivalence checks)
        // and materializing the mode array measurably slows it down. The
        // digit-decomposition semantics must match `FlatLayout::map`.
        fn walk(
            shape: &IntTuple,
            stride: &IntTuple,
            rest: &mut usize,
            remaining: &mut usize,
            acc: &mut usize,
        ) {
            match (shape, stride) {
                (IntTuple::Int(s), IntTuple::Int(d)) => {
                    *remaining -= 1;
                    let c = if *remaining == 0 {
                        *rest
                    } else {
                        let s = (*s).max(1);
                        let c = *rest % s;
                        *rest /= s;
                        c
                    };
                    *acc += c * d;
                }
                (IntTuple::Tuple(ss), IntTuple::Tuple(ds)) => {
                    for (s, d) in ss.iter().zip(ds.iter()) {
                        walk(s, d, rest, remaining, acc);
                    }
                }
                _ => unreachable!("layout shape and stride are congruent"),
            }
        }
        let mut remaining = self.shape.leaf_count();
        if remaining == 0 {
            return 0;
        }
        let mut rest = index;
        let mut acc = 0usize;
        walk(
            &self.shape,
            &self.stride,
            &mut rest,
            &mut remaining,
            &mut acc,
        );
        acc
    }

    /// The original recursive implementation of [`Layout::map`], kept as the
    /// reference for the flat fast path.
    pub fn map_reference(&self, index: usize) -> usize {
        let coords = self.shape.index_to_coords(index);
        let strides = self.stride.flatten();
        coords.iter().zip(strides.iter()).map(|(c, d)| c * d).sum()
    }

    /// Evaluates the layout at a flat hierarchical coordinate (one entry per
    /// leaf, leftmost leaf first).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate rank does not match the leaf count.
    pub fn map_coords(&self, coords: &[usize]) -> usize {
        if !fastpath::enabled() {
            return self.map_coords_reference(coords);
        }
        fn walk(stride: &IntTuple, coords: &[usize], pos: &mut usize, acc: &mut usize) {
            match stride {
                IntTuple::Int(d) => {
                    *acc += coords[*pos] * d;
                    *pos += 1;
                }
                IntTuple::Tuple(ds) => {
                    for d in ds {
                        walk(d, coords, pos, acc);
                    }
                }
            }
        }
        assert_eq!(
            coords.len(),
            self.stride.leaf_count(),
            "coordinate rank mismatch"
        );
        let mut pos = 0usize;
        let mut acc = 0usize;
        walk(&self.stride, coords, &mut pos, &mut acc);
        acc
    }

    /// The original implementation of [`Layout::map_coords`], kept as the
    /// reference for the flat fast path.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate rank does not match the leaf count.
    pub fn map_coords_reference(&self, coords: &[usize]) -> usize {
        let strides = self.stride.flatten();
        assert_eq!(coords.len(), strides.len(), "coordinate rank mismatch");
        coords.iter().zip(strides.iter()).map(|(c, d)| c * d).sum()
    }

    /// Evaluates the layout at a per-top-level-mode linear coordinate (one
    /// linear index per top-level mode).
    ///
    /// # Panics
    ///
    /// Panics if the number of coordinates does not match the rank.
    pub fn map_mode_indices(&self, indices: &[usize]) -> usize {
        assert_eq!(indices.len(), self.rank(), "mode index rank mismatch");
        indices
            .iter()
            .enumerate()
            .map(|(i, &idx)| self.mode(i).map(idx))
            .sum()
    }

    /// Collects all outputs of the layout over its domain, in domain order.
    pub fn image(&self) -> Vec<usize> {
        (0..self.size()).map(|i| self.map(i)).collect()
    }

    /// Returns `true` when the two layouts define the same function on the
    /// same domain size (ignoring hierarchical structure).
    pub fn equivalent(&self, other: &Layout) -> bool {
        self.size() == other.size() && (0..self.size()).all(|i| self.map(i) == other.map(i))
    }

    /// Returns `true` when the layout is injective over its domain.
    pub fn is_injective(&self) -> bool {
        let size = self.size();
        let cosize = self.cosize();
        // One bit per address beats hashing whenever the codomain is small
        // enough to fit a dense bitmap — the common case for tile layouts,
        // and the hot case in shared-memory swizzle scoring.
        const BITMAP_LIMIT: usize = 1 << 26;
        if cosize <= BITMAP_LIMIT {
            let mut seen = vec![0u64; cosize.div_ceil(64)];
            for i in 0..size {
                let v = self.map(i);
                let (word, bit) = (v / 64, v % 64);
                if seen[word] >> bit & 1 == 1 {
                    return false;
                }
                seen[word] |= 1 << bit;
            }
            true
        } else {
            let mut seen = std::collections::HashSet::with_capacity(size);
            (0..size).all(|i| seen.insert(self.map(i)))
        }
    }

    /// Returns `true` when the layout is a bijection onto `[0, size)`.
    pub fn is_compact_bijection(&self) -> bool {
        let size = self.size();
        let mut seen = vec![false; size];
        for i in 0..size {
            let v = self.map(i);
            if v >= size || seen[v] {
                return false;
            }
            seen[v] = true;
        }
        true
    }

    /// Simplifies the layout by dropping size-1 modes and merging adjacent
    /// modes where `stride_{i+1} == shape_i * stride_i`, preserving the
    /// function.
    ///
    /// ```
    /// use hexcute_layout::Layout;
    /// let l = Layout::from_flat(&[2, 1, 4], &[1, 77, 2]);
    /// let c = l.coalesce();
    /// assert_eq!(c, Layout::from_mode(8, 1));
    /// assert!(l.equivalent(&c));
    /// ```
    pub fn coalesce(&self) -> Layout {
        if !fastpath::enabled() {
            return self.coalesce_reference();
        }
        let flat = FlatLayout::from_layout(self).coalesced();
        let modes = flat.modes();
        if modes.len() == 1 {
            return Layout::from_mode(modes[0].0, modes[0].1);
        }
        Layout::from_modes(modes)
    }

    /// The original recursive implementation of [`Layout::coalesce`], kept as
    /// the reference for the flat fast path.
    pub fn coalesce_reference(&self) -> Layout {
        let mut out: Vec<(usize, usize)> = Vec::new();
        for (s, d) in self.flat_modes() {
            if s == 1 {
                continue;
            }
            if let Some(last) = out.last_mut() {
                if d == last.0 * last.1 && last.1 != 0 {
                    last.0 *= s;
                    continue;
                }
                if last.1 == 0 && d == 0 {
                    last.0 *= s;
                    continue;
                }
            }
            out.push((s, d));
        }
        if out.is_empty() {
            return Layout::from_mode(1, 0);
        }
        if out.len() == 1 {
            return Layout::from_mode(out[0].0, out[0].1);
        }
        Layout::from_modes(&out)
    }

    /// Sorts the flattened modes by stride (then shape), preserving the set
    /// of `(coordinate, output)` pairs but not the domain order. Useful for
    /// complement and inverse computations.
    pub fn sorted_by_stride(&self) -> Layout {
        let mut modes = self.flat_modes();
        modes.sort_by_key(|&(s, d)| (d, s));
        Layout::from_modes(&modes)
    }

    /// Replaces the strides of every leaf, keeping the shape profile.
    ///
    /// # Panics
    ///
    /// Panics if the number of strides does not match the leaf count.
    pub fn with_strides(&self, strides: &[usize]) -> Layout {
        let stride = self
            .shape
            .unflatten(strides)
            .expect("stride count must match leaf count");
        Layout {
            shape: self.shape.clone(),
            stride,
        }
    }

    /// Returns a layout with the same function but whose codomain indices
    /// are scaled by `factor` (every stride multiplied).
    pub fn scale_strides(&self, factor: usize) -> Layout {
        let strides: Vec<usize> = self.stride.flatten().iter().map(|d| d * factor).collect();
        self.with_strides(&strides)
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.shape, self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ituple;

    #[test]
    fn rejects_incongruent_profiles() {
        let err = Layout::new(ituple![2, 4], ituple![(1, 2), 4]).unwrap_err();
        assert!(matches!(err, LayoutError::ProfileMismatch { .. }));
    }

    #[test]
    fn paper_fig2a_row_major_interleaved() {
        // m = ((2,2),8) : ((1,16),2), Fig. 2(a).
        let m = Layout::new(ituple![(2, 2), 8], ituple![(1, 16), 2]).unwrap();
        assert_eq!(m.size(), 32);
        // (row, col) = (2, 4) corresponds to hierarchical coordinate ((0,1),4)
        // and must map to address 24 (callout 1 in Fig. 1a).
        assert_eq!(m.map_coords(&[0, 1, 4]), 24);
        // Row 0 of the tile: addresses 0,2,4,...
        assert_eq!(m.map_coords(&[0, 0, 1]), 2);
        assert_eq!(m.map_coords(&[1, 0, 0]), 1);
        assert_eq!(m.map_coords(&[0, 1, 0]), 16);
        assert_eq!(m.cosize(), 32);
    }

    #[test]
    fn paper_fig2b_thread_value_layout() {
        // f = ((2,4),(2,2)) : ((8,1),(4,16)), Fig. 2(b) and (c).
        let f = Layout::new(ituple![(2, 4), (2, 2)], ituple![(8, 1), (4, 16)]).unwrap();
        // (tid, vid) = (2, 3): tid -> (0, 1), vid -> (1, 1); index 21.
        assert_eq!(f.map_coords(&[0, 1, 1, 1]), 21);
        // As mode-linear evaluation: thread mode index 2, value mode index 3.
        assert_eq!(f.map_mode_indices(&[2, 3]), 21);
        // Index 21 in a 4x8 column-major tile is (m, n) = (1, 5).
        assert_eq!(21 % 4, 1);
        assert_eq!(21 / 4, 5);
    }

    #[test]
    fn column_and_row_major() {
        let cm = Layout::column_major(&[4, 8]);
        assert_eq!(cm.map_coords(&[1, 5]), 21);
        let rm = Layout::row_major(&[4, 8]);
        assert_eq!(rm.map_coords(&[1, 5]), 13);
        assert_eq!(cm.cosize(), 32);
        assert_eq!(rm.cosize(), 32);
        assert!(cm.is_compact_bijection());
        assert!(rm.is_compact_bijection());
    }

    #[test]
    fn map_extends_last_mode() {
        let l = Layout::from_flat(&[4, 2], &[1, 4]);
        assert_eq!(l.map(7), 7);
        // Index 9 extends the last mode: coords (1, 2) -> 1 + 8 = 9.
        assert_eq!(l.map(9), 9);
    }

    #[test]
    fn coalesce_merges_contiguous_modes() {
        let l = Layout::from_flat(&[2, 4, 8], &[1, 2, 8]);
        assert_eq!(l.coalesce(), Layout::from_mode(64, 1));
        let l2 = Layout::from_flat(&[2, 4], &[1, 4]);
        assert_eq!(l2.coalesce(), l2);
        let l3 = Layout::from_flat(&[1, 1], &[5, 9]);
        assert_eq!(l3.coalesce(), Layout::from_mode(1, 0));
    }

    #[test]
    fn coalesce_preserves_function() {
        let l = Layout::new(ituple![(2, 2), 8, 1], ituple![(1, 2), 4, 99]).unwrap();
        let c = l.coalesce();
        assert!(l.equivalent(&c));
    }

    #[test]
    fn coalesce_merges_zero_strides() {
        let l = Layout::from_flat(&[4, 2], &[0, 0]);
        assert_eq!(l.coalesce(), Layout::from_mode(8, 0));
    }

    #[test]
    fn injectivity_checks() {
        assert!(Layout::from_flat(&[4, 8], &[8, 1]).is_injective());
        assert!(!Layout::from_flat(&[4, 8], &[1, 1]).is_injective());
        assert!(Layout::from_flat(&[4, 8], &[8, 1]).is_compact_bijection());
        assert!(!Layout::from_flat(&[4, 8], &[16, 1]).is_compact_bijection());
    }

    #[test]
    fn concat_and_select() {
        let a = Layout::from_mode(4, 1);
        let b = Layout::from_mode(8, 4);
        let pair = Layout::make_pair(&a, &b);
        assert_eq!(pair.rank(), 2);
        assert_eq!(pair.size(), 32);
        assert!(pair.equivalent(&Layout::column_major(&[4, 8])));
        let swapped = pair.select(&[1, 0]);
        assert_eq!(swapped.mode(0), b);
        assert_eq!(swapped.mode(1), a);
    }

    #[test]
    fn mode_access_and_flatten() {
        let l = Layout::new(ituple![(2, 4), (2, 2)], ituple![(8, 1), (4, 16)]).unwrap();
        assert_eq!(l.mode(0), Layout::from_flat(&[2, 4], &[8, 1]));
        assert_eq!(l.mode(1), Layout::from_flat(&[2, 2], &[4, 16]));
        assert_eq!(l.flat_modes(), vec![(2, 8), (4, 1), (2, 4), (2, 16)]);
        assert_eq!(l.flatten().rank(), 4);
    }

    #[test]
    fn display_round_trip_notation() {
        let l = Layout::new(ituple![(2, 2), 8], ituple![(1, 16), 2]).unwrap();
        assert_eq!(l.to_string(), "((2,2),8):((1,16),2)");
        assert_eq!(Layout::from_mode(8, 1).to_string(), "8:1");
    }

    #[test]
    fn with_strides_and_scale() {
        let l = Layout::new(ituple![(2, 2), 8], ituple![(1, 16), 2]).unwrap();
        let scaled = l.scale_strides(2);
        assert_eq!(scaled.map(1), 2 * l.map(1));
        let replaced = l.with_strides(&[1, 2, 4]);
        assert_eq!(replaced.stride().flatten(), vec![1, 2, 4]);
        assert_eq!(replaced.shape(), l.shape());
    }

    #[test]
    fn sorted_by_stride_orders_modes() {
        let l = Layout::from_flat(&[4, 8, 2], &[64, 1, 32]);
        let sorted = l.sorted_by_stride();
        assert_eq!(sorted.flat_modes(), vec![(8, 1), (2, 32), (4, 64)]);
    }

    #[test]
    fn identity_layout() {
        let id = Layout::identity(16);
        for i in 0..16 {
            assert_eq!(id.map(i), i);
        }
    }
}
