//! Error type for layout-algebra operations.

use std::fmt;

/// Errors produced by layout construction and algebraic operations.
///
/// Layouts are functions; most algebraic operations (composition, inversion,
/// complement, division) are only defined when divisibility or admissibility
/// side conditions hold. Violations surface as values of this type rather
/// than panics so that the synthesis engine can backtrack to another
/// instruction choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The shape and stride tuples of a layout do not have the same profile.
    ProfileMismatch {
        /// Rendered shape tuple.
        shape: String,
        /// Rendered stride tuple.
        stride: String,
    },
    /// A composition `A ∘ B` failed because a mode of `B` does not divide
    /// evenly through the modes of `A`.
    NotDivisible {
        /// Human readable context (which operation failed).
        context: String,
        /// The offending dividend.
        lhs: usize,
        /// The offending divisor.
        rhs: usize,
    },
    /// An inverse was requested for a layout that is not a bijection onto a
    /// contiguous integer interval.
    NotInvertible {
        /// Rendered layout.
        layout: String,
        /// Reason the inversion failed.
        reason: String,
    },
    /// A complement was requested with a target size that the layout does not
    /// embed into.
    InvalidComplement {
        /// Rendered layout.
        layout: String,
        /// Target cosize.
        target: usize,
        /// Reason the complement failed.
        reason: String,
    },
    /// A coordinate or index was outside the domain of the layout.
    OutOfDomain {
        /// The offending index.
        index: usize,
        /// The size of the domain.
        size: usize,
    },
    /// Generic structural error (e.g. rank mismatch in concatenation).
    Structural(String),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::ProfileMismatch { shape, stride } => {
                write!(
                    f,
                    "shape {shape} and stride {stride} have different profiles"
                )
            }
            LayoutError::NotDivisible { context, lhs, rhs } => {
                write!(f, "{context}: {lhs} is not divisible by {rhs}")
            }
            LayoutError::NotInvertible { layout, reason } => {
                write!(f, "layout {layout} is not invertible: {reason}")
            }
            LayoutError::InvalidComplement {
                layout,
                target,
                reason,
            } => {
                write!(
                    f,
                    "complement of {layout} with respect to {target} is invalid: {reason}"
                )
            }
            LayoutError::OutOfDomain { index, size } => {
                write!(
                    f,
                    "index {index} is outside the layout domain of size {size}"
                )
            }
            LayoutError::Structural(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LayoutError>;
