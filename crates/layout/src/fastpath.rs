//! Fast-path switch and the memoization cache for the layout algebra.
//!
//! Layout synthesis performs the same `compose` / `complement` /
//! `right_inverse` calls over and over while walking its DFS search tree, so
//! the algebra memoizes results in a per-thread cache keyed on interned
//! layouts: the first call computes through the flat representation
//! ([`crate::FlatLayout`]), every repeat is a hash lookup plus a clone.
//!
//! The whole fast path (memoized algebra here, the table-driven simulator in
//! `hexcute-sim`, and the parallel candidate search in `hexcute-synthesis`)
//! is controlled by one switch: [`set_enabled`], initialized from the
//! `HEXCUTE_DISABLE_FAST_PATH` environment variable. Disabling it routes
//! every operation through the recursive reference implementations, which is
//! how the before/after benchmarks and the flat-vs-reference property tests
//! exercise both paths in one process.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU8, Ordering};

use crate::error::Result;
use crate::layout::Layout;

/// A fast non-cryptographic hasher (FxHash-style multiply-xor) for the cache
/// maps: layout trees are hashed on every lookup, and the default SipHash
/// would dominate the memoized hit path.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// 0 = uninitialized, 1 = enabled, 2 = disabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Returns `true` when the flat fast path (memoized algebra, table-driven
/// simulation, parallel search) is active.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let disabled = std::env::var("HEXCUTE_DISABLE_FAST_PATH")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            STATE.store(if disabled { 2 } else { 1 }, Ordering::Relaxed);
            !disabled
        }
    }
}

/// Globally enables or disables the fast path (all threads, process-wide).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Hit/miss counters of the current thread's algebra cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Memoized results returned without recomputation.
    pub hits: u64,
    /// Results computed and inserted.
    pub misses: u64,
    /// Distinct layouts interned.
    pub interned: usize,
}

/// Entries above which the per-thread cache is discarded wholesale. The DFS
/// of a single synthesis run stays far below this; the bound only guards
/// against unbounded growth in long-lived processes.
const MAX_ENTRIES: usize = 1 << 16;

#[derive(Default)]
struct AlgebraCache {
    /// Bumped whenever the cache is discarded; inserts guard on it so a
    /// nested eviction during `compute` cannot store results under interner
    /// IDs that were reassigned to different layouts.
    generation: u64,
    interner: FxHashMap<Layout, u32>,
    compose: FxHashMap<(u32, u32), Result<Layout>>,
    complement: FxHashMap<(u32, usize), Result<Layout>>,
    right_inverse: FxHashMap<u32, Result<Layout>>,
    left_inverse: FxHashMap<u32, Result<Layout>>,
    divide: FxHashMap<(u32, u32), Result<Layout>>,
    product: FxHashMap<(u32, u32), Result<Layout>>,
    stats: CacheStats,
}

impl AlgebraCache {
    fn intern(&mut self, layout: &Layout) -> u32 {
        if let Some(&id) = self.interner.get(layout) {
            return id;
        }
        let id = self.interner.len() as u32;
        self.interner.insert(layout.clone(), id);
        id
    }

    fn maybe_evict(&mut self) {
        if self.interner.len() > MAX_ENTRIES {
            let stats = self.stats;
            let generation = self.generation;
            *self = AlgebraCache::default();
            self.stats = stats;
            self.generation = generation + 1;
        }
    }
}

thread_local! {
    static CACHE: RefCell<AlgebraCache> = RefCell::new(AlgebraCache::default());
}

/// The current thread's cache statistics.
pub fn cache_stats() -> CacheStats {
    CACHE.with(|c| {
        let c = c.borrow();
        let mut stats = c.stats;
        stats.interned = c.interner.len();
        stats
    })
}

/// Clears the current thread's algebra cache (statistics included).
pub fn clear_cache() {
    CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        let generation = cache.generation;
        *cache = AlgebraCache::default();
        cache.generation = generation + 1;
    });
}

pub(crate) fn memo_compose(
    a: &Layout,
    b: &Layout,
    compute: impl FnOnce() -> Result<Layout>,
) -> Result<Layout> {
    CACHE.with(|cell| {
        let mut cache = cell.borrow_mut();
        cache.maybe_evict();
        let key = (cache.intern(a), cache.intern(b));
        if let Some(hit) = cache.compose.get(&key).cloned() {
            cache.stats.hits += 1;
            return hit;
        }
        let generation = cache.generation;
        // Drop the borrow while computing: `compute` may recurse into other
        // memoized operations (which may evict the cache, invalidating the
        // interner IDs behind `key` — hence the generation guard below).
        drop(cache);
        let result = compute();
        let mut cache = cell.borrow_mut();
        cache.stats.misses += 1;
        if cache.generation == generation {
            cache.compose.insert(key, result.clone());
        }
        result
    })
}

pub(crate) fn memo_complement(
    a: &Layout,
    target: usize,
    compute: impl FnOnce() -> Result<Layout>,
) -> Result<Layout> {
    CACHE.with(|cell| {
        let mut cache = cell.borrow_mut();
        cache.maybe_evict();
        let key = (cache.intern(a), target);
        if let Some(hit) = cache.complement.get(&key).cloned() {
            cache.stats.hits += 1;
            return hit;
        }
        let generation = cache.generation;
        drop(cache);
        let result = compute();
        let mut cache = cell.borrow_mut();
        cache.stats.misses += 1;
        if cache.generation == generation {
            cache.complement.insert(key, result.clone());
        }
        result
    })
}

pub(crate) fn memo_binary(
    op: BinaryOp,
    a: &Layout,
    b: &Layout,
    compute: impl FnOnce() -> Result<Layout>,
) -> Result<Layout> {
    CACHE.with(|cell| {
        let mut cache = cell.borrow_mut();
        cache.maybe_evict();
        let key = (cache.intern(a), cache.intern(b));
        let table = match op {
            BinaryOp::LogicalDivide => &cache.divide,
            BinaryOp::LogicalProduct => &cache.product,
        };
        if let Some(hit) = table.get(&key).cloned() {
            cache.stats.hits += 1;
            return hit;
        }
        let generation = cache.generation;
        drop(cache);
        let result = compute();
        let mut cache = cell.borrow_mut();
        cache.stats.misses += 1;
        if cache.generation == generation {
            let table = match op {
                BinaryOp::LogicalDivide => &mut cache.divide,
                BinaryOp::LogicalProduct => &mut cache.product,
            };
            table.insert(key, result.clone());
        }
        result
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinaryOp {
    LogicalDivide,
    LogicalProduct,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnaryOp {
    RightInverse,
    LeftInverse,
}

pub(crate) fn memo_unary(
    op: UnaryOp,
    a: &Layout,
    compute: impl FnOnce() -> Result<Layout>,
) -> Result<Layout> {
    CACHE.with(|cell| {
        let mut cache = cell.borrow_mut();
        cache.maybe_evict();
        let key = cache.intern(a);
        let table = match op {
            UnaryOp::RightInverse => &cache.right_inverse,
            UnaryOp::LeftInverse => &cache.left_inverse,
        };
        if let Some(hit) = table.get(&key).cloned() {
            cache.stats.hits += 1;
            return hit;
        }
        let generation = cache.generation;
        drop(cache);
        let result = compute();
        let mut cache = cell.borrow_mut();
        cache.stats.misses += 1;
        if cache.generation == generation {
            let table = match op {
                UnaryOp::RightInverse => &mut cache.right_inverse,
                UnaryOp::LeftInverse => &mut cache.left_inverse,
            };
            table.insert(key, result.clone());
        }
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_hits_on_repeats() {
        set_enabled(true);
        clear_cache();
        let a = Layout::column_major(&[32, 16]);
        let b = Layout::from_flat(&[8, 4], &[4, 128]);
        let first = a.compose(&b).unwrap();
        let before = cache_stats();
        for _ in 0..10 {
            assert_eq!(a.compose(&b).unwrap(), first);
        }
        let after = cache_stats();
        assert_eq!(after.hits, before.hits + 10);
        assert_eq!(after.misses, before.misses);
        assert!(after.interned >= 2);
        clear_cache();
        assert_eq!(cache_stats(), CacheStats::default());
    }

    #[test]
    fn eviction_keeps_results_correct() {
        set_enabled(true);
        clear_cache();
        let base = Layout::identity(1 << 20);
        // Drive enough distinct operands through the nested memoized ops
        // (logical_divide → complement + compose) to trip eviction at least
        // once mid-computation.
        for i in 0..MAX_ENTRIES / 2 + 16 {
            let tiler = Layout::from_mode(2, 1 << (i % 16));
            let _ = base.logical_divide(&tiler);
            // Two fresh interned operands per iteration, so the interner
            // crosses MAX_ENTRIES partway through the loop.
            let _ = base.compose(&Layout::from_mode(i + 1, 1));
            let _ = Layout::from_mode(i + 2, 1).right_inverse();
        }
        assert!(
            cache_stats().interned <= MAX_ENTRIES + 1,
            "eviction never ran"
        );
        // Post-eviction results must still match the reference, twice (the
        // second call replays whatever was re-memoized).
        let tiler = Layout::from_mode(4, 1);
        for _ in 0..2 {
            assert_eq!(
                base.logical_divide(&tiler).unwrap(),
                base.logical_divide_reference(&tiler).unwrap()
            );
        }
        clear_cache();
    }

    #[test]
    fn errors_are_memoized_too() {
        set_enabled(true);
        clear_cache();
        let a = Layout::from_flat(&[3, 5], &[5, 1]);
        let b = Layout::from_mode(2, 2);
        let e1 = a.compose(&b).unwrap_err();
        let e2 = a.compose(&b).unwrap_err();
        assert_eq!(e1, e2);
        assert!(cache_stats().hits >= 1);
    }
}
