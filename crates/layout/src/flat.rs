//! The canonical flattened layout representation backing the fast path of
//! the layout algebra.
//!
//! A [`FlatLayout`] stores the leaf `(shape, stride)` modes of a layout as a
//! pair of parallel arrays held inline (no heap allocation) for the ranks
//! that occur in practice, spilling to a `Vec` only beyond
//! [`FlatLayout::INLINE_CAP`] modes. All algebraic operations in
//! [`crate::Layout`] flatten their operands through this type instead of
//! walking the recursive [`crate::IntTuple`] trees with per-node `Vec`
//! allocations; the results are regrouped onto the hierarchical profile only
//! at the end, so the fast path is bit-for-bit equivalent to the recursive
//! reference implementation (a property enforced by the randomized
//! cross-check tests in `tests/flat_vs_reference.rs`).

use crate::int_tuple::IntTuple;
use crate::layout::Layout;

/// A flattened layout: parallel shape/stride mode arrays stored inline for
/// typical ranks.
#[derive(Debug, Clone)]
pub struct FlatLayout {
    len: usize,
    inline: [(usize, usize); FlatLayout::INLINE_CAP],
    spill: Vec<(usize, usize)>,
}

impl FlatLayout {
    /// Number of modes stored inline before spilling to the heap. Sized
    /// for the expanded thread-value pair layouts the synthesis engine
    /// produces, which routinely exceed eight leaf modes.
    pub const INLINE_CAP: usize = 16;

    /// Creates an empty flat layout.
    pub fn new() -> Self {
        FlatLayout {
            len: 0,
            inline: [(0, 0); Self::INLINE_CAP],
            spill: Vec::new(),
        }
    }

    /// Flattens a hierarchical layout in one lock-step traversal of its shape
    /// and stride trees (no intermediate allocations for rank ≤
    /// [`FlatLayout::INLINE_CAP`]).
    pub fn from_layout(layout: &Layout) -> Self {
        fn walk(shape: &IntTuple, stride: &IntTuple, out: &mut FlatLayout) {
            match (shape, stride) {
                (IntTuple::Int(s), IntTuple::Int(d)) => out.push(*s, *d),
                (IntTuple::Tuple(ss), IntTuple::Tuple(ds)) => {
                    for (s, d) in ss.iter().zip(ds.iter()) {
                        walk(s, d, out);
                    }
                }
                // Layout construction guarantees congruent profiles.
                _ => unreachable!("layout shape and stride are congruent"),
            }
        }
        let mut out = FlatLayout::new();
        walk(layout.shape(), layout.stride(), &mut out);
        out
    }

    /// Builds a flat layout from a mode slice.
    pub fn from_modes(modes: &[(usize, usize)]) -> Self {
        let mut out = FlatLayout::new();
        for &(s, d) in modes {
            out.push(s, d);
        }
        out
    }

    /// Appends a `(shape, stride)` mode.
    pub fn push(&mut self, shape: usize, stride: usize) {
        if !self.spill.is_empty() {
            self.spill.push((shape, stride));
        } else if self.len < Self::INLINE_CAP {
            self.inline[self.len] = (shape, stride);
        } else {
            self.spill.reserve(self.len + 1);
            self.spill.extend_from_slice(&self.inline);
            self.spill.push((shape, stride));
        }
        self.len += 1;
    }

    /// The modes as a slice.
    pub fn modes(&self) -> &[(usize, usize)] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    fn last_mut(&mut self) -> Option<&mut (usize, usize)> {
        if self.len == 0 {
            None
        } else if self.spill.is_empty() {
            Some(&mut self.inline[self.len - 1])
        } else {
            self.spill.last_mut()
        }
    }

    /// The number of modes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when there are no modes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The domain size: the product of the mode shapes.
    pub fn size(&self) -> usize {
        self.modes().iter().map(|&(s, _)| s).product()
    }

    /// Evaluates the layout at a column-major linear index, extending the
    /// last mode beyond its extent exactly like [`Layout::map`].
    pub fn map(&self, index: usize) -> usize {
        let modes = self.modes();
        let mut rest = index;
        let mut acc = 0usize;
        for (i, &(s, d)) in modes.iter().enumerate() {
            if i + 1 == modes.len() {
                acc += rest * d;
            } else {
                let s = s.max(1);
                acc += (rest % s) * d;
                rest /= s;
            }
        }
        acc
    }

    /// The canonical coalesced form: drops size-1 modes and merges adjacent
    /// mergeable modes, pushing a single `1:0` mode when nothing remains.
    ///
    /// The mode list produced here is exactly the mode list of
    /// [`Layout::coalesce`] on the hierarchical representation.
    pub fn coalesced(&self) -> FlatLayout {
        let mut out = FlatLayout::new();
        for &(s, d) in self.modes() {
            if s == 1 {
                continue;
            }
            if let Some(last) = out.last_mut() {
                if d == last.0 * last.1 && last.1 != 0 {
                    last.0 *= s;
                    continue;
                }
                if last.1 == 0 && d == 0 {
                    last.0 *= s;
                    continue;
                }
            }
            out.push(s, d);
        }
        if out.is_empty() {
            out.push(1, 0);
        }
        out
    }

    /// Rebuilds the equivalent hierarchical [`Layout`], using a leaf layout
    /// for a single mode (matching [`Layout::from_mode`]) and a flat rank-n
    /// tuple otherwise (matching [`Layout::from_modes`]).
    pub fn to_layout(&self) -> Layout {
        let modes = self.modes();
        match modes.len() {
            0 => Layout::from_mode(1, 0),
            1 => Layout::from_mode(modes[0].0, modes[0].1),
            _ => Layout::from_modes(modes),
        }
    }
}

impl Default for FlatLayout {
    fn default() -> Self {
        FlatLayout::new()
    }
}

impl PartialEq for FlatLayout {
    fn eq(&self, other: &Self) -> bool {
        self.modes() == other.modes()
    }
}

impl Eq for FlatLayout {}

impl std::hash::Hash for FlatLayout {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.modes().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ituple;

    #[test]
    fn from_layout_matches_flat_modes() {
        let l = Layout::new(ituple![(2, 2), 8], ituple![(1, 16), 2]).unwrap();
        assert_eq!(
            FlatLayout::from_layout(&l).modes(),
            l.flat_modes().as_slice()
        );
    }

    #[test]
    fn spills_past_inline_capacity() {
        let modes: Vec<(usize, usize)> = (0..12).map(|i| (2, 1 << i)).collect();
        let flat = FlatLayout::from_modes(&modes);
        assert_eq!(flat.len(), 12);
        assert_eq!(flat.modes(), modes.as_slice());
        let mut grown = FlatLayout::new();
        for &(s, d) in &modes {
            grown.push(s, d);
        }
        assert_eq!(grown, flat);
    }

    #[test]
    fn coalesced_matches_hierarchical_coalesce() {
        let cases = vec![
            Layout::from_flat(&[2, 4, 8], &[1, 2, 8]),
            Layout::from_flat(&[2, 1, 4], &[1, 77, 2]),
            Layout::from_flat(&[1, 1], &[5, 9]),
            Layout::from_flat(&[4, 2], &[0, 0]),
            Layout::new(ituple![(2, 2), 8, 1], ituple![(1, 2), 4, 99]).unwrap(),
        ];
        for l in cases {
            assert_eq!(
                FlatLayout::from_layout(&l).coalesced().modes(),
                l.coalesce().flat_modes().as_slice(),
                "mismatch for {l}"
            );
        }
    }

    #[test]
    fn map_matches_layout_map() {
        let l = Layout::new(ituple![(2, 4), (2, 2)], ituple![(8, 1), (4, 16)]).unwrap();
        let flat = FlatLayout::from_layout(&l);
        for i in 0..l.size() + 8 {
            assert_eq!(flat.map(i), l.map(i), "at {i}");
        }
        assert_eq!(flat.size(), l.size());
    }

    #[test]
    fn to_layout_round_trips_mode_structure() {
        assert_eq!(
            FlatLayout::from_modes(&[(8, 1)]).to_layout(),
            Layout::from_mode(8, 1)
        );
        assert_eq!(
            FlatLayout::from_modes(&[(2, 1), (4, 2)]).to_layout(),
            Layout::from_flat(&[2, 4], &[1, 2])
        );
        assert_eq!(FlatLayout::new().to_layout(), Layout::from_mode(1, 0));
    }
}
