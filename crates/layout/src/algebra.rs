//! Algebraic operations on layouts: composition, complement, inverses,
//! logical division and logical product.
//!
//! Layouts form a monoid under composition; these operations are the
//! foundation on which Hexcute's layout-synthesis constraints are built
//! (Section III and IV of the paper).
//!
//! Every operation exists in two bit-for-bit-equivalent forms:
//!
//! * the **fast path** (the default): operands are flattened once into the
//!   [`FlatLayout`] representation, computed on plain mode arrays, and the
//!   result is memoized in the per-thread cache of [`crate::fastpath`], so
//!   the repeated algebra performed by the synthesis DFS is a hash lookup;
//! * the **reference path** (`*_reference` methods, also used process-wide
//!   when the fast path is disabled): the original recursive implementation
//!   walking the hierarchical [`IntTuple`] trees.
//!
//! The randomized cross-check tests in `tests/flat_vs_reference.rs` enforce
//! the equivalence of the two paths, errors included.

use crate::error::{LayoutError, Result};
use crate::fastpath::{self, UnaryOp};
use crate::flat::FlatLayout;
use crate::int_tuple::IntTuple;
use crate::layout::Layout;

impl Layout {
    /// Functional composition `self ∘ rhs`, i.e. the layout `R` with
    /// `R(i) = self(rhs(i))` whose profile matches `rhs`'s shape.
    ///
    /// The composition is computed mode-by-mode on `rhs` using the standard
    /// CuTe algorithm; beyond its domain `self` is extended along its last
    /// mode, matching CuTe's dynamic semantics. As in CuTe, the result is
    /// exact when `rhs` is an admissible tiler (an injective layout whose
    /// modes do not produce carries into each other through `self`); all
    /// layouts constructed by the synthesis engine satisfy this.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::NotDivisible`] when a mode of `rhs` does not
    /// divide evenly through the modes of `self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hexcute_layout::Layout;
    ///
    /// let a = Layout::from_flat(&[16, 2], &[1, 32]);
    /// let b = Layout::from_mode(4, 8);
    /// let r = a.compose(&b).unwrap();
    /// for i in 0..4 {
    ///     assert_eq!(r.map(i), a.map(b.map(i)));
    /// }
    /// ```
    pub fn compose(&self, rhs: &Layout) -> Result<Layout> {
        if !fastpath::enabled() {
            return self.compose_reference(rhs);
        }
        fastpath::memo_compose(self, rhs, || self.compose_flat(rhs))
    }

    /// The recursive reference implementation of [`Layout::compose`],
    /// bypassing the flat fast path and the memoization cache.
    pub fn compose_reference(&self, rhs: &Layout) -> Result<Layout> {
        let a = self.coalesce_reference();
        let a_modes = a.flat_modes();
        let rhs_shape = rhs.shape().flatten();
        let rhs_stride = rhs.stride().flatten();

        let mut per_leaf: Vec<Vec<(usize, usize)>> = Vec::with_capacity(rhs_shape.len());
        for (&s, &d) in rhs_shape.iter().zip(rhs_stride.iter()) {
            per_leaf.push(compose_single_mode(&a_modes, s, d)?);
        }
        Ok(regroup(rhs.shape(), &per_leaf))
    }

    /// Flat-path composition: one flatten pass per operand, no intermediate
    /// hierarchical layouts.
    fn compose_flat(&self, rhs: &Layout) -> Result<Layout> {
        let a = FlatLayout::from_layout(self).coalesced();
        let a_modes = a.modes();
        let b = FlatLayout::from_layout(rhs);

        let mut per_leaf: Vec<Vec<(usize, usize)>> = Vec::with_capacity(b.len());
        for &(s, d) in b.modes() {
            per_leaf.push(compose_single_mode(a_modes, s, d)?);
        }
        Ok(regroup(rhs.shape(), &per_leaf))
    }

    /// The complement of `self` with respect to a codomain of size
    /// `cosize_target`: a layout `C` such that `(self, C)` tiles the interval
    /// `[0, cosize_target)` bijectively when `self` is admissible.
    ///
    /// # Errors
    ///
    /// Returns an error when `self` has overlapping strides or does not embed
    /// evenly into `cosize_target`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hexcute_layout::Layout;
    ///
    /// let a = Layout::from_mode(4, 2);
    /// let c = a.complement(16).unwrap();
    /// let full = Layout::make_pair(&a, &c);
    /// assert!(full.is_compact_bijection());
    /// ```
    pub fn complement(&self, cosize_target: usize) -> Result<Layout> {
        if !fastpath::enabled() {
            return self.complement_reference(cosize_target);
        }
        fastpath::memo_complement(self, cosize_target, || {
            self.complement_flat(Some(cosize_target))
        })
    }

    /// The recursive reference implementation of [`Layout::complement`].
    pub fn complement_reference(&self, cosize_target: usize) -> Result<Layout> {
        let coalesced = self.coalesce_reference();
        let mut modes: Vec<(usize, usize)> = coalesced
            .flat_modes()
            .into_iter()
            .filter(|&(s, _)| s != 1)
            .collect();
        if modes.iter().any(|&(_, d)| d == 0) {
            return Err(LayoutError::InvalidComplement {
                layout: self.to_string(),
                target: cosize_target,
                reason: "layout has a broadcast (stride-0) mode".to_string(),
            });
        }
        modes.sort_by_key(|&(s, d)| (d, s));

        let mut result: Vec<(usize, usize)> = Vec::new();
        let mut current = 1usize;
        for (s, d) in modes {
            if d % current != 0 || d < current {
                return Err(LayoutError::InvalidComplement {
                    layout: self.to_string(),
                    target: cosize_target,
                    reason: format!("stride {d} does not align with the filled prefix {current}"),
                });
            }
            if d / current > 1 {
                result.push((d / current, current));
            }
            current = s * d;
        }
        if !cosize_target.is_multiple_of(current) {
            return Err(LayoutError::InvalidComplement {
                layout: self.to_string(),
                target: cosize_target,
                reason: format!(
                    "target {cosize_target} is not a multiple of the covered extent {current}"
                ),
            });
        }
        if cosize_target / current > 1 {
            result.push((cosize_target / current, current));
        }
        if result.is_empty() {
            return Ok(Layout::from_mode(1, 0));
        }
        Ok(Layout::from_modes(&result).coalesce_reference())
    }

    /// Flat-path complement core shared by [`Layout::complement`]
    /// (`target = Some(..)`) and [`Layout::interior_complement`]
    /// (`target = None`, interior gaps only).
    fn complement_flat(&self, target: Option<usize>) -> Result<Layout> {
        let coalesced = FlatLayout::from_layout(self).coalesced();
        let mut modes: Vec<(usize, usize)> = coalesced
            .modes()
            .iter()
            .copied()
            .filter(|&(s, _)| s != 1)
            .collect();
        let report_target = target.unwrap_or(0);
        if modes.iter().any(|&(_, d)| d == 0) {
            return Err(LayoutError::InvalidComplement {
                layout: self.to_string(),
                target: report_target,
                reason: "layout has a broadcast (stride-0) mode".to_string(),
            });
        }
        modes.sort_by_key(|&(s, d)| (d, s));

        let mut result = FlatLayout::new();
        let mut current = 1usize;
        for (s, d) in modes {
            if d % current != 0 || d < current {
                return Err(LayoutError::InvalidComplement {
                    layout: self.to_string(),
                    target: report_target,
                    reason: format!("stride {d} does not align with the filled prefix {current}"),
                });
            }
            if d / current > 1 {
                result.push(d / current, current);
            }
            current = s * d;
        }
        if let Some(cosize_target) = target {
            if cosize_target % current != 0 {
                return Err(LayoutError::InvalidComplement {
                    layout: self.to_string(),
                    target: cosize_target,
                    reason: format!(
                        "target {cosize_target} is not a multiple of the covered extent {current}"
                    ),
                });
            }
            if cosize_target / current > 1 {
                result.push(cosize_target / current, current);
            }
        }
        if result.is_empty() {
            return Ok(Layout::from_mode(1, 0));
        }
        // Matches `Layout::from_modes(&result).coalesce()` of the reference.
        Ok(result.coalesced().to_layout())
    }

    /// The right inverse of a layout that is a bijection onto `[0, size)`:
    /// the layout `R` with `self(R(j)) = j` for all `j` in `[0, size)`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::NotInvertible`] when the layout is not a
    /// compact bijection.
    ///
    /// # Examples
    ///
    /// The `ldmatrix` register layout from Fig. 7(b) and its inverse from
    /// Appendix C of the paper:
    ///
    /// ```
    /// use hexcute_layout::{Layout, ituple};
    ///
    /// let q = Layout::new(ituple![(4, 8), (2, 4)], ituple![(64, 1), (32, 8)]).unwrap();
    /// let q_inv = q.right_inverse().unwrap();
    /// let expected = Layout::new(ituple![(8, 4), (2, 4)], ituple![(4, 64), (32, 1)]).unwrap();
    /// assert!(q_inv.equivalent(&expected));
    /// ```
    pub fn right_inverse(&self) -> Result<Layout> {
        if !fastpath::enabled() {
            return self.right_inverse_reference();
        }
        fastpath::memo_unary(UnaryOp::RightInverse, self, || self.right_inverse_flat())
    }

    /// The recursive reference implementation of [`Layout::right_inverse`].
    pub fn right_inverse_reference(&self) -> Result<Layout> {
        let coalesced = self.coalesce_reference();
        let modes: Vec<(usize, usize)> = coalesced
            .flat_modes()
            .into_iter()
            .filter(|&(s, _)| s != 1)
            .collect();
        right_inverse_core(self, &modes, true)
    }

    /// Flat-path right inverse.
    fn right_inverse_flat(&self) -> Result<Layout> {
        let coalesced = FlatLayout::from_layout(self).coalesced();
        let modes: Vec<(usize, usize)> = coalesced
            .modes()
            .iter()
            .copied()
            .filter(|&(s, _)| s != 1)
            .collect();
        right_inverse_core(self, &modes, false)
    }

    /// The left inverse of an injective layout: the layout `L` with
    /// `L(self(i)) = i` for all `i` in the domain.
    ///
    /// # Errors
    ///
    /// Returns an error when the layout is not injective or its image cannot
    /// be completed to a contiguous interval.
    pub fn left_inverse(&self) -> Result<Layout> {
        if !fastpath::enabled() {
            return self.left_inverse_reference();
        }
        fastpath::memo_unary(UnaryOp::LeftInverse, self, || {
            if self.is_compact_bijection() {
                return self.right_inverse_flat();
            }
            let gaps = self.complement_flat(None)?;
            let full = Layout::make_pair(self, &gaps);
            full.right_inverse_flat()
        })
    }

    /// The recursive reference implementation of [`Layout::left_inverse`].
    pub fn left_inverse_reference(&self) -> Result<Layout> {
        if self.is_compact_bijection() {
            return self.right_inverse_reference();
        }
        let gaps = self.interior_complement_reference()?;
        let full = Layout::make_pair(self, &gaps);
        let inv = full.right_inverse_reference()?;
        Ok(inv)
    }

    /// A complement that only fills the interior gaps of the layout's image
    /// (no trailing mode), so that `(self, interior_complement)` is a compact
    /// bijection onto the covered extent.
    ///
    /// # Errors
    ///
    /// Returns an error when the layout has overlapping or broadcast modes.
    pub fn interior_complement(&self) -> Result<Layout> {
        if !fastpath::enabled() {
            return self.interior_complement_reference();
        }
        self.complement_flat(None)
    }

    /// The recursive reference implementation of
    /// [`Layout::interior_complement`].
    pub fn interior_complement_reference(&self) -> Result<Layout> {
        let coalesced = self.coalesce_reference();
        let mut modes: Vec<(usize, usize)> = coalesced
            .flat_modes()
            .into_iter()
            .filter(|&(s, _)| s != 1)
            .collect();
        if modes.iter().any(|&(_, d)| d == 0) {
            return Err(LayoutError::InvalidComplement {
                layout: self.to_string(),
                target: 0,
                reason: "layout has a broadcast (stride-0) mode".to_string(),
            });
        }
        modes.sort_by_key(|&(s, d)| (d, s));
        let mut result: Vec<(usize, usize)> = Vec::new();
        let mut current = 1usize;
        for (s, d) in modes {
            if d % current != 0 || d < current {
                return Err(LayoutError::InvalidComplement {
                    layout: self.to_string(),
                    target: 0,
                    reason: format!("stride {d} does not align with the filled prefix {current}"),
                });
            }
            if d / current > 1 {
                result.push((d / current, current));
            }
            current = s * d;
        }
        if result.is_empty() {
            return Ok(Layout::from_mode(1, 0));
        }
        Ok(Layout::from_modes(&result).coalesce_reference())
    }

    /// Logical division: splits `self` by the tiler `rhs` into
    /// `(self ∘ rhs, self ∘ complement(rhs, size(self)))`, i.e. a first mode
    /// enumerating elements inside one tile and a second mode enumerating
    /// tiles.
    ///
    /// # Errors
    ///
    /// Propagates composition and complement errors.
    pub fn logical_divide(&self, rhs: &Layout) -> Result<Layout> {
        if !fastpath::enabled() {
            return self.logical_divide_reference(rhs);
        }
        fastpath::memo_binary(fastpath::BinaryOp::LogicalDivide, self, rhs, || {
            let complement = rhs.complement(self.size())?;
            let tiler = Layout::make_pair(rhs, &complement);
            self.compose(&tiler)
        })
    }

    /// The reference-path counterpart of [`Layout::logical_divide`], built
    /// from the reference complement and composition.
    pub fn logical_divide_reference(&self, rhs: &Layout) -> Result<Layout> {
        let complement = rhs.complement_reference(self.size())?;
        let tiler = Layout::make_pair(rhs, &complement);
        self.compose_reference(&tiler)
    }

    /// Zipped division: like [`Layout::logical_divide`] but guarantees the
    /// result has exactly two top-level modes `(intra_tile, inter_tile)`.
    ///
    /// # Errors
    ///
    /// Propagates composition and complement errors.
    pub fn zipped_divide(&self, rhs: &Layout) -> Result<(Layout, Layout)> {
        let divided = self.logical_divide(rhs)?;
        Ok((divided.mode(0), divided.mode(1)))
    }

    /// Logical product: repeats `self` according to `rhs`, producing
    /// `(self, complement(self, size·cosize) ∘ rhs)`. Mode 0 indexes within
    /// one copy of `self`, mode 1 indexes the copy.
    ///
    /// # Errors
    ///
    /// Propagates composition and complement errors.
    pub fn logical_product(&self, rhs: &Layout) -> Result<Layout> {
        if !fastpath::enabled() {
            return self.logical_product_reference(rhs);
        }
        fastpath::memo_binary(fastpath::BinaryOp::LogicalProduct, self, rhs, || {
            let complement = self.complement(self.size().max(self.cosize()) * rhs.cosize())?;
            let repeat = complement.compose(rhs)?;
            Ok(Layout::make_pair(self, &repeat))
        })
    }

    /// The reference-path counterpart of [`Layout::logical_product`].
    pub fn logical_product_reference(&self, rhs: &Layout) -> Result<Layout> {
        let complement =
            self.complement_reference(self.size().max(self.cosize()) * rhs.cosize())?;
        let repeat = complement.compose_reference(rhs)?;
        Ok(Layout::make_pair(self, &repeat))
    }
}

/// The shared tail of the right inverse: validates that the coalesced,
/// filtered `modes` cover `[0, size)` contiguously and builds the inverse.
///
/// `use_reference` keeps the final coalesce on the same path as the caller,
/// so the reference entry point never routes through the flat fast path it
/// is cross-checked against.
fn right_inverse_core(
    original: &Layout,
    modes: &[(usize, usize)],
    use_reference: bool,
) -> Result<Layout> {
    if modes.iter().any(|&(_, d)| d == 0) {
        return Err(LayoutError::NotInvertible {
            layout: original.to_string(),
            reason: "layout has a broadcast (stride-0) mode".to_string(),
        });
    }
    // Input-space strides: prefix products of the shapes in domain order.
    let mut in_strides = Vec::with_capacity(modes.len());
    let mut acc = 1usize;
    for &(s, _) in modes {
        in_strides.push(acc);
        acc *= s;
    }
    let mut order: Vec<usize> = (0..modes.len()).collect();
    order.sort_by_key(|&k| modes[k].1);
    let mut expect = 1usize;
    for &k in &order {
        let (s, d) = modes[k];
        if d != expect {
            return Err(LayoutError::NotInvertible {
                layout: original.to_string(),
                reason: format!(
                    "image is not the contiguous interval [0, size): expected stride {expect}, found {d}"
                ),
            });
        }
        expect = d * s;
    }
    let inv_modes: Vec<(usize, usize)> =
        order.iter().map(|&k| (modes[k].0, in_strides[k])).collect();
    if inv_modes.is_empty() {
        return Ok(Layout::from_mode(1, 0));
    }
    let built = Layout::from_modes(&inv_modes);
    Ok(if use_reference {
        built.coalesce_reference()
    } else {
        built.coalesce()
    })
}

/// Composes the flattened, coalesced modes of `A` with a single mode `s:d`.
fn compose_single_mode(a: &[(usize, usize)], s: usize, d: usize) -> Result<Vec<(usize, usize)>> {
    if s == 1 {
        return Ok(vec![(1, 0)]);
    }
    if d == 0 {
        return Ok(vec![(s, 0)]);
    }
    if a.is_empty() {
        return Ok(vec![(s, 0)]);
    }

    let mut result: Vec<(usize, usize)> = Vec::new();
    let mut rest_s = s;
    let mut rest_d = d;
    let mut i = 0usize;

    // Skip phase: consume whole modes of A covered by the stride `d`. The
    // last mode of A is never consumed here because it extends indefinitely.
    while i + 1 < a.len() && rest_d > 1 {
        let (a_shape, _) = a[i];
        if rest_d.is_multiple_of(a_shape) {
            rest_d /= a_shape;
            i += 1;
        } else if a_shape % rest_d == 0 {
            break;
        } else {
            return Err(LayoutError::NotDivisible {
                context: "layout composition (stride skip)".to_string(),
                lhs: a_shape,
                rhs: rest_d,
            });
        }
    }

    // Take phase: collect `s` elements starting at the skipped offset.
    while rest_s > 1 {
        if i + 1 < a.len() {
            let (a_shape, a_stride) = a[i];
            if a_shape % rest_d != 0 {
                return Err(LayoutError::NotDivisible {
                    context: "layout composition (partial skip)".to_string(),
                    lhs: a_shape,
                    rhs: rest_d,
                });
            }
            let available = a_shape / rest_d;
            let stride = a_stride * rest_d;
            if rest_s <= available {
                result.push((rest_s, stride));
                rest_s = 1;
            } else {
                if !rest_s.is_multiple_of(available) {
                    return Err(LayoutError::NotDivisible {
                        context: "layout composition (mode rollover)".to_string(),
                        lhs: rest_s,
                        rhs: available,
                    });
                }
                if available > 1 {
                    result.push((available, stride));
                }
                rest_s /= available;
                rest_d = 1;
                i += 1;
            }
        } else {
            // Last mode of A: extended indefinitely along its stride.
            let (_, a_stride) = a[i];
            result.push((rest_s, a_stride * rest_d));
            rest_s = 1;
        }
    }

    if result.is_empty() {
        result.push((1, 0));
    }
    Ok(result)
}

/// Rebuilds a hierarchical layout matching `profile`, substituting each leaf
/// with the (possibly multi-mode) composition result computed for it.
fn regroup(profile: &IntTuple, per_leaf: &[Vec<(usize, usize)>]) -> Layout {
    fn build(
        profile: &IntTuple,
        per_leaf: &[Vec<(usize, usize)>],
        pos: &mut usize,
    ) -> (IntTuple, IntTuple) {
        match profile {
            IntTuple::Int(_) => {
                let modes = &per_leaf[*pos];
                *pos += 1;
                if modes.len() == 1 {
                    (IntTuple::Int(modes[0].0), IntTuple::Int(modes[0].1))
                } else {
                    (
                        IntTuple::Tuple(modes.iter().map(|m| IntTuple::Int(m.0)).collect()),
                        IntTuple::Tuple(modes.iter().map(|m| IntTuple::Int(m.1)).collect()),
                    )
                }
            }
            IntTuple::Tuple(children) => {
                let mut shapes = Vec::with_capacity(children.len());
                let mut strides = Vec::with_capacity(children.len());
                for child in children {
                    let (s, d) = build(child, per_leaf, pos);
                    shapes.push(s);
                    strides.push(d);
                }
                (IntTuple::Tuple(shapes), IntTuple::Tuple(strides))
            }
        }
    }
    let mut pos = 0usize;
    let (shape, stride) = build(profile, per_leaf, &mut pos);
    Layout::new(shape, stride).expect("regrouped shape and stride are congruent by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ituple;

    #[test]
    fn compose_matches_pointwise_function_composition() {
        let a = Layout::new(ituple![(2, 2), 8], ituple![(1, 16), 2]).unwrap();
        let b = Layout::from_flat(&[4, 8], &[8, 1]);
        let r = a.compose(&b).unwrap();
        for i in 0..b.size() {
            assert_eq!(r.map(i), a.map(b.map(i)), "mismatch at {i}");
        }
    }

    #[test]
    fn compose_splits_modes() {
        // Embedding a 4-element stride-8 mode into a 16x2 tile of a 32-row tensor.
        let embed = Layout::from_flat(&[16, 2], &[1, 32]);
        let mode = Layout::from_mode(4, 8);
        let r = embed.compose(&mode).unwrap();
        assert!(r.equivalent(&Layout::from_flat(&[2, 2], &[8, 32])));
    }

    #[test]
    fn compose_with_zero_stride_is_broadcast() {
        let a = Layout::from_flat(&[8, 4], &[1, 8]);
        let b = Layout::from_flat(&[4, 2], &[0, 4]);
        let r = a.compose(&b).unwrap();
        assert_eq!(r.map(0), 0);
        assert_eq!(r.map(1), 0);
        assert_eq!(r.map(3), 0);
        for i in 0..b.size() {
            assert_eq!(r.map(i), a.map(b.map(i)));
        }
    }

    #[test]
    fn compose_extends_last_mode() {
        let a = Layout::from_mode(4, 2);
        let b = Layout::from_mode(2, 8);
        let r = a.compose(&b).unwrap();
        assert!(r.equivalent(&Layout::from_mode(2, 16)));
    }

    #[test]
    fn compose_reports_divisibility_failure() {
        let a = Layout::from_flat(&[3, 5], &[5, 1]);
        let b = Layout::from_mode(2, 2);
        // Stride 2 does not divide through the 3-element mode.
        assert!(matches!(
            a.compose(&b),
            Err(LayoutError::NotDivisible { .. })
        ));
    }

    #[test]
    fn paper_appendix_c_composition() {
        // g restricted to 32 threads (Appendix C).
        let g = Layout::new(ituple![(4, 8), (2, 2, 2)], ituple![(32, 1), (16, 8, 256)]).unwrap();
        // q is the ldmatrix register layout of Fig. 7(b).
        let q = Layout::new(ituple![(4, 8), (2, 4)], ituple![(64, 1), (32, 8)]).unwrap();
        let q_inv = q.right_inverse().unwrap();
        let expected_q_inv =
            Layout::new(ituple![(8, 4), (2, 4)], ituple![(4, 64), (32, 1)]).unwrap();
        assert!(q_inv.equivalent(&expected_q_inv));

        // Compose with the hierarchical (thread, value) grouping so that the
        // result keeps separate thread and value modes.
        let composite = g.compose(&expected_q_inv).unwrap();
        let expected =
            Layout::new(ituple![(8, 2, 2), (2, 4)], ituple![(1, 8, 256), (16, 32)]).unwrap();
        assert!(composite.equivalent(&expected));

        // Appendix C: g∘q⁻¹ maps (17, 5) to linear index 337 = (1, 21) in 16x32.
        // 17 within (8,2,2) and 5 within (2,4) as mode-linear indices.
        let thread_mode = composite.mode(0);
        let value_mode = composite.mode(1);
        let out = thread_mode.map(17) + value_mode.map(5);
        assert_eq!(out, 337);
        assert_eq!(337 % 16, 1);
        assert_eq!(337 / 16, 21);
    }

    #[test]
    fn right_inverse_round_trip() {
        let layouts = vec![
            Layout::column_major(&[4, 8]),
            Layout::row_major(&[4, 8]),
            Layout::new(ituple![(4, 8), (2, 4)], ituple![(64, 1), (32, 8)]).unwrap(),
            Layout::from_flat(&[2, 3, 5], &[15, 1, 3]),
        ];
        for l in layouts {
            let inv = l.right_inverse().unwrap();
            for j in 0..l.size() {
                assert_eq!(l.map(inv.map(j)), j, "layout {l} inverse failed at {j}");
            }
        }
    }

    #[test]
    fn right_inverse_rejects_non_bijection() {
        assert!(Layout::from_flat(&[4, 4], &[1, 1]).right_inverse().is_err());
        assert!(Layout::from_mode(4, 2).right_inverse().is_err());
        assert!(Layout::from_flat(&[4, 2], &[1, 0]).right_inverse().is_err());
    }

    #[test]
    fn left_inverse_of_non_compact_layout() {
        let a = Layout::from_mode(4, 2);
        let l = a.left_inverse().unwrap();
        for i in 0..a.size() {
            assert_eq!(l.map(a.map(i)), i);
        }
    }

    #[test]
    fn complement_tiles_the_interval() {
        let a = Layout::from_flat(&[4, 2], &[1, 16]);
        let c = a.complement(64).unwrap();
        let full = Layout::make_pair(&a, &c);
        assert!(full.is_compact_bijection());
        assert_eq!(full.size(), 64);
    }

    #[test]
    fn complement_of_compact_layout_is_trivial() {
        let a = Layout::column_major(&[4, 8]);
        let c = a.complement(32).unwrap();
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn complement_rejects_bad_targets() {
        let a = Layout::from_mode(4, 2);
        assert!(a.complement(12).is_err());
        let overlapping = Layout::from_flat(&[4, 4], &[1, 2]);
        assert!(overlapping.complement(64).is_err());
        let broadcast = Layout::from_mode(4, 0);
        assert!(broadcast.complement(16).is_err());
    }

    #[test]
    fn logical_divide_tiles_a_vector() {
        // 16 elements, tile of 4 contiguous elements.
        let a = Layout::identity(16);
        let tiler = Layout::from_mode(4, 1);
        let (intra, inter) = a.zipped_divide(&tiler).unwrap();
        assert_eq!(intra.size(), 4);
        assert_eq!(inter.size(), 4);
        // Tile 2, element 3 is global element 11.
        assert_eq!(intra.map(3) + inter.map(2), 11);
    }

    #[test]
    fn logical_divide_strided_tiler() {
        let a = Layout::identity(24);
        let tiler = Layout::from_mode(3, 8);
        let (intra, inter) = a.zipped_divide(&tiler).unwrap();
        assert_eq!(intra.size(), 3);
        assert_eq!(inter.size(), 8);
        let mut seen: Vec<usize> = Vec::new();
        for t in 0..inter.size() {
            for e in 0..intra.size() {
                seen.push(intra.map(e) + inter.map(t));
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn logical_product_repeats_a_tile() {
        let tile = Layout::from_mode(4, 1);
        let repeat = Layout::from_mode(3, 1);
        let prod = tile.logical_product(&repeat).unwrap();
        assert_eq!(prod.size(), 12);
        let mut image = prod.image();
        image.sort_unstable();
        assert_eq!(image, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn compose_identity_is_identity() {
        let a = Layout::new(ituple![(2, 4), (2, 2)], ituple![(8, 1), (4, 16)]).unwrap();
        let id = Layout::identity(a.size());
        let r = a.compose(&id).unwrap();
        assert!(r.equivalent(&a));
        let l = Layout::identity(a.cosize()).compose(&a).unwrap();
        assert!(l.equivalent(&a));
    }

    #[test]
    fn compose_associativity_on_examples() {
        let a = Layout::from_flat(&[8, 8], &[8, 1]);
        let b = Layout::from_flat(&[4, 4], &[2, 16]);
        let c = Layout::from_flat(&[2, 2], &[1, 4]);
        let ab_c = a.compose(&b).unwrap().compose(&c).unwrap();
        let a_bc = a.compose(&b.compose(&c).unwrap()).unwrap();
        assert!(ab_c.equivalent(&a_bc));
    }

    #[test]
    fn fast_and_reference_paths_agree_on_the_paper_examples() {
        crate::fastpath::set_enabled(true);
        let g = Layout::new(ituple![(4, 8), (2, 2, 2)], ituple![(32, 1), (16, 8, 256)]).unwrap();
        let q = Layout::new(ituple![(4, 8), (2, 4)], ituple![(64, 1), (32, 8)]).unwrap();
        assert_eq!(
            g.compose(&q.right_inverse().unwrap()).unwrap(),
            g.compose_reference(&q.right_inverse_reference().unwrap())
                .unwrap()
        );
        let a = Layout::from_flat(&[4, 2], &[1, 16]);
        assert_eq!(
            a.complement(64).unwrap(),
            a.complement_reference(64).unwrap()
        );
        assert_eq!(
            a.interior_complement().unwrap(),
            a.interior_complement_reference().unwrap()
        );
        let strided = Layout::from_mode(4, 2);
        assert_eq!(
            strided.left_inverse().unwrap(),
            strided.left_inverse_reference().unwrap()
        );
        let id = Layout::identity(24);
        let tiler = Layout::from_mode(3, 8);
        assert_eq!(
            id.logical_divide(&tiler).unwrap(),
            id.logical_divide_reference(&tiler).unwrap()
        );
        let tile = Layout::from_mode(4, 1);
        let rep = Layout::from_mode(3, 1);
        assert_eq!(
            tile.logical_product(&rep).unwrap(),
            tile.logical_product_reference(&rep).unwrap()
        );
    }
}
