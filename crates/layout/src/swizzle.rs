//! XOR swizzle functors and swizzled layouts, used to eliminate shared-memory
//! bank conflicts (Section V of the paper).

use std::fmt;

use crate::layout::Layout;

/// The generic CuTe swizzle functor `Swizzle<B, M, S>`.
///
/// A swizzle permutes integer offsets by XOR-ing a group of `bits` bits taken
/// `shift` positions above the target group onto the target group, leaving
/// the lowest `base` bits untouched:
///
/// ```text
/// apply(x) = x ^ ((x >> shift) & (((1 << bits) - 1) << base))
/// ```
///
/// Because the source bits are strictly above the modified bits (for
/// `shift > 0`), applying the swizzle twice restores the input: the swizzle
/// is an involution and therefore a bijection.
///
/// # Examples
///
/// ```
/// use hexcute_layout::Swizzle;
///
/// let s = Swizzle::new(3, 3, 3);
/// let x = 0b101_010_111;
/// assert_eq!(s.apply(s.apply(x)), x);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Swizzle {
    /// Number of bits in the swizzle mask (`B`).
    bits: u32,
    /// Number of least-significant bits left untouched (`M`).
    base: u32,
    /// Distance between the source and target bit groups (`S`).
    shift: u32,
}

impl Swizzle {
    /// Creates a swizzle functor `Swizzle<bits, base, shift>`.
    pub fn new(bits: u32, base: u32, shift: u32) -> Self {
        Swizzle { bits, base, shift }
    }

    /// The identity swizzle (no permutation).
    pub fn identity() -> Self {
        Swizzle {
            bits: 0,
            base: 0,
            shift: 0,
        }
    }

    /// Returns `true` if this swizzle performs no permutation.
    pub fn is_identity(&self) -> bool {
        self.bits == 0
    }

    /// Number of bits in the swizzle mask.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of untouched least-significant bits.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Distance between the source and target bit groups.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Applies the swizzle to an offset.
    pub fn apply(&self, offset: usize) -> usize {
        if self.bits == 0 {
            return offset;
        }
        let mask = ((1usize << self.bits) - 1) << self.base;
        offset ^ ((offset >> self.shift) & mask)
    }

    /// Whether the swizzle is a bijection on addresses.
    ///
    /// `apply` XORs the bits at `[base, base + bits)` with the bits at
    /// `[base + shift, base + shift + bits)`. When the two ranges are
    /// disjoint (`shift >= bits`) the source bits pass through unchanged, so
    /// the XOR term can be recomputed from the output and undone — the map
    /// is its own inverse. Every swizzle in [`Swizzle::candidates`] is
    /// bijective; composing a bijection with a layout preserves the layout's
    /// injectivity, which lets the swizzle-scoring loop check the base
    /// layout once instead of re-walking the domain per swizzle.
    pub fn is_bijective(&self) -> bool {
        self.bits == 0 || self.shift >= self.bits
    }

    /// The standard candidate swizzles enumerated by the shared-memory layout
    /// pass, ordered from the strongest (128-byte) to the identity.
    pub fn candidates() -> Vec<Swizzle> {
        vec![
            Swizzle::new(3, 3, 3),
            Swizzle::new(2, 3, 3),
            Swizzle::new(1, 3, 3),
            Swizzle::new(2, 4, 3),
            Swizzle::new(3, 2, 3),
            Swizzle::identity(),
        ]
    }
}

impl fmt::Display for Swizzle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Swizzle<{},{},{}>", self.bits, self.base, self.shift)
    }
}

/// A shared-memory layout `M = S ∘ m`: a base layout `m` mapping coordinates
/// to addresses followed by a swizzle `S` permuting the addresses to avoid
/// bank conflicts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SwizzledLayout {
    swizzle: Swizzle,
    layout: Layout,
}

impl SwizzledLayout {
    /// Creates a swizzled layout from a swizzle and a base layout.
    pub fn new(swizzle: Swizzle, layout: Layout) -> Self {
        SwizzledLayout { swizzle, layout }
    }

    /// A swizzled layout with the identity swizzle.
    pub fn unswizzled(layout: Layout) -> Self {
        SwizzledLayout {
            swizzle: Swizzle::identity(),
            layout,
        }
    }

    /// The swizzle component.
    pub fn swizzle(&self) -> &Swizzle {
        &self.swizzle
    }

    /// The base layout component.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The domain size of the base layout.
    pub fn size(&self) -> usize {
        self.layout.size()
    }

    /// Evaluates `S(m(index))`.
    pub fn map(&self, index: usize) -> usize {
        self.swizzle.apply(self.layout.map(index))
    }

    /// Evaluates `S(m(coords))` on a flat hierarchical coordinate.
    pub fn map_coords(&self, coords: &[usize]) -> usize {
        self.swizzle.apply(self.layout.map_coords(coords))
    }

    /// Returns `true` when the function remains injective over the domain.
    pub fn is_injective(&self) -> bool {
        // A bijective swizzle cannot merge two distinct addresses, so the
        // composite is injective exactly when the base layout is — and the
        // base check uses the dense-bitmap fast path.
        if self.swizzle.is_bijective() {
            return self.layout.is_injective();
        }
        let mut seen = std::collections::HashSet::with_capacity(self.size());
        (0..self.size()).all(|i| seen.insert(self.map(i)))
    }
}

impl fmt::Display for SwizzledLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.swizzle.is_identity() {
            write!(f, "{}", self.layout)
        } else {
            write!(f, "{} ∘ {}", self.swizzle, self.layout)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_swizzle_is_noop() {
        let s = Swizzle::identity();
        for x in 0..256 {
            assert_eq!(s.apply(x), x);
        }
    }

    #[test]
    fn swizzle_is_an_involution() {
        for s in Swizzle::candidates() {
            for x in 0..2048usize {
                assert_eq!(s.apply(s.apply(x)), x, "{s} not involutive at {x}");
            }
        }
    }

    #[test]
    fn swizzle_is_a_bijection_on_aligned_blocks() {
        let s = Swizzle::new(3, 3, 3);
        let n = 1usize << 10;
        let mut seen = vec![false; n];
        for x in 0..n {
            let y = s.apply(x);
            assert!(y < n);
            assert!(!seen[y]);
            seen[y] = true;
        }
    }

    #[test]
    fn swizzle_preserves_low_bits() {
        let s = Swizzle::new(3, 3, 3);
        for x in 0..1024usize {
            assert_eq!(s.apply(x) & 0b111, x & 0b111);
        }
    }

    #[test]
    fn classic_128b_swizzle_breaks_column_pattern() {
        // Without a swizzle, a column access of a 64-wide row-major fp16 tile
        // hits the same bank group every row; the swizzle spreads it.
        let s = Swizzle::new(3, 3, 3);
        let row_major = Layout::row_major(&[8, 64]);
        let swizzled = SwizzledLayout::new(s, row_major.clone());
        let plain_addresses: Vec<usize> =
            (0..8).map(|r| row_major.map_coords(&[r, 0]) / 8).collect();
        let swizzled_addresses: Vec<usize> =
            (0..8).map(|r| swizzled.map_coords(&[r, 0]) / 8).collect();
        // Plain: every row maps to 128-bit chunk index ≡ 0 (mod 8) → same bank group.
        assert!(plain_addresses.iter().all(|&a| a % 8 == 0));
        // Swizzled: the chunk indices hit 8 distinct groups.
        let distinct: std::collections::HashSet<usize> =
            swizzled_addresses.iter().map(|&a| a % 8).collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn swizzled_layout_injective() {
        let base = Layout::row_major(&[16, 64]);
        for s in Swizzle::candidates() {
            let sl = SwizzledLayout::new(s, base.clone());
            assert!(sl.is_injective(), "{sl} lost injectivity");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Swizzle::new(3, 3, 3).to_string(), "Swizzle<3,3,3>");
        let sl = SwizzledLayout::unswizzled(Layout::from_mode(8, 1));
        assert_eq!(sl.to_string(), "8:1");
    }
}
