//! Thread-value (TV) layouts: the distribution of a register tensor across
//! the threads of a thread block (Section II-A of the paper).
//!
//! A TV layout is a layout with two top-level modes — a *thread* mode and a
//! *value* mode — mapping a `(thread, value)` pair to a column-major linear
//! index within a logical tile.

use std::fmt;

use crate::error::{LayoutError, Result};
use crate::layout::Layout;

/// A thread-value layout over a logical tile.
///
/// # Examples
///
/// The register tensor of Fig. 1(b)/Fig. 2(b) of the paper: a 4×8 tile
/// distributed across 8 threads, 4 values per thread.
///
/// ```
/// use hexcute_layout::{Layout, TvLayout};
///
/// let f = TvLayout::new(
///     Layout::from_flat(&[2, 4], &[8, 1]),
///     Layout::from_flat(&[2, 2], &[4, 16]),
///     vec![4, 8],
/// ).unwrap();
/// // (tid, vid) = (2, 3) maps to coordinates (1, 5) in the 4x8 tile.
/// assert_eq!(f.tile_coords(2, 3), vec![1, 5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TvLayout {
    thread: Layout,
    value: Layout,
    tile_shape: Vec<usize>,
}

/// A repetition mode used when expanding an instruction atom over a larger
/// operation tile (see [`TvLayout::expand`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepeatMode {
    /// Number of repetitions contributed by this mode.
    pub size: usize,
    /// The tile dimension the repetitions advance along, or `None` for a
    /// broadcast mode (the repeated copies alias the same data, stride 0).
    pub dim: Option<usize>,
}

impl RepeatMode {
    /// A repetition advancing along tile dimension `dim`.
    pub fn along(size: usize, dim: usize) -> Self {
        RepeatMode {
            size,
            dim: Some(dim),
        }
    }

    /// A broadcast repetition: the extra threads/values alias the same data.
    pub fn broadcast(size: usize) -> Self {
        RepeatMode { size, dim: None }
    }
}

impl TvLayout {
    /// Creates a TV layout from thread and value layouts over a tile of the
    /// given shape (column-major linearization).
    ///
    /// # Errors
    ///
    /// Returns a structural error when the layout addresses indices outside
    /// the tile.
    pub fn new(thread: Layout, value: Layout, tile_shape: Vec<usize>) -> Result<Self> {
        let tile_size: usize = tile_shape.iter().product();
        let size = thread.size() * value.size();
        // cosize of the combined (thread, value) layout, computed without
        // cloning the trees into a pair: index size-1 decomposes to the
        // maximal digit in every mode of both components.
        if size > 0 {
            let cosize = thread.map(thread.size() - 1) + value.map(value.size() - 1) + 1;
            if cosize > tile_size {
                let full = Layout::make_pair(&thread, &value);
                debug_assert_eq!(cosize, full.cosize());
                return Err(LayoutError::Structural(format!(
                    "thread-value layout {full} addresses {cosize} elements but the tile only has {tile_size}"
                )));
            }
        }
        Ok(TvLayout {
            thread,
            value,
            tile_shape,
        })
    }

    /// The canonical fully-distributed TV layout: `threads` consecutive
    /// threads each own `values` consecutive elements of a flat tile, with
    /// thread blocks repeating until the tile is covered.
    ///
    /// This is the layout produced by coalescing a contiguous copy.
    pub fn contiguous(threads: usize, values: usize, tile_shape: Vec<usize>) -> Result<Self> {
        let tile_size: usize = tile_shape.iter().product();
        let per_round = threads * values;
        if per_round == 0 || !tile_size.is_multiple_of(per_round) {
            return Err(LayoutError::Structural(format!(
                "tile of {tile_size} elements cannot be covered by {threads} threads × {values} values"
            )));
        }
        let rounds = tile_size / per_round;
        let thread = Layout::from_mode(threads, values);
        let value = if rounds == 1 {
            Layout::from_mode(values, 1)
        } else {
            Layout::from_flat(&[values, rounds], &[1, per_round])
        };
        TvLayout::new(thread, value, tile_shape)
    }

    /// The thread-mode layout.
    pub fn thread(&self) -> &Layout {
        &self.thread
    }

    /// The value-mode layout.
    pub fn value(&self) -> &Layout {
        &self.value
    }

    /// The logical tile shape.
    pub fn tile_shape(&self) -> &[usize] {
        &self.tile_shape
    }

    /// The total number of elements in the tile.
    pub fn tile_size(&self) -> usize {
        self.tile_shape.iter().product()
    }

    /// The number of threads participating in the layout.
    pub fn num_threads(&self) -> usize {
        self.thread.size()
    }

    /// The number of values owned by each thread.
    pub fn values_per_thread(&self) -> usize {
        self.value.size()
    }

    /// The combined `(thread, value)` layout.
    pub fn as_layout(&self) -> Layout {
        Layout::make_pair(&self.thread, &self.value)
    }

    /// Maps a `(thread, value)` pair to the column-major linear index within
    /// the tile.
    pub fn map(&self, thread: usize, value: usize) -> usize {
        self.thread.map(thread) + self.value.map(value)
    }

    /// Maps a `(thread, value)` pair to coordinates within the tile.
    pub fn tile_coords(&self, thread: usize, value: usize) -> Vec<usize> {
        let mut index = self.map(thread, value);
        let mut coords = Vec::with_capacity(self.tile_shape.len());
        for (i, &extent) in self.tile_shape.iter().enumerate() {
            if i + 1 == self.tile_shape.len() {
                coords.push(index);
            } else {
                coords.push(index % extent);
                index /= extent;
            }
        }
        coords
    }

    /// The inverse mapping (tile linear index → thread-value linear index),
    /// defined when the TV layout is a compact bijection onto the tile.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::NotInvertible`] when threads alias tile
    /// elements (broadcast layouts) or the tile is not fully covered.
    pub fn inverse(&self) -> Result<Layout> {
        let full = self.as_layout();
        if full.size() != self.tile_size() {
            return Err(LayoutError::NotInvertible {
                layout: full.to_string(),
                reason: format!(
                    "thread-value domain {} does not match tile size {}",
                    full.size(),
                    self.tile_size()
                ),
            });
        }
        full.right_inverse()
    }

    /// Returns `true` when every tile element is owned by exactly one
    /// `(thread, value)` pair.
    pub fn is_exclusive(&self) -> bool {
        let full = self.as_layout();
        full.size() == self.tile_size() && full.is_compact_bijection()
    }

    /// Returns all `(thread, value)` pairs owning the given tile linear
    /// index. Broadcast layouts return more than one pair.
    pub fn owners_of(&self, tile_index: usize) -> Vec<(usize, usize)> {
        let mut owners = Vec::new();
        for t in 0..self.num_threads() {
            for v in 0..self.values_per_thread() {
                if self.map(t, v) == tile_index {
                    owners.push((t, v));
                }
            }
        }
        owners
    }

    /// Expands an instruction atom over a larger operation tile.
    ///
    /// `thread_tiles` appends extra thread modes (e.g. the warp grid) and
    /// `value_tiles` appends extra value modes (e.g. the per-thread iteration
    /// over instruction invocations). Modes are laid out innermost-first
    /// along each tile dimension: first the atom, then thread tiles in order,
    /// then value tiles in order.
    ///
    /// # Errors
    ///
    /// Returns an error when the atom cannot be embedded in the enlarged
    /// tile (should not happen for well-formed repetitions).
    pub fn expand(
        &self,
        thread_tiles: &[RepeatMode],
        value_tiles: &[RepeatMode],
    ) -> Result<TvLayout> {
        let ndim = self.tile_shape.len();
        let mut final_shape = self.tile_shape.clone();
        for rm in thread_tiles.iter().chain(value_tiles.iter()) {
            if let Some(d) = rm.dim {
                if d >= ndim {
                    return Err(LayoutError::Structural(format!(
                        "repeat dimension {d} out of range for a rank-{ndim} tile"
                    )));
                }
                final_shape[d] *= rm.size;
            }
        }
        // Column-major strides of the final tile.
        let mut final_strides = vec![1usize; ndim];
        for d in 1..ndim {
            final_strides[d] = final_strides[d - 1] * final_shape[d - 1];
        }
        // Embed the atom into the final tile: a layout that re-linearizes
        // atom-tile indices as final-tile indices.
        let embed = Layout::from_flat(&self.tile_shape, &final_strides);
        let atom_thread = embed.compose(&self.thread)?;
        let atom_value = embed.compose(&self.value)?;

        let mut extent = self.tile_shape.clone();
        let mut make_modes = |tiles: &[RepeatMode]| -> Vec<(usize, usize)> {
            tiles
                .iter()
                .map(|rm| match rm.dim {
                    Some(d) => {
                        let stride = extent[d] * final_strides[d];
                        extent[d] *= rm.size;
                        (rm.size, stride)
                    }
                    None => (rm.size, 0),
                })
                .collect()
        };
        let thread_modes = make_modes(thread_tiles);
        let value_modes = make_modes(value_tiles);

        let thread = if thread_modes.is_empty() {
            atom_thread
        } else {
            Layout::concat(&[atom_thread, Layout::from_modes(&thread_modes)])
        };
        let value = if value_modes.is_empty() {
            atom_value
        } else {
            Layout::concat(&[atom_value, Layout::from_modes(&value_modes)])
        };
        TvLayout::new(thread, value, final_shape)
    }
}

impl fmt::Display for TvLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{}):({},{}) over {:?}",
            self.thread.shape(),
            self.value.shape(),
            self.thread.stride(),
            self.value.stride(),
            self.tile_shape
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ituple;

    fn paper_fig1b() -> TvLayout {
        TvLayout::new(
            Layout::from_flat(&[2, 4], &[8, 1]),
            Layout::from_flat(&[2, 2], &[4, 16]),
            vec![4, 8],
        )
        .unwrap()
    }

    #[test]
    fn paper_fig1b_mapping() {
        let f = paper_fig1b();
        assert_eq!(f.num_threads(), 8);
        assert_eq!(f.values_per_thread(), 4);
        assert_eq!(f.map(2, 3), 21);
        assert_eq!(f.tile_coords(2, 3), vec![1, 5]);
        assert_eq!(f.tile_coords(0, 0), vec![0, 0]);
        assert!(f.is_exclusive());
    }

    #[test]
    fn rejects_out_of_tile_layouts() {
        let err = TvLayout::new(Layout::from_mode(8, 8), Layout::from_mode(4, 1), vec![4, 8])
            .unwrap_err();
        assert!(matches!(err, LayoutError::Structural(_)));
    }

    #[test]
    fn ldmatrix_layouts_from_fig7() {
        // p: 32 threads each providing one 8-element row pointer.
        let p = TvLayout::new(
            Layout::from_mode(32, 1),
            Layout::from_mode(8, 32),
            vec![8, 32],
        )
        .unwrap();
        // q: the register distribution after the load.
        let q = TvLayout::new(
            Layout::new(ituple![4, 8], ituple![64, 1]).unwrap(),
            Layout::new(ituple![2, 4], ituple![32, 8]).unwrap(),
            vec![8, 32],
        )
        .unwrap();
        assert!(p.is_exclusive());
        assert!(q.is_exclusive());
        let q_inv = q.inverse().unwrap();
        let expected = Layout::new(ituple![(8, 4), (2, 4)], ituple![(4, 64), (32, 1)]).unwrap();
        assert!(q_inv.equivalent(&expected));
    }

    #[test]
    fn contiguous_layout_covers_tile() {
        let tv = TvLayout::contiguous(32, 8, vec![64, 64]).unwrap();
        assert_eq!(tv.num_threads(), 32);
        assert_eq!(tv.values_per_thread(), 8 * 16);
        assert!(tv.is_exclusive());
        // Thread 1's first element starts right after thread 0's 8 elements.
        assert_eq!(tv.map(1, 0), 8);
        // Second round starts after 32 * 8 elements.
        assert_eq!(tv.map(0, 8), 256);
    }

    #[test]
    fn contiguous_rejects_uncoverable_tiles() {
        assert!(TvLayout::contiguous(32, 8, vec![100]).is_err());
    }

    #[test]
    fn owners_of_broadcast_layout() {
        // Two "warps" both hold the whole 4-element tile.
        let tv = TvLayout::new(
            Layout::from_flat(&[4, 2], &[1, 0]),
            Layout::from_mode(1, 0),
            vec![4],
        )
        .unwrap();
        assert!(!tv.is_exclusive());
        let owners = tv.owners_of(2);
        assert_eq!(owners, vec![(2, 0), (6, 0)]);
    }

    #[test]
    fn expand_mma_atom_over_block_tile() {
        // The m16n8k16 mma C-operand atom: 32 threads, 4 values over a 16x8 tile.
        let atom = TvLayout::new(
            Layout::new(ituple![4, 8], ituple![32, 1]).unwrap(),
            Layout::new(ituple![2, 2], ituple![16, 8]).unwrap(),
            vec![16, 8],
        )
        .unwrap();
        assert!(atom.is_exclusive());
        // Expand to a 64x64 block tile: 2x2 warps, 2x4 value repetitions.
        let full = atom
            .expand(
                &[RepeatMode::along(2, 0), RepeatMode::along(2, 1)],
                &[RepeatMode::along(2, 0), RepeatMode::along(4, 1)],
            )
            .unwrap();
        assert_eq!(full.tile_shape(), &[64, 64]);
        assert_eq!(full.num_threads(), 128);
        assert_eq!(full.values_per_thread(), 32);
        assert!(full.is_exclusive());
        // Thread 0 of warp 0 still owns element (0, 0).
        assert_eq!(full.tile_coords(0, 0), vec![0, 0]);
        // The first thread of warp (1, 0) (thread 32) owns element (16, 0).
        assert_eq!(full.tile_coords(32, 0), vec![16, 0]);
        // The first thread of warp (0, 1) (thread 64) owns element (0, 8).
        assert_eq!(full.tile_coords(64, 0), vec![0, 8]);
    }

    #[test]
    fn expand_with_broadcast_threads() {
        // An A-operand style layout: warps along N do not advance over A.
        let atom = TvLayout::new(
            Layout::new(ituple![4, 8], ituple![32, 1]).unwrap(),
            Layout::new(ituple![2, 2], ituple![16, 8]).unwrap(),
            vec![16, 8],
        )
        .unwrap();
        let full = atom
            .expand(
                &[RepeatMode::along(2, 0), RepeatMode::broadcast(2)],
                &[RepeatMode::along(2, 1)],
            )
            .unwrap();
        assert_eq!(full.tile_shape(), &[32, 16]);
        assert_eq!(full.num_threads(), 128);
        assert!(!full.is_exclusive());
        // Threads 64.. replicate the data of threads 0..64.
        assert_eq!(full.map(0, 0), full.map(64, 0));
        assert_eq!(full.map(35, 2), full.map(99, 2));
    }

    #[test]
    fn expand_rejects_bad_dims() {
        let atom = paper_fig1b();
        assert!(atom.expand(&[RepeatMode::along(2, 5)], &[]).is_err());
    }

    #[test]
    fn display_mentions_tile() {
        let f = paper_fig1b();
        let s = f.to_string();
        assert!(s.contains("[4, 8]"));
    }
}
