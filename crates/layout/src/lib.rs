//! # hexcute-layout
//!
//! CuTe-style layout algebra: the mathematical substrate of the Hexcute
//! compiler (CGO 2026).
//!
//! A *layout* is a function from integers to integers described by a pair of
//! congruent, hierarchical shape and stride tuples. Layouts describe how
//! tensors are arranged in memory and how register tensors are distributed
//! across GPU threads (*thread-value layouts*). Layouts form a monoid under
//! composition, and the composition/inversion/complement operations in this
//! crate are what Hexcute's layout-synthesis constraints are built from.
//!
//! ## Quick start
//!
//! ```
//! use hexcute_layout::{ituple, Layout, TvLayout};
//!
//! // The row-major-interleaved shared-memory layout of Fig. 1(a).
//! let m = Layout::new(ituple![(2, 2), 8], ituple![(1, 16), 2])?;
//! assert_eq!(m.map_coords(&[0, 1, 4]), 24);
//!
//! // The register-tensor distribution of Fig. 1(b).
//! let f = TvLayout::new(
//!     Layout::from_flat(&[2, 4], &[8, 1]),
//!     Layout::from_flat(&[2, 2], &[4, 16]),
//!     vec![4, 8],
//! )?;
//! assert_eq!(f.tile_coords(2, 3), vec![1, 5]);
//! # Ok::<(), hexcute_layout::LayoutError>(())
//! ```
//!
//! The crate also provides XOR [`Swizzle`] functors and [`SwizzledLayout`]s
//! used for bank-conflict-free shared-memory layouts.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algebra;
mod error;
pub mod fastpath;
mod flat;
mod int_tuple;
mod layout;
mod swizzle;
mod tv;

pub use error::{LayoutError, Result};
pub use fastpath::{
    cache_stats, clear_cache, enabled as fast_path_enabled, set_enabled as set_fast_path,
    CacheStats,
};
pub use flat::FlatLayout;
pub use int_tuple::IntTuple;
pub use layout::Layout;
pub use swizzle::{Swizzle, SwizzledLayout};
pub use tv::{RepeatMode, TvLayout};
