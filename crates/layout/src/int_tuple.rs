//! Hierarchical integer tuples, the building block of CuTe-style layouts.
//!
//! An [`IntTuple`] is either a single non-negative integer or a nested tuple
//! of integer tuples. Shapes and strides of layouts are both represented as
//! `IntTuple`s with *congruent* profiles (the same nesting structure).

use std::fmt;

/// A hierarchical (possibly nested) tuple of non-negative integers.
///
/// # Examples
///
/// ```
/// use hexcute_layout::IntTuple;
///
/// let t = IntTuple::from(vec![IntTuple::from(2), IntTuple::tuple(vec![3usize.into(), 4usize.into()])]);
/// assert_eq!(t.product(), 24);
/// assert_eq!(t.flatten(), vec![2, 3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IntTuple {
    /// A leaf integer.
    Int(usize),
    /// A nested tuple of integer tuples.
    Tuple(Vec<IntTuple>),
}

impl IntTuple {
    /// Creates a leaf integer tuple.
    pub fn int(v: usize) -> Self {
        IntTuple::Int(v)
    }

    /// Creates a nested tuple from a list of children.
    pub fn tuple(children: Vec<IntTuple>) -> Self {
        IntTuple::Tuple(children)
    }

    /// Returns `true` when this node is a leaf integer.
    pub fn is_int(&self) -> bool {
        matches!(self, IntTuple::Int(_))
    }

    /// Returns the leaf value if this node is a leaf.
    pub fn as_int(&self) -> Option<usize> {
        match self {
            IntTuple::Int(v) => Some(*v),
            IntTuple::Tuple(_) => None,
        }
    }

    /// Returns the children if this node is a tuple.
    pub fn as_tuple(&self) -> Option<&[IntTuple]> {
        match self {
            IntTuple::Int(_) => None,
            IntTuple::Tuple(children) => Some(children),
        }
    }

    /// The number of top-level modes. A leaf has rank 1.
    pub fn rank(&self) -> usize {
        match self {
            IntTuple::Int(_) => 1,
            IntTuple::Tuple(children) => children.len(),
        }
    }

    /// The nesting depth. A leaf has depth 0.
    pub fn depth(&self) -> usize {
        match self {
            IntTuple::Int(_) => 0,
            IntTuple::Tuple(children) => {
                1 + children.iter().map(IntTuple::depth).max().unwrap_or(0)
            }
        }
    }

    /// The product of all leaves. An empty tuple has product 1.
    pub fn product(&self) -> usize {
        match self {
            IntTuple::Int(v) => *v,
            IntTuple::Tuple(children) => children.iter().map(IntTuple::product).product(),
        }
    }

    /// The number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            IntTuple::Int(_) => 1,
            IntTuple::Tuple(children) => children.iter().map(IntTuple::leaf_count).sum(),
        }
    }

    /// Flattens the tuple into a left-to-right list of leaves.
    pub fn flatten(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.leaf_count());
        self.flatten_into(&mut out);
        out
    }

    fn flatten_into(&self, out: &mut Vec<usize>) {
        match self {
            IntTuple::Int(v) => out.push(*v),
            IntTuple::Tuple(children) => {
                for child in children {
                    child.flatten_into(out);
                }
            }
        }
    }

    /// Returns the `i`-th top-level mode. A leaf is its own single mode.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn mode(&self, i: usize) -> &IntTuple {
        match self {
            IntTuple::Int(_) => {
                assert_eq!(i, 0, "leaf IntTuple only has mode 0");
                self
            }
            IntTuple::Tuple(children) => &children[i],
        }
    }

    /// Returns `true` when `self` and `other` have the same nesting profile
    /// (identical structure, ignoring leaf values).
    pub fn congruent(&self, other: &IntTuple) -> bool {
        match (self, other) {
            (IntTuple::Int(_), IntTuple::Int(_)) => true,
            (IntTuple::Tuple(a), IntTuple::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.congruent(y))
            }
            _ => false,
        }
    }

    /// Rebuilds an `IntTuple` with this node's profile from a flat list of
    /// leaf values. Returns `None` when the number of leaves does not match.
    pub fn unflatten(&self, leaves: &[usize]) -> Option<IntTuple> {
        let mut iter = leaves.iter().copied();
        let out = self.unflatten_from(&mut iter)?;
        if iter.next().is_some() {
            return None;
        }
        Some(out)
    }

    fn unflatten_from<I: Iterator<Item = usize>>(&self, iter: &mut I) -> Option<IntTuple> {
        match self {
            IntTuple::Int(_) => iter.next().map(IntTuple::Int),
            IntTuple::Tuple(children) => {
                let mut out = Vec::with_capacity(children.len());
                for child in children {
                    out.push(child.unflatten_from(iter)?);
                }
                Some(IntTuple::Tuple(out))
            }
        }
    }

    /// Converts a column-major linear index within `self` (interpreted as a
    /// shape) into a flat coordinate list, leftmost leaf fastest.
    ///
    /// Indices beyond the product wrap modulo every mode except the last,
    /// matching CuTe's convention of extending the last mode.
    pub fn index_to_coords(&self, index: usize) -> Vec<usize> {
        let shape = self.flatten();
        let mut coords = Vec::with_capacity(shape.len());
        let mut rest = index;
        for (i, &s) in shape.iter().enumerate() {
            if i + 1 == shape.len() {
                coords.push(rest);
            } else {
                let s = s.max(1);
                coords.push(rest % s);
                rest /= s;
            }
        }
        coords
    }

    /// Converts a flat coordinate list into a column-major linear index
    /// within `self` interpreted as a shape.
    ///
    /// # Panics
    ///
    /// Panics if the number of coordinates does not match the leaf count.
    pub fn coords_to_index(&self, coords: &[usize]) -> usize {
        let shape = self.flatten();
        assert_eq!(shape.len(), coords.len(), "coordinate rank mismatch");
        let mut index = 0usize;
        let mut scale = 1usize;
        for (&c, &s) in coords.iter().zip(shape.iter()) {
            index += c * scale;
            scale *= s.max(1);
        }
        index
    }
}

impl From<usize> for IntTuple {
    fn from(v: usize) -> Self {
        IntTuple::Int(v)
    }
}

impl From<Vec<IntTuple>> for IntTuple {
    fn from(children: Vec<IntTuple>) -> Self {
        IntTuple::Tuple(children)
    }
}

impl From<&[usize]> for IntTuple {
    fn from(values: &[usize]) -> Self {
        IntTuple::Tuple(values.iter().map(|&v| IntTuple::Int(v)).collect())
    }
}

impl From<Vec<usize>> for IntTuple {
    fn from(values: Vec<usize>) -> Self {
        IntTuple::from(values.as_slice())
    }
}

impl fmt::Display for IntTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntTuple::Int(v) => write!(f, "{v}"),
            IntTuple::Tuple(children) => {
                write!(f, "(")?;
                for (i, child) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{child}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Constructs an [`IntTuple`] from a nested parenthesised expression.
///
/// # Examples
///
/// ```
/// use hexcute_layout::{ituple, IntTuple};
///
/// let t = ituple![(2, 2), 8];
/// assert_eq!(t.flatten(), vec![2, 2, 8]);
/// assert_eq!(t.to_string(), "((2,2),8)");
/// ```
#[macro_export]
macro_rules! ituple {
    // Entry: a comma-separated list of elements becomes a tuple.
    ($($elem:tt),+ $(,)?) => {
        $crate::IntTuple::Tuple(vec![$($crate::ituple!(@elem $elem)),+])
    };
    (@elem ( $($inner:tt),+ $(,)? )) => {
        $crate::IntTuple::Tuple(vec![$($crate::ituple!(@elem $inner)),+])
    };
    (@elem $value:expr) => {
        $crate::IntTuple::Int($value)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_basics() {
        let t = IntTuple::int(7);
        assert!(t.is_int());
        assert_eq!(t.as_int(), Some(7));
        assert_eq!(t.rank(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.product(), 7);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.flatten(), vec![7]);
        assert_eq!(t.to_string(), "7");
    }

    #[test]
    fn nested_basics() {
        let t = ituple![(2, 2), 8];
        assert!(!t.is_int());
        assert_eq!(t.rank(), 2);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.product(), 32);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.flatten(), vec![2, 2, 8]);
        assert_eq!(t.to_string(), "((2,2),8)");
    }

    #[test]
    fn congruence() {
        let a = ituple![(2, 2), 8];
        let b = ituple![(1, 16), 2];
        let c = ituple![2, (2, 8)];
        assert!(a.congruent(&b));
        assert!(!a.congruent(&c));
        assert!(!a.congruent(&IntTuple::int(3)));
    }

    #[test]
    fn unflatten_round_trip() {
        let profile = ituple![(2, 4), (2, 2)];
        let rebuilt = profile.unflatten(&[8, 1, 4, 16]).unwrap();
        assert_eq!(rebuilt, ituple![(8, 1), (4, 16)]);
        assert!(profile.unflatten(&[1, 2]).is_none());
        assert!(profile.unflatten(&[1, 2, 3, 4, 5]).is_none());
    }

    #[test]
    fn index_coord_round_trip() {
        let shape = ituple![(2, 4), (2, 2)];
        for idx in 0..shape.product() {
            let coords = shape.index_to_coords(idx);
            assert_eq!(shape.coords_to_index(&coords), idx);
        }
    }

    #[test]
    fn index_to_coords_extends_last_mode() {
        let shape = ituple![4, 8];
        let coords = shape.index_to_coords(35);
        assert_eq!(coords, vec![3, 8]);
    }

    #[test]
    fn from_slice() {
        let t: IntTuple = vec![4usize, 8].into();
        assert_eq!(t, ituple![4, 8]);
    }

    #[test]
    fn mode_access() {
        let t = ituple![(2, 2), 8];
        assert_eq!(t.mode(0), &ituple![2, 2]);
        assert_eq!(t.mode(1), &IntTuple::int(8));
        let leaf = IntTuple::int(5);
        assert_eq!(leaf.mode(0), &leaf);
    }

    #[test]
    fn empty_tuple_product_is_one() {
        let t = IntTuple::tuple(vec![]);
        assert_eq!(t.product(), 1);
        assert_eq!(t.leaf_count(), 0);
    }
}
