//! Property-based tests for the layout algebra.
//!
//! These check the algebraic laws the Hexcute synthesis engine relies on:
//! coalescing preserves the function, composition agrees with pointwise
//! function composition, inverses really invert, complements tile the target
//! interval, and swizzles are bijections.

use hexcute_layout::{Layout, Swizzle, SwizzledLayout, TvLayout};
use proptest::prelude::*;

/// Strategy producing small flat layouts whose modes have power-of-two-ish
/// shapes and strides built as products of previous extents (guaranteeing a
/// compact bijection when `compact` is true).
fn compact_layout(max_modes: usize) -> impl Strategy<Value = Layout> {
    proptest::collection::vec(1usize..=4, 1..=max_modes).prop_flat_map(|log_shapes| {
        let shapes: Vec<usize> = log_shapes.iter().map(|&l| 1usize << l).collect();
        let n = shapes.len();
        // Choose a permutation of the modes to order their strides.
        proptest::collection::vec(0usize..1000, n).prop_map(move |keys| {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| keys[i]);
            let mut strides = vec![0usize; n];
            let mut acc = 1usize;
            for &i in &order {
                strides[i] = acc;
                acc *= shapes[i];
            }
            Layout::from_flat(&shapes, &strides)
        })
    })
}

/// Strategy producing arbitrary (possibly non-injective) small layouts.
fn any_layout(max_modes: usize) -> impl Strategy<Value = Layout> {
    proptest::collection::vec((1usize..=6, 0usize..=12), 1..=max_modes)
        .prop_map(|modes| Layout::from_modes(&modes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn coalesce_preserves_the_function(layout in any_layout(4)) {
        let coalesced = layout.coalesce();
        prop_assert!(layout.equivalent(&coalesced), "{layout} != {coalesced}");
    }

    #[test]
    fn flatten_preserves_the_function(layout in any_layout(4)) {
        prop_assert!(layout.equivalent(&layout.flatten()));
    }

    #[test]
    fn compact_layouts_are_bijections(layout in compact_layout(4)) {
        prop_assert!(layout.is_compact_bijection());
    }

    #[test]
    fn right_inverse_inverts(layout in compact_layout(4)) {
        let inv = layout.right_inverse().unwrap();
        for j in 0..layout.size() {
            prop_assert_eq!(layout.map(inv.map(j)), j);
        }
        // The inverse of a compact bijection is itself a compact bijection.
        prop_assert!(inv.is_compact_bijection());
    }

    #[test]
    fn left_inverse_inverts_strided_layouts(
        layout in compact_layout(3),
        scale in 1usize..=4,
    ) {
        let strided = layout.scale_strides(scale);
        let linv = strided.left_inverse().unwrap();
        for i in 0..strided.size() {
            prop_assert_eq!(linv.map(strided.map(i)), i);
        }
    }

    #[test]
    fn composition_matches_pointwise(
        a in compact_layout(4),
        b in compact_layout(3),
        scale_log in 0usize..=2,
    ) {
        // Composition follows CuTe's admissibility conditions: the rhs must be
        // an injective, non-overlapping layout (a tiler). Restrict b so its
        // cosize stays inside a's domain, which keeps the comparison away
        // from the last-mode-extension region.
        let b = b.scale_strides(1 << scale_log);
        if b.cosize() <= a.size() {
            if let Ok(r) = a.compose(&b) {
                for i in 0..b.size() {
                    prop_assert_eq!(r.map(i), a.map(b.map(i)), "at index {}", i);
                }
            }
        }
    }

    #[test]
    fn composition_with_identity_is_identity(a in compact_layout(4)) {
        let id = Layout::identity(a.size());
        let r = a.compose(&id).unwrap();
        prop_assert!(r.equivalent(&a));
        let l = Layout::identity(a.cosize()).compose(&a).unwrap();
        prop_assert!(l.equivalent(&a));
    }

    #[test]
    fn complement_tiles_the_interval(layout in compact_layout(3), extra in 1usize..=3) {
        let strided = layout.scale_strides(2);
        let target = strided.cosize().next_power_of_two() * (1 << extra);
        if let Ok(c) = strided.complement(target) {
            let full = Layout::make_pair(&strided, &c);
            prop_assert_eq!(full.size(), target);
            prop_assert!(full.is_compact_bijection());
        }
    }

    #[test]
    fn logical_divide_partitions_the_domain(
        inner_log in 1usize..=3,
        outer_log in 1usize..=3,
    ) {
        let total = 1usize << (inner_log + outer_log + 2);
        let a = Layout::identity(total);
        let tiler = Layout::from_mode(1 << inner_log, 1 << outer_log);
        let (intra, inter) = a.zipped_divide(&tiler).unwrap();
        let mut seen: Vec<usize> = Vec::with_capacity(total);
        for t in 0..inter.size() {
            for e in 0..intra.size() {
                seen.push(intra.map(e) + inter.map(t));
            }
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn swizzles_are_bijections(bits in 0u32..=3, base in 0u32..=4, block in 0usize..8) {
        let s = Swizzle::new(bits, base, 3);
        let n = 1usize << 10;
        let offset = block * n;
        let mut seen = std::collections::HashSet::with_capacity(n);
        for x in offset..offset + n {
            prop_assert!(seen.insert(s.apply(x)));
            prop_assert_eq!(s.apply(s.apply(x)), x);
        }
    }

    #[test]
    fn swizzled_layouts_stay_injective(layout in compact_layout(4)) {
        for s in Swizzle::candidates() {
            let sl = SwizzledLayout::new(s, layout.clone());
            prop_assert!(sl.is_injective());
        }
    }

    #[test]
    fn contiguous_tv_layouts_are_exclusive(
        threads_log in 3usize..=7,
        values_log in 0usize..=3,
        rounds_log in 0usize..=2,
    ) {
        let threads = 1 << threads_log;
        let values = 1 << values_log;
        let total = threads * values * (1 << rounds_log);
        let tv = TvLayout::contiguous(threads, values, vec![total]).unwrap();
        prop_assert!(tv.is_exclusive());
        // Consecutive threads own consecutive vectors.
        prop_assert_eq!(tv.map(1, 0), values);
    }

    #[test]
    fn compose_right_inverse_is_identity(layout in compact_layout(4)) {
        // compose(A, right_inverse(A)) is the identity on [0, size).
        let inv = layout.right_inverse().unwrap();
        let r = layout.compose(&inv).unwrap();
        prop_assert_eq!(r.size(), layout.size());
        for j in 0..layout.size() {
            prop_assert_eq!(r.map(j), j, "identity violated at {}", j);
        }
    }

    #[test]
    fn right_inverse_then_left_inverse_round_trips(layout in compact_layout(4)) {
        // The left inverse of the right inverse maps back: L(R(j)) has
        // left_inverse(R) = A on compact bijections.
        let inv = layout.right_inverse().unwrap();
        let back = inv.right_inverse().unwrap();
        prop_assert!(back.equivalent(&layout), "{} !~ {}", back, layout);
    }

    #[test]
    fn complement_is_disjoint_and_sized(layout in compact_layout(3), extra in 1usize..=3) {
        // complement(A, target): the images of A and its complement meet only
        // at 0, sizes multiply to the target, and the pair covers [0, target).
        let strided = layout.scale_strides(2);
        let target = strided.cosize().next_power_of_two() * (1 << extra);
        if let Ok(c) = strided.complement(target) {
            prop_assert_eq!(strided.size() * c.size(), target);
            let a_img: std::collections::HashSet<usize> = strided.image().into_iter().collect();
            for j in 1..c.size() {
                prop_assert!(!a_img.contains(&c.map(j)), "complement output {} collides", c.map(j));
            }
            let pair = Layout::make_pair(&strided, &c);
            prop_assert_eq!(pair.cosize(), target);
        }
    }

    #[test]
    fn tv_inverse_round_trips(threads_log in 3usize..=6, values_log in 0usize..=3) {
        let threads = 1usize << threads_log;
        let values = 1usize << values_log;
        let tv = TvLayout::contiguous(threads, values, vec![threads * values]).unwrap();
        let inv = tv.inverse().unwrap();
        for t in 0..threads {
            for v in 0..values {
                let tile_idx = tv.map(t, v);
                // The inverse maps the tile index back to the (t, v) linear index.
                prop_assert_eq!(inv.map(tile_idx), t + threads * v);
            }
        }
    }
}
