//! Randomized cross-checks of the flat fast path against the recursive
//! reference implementation of the layout algebra.
//!
//! The fast path (flat `FlatLayout` arrays plus the per-thread memoization
//! cache) must be **bit-for-bit** equivalent to the reference: identical
//! hierarchical result layouts (not merely pointwise-equivalent functions)
//! and identical errors. These tests drive both paths on randomized layouts
//! and compare the full `Result`, which also exercises memoized error
//! replay (every operation is evaluated twice through the fast path).

use hexcute_layout::{Layout, TvLayout};
use proptest::prelude::*;

/// Strategy producing small flat layouts with power-of-two-ish shapes and
/// permuted prefix-product strides, optionally scaled (making them strided
/// but still injective).
fn compact_layout(max_modes: usize) -> impl Strategy<Value = Layout> {
    proptest::collection::vec(1usize..=4, 1..=max_modes).prop_flat_map(|log_shapes| {
        let shapes: Vec<usize> = log_shapes.iter().map(|&l| 1usize << l).collect();
        let n = shapes.len();
        proptest::collection::vec(0usize..1000, n).prop_map(move |keys| {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| keys[i]);
            let mut strides = vec![0usize; n];
            let mut acc = 1usize;
            for &i in &order {
                strides[i] = acc;
                acc *= shapes[i];
            }
            Layout::from_flat(&shapes, &strides)
        })
    })
}

/// Strategy producing arbitrary (possibly overlapping, possibly broadcast,
/// possibly hierarchical after regrouping) small layouts.
fn any_layout(max_modes: usize) -> impl Strategy<Value = Layout> {
    proptest::collection::vec((1usize..=6, 0usize..=12), 1..=max_modes)
        .prop_map(|modes| Layout::from_modes(&modes))
}

/// Both paths must agree on the full `Result`: equal layouts on success
/// (structurally, not just pointwise) and equal errors on failure.
fn assert_same_result(
    fast: &hexcute_layout::Result<Layout>,
    reference: &hexcute_layout::Result<Layout>,
    what: &str,
) -> Result<(), TestCaseError> {
    match (fast, reference) {
        (Ok(f), Ok(r)) => prop_assert_eq!(f, r, "{}: fast {} != reference {}", what, f, r),
        (Err(f), Err(r)) => prop_assert_eq!(f, r, "{}: errors diverged", what),
        (f, r) => prop_assert!(false, "{}: fast {:?} vs reference {:?}", what, f, r),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn map_agrees_with_reference(layout in any_layout(4)) {
        for i in 0..layout.size() + 4 {
            prop_assert_eq!(layout.map(i), layout.map_reference(i), "{} at {}", layout, i);
        }
    }

    #[test]
    fn coalesce_agrees_with_reference(layout in any_layout(5)) {
        prop_assert_eq!(layout.coalesce(), layout.coalesce_reference());
    }

    #[test]
    fn compose_agrees_with_reference(a in any_layout(4), b in any_layout(3)) {
        // Evaluate the fast path twice so the second call replays the memo.
        let fast_first = a.compose(&b);
        let fast_memoized = a.compose(&b);
        let reference = a.compose_reference(&b);
        assert_same_result(&fast_first, &reference, "compose")?;
        assert_same_result(&fast_memoized, &reference, "compose (memoized)")?;
    }

    #[test]
    fn compose_of_compact_layouts_agrees(a in compact_layout(4), b in compact_layout(3)) {
        let fast = a.compose(&b);
        let reference = a.compose_reference(&b);
        assert_same_result(&fast, &reference, "compose/compact")?;
    }

    #[test]
    fn complement_agrees_with_reference(layout in any_layout(3), extra in 1usize..=4) {
        let target = layout.cosize().next_power_of_two() * (1 << extra);
        let fast = layout.complement(target);
        let memoized = layout.complement(target);
        let reference = layout.complement_reference(target);
        assert_same_result(&fast, &reference, "complement")?;
        assert_same_result(&memoized, &reference, "complement (memoized)")?;
    }

    #[test]
    fn interior_complement_agrees_with_reference(layout in any_layout(3), scale in 1usize..=4) {
        let strided = layout.scale_strides(scale);
        let fast = strided.interior_complement();
        let reference = strided.interior_complement_reference();
        assert_same_result(&fast, &reference, "interior_complement")?;
    }

    #[test]
    fn right_inverse_agrees_with_reference(layout in any_layout(4)) {
        let fast = layout.right_inverse();
        let memoized = layout.right_inverse();
        let reference = layout.right_inverse_reference();
        assert_same_result(&fast, &reference, "right_inverse")?;
        assert_same_result(&memoized, &reference, "right_inverse (memoized)")?;
    }

    #[test]
    fn right_inverse_of_bijections_agrees(layout in compact_layout(4)) {
        let fast = layout.right_inverse();
        let reference = layout.right_inverse_reference();
        assert_same_result(&fast, &reference, "right_inverse/compact")?;
    }

    #[test]
    fn left_inverse_agrees_with_reference(layout in compact_layout(3), scale in 1usize..=4) {
        let strided = layout.scale_strides(scale);
        let fast = strided.left_inverse();
        let reference = strided.left_inverse_reference();
        assert_same_result(&fast, &reference, "left_inverse")?;
    }

    #[test]
    fn logical_divide_agrees_with_reference(
        inner_log in 1usize..=3,
        stride_log in 0usize..=3,
        outer_log in 2usize..=4,
    ) {
        let total = 1usize << (inner_log + stride_log + outer_log);
        let a = Layout::identity(total);
        let tiler = Layout::from_mode(1 << inner_log, 1 << stride_log);
        let fast = a.logical_divide(&tiler);
        let reference = a.logical_divide_reference(&tiler);
        assert_same_result(&fast, &reference, "logical_divide")?;
    }

    #[test]
    fn logical_product_agrees_with_reference(tile in compact_layout(3), rep_log in 0usize..=3) {
        let rep = Layout::from_mode(1 << rep_log, 1);
        let fast = tile.logical_product(&rep);
        let reference = tile.logical_product_reference(&rep);
        assert_same_result(&fast, &reference, "logical_product")?;
    }

    #[test]
    fn tv_expand_agrees_between_paths(
        threads_log in 3usize..=5,
        values_log in 0usize..=3,
        um in 1usize..=2,
        un in 1usize..=2,
    ) {
        // TvLayout::expand is pure composition; with the fast path enabled it
        // runs through the memoized flat algebra. Its coordinates must match
        // an element-by-element evaluation through the reference map.
        let threads = 1 << threads_log;
        let values = 1 << values_log;
        let tile = vec![threads, values];
        let atom = TvLayout::contiguous(threads, values, tile).unwrap();
        let expanded = atom
            .expand(
                &[hexcute_layout::RepeatMode::along(um, 0), hexcute_layout::RepeatMode::along(un, 1)],
                &[hexcute_layout::RepeatMode::along(2, 1)],
            )
            .unwrap();
        let full = expanded.as_layout();
        for i in 0..full.size() {
            prop_assert_eq!(full.map(i), full.map_reference(i));
        }
    }
}
