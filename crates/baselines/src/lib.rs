//! # hexcute-baselines
//!
//! The comparison points of the paper's evaluation, rebuilt as documented in
//! `DESIGN.md`:
//!
//! * [`triton`] — a Triton-style compilation path: the same tile-level
//!   programs compiled with Triton's documented behaviours (case-by-case
//!   layouts → no `ldmatrix`/TMA/`wgmma`, row-major shared memory, heuristic
//!   dataflow with the excessive copies of Fig. 4(a) for mixed-type
//!   operators, and no software-pipelining control for emerging operators);
//! * [`marlin`] — performance models of the Marlin-old (one kernel launch
//!   per expert) and Marlin-new (fused, near-roofline) MoE kernels;
//! * [`libraries`] — roofline-based latency models of the expert-tuned
//!   libraries (cuBLAS, CUTLASS, FlashAttention-2/3, FlashInfer, the Mamba
//!   library), with efficiency factors documented next to their sources.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod libraries;
pub mod marlin;
pub mod triton;

pub use libraries::{library_latency_us, Library, Workload};
pub use marlin::{
    fused_grouped_gemm_latency_us, marlin_new_moe_latency_us, marlin_old_moe_latency_us,
    marlin_w4a16_latency_us, per_group_launch_latency_us,
};
pub use triton::{triton_latency_us, triton_moe_program, triton_options, TritonReport};
