//! Performance models of the Marlin mixed-type MoE kernels shipped in vLLM
//! (Section VII-B of the paper).
//!
//! * **Marlin-old** (vLLM v0.8.2) launches a separate mixed-type GEMM kernel
//!   for every active expert; at 256 experts the kernel-launch overhead
//!   dominates, which is why the paper reports a 28.42× gap.
//! * **Marlin-new** (vLLM v0.9.2) is a fused grouped-GEMM kernel that runs
//!   close to the weight-streaming roofline; the paper reports Hexcute at
//!   0.89×–1.01× of it.

use hexcute_arch::{DType, GpuArch};
use hexcute_kernels::grouped_gemm::GroupedGemmShape;
use hexcute_kernels::moe::MoeShape;
use hexcute_kernels::quant_gemm::QuantGemmShape;

/// Fraction of the weight-streaming roofline the fused Marlin-new kernel
/// achieves.
pub const MARLIN_NEW_BANDWIDTH_EFFICIENCY: f64 = 0.88;

/// Fraction of the roofline a single-expert Marlin GEMM achieves once
/// launched (the launches themselves dominate at high expert counts).
pub const MARLIN_OLD_BANDWIDTH_EFFICIENCY: f64 = 0.70;

/// Per-expert dispatch overhead of the Marlin-old path in vLLM v0.8.2: the
/// Python-level expert loop, kernel launch and stream synchronization. This
/// is the source of the 28× gap the paper reports.
pub const MARLIN_OLD_DISPATCH_US: f64 = 90.0;

/// The streaming-roofline kernel-time model every Marlin baseline shares:
/// memory time at `bandwidth_efficiency` of the DRAM roofline (the dequant /
/// epilogue arithmetic hides under the loads), or FP16 compute bound.
fn streaming_roofline_us(bytes: f64, flops: f64, bandwidth_efficiency: f64, arch: &GpuArch) -> f64 {
    let mem_us = bytes / (arch.dram_bandwidth_gbs * bandwidth_efficiency) * 1e-3;
    let compute_us = arch.roofline_latency_us(0.0, flops, DType::F16);
    mem_us.max(compute_us)
}

fn roofline_us(shape: &MoeShape, arch: &GpuArch, bandwidth_efficiency: f64) -> f64 {
    streaming_roofline_us(
        shape.weight_bytes() + shape.activation_bytes(),
        shape.flops(),
        bandwidth_efficiency,
        arch,
    )
}

/// Latency of the Marlin-new fused MoE kernel.
pub fn marlin_new_moe_latency_us(shape: &MoeShape, arch: &GpuArch) -> f64 {
    arch.kernel_launch_overhead_us + roofline_us(shape, arch, MARLIN_NEW_BANDWIDTH_EFFICIENCY)
}

/// Latency of the Marlin-old implementation: one kernel launch per active
/// expert, each processing that expert's share of the tokens.
pub fn marlin_old_moe_latency_us(shape: &MoeShape, arch: &GpuArch) -> f64 {
    // The old implementation sweeps every expert of the layer, whether or
    // not it received tokens.
    let experts = shape.experts.max(1);
    // Each launch processes roughly routed_rows / experts rows against one
    // expert's weights.
    let per_expert_rows = shape.routed_rows().div_ceil(experts).max(1);
    let per_expert_bytes = shape.weight_bytes() / experts as f64
        + (per_expert_rows * (shape.hidden + shape.intermediate)) as f64 * 2.0;
    let per_expert_flops =
        2.0 * per_expert_rows as f64 * shape.hidden as f64 * shape.intermediate as f64;
    let per_expert_us = streaming_roofline_us(
        per_expert_bytes,
        per_expert_flops,
        MARLIN_OLD_BANDWIDTH_EFFICIENCY,
        arch,
    );
    experts as f64 * (arch.kernel_launch_overhead_us + MARLIN_OLD_DISPATCH_US + per_expert_us)
}

/// Latency of the hand-written Marlin W4A16 dense GEMM kernel: weight
/// streaming at [`MARLIN_NEW_BANDWIDTH_EFFICIENCY`] of the DRAM roofline (the
/// dequant arithmetic hides under the loads), or compute bound at large M.
/// The reference the synthesized `w4a16_gemm` kernel is compared against in
/// `BENCH_pr5.json`.
pub fn marlin_w4a16_latency_us(shape: &QuantGemmShape, arch: &GpuArch) -> f64 {
    arch.kernel_launch_overhead_us
        + streaming_roofline_us(
            shape.weight_bytes() + shape.activation_bytes(),
            shape.flops(),
            MARLIN_NEW_BANDWIDTH_EFFICIENCY,
            arch,
        )
}

/// Latency of a fused grouped-GEMM baseline (Marlin-new style): one launch
/// covering the whole problem list at the streaming roofline.
pub fn fused_grouped_gemm_latency_us(shape: &GroupedGemmShape, arch: &GpuArch) -> f64 {
    arch.kernel_launch_overhead_us
        + streaming_roofline_us(
            shape.weight_bytes() + shape.activation_bytes(),
            shape.flops(),
            MARLIN_NEW_BANDWIDTH_EFFICIENCY,
            arch,
        )
}

/// Latency of the pre-fusion grouped-GEMM path: one kernel launch (plus the
/// Python-level dispatch of the expert loop) per active group — the
/// Marlin-old dispatch model applied to a dense per-group problem list.
pub fn per_group_launch_latency_us(shape: &GroupedGemmShape, arch: &GpuArch) -> f64 {
    shape
        .group_tokens
        .iter()
        .filter(|&&m| m > 0)
        .map(|&m| {
            let bytes = (shape.n * shape.k) as f64 * 2.0 + (m * (shape.k + shape.n)) as f64 * 2.0;
            let flops = 2.0 * m as f64 * shape.n as f64 * shape.k as f64;
            arch.kernel_launch_overhead_us
                + MARLIN_OLD_DISPATCH_US
                + streaming_roofline_us(bytes, flops, MARLIN_OLD_BANDWIDTH_EFFICIENCY, arch)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marlin_old_launch_overhead_dominates_at_many_experts() {
        let arch = GpuArch::h100();
        let shape = MoeShape::deepseek_r1(32);
        let old = marlin_old_moe_latency_us(&shape, &arch);
        let new = marlin_new_moe_latency_us(&shape, &arch);
        assert!(
            old / new > 5.0,
            "expected a large gap, got {:.2}",
            old / new
        );
        // The launch overhead alone accounts for most of Marlin-old's time.
        let launches_us =
            shape.experts as f64 * (arch.kernel_launch_overhead_us + MARLIN_OLD_DISPATCH_US);
        assert!(launches_us / old > 0.5);
    }

    #[test]
    fn marlin_new_tracks_the_weight_streaming_roofline() {
        let arch = GpuArch::h100();
        let shape = MoeShape::deepseek_r1(16);
        let latency = marlin_new_moe_latency_us(&shape, &arch);
        let ideal =
            (shape.weight_bytes() + shape.activation_bytes()) / arch.dram_bandwidth_gbs * 1e-3;
        assert!(latency > ideal);
        assert!(latency < ideal * 1.5);
    }

    #[test]
    fn latency_grows_with_token_count_once_compute_bound() {
        let arch = GpuArch::h100();
        let small = marlin_new_moe_latency_us(&MoeShape::deepseek_r1(16), &arch);
        let large = marlin_new_moe_latency_us(&MoeShape::deepseek_r1(4096), &arch);
        assert!(large > small);
    }

    #[test]
    fn w4a16_baseline_tracks_the_weight_streaming_roofline() {
        let arch = GpuArch::h100();
        let shape = QuantGemmShape::llama_70b_proj(16);
        let latency = marlin_w4a16_latency_us(&shape, &arch);
        let ideal =
            (shape.weight_bytes() + shape.activation_bytes()) / arch.dram_bandwidth_gbs * 1e-3;
        assert!(latency > ideal);
        // Net of the launch overhead, the kernel runs within ~1/0.88 of the
        // ideal streaming time.
        assert!(latency - arch.kernel_launch_overhead_us < ideal * 1.2);
        // Quantized weights (including the scale/zero columns) stream ~3.5x
        // fewer bytes than an FP16 GEMM of the same shape, so the
        // decode-time latency is much lower.
        assert!(shape.weight_bytes() * 3.5 < (shape.n * shape.k) as f64 * 2.0);
    }

    #[test]
    fn fused_grouped_gemm_beats_per_group_launches() {
        let arch = GpuArch::h100();
        let shape = GroupedGemmShape::uniform(64, 4, 2048, 4096);
        let fused = fused_grouped_gemm_latency_us(&shape, &arch);
        let looped = per_group_launch_latency_us(&shape, &arch);
        assert!(
            looped / fused > 3.0,
            "expected the fused kernel to win clearly, got {:.2}x",
            looped / fused
        );
        // Zero-token groups cost nothing in either path.
        let sparse = GroupedGemmShape::from_token_counts(vec![4, 0, 0, 4], 2048, 4096);
        let dense = GroupedGemmShape::from_token_counts(vec![4, 4], 2048, 4096);
        assert_eq!(
            per_group_launch_latency_us(&sparse, &arch),
            per_group_launch_latency_us(&dense, &arch)
        );
    }
}
