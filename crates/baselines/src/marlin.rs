//! Performance models of the Marlin mixed-type MoE kernels shipped in vLLM
//! (Section VII-B of the paper).
//!
//! * **Marlin-old** (vLLM v0.8.2) launches a separate mixed-type GEMM kernel
//!   for every active expert; at 256 experts the kernel-launch overhead
//!   dominates, which is why the paper reports a 28.42× gap.
//! * **Marlin-new** (vLLM v0.9.2) is a fused grouped-GEMM kernel that runs
//!   close to the weight-streaming roofline; the paper reports Hexcute at
//!   0.89×–1.01× of it.

use hexcute_arch::{DType, GpuArch};
use hexcute_kernels::moe::MoeShape;

/// Fraction of the weight-streaming roofline the fused Marlin-new kernel
/// achieves.
pub const MARLIN_NEW_BANDWIDTH_EFFICIENCY: f64 = 0.88;

/// Fraction of the roofline a single-expert Marlin GEMM achieves once
/// launched (the launches themselves dominate at high expert counts).
pub const MARLIN_OLD_BANDWIDTH_EFFICIENCY: f64 = 0.70;

/// Per-expert dispatch overhead of the Marlin-old path in vLLM v0.8.2: the
/// Python-level expert loop, kernel launch and stream synchronization. This
/// is the source of the 28× gap the paper reports.
pub const MARLIN_OLD_DISPATCH_US: f64 = 90.0;

fn roofline_us(shape: &MoeShape, arch: &GpuArch, bandwidth_efficiency: f64) -> f64 {
    let bytes = shape.weight_bytes() + shape.activation_bytes();
    let mem_us = bytes / (arch.dram_bandwidth_gbs * bandwidth_efficiency) * 1e-3;
    let compute_us = arch.roofline_latency_us(0.0, shape.flops(), DType::F16);
    mem_us.max(compute_us)
}

/// Latency of the Marlin-new fused MoE kernel.
pub fn marlin_new_moe_latency_us(shape: &MoeShape, arch: &GpuArch) -> f64 {
    arch.kernel_launch_overhead_us + roofline_us(shape, arch, MARLIN_NEW_BANDWIDTH_EFFICIENCY)
}

/// Latency of the Marlin-old implementation: one kernel launch per active
/// expert, each processing that expert's share of the tokens.
pub fn marlin_old_moe_latency_us(shape: &MoeShape, arch: &GpuArch) -> f64 {
    // The old implementation sweeps every expert of the layer, whether or
    // not it received tokens.
    let experts = shape.experts.max(1);
    // Each launch processes roughly routed_rows / experts rows against one
    // expert's weights.
    let per_expert_rows = shape.routed_rows().div_ceil(experts).max(1);
    let per_expert_bytes = shape.weight_bytes() / experts as f64
        + (per_expert_rows * (shape.hidden + shape.intermediate)) as f64 * 2.0;
    let per_expert_flops =
        2.0 * per_expert_rows as f64 * shape.hidden as f64 * shape.intermediate as f64;
    let mem_us =
        per_expert_bytes / (arch.dram_bandwidth_gbs * MARLIN_OLD_BANDWIDTH_EFFICIENCY) * 1e-3;
    let compute_us = arch.roofline_latency_us(0.0, per_expert_flops, DType::F16);
    experts as f64
        * (arch.kernel_launch_overhead_us + MARLIN_OLD_DISPATCH_US + mem_us.max(compute_us))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marlin_old_launch_overhead_dominates_at_many_experts() {
        let arch = GpuArch::h100();
        let shape = MoeShape::deepseek_r1(32);
        let old = marlin_old_moe_latency_us(&shape, &arch);
        let new = marlin_new_moe_latency_us(&shape, &arch);
        assert!(
            old / new > 5.0,
            "expected a large gap, got {:.2}",
            old / new
        );
        // The launch overhead alone accounts for most of Marlin-old's time.
        let launches_us =
            shape.experts as f64 * (arch.kernel_launch_overhead_us + MARLIN_OLD_DISPATCH_US);
        assert!(launches_us / old > 0.5);
    }

    #[test]
    fn marlin_new_tracks_the_weight_streaming_roofline() {
        let arch = GpuArch::h100();
        let shape = MoeShape::deepseek_r1(16);
        let latency = marlin_new_moe_latency_us(&shape, &arch);
        let ideal =
            (shape.weight_bytes() + shape.activation_bytes()) / arch.dram_bandwidth_gbs * 1e-3;
        assert!(latency > ideal);
        assert!(latency < ideal * 1.5);
    }

    #[test]
    fn latency_grows_with_token_count_once_compute_bound() {
        let arch = GpuArch::h100();
        let small = marlin_new_moe_latency_us(&MoeShape::deepseek_r1(16), &arch);
        let large = marlin_new_moe_latency_us(&MoeShape::deepseek_r1(4096), &arch);
        assert!(large > small);
    }
}
