//! The Triton-style compilation baseline.
//!
//! Triton is reproduced as a *policy*, not a separate compiler: the same
//! tile-level programs are compiled through the Hexcute pipeline but with the
//! behaviours the paper attributes to Triton:
//!
//! * case-by-case layout system → no `ldmatrix`, no TMA, no warp-group MMA,
//!   and a plain row-major shared-memory layout (Section II-C);
//! * heuristic dataflow → for mixed-type operators the weight tensor follows
//!   the global → register → shared → register path of Fig. 4(a);
//! * heuristic pipelining → no software pipelining for emerging operators
//!   (mixed-type MoE, scan), `num_stages`-style pipelining for the standard
//!   ones;
//! * compute-bound kernels reach a lower fraction of the Tensor-Core peak
//!   than hand-tuned libraries (calibrated factor, documented in
//!   `EXPERIMENTS.md`).

use hexcute_arch::GpuArch;
use hexcute_core::{CompileError, Compiler, CompilerOptions};
use hexcute_ir::{IrError, Program};
use hexcute_kernels::moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
use hexcute_synthesis::SynthesisOptions;

/// Fraction of the Tensor-Core roofline Triton-generated kernels reach on
/// compute-bound GEMM-like operators (calibrated against Table II).
pub const TRITON_COMPUTE_EFFICIENCY: f64 = 0.70;

/// The synthesis options that emulate Triton's layout system.
pub fn triton_options() -> SynthesisOptions {
    SynthesisOptions {
        allow_ldmatrix: false,
        allow_tma: false,
        allow_wgmma: false,
        force_row_major_smem: true,
        disable_swizzles: false,
        ..SynthesisOptions::default()
    }
}

/// The result of compiling a program through the Triton-style path.
#[derive(Debug, Clone)]
pub struct TritonReport {
    /// Estimated latency in microseconds.
    pub latency_us: f64,
    /// Bytes per thread per instruction for every copy (for Table III).
    pub copy_bytes: Vec<(String, usize)>,
}

/// Whether the operator is one of the "emerging" ones for which Triton's
/// dataflow and pipelining heuristics do not generalize (Section II-C).
fn is_emerging_operator(program: &Program) -> bool {
    program.name.contains("moe") || program.name.contains("scan") || program.name.contains("int4")
}

/// Compiles a program with the Triton-style policy and estimates its latency.
///
/// # Errors
///
/// Propagates compilation failures.
pub fn triton_latency_us(program: &Program, arch: &GpuArch) -> Result<TritonReport, CompileError> {
    // Triton cannot express explicit pipelining for emerging operators.
    let mut program = program.clone();
    let mut options = triton_options();
    if is_emerging_operator(&program) {
        // Triton's heuristics do not generalize to mixed-type / scan
        // operators: no explicit pipelining, and the case-by-case layout
        // system cannot vectorize the packed sub-byte weight path
        // (Table III), so those copies degrade to scalar instructions.
        program.schedule.pipeline_stages = 1;
        program.schedule.warp_specialized = false;
        options.force_scalar_copies = true;
    } else {
        program.schedule.pipeline_stages = program.schedule.pipeline_stages.min(3);
        program.schedule.warp_specialized = false;
    }
    let compiler = Compiler::with_options(
        arch.clone(),
        CompilerOptions {
            synthesis: options,
            use_cost_model: true,
        },
    );
    let kernel = compiler.compile(&program)?;
    let report = &kernel.perf;
    // Compute-bound kernels: Triton reaches a lower fraction of the peak.
    let compute_us = report.compute_us / TRITON_COMPUTE_EFFICIENCY;
    let latency_us = report.launch_overhead_us + report.dram_us.max(compute_us).max(report.sm_us);
    let copy_bytes = kernel
        .candidate
        .instruction_summary(&kernel.program)
        .into_iter()
        .filter(|(_, _, bytes)| *bytes > 0)
        .map(|(_, name, bytes)| (name, bytes))
        .collect();
    Ok(TritonReport {
        latency_us,
        copy_bytes,
    })
}

/// The mixed-type MoE program as Triton's heuristics generate it: the
/// Fig. 4(a) dataflow with its excessive copies.
///
/// # Errors
///
/// Propagates IR construction failures.
pub fn triton_moe_program(shape: MoeShape, config: MoeConfig) -> Result<Program, IrError> {
    mixed_type_moe(shape, config, MoeDataflow::TritonStyle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};
    use hexcute_sim::estimate_kernel;

    #[test]
    fn triton_gemm_is_slower_than_hexcute_but_reasonable() {
        let arch = GpuArch::a100();
        let program = fp16_gemm(GemmShape::new(4096, 4096, 4096), GemmConfig::default()).unwrap();
        let hexcute = Compiler::new(arch.clone()).compile(&program).unwrap();
        let triton = triton_latency_us(&program, &arch).unwrap();
        assert!(triton.latency_us > hexcute.latency_us());
        assert!(triton.latency_us < hexcute.latency_us() * 3.0);
    }

    #[test]
    fn triton_moe_is_much_slower_than_hexcute() {
        let arch = GpuArch::h100();
        let shape = MoeShape::deepseek_r1(64);
        let config = MoeConfig::default();
        let hexcute_program = mixed_type_moe(shape, config, MoeDataflow::Efficient).unwrap();
        let hexcute = Compiler::new(arch.clone())
            .compile(&hexcute_program)
            .unwrap();
        let triton_program = triton_moe_program(shape, config).unwrap();
        let triton = triton_latency_us(&triton_program, &arch).unwrap();
        let speedup = triton.latency_us / hexcute.latency_us();
        assert!(
            speedup > 2.0,
            "expected a large Hexcute speedup on mixed-type MoE, got {speedup:.2}x"
        );
    }

    #[test]
    fn triton_uses_narrower_instructions_than_hexcute_for_moe() {
        let arch = GpuArch::h100();
        let shape = MoeShape::deepseek_r1(64);
        let config = MoeConfig::default();
        let hexcute_program = mixed_type_moe(shape, config, MoeDataflow::Efficient).unwrap();
        let hexcute = Compiler::new(arch.clone())
            .compile(&hexcute_program)
            .unwrap();
        let hexcute_max_bytes = hexcute
            .candidate
            .instruction_summary(&hexcute.program)
            .into_iter()
            .map(|(_, _, b)| b)
            .max()
            .unwrap_or(0);
        let triton = triton_latency_us(&triton_moe_program(shape, config).unwrap(), &arch).unwrap();
        let triton_max_bytes = triton.copy_bytes.iter().map(|(_, b)| *b).max().unwrap_or(0);
        assert!(hexcute_max_bytes >= triton_max_bytes);
        assert!(!triton.copy_bytes.is_empty());
    }

    #[test]
    fn perf_report_components_are_consistent() {
        let arch = GpuArch::a100();
        let program = fp16_gemm(GemmShape::new(2048, 2048, 2048), GemmConfig::default()).unwrap();
        let kernel = Compiler::new(arch.clone()).compile(&program).unwrap();
        let direct = estimate_kernel(&kernel.program, &kernel.candidate, &arch);
        assert!((direct.latency_us - kernel.perf.latency_us).abs() < 1e-9);
    }
}
