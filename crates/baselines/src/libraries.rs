//! Roofline-based latency models of the expert-tuned kernel libraries the
//! paper compares against.
//!
//! These baselines are *models*, not reimplementations: each library is
//! characterized by the fraction of the Tensor-Core roofline it achieves on
//! compute-bound problems and the fraction of DRAM bandwidth it achieves on
//! memory-bound problems. The factors are calibrated from public benchmark
//! data and from the relative numbers reported in the paper, and are listed
//! in `EXPERIMENTS.md`.

use hexcute_arch::{DType, GpuArch};

/// A workload characterized for roofline modelling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Floating point operations.
    pub flops: f64,
    /// Bytes moved between DRAM and the chip.
    pub bytes: f64,
    /// The multiply data type (selects the Tensor-Core peak).
    pub dtype: DType,
    /// Number of kernel launches used to execute the workload.
    pub launches: usize,
}

impl Workload {
    /// A single-launch workload.
    pub fn new(flops: f64, bytes: f64, dtype: DType) -> Self {
        Workload {
            flops,
            bytes,
            dtype,
            launches: 1,
        }
    }
}

/// The expert-tuned baselines of Table II and Section VII-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Library {
    /// cuBLAS FP16 GEMM.
    CuBlas,
    /// CUTLASS blockwise-scaled FP8 GEMM.
    CutlassFp8,
    /// FlashAttention-2 (A100 forward attention).
    FlashAttention2,
    /// FlashAttention-3 (H100 forward attention).
    FlashAttention3,
    /// FlashInfer (decode attention).
    FlashInfer,
    /// The hand-written Mamba selective-scan library (cub::BlockLoad scalar
    /// loads, Table IV).
    MambaLibrary,
}

impl Library {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Library::CuBlas => "cuBLAS",
            Library::CutlassFp8 => "CUTLASS",
            Library::FlashAttention2 => "FlashAttention2",
            Library::FlashAttention3 => "FlashAttention3",
            Library::FlashInfer => "FlashInfer",
            Library::MambaLibrary => "Mamba library",
        }
    }

    /// Fraction of the Tensor-Core roofline achieved on compute-bound
    /// problems.
    pub fn compute_efficiency(&self) -> f64 {
        match self {
            Library::CuBlas => 0.90,
            Library::CutlassFp8 => 0.78,
            Library::FlashAttention2 => 0.72,
            Library::FlashAttention3 => 0.75,
            Library::FlashInfer => 0.70,
            Library::MambaLibrary => 0.50,
        }
    }

    /// Fraction of DRAM bandwidth achieved on memory-bound problems.
    pub fn bandwidth_efficiency(&self) -> f64 {
        match self {
            Library::CuBlas => 0.85,
            Library::CutlassFp8 => 0.80,
            Library::FlashAttention2 => 0.80,
            Library::FlashAttention3 => 0.85,
            Library::FlashInfer => 0.82,
            // cub::BlockLoad falls back to scalar loads for the scan's
            // operand tensors (Table IV), wasting most of the bandwidth.
            Library::MambaLibrary => 0.21,
        }
    }
}

/// Latency of a library baseline on a roofline-characterized workload.
pub fn library_latency_us(library: Library, workload: &Workload, arch: &GpuArch) -> f64 {
    let ideal = arch.roofline_latency_us(0.0, workload.flops, workload.dtype);
    let compute_us = if workload.flops > 0.0 {
        ideal / library.compute_efficiency()
    } else {
        0.0
    };
    let mem_us = workload.bytes / (arch.dram_bandwidth_gbs * library.bandwidth_efficiency()) * 1e-3;
    workload.launches as f64 * arch.kernel_launch_overhead_us + compute_us.max(mem_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_latency_tracks_the_tensor_core_peak() {
        let arch = GpuArch::a100();
        let w = Workload::new(
            2.0 * 4096f64.powi(3),
            3.0 * 4096.0 * 4096.0 * 2.0,
            DType::F16,
        );
        let cublas = library_latency_us(Library::CuBlas, &w, &arch);
        let ideal = arch.roofline_latency_us(0.0, w.flops, DType::F16);
        assert!(cublas > ideal);
        assert!(cublas < ideal * 1.3);
    }

    #[test]
    fn memory_bound_latency_tracks_bandwidth_efficiency() {
        let arch = GpuArch::h100();
        let w = Workload::new(1e6, 1e9, DType::F16);
        let mamba = library_latency_us(Library::MambaLibrary, &w, &arch);
        let fa3 = library_latency_us(Library::FlashAttention3, &w, &arch);
        // The Mamba library's scalar loads waste ~4x of the bandwidth.
        assert!(mamba / fa3 > 3.0);
    }

    #[test]
    fn every_library_has_sane_factors() {
        for lib in [
            Library::CuBlas,
            Library::CutlassFp8,
            Library::FlashAttention2,
            Library::FlashAttention3,
            Library::FlashInfer,
            Library::MambaLibrary,
        ] {
            assert!(!lib.name().is_empty());
            assert!(lib.compute_efficiency() > 0.0 && lib.compute_efficiency() <= 1.0);
            assert!(lib.bandwidth_efficiency() > 0.0 && lib.bandwidth_efficiency() <= 1.0);
        }
    }
}
