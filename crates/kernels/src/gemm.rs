//! GEMM kernels: plain FP16, warp-specialized FP16 (Hopper) and
//! blockwise-scaled FP8 (Hopper) — the operator families of Table II rows
//! 1, 4 and 5 of the paper.

use hexcute_arch::DType;
use hexcute_ir::{ElementwiseOp, IrError, KernelBuilder, Layout, Program};

/// The problem shape of a GEMM `C[m,n] = A[m,k] · B[k,n]ᵀ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Rows of the output.
    pub m: usize,
    /// Columns of the output.
    pub n: usize,
    /// The contraction extent.
    pub k: usize,
}

impl GemmShape {
    /// Creates a shape.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        GemmShape { m, n, k }
    }

    /// Floating point operations of the full problem.
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Bytes moved from/to global memory assuming each operand is read once.
    pub fn bytes(&self, a_bits: usize, b_bits: usize, c_bits: usize) -> f64 {
        (self.m * self.k * a_bits + self.n * self.k * b_bits + self.m * self.n * c_bits) as f64
            / 8.0
    }
}

/// Tiling configuration of a GEMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Block tile M extent.
    pub block_m: usize,
    /// Block tile N extent.
    pub block_n: usize,
    /// Block tile K extent.
    pub block_k: usize,
    /// Threads per block.
    pub threads: usize,
    /// Software pipeline depth.
    pub stages: usize,
    /// Whether to use producer/consumer warp specialization (Hopper).
    pub warp_specialized: bool,
}

impl Default for GemmConfig {
    fn default() -> Self {
        GemmConfig {
            block_m: 128,
            block_n: 128,
            block_k: 32,
            threads: 128,
            stages: 3,
            warp_specialized: false,
        }
    }
}

impl GemmConfig {
    /// A Hopper warp-specialized configuration (wgmma + TMA + producer
    /// warps), matching the "Warp Specialized FP16 GEMM" row of Table II.
    pub fn warp_specialized_hopper() -> Self {
        GemmConfig {
            block_m: 128,
            block_n: 128,
            block_k: 64,
            threads: 256,
            stages: 4,
            warp_specialized: true,
        }
    }

    /// Number of thread blocks needed for the problem.
    pub fn grid_blocks(&self, shape: &GemmShape) -> usize {
        shape.m.div_ceil(self.block_m) * shape.n.div_ceil(self.block_n)
    }
}

/// Builds the FP16 GEMM kernel of Fig. 15: global → shared staging with
/// `cp.async`, `ldmatrix` loads into Tensor-Core fragments, an FP32
/// accumulator, and an epilogue that redistributes the accumulator through
/// shared memory so the final stores are coalesced.
///
/// # Errors
///
/// Returns an error when the block tile does not divide the problem.
pub fn fp16_gemm(shape: GemmShape, config: GemmConfig) -> Result<Program, IrError> {
    gemm_kernel(shape, config, DType::F16, "fp16_gemm")
}

/// The BF16 spelling of the same kernel (`mma.m16n8k16` has a BF16 variant
/// on both modelled architectures) — the dtype dimension of the workload
/// conformance matrix.
///
/// # Errors
///
/// Returns an error when the block tile does not divide the problem.
pub fn bf16_gemm(shape: GemmShape, config: GemmConfig) -> Result<Program, IrError> {
    gemm_kernel(shape, config, DType::BF16, "bf16_gemm")
}

/// Builds the Hopper warp-specialized FP16 GEMM: operands are staged in
/// shared memory and consumed directly by warp-group MMA, with producer
/// warps issuing TMA/`cp.async` copies.
///
/// # Errors
///
/// Returns an error when the block tile does not divide the problem.
pub fn warp_specialized_gemm(shape: GemmShape, mut config: GemmConfig) -> Result<Program, IrError> {
    config.warp_specialized = true;
    let name = "warp_specialized_fp16_gemm";
    let (bm, bn, bk) = (config.block_m, config.block_n, config.block_k);
    let k_tiles = (shape.k / bk).max(1);
    let mut kb = KernelBuilder::new(name, config.threads);
    kb.set_grid_blocks(config.grid_blocks(&shape));
    kb.set_pipeline_stages(config.stages);
    kb.set_warp_specialized(true);
    let ga = kb.global_view(
        "a",
        DType::F16,
        Layout::from_flat(&[bm, bk, k_tiles], &[shape.k, 1, bk]),
        &[bm, bk, k_tiles],
    );
    let gb = kb.global_view(
        "b",
        DType::F16,
        Layout::from_flat(&[bn, bk, k_tiles], &[shape.k, 1, bk]),
        &[bn, bk, k_tiles],
    );
    let gc = kb.global_view("c", DType::F16, Layout::row_major(&[bm, bn]), &[bm, bn]);
    let sa = kb.shared_tensor("sa", DType::F16, &[bm, bk]);
    let sb = kb.shared_tensor("sb", DType::F16, &[bn, bk]);
    let rc = kb.register_tensor("rc", DType::F32, &[bm, bn]);
    kb.fill(rc, 0.0);
    kb.begin_loop(k_tiles);
    kb.copy(ga, sa);
    kb.copy(gb, sb);
    // Warp-group MMA consumes the shared-memory operands directly.
    kb.gemm(rc, sa, sb);
    kb.end_loop();
    let rc16 = kb.cast(rc, DType::F16);
    let sc = kb.shared_tensor("sc", DType::F16, &[bm, bn]);
    kb.copy(rc16, sc);
    let rd = kb.register_tensor("rd", DType::F16, &[bm, bn]);
    kb.copy(sc, rd);
    kb.copy(rd, gc);
    kb.build()
}

/// Builds the blockwise-scaled FP8 GEMM (Table II, "Blockwise Scaled FP8
/// GEMM"): FP8 operands, FP32 accumulation, and a per-K-block scaling factor
/// applied to the accumulator each iteration.
///
/// # Errors
///
/// Returns an error when the block tile does not divide the problem.
pub fn fp8_blockwise_gemm(shape: GemmShape, config: GemmConfig) -> Result<Program, IrError> {
    let (bm, bn, bk) = (config.block_m, config.block_n, config.block_k.max(64));
    let k_tiles = (shape.k / bk).max(1);
    let mut kb = KernelBuilder::new("fp8_blockwise_gemm", config.threads);
    kb.set_grid_blocks(config.grid_blocks(&shape));
    kb.set_pipeline_stages(config.stages);
    kb.set_warp_specialized(config.warp_specialized);
    let ga = kb.global_view(
        "a",
        DType::F8E4M3,
        Layout::from_flat(&[bm, bk, k_tiles], &[shape.k, 1, bk]),
        &[bm, bk, k_tiles],
    );
    let gb = kb.global_view(
        "b",
        DType::F8E4M3,
        Layout::from_flat(&[bn, bk, k_tiles], &[shape.k, 1, bk]),
        &[bn, bk, k_tiles],
    );
    let gscale = kb.global_view(
        "scale",
        DType::F32,
        Layout::from_flat(&[bm, 1, k_tiles], &[k_tiles, 1, 1]),
        &[bm, 1, k_tiles],
    );
    let gc = kb.global_view("c", DType::BF16, Layout::row_major(&[bm, bn]), &[bm, bn]);
    let sa = kb.shared_tensor("sa", DType::F8E4M3, &[bm, bk]);
    let sb = kb.shared_tensor("sb", DType::F8E4M3, &[bn, bk]);
    let ra = kb.register_tensor("ra", DType::F8E4M3, &[bm, bk]);
    let rb = kb.register_tensor("rb", DType::F8E4M3, &[bn, bk]);
    let acc = kb.register_tensor("acc", DType::F32, &[bm, bn]);
    let partial = kb.register_tensor("partial", DType::F32, &[bm, bn]);
    let rscale = kb.register_tensor("rscale", DType::F32, &[bm, 1]);
    kb.fill(acc, 0.0);
    kb.begin_loop(k_tiles);
    kb.copy(ga, sa);
    kb.copy(gb, sb);
    kb.copy(sa, ra);
    kb.copy(sb, rb);
    kb.fill(partial, 0.0);
    kb.gemm(partial, ra, rb);
    kb.copy(gscale, rscale);
    // acc += partial * scale (broadcast along N).
    let scaled = kb.elementwise(ElementwiseOp::Mul, &[partial, rscale]);
    kb.elementwise_into(ElementwiseOp::Add, &[acc, scaled], acc);
    kb.end_loop();
    let out = kb.cast(acc, DType::BF16);
    kb.copy(out, gc);
    kb.build()
}

fn gemm_kernel(
    shape: GemmShape,
    config: GemmConfig,
    dtype: DType,
    name: &str,
) -> Result<Program, IrError> {
    let (bm, bn, bk) = (config.block_m, config.block_n, config.block_k);
    let k_tiles = (shape.k / bk).max(1);
    let mut kb = KernelBuilder::new(name, config.threads);
    kb.set_grid_blocks(config.grid_blocks(&shape));
    kb.set_pipeline_stages(config.stages);
    kb.set_warp_specialized(config.warp_specialized);
    let ga = kb.global_view(
        "a",
        dtype,
        Layout::from_flat(&[bm, bk, k_tiles], &[shape.k, 1, bk]),
        &[bm, bk, k_tiles],
    );
    let gb = kb.global_view(
        "b",
        dtype,
        Layout::from_flat(&[bn, bk, k_tiles], &[shape.k, 1, bk]),
        &[bn, bk, k_tiles],
    );
    let gc = kb.global_view("c", dtype, Layout::row_major(&[bm, bn]), &[bm, bn]);
    let sa = kb.shared_tensor("sa", dtype, &[bm, bk]);
    let sb = kb.shared_tensor("sb", dtype, &[bn, bk]);
    let ra = kb.register_tensor("ra", dtype, &[bm, bk]);
    let rb = kb.register_tensor("rb", dtype, &[bn, bk]);
    let rc = kb.register_tensor("rc", DType::F32, &[bm, bn]);
    kb.fill(rc, 0.0);
    kb.begin_loop(k_tiles);
    kb.copy(ga, sa);
    kb.copy(gb, sb);
    kb.copy(sa, ra);
    kb.copy(sb, rb);
    kb.gemm(rc, ra, rb);
    kb.end_loop();
    let rc16 = kb.cast(rc, dtype);
    let sc = kb.shared_tensor("sc", dtype, &[bm, bn]);
    kb.copy(rc16, sc);
    let rd = kb.register_tensor("rd", dtype, &[bm, bn]);
    kb.copy(sc, rd);
    kb.copy(rd, gc);
    kb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::GpuArch;
    use hexcute_core::Compiler;

    #[test]
    fn fp16_gemm_compiles_and_uses_tensor_cores() {
        let program = fp16_gemm(GemmShape::new(4096, 4096, 4096), GemmConfig::default()).unwrap();
        assert_eq!(program.grid_blocks, 32 * 32);
        let compiler = Compiler::new(GpuArch::a100());
        let kernel = compiler.compile(&program).unwrap();
        assert!(!kernel.candidate.mma_choices.is_empty());
        let source = kernel.cuda_source();
        assert!(source.contains("cp.async"));
        assert!(source.contains("ldmatrix"));
        assert!(source.contains("mma.sync"));
    }

    #[test]
    fn warp_specialized_gemm_uses_wgmma_on_h100() {
        let program = warp_specialized_gemm(
            GemmShape::new(4096, 4096, 4096),
            GemmConfig::warp_specialized_hopper(),
        )
        .unwrap();
        assert!(program.schedule.warp_specialized);
        let kernel = Compiler::new(GpuArch::h100()).compile(&program).unwrap();
        let mma = kernel.candidate.mma_choices.values().next().unwrap();
        assert!(mma.atom.name.starts_with("wgmma"), "{}", mma.atom.name);
        assert_eq!(mma.atom.threads, 128);
    }

    #[test]
    fn fp8_gemm_targets_the_fp8_tensor_core_path() {
        let program =
            fp8_blockwise_gemm(GemmShape::new(2048, 2048, 2048), GemmConfig::default()).unwrap();
        let kernel = Compiler::new(GpuArch::h100()).compile(&program).unwrap();
        let mma = kernel.candidate.mma_choices.values().next().unwrap();
        assert!(mma.atom.name.contains("e4m3"), "{}", mma.atom.name);
        // FP8 GEMM is unavailable on Ampere.
        assert!(Compiler::new(GpuArch::a100()).compile(&program).is_err());
    }

    #[test]
    fn gemm_shape_accounting() {
        let s = GemmShape::new(1024, 512, 256);
        assert_eq!(s.flops(), 2.0 * 1024.0 * 512.0 * 256.0);
        assert_eq!(
            s.bytes(16, 16, 16),
            ((1024 * 256 + 512 * 256 + 1024 * 512) * 2) as f64
        );
    }
}
