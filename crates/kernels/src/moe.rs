//! The mixed-type (FP16 × INT4) mixture-of-experts GEMM kernel of
//! Section VII-B, with both the efficient Marlin-style dataflow (Fig. 4(b))
//! used by Hexcute and the Triton-style dataflow (Fig. 4(a)) used for the
//! ablation of Fig. 14.

use hexcute_arch::DType;
use hexcute_ir::{ElementwiseOp, IrError, KernelBuilder, Layout, Program};

/// The shape of a mixture-of-experts layer with weight-only quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoeShape {
    /// Number of input tokens in the batch.
    pub tokens: usize,
    /// Model hidden size (the GEMM K extent).
    pub hidden: usize,
    /// Expert intermediate size (the GEMM N extent).
    pub intermediate: usize,
    /// Total number of experts.
    pub experts: usize,
    /// Experts activated per token.
    pub top_k: usize,
}

impl MoeShape {
    /// The DeepSeek-R1-AWQ MoE layer evaluated in Fig. 11 (256 experts).
    pub fn deepseek_r1(tokens: usize) -> Self {
        MoeShape {
            tokens,
            hidden: 7168,
            intermediate: 2048,
            experts: 256,
            top_k: 8,
        }
    }

    /// Token–expert pairs that must be processed.
    pub fn routed_rows(&self) -> usize {
        self.tokens * self.top_k
    }

    /// Number of distinct experts that receive at least one token (assuming
    /// uniform routing).
    pub fn active_experts(&self) -> usize {
        self.routed_rows().min(self.experts)
    }

    /// Floating point operations of the layer (up- and gate-projections).
    pub fn flops(&self) -> f64 {
        2.0 * self.routed_rows() as f64 * self.hidden as f64 * self.intermediate as f64
    }

    /// Bytes of INT4 weights (plus FP16 scales) that must be streamed for the
    /// active experts.
    pub fn weight_bytes(&self) -> f64 {
        let per_expert = self.hidden as f64 * self.intermediate as f64 * 0.5
            + (self.hidden as f64 / 128.0) * self.intermediate as f64 * 2.0;
        per_expert * self.active_experts() as f64
    }

    /// Bytes of FP16 activations read and written.
    pub fn activation_bytes(&self) -> f64 {
        (self.routed_rows() * self.hidden + self.routed_rows() * self.intermediate) as f64 * 2.0
    }
}

/// Tiling configuration for the MoE kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoeConfig {
    /// Token-tile extent (M).
    pub block_m: usize,
    /// Intermediate-tile extent (N).
    pub block_n: usize,
    /// Hidden-tile extent (K).
    pub block_k: usize,
    /// Threads per block.
    pub threads: usize,
    /// Software pipeline depth.
    pub stages: usize,
}

impl Default for MoeConfig {
    fn default() -> Self {
        MoeConfig {
            block_m: 16,
            block_n: 128,
            block_k: 64,
            threads: 128,
            stages: 3,
        }
    }
}

impl MoeConfig {
    /// Thread blocks launched for the layer.
    pub fn grid_blocks(&self, shape: &MoeShape) -> usize {
        shape.routed_rows().div_ceil(self.block_m) * shape.intermediate.div_ceil(self.block_n)
    }
}

/// Which dataflow the weight tensor follows (Fig. 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoeDataflow {
    /// The efficient Marlin-style dataflow: global → shared (`cp.async`) →
    /// registers (`ldmatrix`) → cast, with no extra round trips.
    Efficient,
    /// Triton's dataflow: global → registers → shared → registers → cast,
    /// with the excessive copies highlighted in Fig. 4(a).
    TritonStyle,
}

/// Builds the mixed-type MoE GEMM kernel `y[m, n] = x[m, k] · dequant(w[n, k])ᵀ`.
///
/// # Errors
///
/// Returns an error when the configuration does not divide the problem.
pub fn mixed_type_moe(
    shape: MoeShape,
    config: MoeConfig,
    dataflow: MoeDataflow,
) -> Result<Program, IrError> {
    let (bm, bn, bk) = (config.block_m, config.block_n, config.block_k);
    let k_tiles = (shape.hidden / bk).max(1);
    let name = match dataflow {
        MoeDataflow::Efficient => "mixed_type_moe_fp16_int4",
        MoeDataflow::TritonStyle => "mixed_type_moe_fp16_int4_triton_dataflow",
    };
    let mut kb = KernelBuilder::new(name, config.threads);
    kb.set_grid_blocks(config.grid_blocks(&shape));
    kb.set_pipeline_stages(config.stages);

    // Activations (FP16), weights (packed INT4), per-group scales and zero points.
    let gx = kb.global_view(
        "x",
        DType::F16,
        Layout::from_flat(&[bm, bk, k_tiles], &[shape.hidden, 1, bk]),
        &[bm, bk, k_tiles],
    );
    let gw = kb.global_view(
        "w",
        DType::I4,
        Layout::from_flat(&[bn, bk, k_tiles], &[shape.hidden, 1, bk]),
        &[bn, bk, k_tiles],
    );
    let gscale = kb.global_view(
        "scale",
        DType::F16,
        Layout::from_flat(&[bn, 1, k_tiles], &[k_tiles, 1, 1]),
        &[bn, 1, k_tiles],
    );
    let gzp = kb.global_view(
        "zp",
        DType::F16,
        Layout::from_flat(&[bn, 1, k_tiles], &[k_tiles, 1, 1]),
        &[bn, 1, k_tiles],
    );
    let gy = kb.global_view("y", DType::F16, Layout::row_major(&[bm, bn]), &[bm, bn]);

    let sx = kb.shared_tensor("sx", DType::F16, &[bm, bk]);
    let rx = kb.register_tensor("rx", DType::F16, &[bm, bk]);
    let acc = kb.register_tensor("acc", DType::F32, &[bm, bn]);
    let rscale = kb.register_tensor("rscale", DType::F16, &[bn, 1]);
    let rzp = kb.register_tensor("rzp", DType::F16, &[bn, 1]);
    kb.fill(acc, 0.0);

    kb.begin_loop(k_tiles);
    // Activation path: global → shared → registers.
    kb.copy(gx, sx);
    kb.copy(sx, rx);

    // Weight path.
    let rw_q = match dataflow {
        MoeDataflow::Efficient => {
            // Fig. 4(b): stage the INT4 weights in shared memory with
            // cp.async and load them with ldmatrix.
            let sw = kb.shared_tensor("sw", DType::I4, &[bn, bk]);
            kb.copy(gw, sw);
            let rw_q = kb.register_tensor("rw_q", DType::I4, &[bn, bk]);
            kb.copy(sw, rw_q);
            rw_q
        }
        MoeDataflow::TritonStyle => {
            // Fig. 4(a): the weights are first pulled into registers, spilled
            // to shared memory, and read back before the conversion.
            let rw_tmp = kb.register_tensor("rw_tmp", DType::I4, &[bn, bk]);
            kb.copy(gw, rw_tmp);
            let sw = kb.shared_tensor("sw", DType::I4, &[bn, bk]);
            kb.copy(rw_tmp, sw);
            let rw_q = kb.register_tensor("rw_q", DType::I4, &[bn, bk]);
            kb.copy(sw, rw_q);
            rw_q
        }
    };

    // Dequantization: w_fp16 = (w_q - zp) * scale, entirely within registers
    // (no inter-thread data exchange thanks to the synthesized layouts).
    let rw_f = kb.cast(rw_q, DType::F16);
    kb.copy(gscale, rscale);
    kb.copy(gzp, rzp);
    let shifted = kb.elementwise(ElementwiseOp::Sub, &[rw_f, rzp]);
    let dequant = kb.elementwise(ElementwiseOp::Mul, &[shifted, rscale]);

    kb.gemm(acc, rx, dequant);
    kb.end_loop();

    // Epilogue: cast and store through shared memory for coalesced writes.
    let out16 = kb.cast(acc, DType::F16);
    let sy = kb.shared_tensor("sy", DType::F16, &[bm, bn]);
    kb.copy(out16, sy);
    let ry = kb.register_tensor("ry", DType::F16, &[bm, bn]);
    kb.copy(sy, ry);
    kb.copy(ry, gy);
    kb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::{CopyKind, GpuArch, MemSpace};
    use hexcute_core::Compiler;
    use hexcute_ir::OpKind;

    #[test]
    fn shape_accounting() {
        let s = MoeShape::deepseek_r1(64);
        assert_eq!(s.routed_rows(), 512);
        assert_eq!(s.active_experts(), 256);
        let tiny = MoeShape::deepseek_r1(1);
        assert_eq!(tiny.active_experts(), 8);
        assert!(s.weight_bytes() > tiny.weight_bytes());
        assert!(s.flops() > 0.0);
    }

    #[test]
    fn efficient_dataflow_has_fewer_copies_than_triton_style() {
        let shape = MoeShape::deepseek_r1(64);
        let efficient =
            mixed_type_moe(shape, MoeConfig::default(), MoeDataflow::Efficient).unwrap();
        let triton = mixed_type_moe(shape, MoeConfig::default(), MoeDataflow::TritonStyle).unwrap();
        let count = |p: &Program| {
            p.ops()
                .iter()
                .filter(|o| matches!(o.kind, OpKind::Copy { .. }))
                .count()
        };
        assert_eq!(count(&triton), count(&efficient) + 1);
    }

    #[test]
    fn hexcute_selects_wide_instructions_for_the_weight_path() {
        let shape = MoeShape::deepseek_r1(64);
        let program = mixed_type_moe(shape, MoeConfig::default(), MoeDataflow::Efficient).unwrap();
        let compiler = Compiler::new(GpuArch::h100());
        let kernel = compiler.compile(&program).unwrap();

        // The INT4 weight tensor is staged with 16-byte cp.async and read
        // back with a Tensor-Core-friendly shared→register instruction.
        let w_g2s = kernel
            .program
            .ops()
            .iter()
            .find_map(|op| match op.kind {
                OpKind::Copy { src, dst }
                    if kernel.program.tensor(src).name == "w"
                        && kernel.program.tensor(dst).space == MemSpace::Shared =>
                {
                    kernel.candidate.copy_choices.get(&op.id)
                }
                _ => None,
            })
            .expect("weight global->shared copy");
        assert_eq!(w_g2s.atom.kind, CopyKind::CpAsync);
        assert_eq!(w_g2s.atom.bytes_per_thread, 16);

        // The dequantized weights feed the Tensor Core directly: no
        // rearranges are needed anywhere in the kernel.
        assert!(kernel.candidate.rearranges.is_empty());
        assert!(!kernel.candidate.mma_choices.is_empty());
    }

    #[test]
    fn triton_dataflow_moves_more_bytes_per_tile() {
        let shape = MoeShape::deepseek_r1(64);
        let config = MoeConfig::default();
        let efficient = mixed_type_moe(shape, config, MoeDataflow::Efficient).unwrap();
        let triton = mixed_type_moe(shape, config, MoeDataflow::TritonStyle).unwrap();
        // Same global traffic, but the Triton-style dataflow adds an extra
        // register→shared round trip for the weight tile.
        assert_eq!(efficient.block_global_bytes(), triton.block_global_bytes());
        assert!(triton.ops().len() > efficient.ops().len());
    }
}
