//! # hexcute-kernels
//!
//! Deep-learning kernels written against the Hexcute tile-level DSL — the
//! operator families evaluated in Section VII of the paper:
//!
//! * [`gemm`] — FP16 GEMM (Fig. 15), Hopper warp-specialized FP16 GEMM and
//!   blockwise-scaled FP8 GEMM (Table II);
//! * [`attention`] — fused multi-head attention forward and decoding kernels
//!   (Table II);
//! * [`moe`] — the mixed-type FP16×INT4 mixture-of-experts kernel with both
//!   the efficient (Marlin-style) and the Triton-style dataflows (Fig. 4,
//!   Fig. 11, Fig. 14);
//! * [`mamba`] — the selective-scan kernel (Fig. 21, Table IV).
//!
//! Every kernel is a plain [`hexcute_ir::Program`] builder: the layouts and
//! instructions are left for the compiler to synthesize, exactly as in the
//! paper's programming model.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attention;
pub mod gemm;
pub mod mamba;
pub mod moe;

pub use attention::{mha_decoding, mha_forward, AttentionConfig, AttentionShape};
pub use gemm::{fp16_gemm, fp8_blockwise_gemm, warp_specialized_gemm, GemmConfig, GemmShape};
pub use mamba::{selective_scan, ScanConfig, ScanShape};
pub use moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
