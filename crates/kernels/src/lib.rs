//! # hexcute-kernels
//!
//! Deep-learning kernels written against the Hexcute tile-level DSL — the
//! operator families evaluated in Section VII of the paper:
//!
//! * [`gemm`] — FP16 GEMM (Fig. 15), Hopper warp-specialized FP16 GEMM and
//!   blockwise-scaled FP8 GEMM (Table II);
//! * [`attention`] — fused multi-head attention forward and decoding kernels
//!   (Table II);
//! * [`moe`] — the mixed-type FP16×INT4 mixture-of-experts kernel with both
//!   the efficient (Marlin-style) and the Triton-style dataflows (Fig. 4,
//!   Fig. 11, Fig. 14);
//! * [`mamba`] — the selective-scan kernel (Fig. 21, Table IV);
//! * [`mod@quant_gemm`] — the W4A16 quantized GEMM with Marlin-style
//!   dequant-in-flight (packed-INT4 weights, grouped scales, the
//!   first-class `dequant` operation);
//! * [`mod@grouped_gemm`] — the fused grouped/batched GEMM: a per-expert
//!   problem list compiled as one synthesis problem and launched as one
//!   kernel.
//!
//! Every kernel is a plain [`hexcute_ir::Program`] builder: the layouts and
//! instructions are left for the compiler to synthesize, exactly as in the
//! paper's programming model.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attention;
pub mod gemm;
pub mod grouped_gemm;
pub mod mamba;
pub mod moe;
pub mod quant_gemm;

pub use attention::{mha_decoding, mha_forward, AttentionConfig, AttentionShape};
pub use gemm::{
    bf16_gemm, fp16_gemm, fp8_blockwise_gemm, warp_specialized_gemm, GemmConfig, GemmShape,
};
pub use grouped_gemm::{grouped_gemm, GroupedGemmConfig, GroupedGemmShape};
pub use mamba::{selective_scan, ScanConfig, ScanShape};
pub use moe::{mixed_type_moe, MoeConfig, MoeDataflow, MoeShape};
pub use quant_gemm::{w4a16_gemm, QuantGemmConfig, QuantGemmShape};
