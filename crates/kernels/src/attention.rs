//! Fused multi-head attention kernels: the forward (FlashAttention-style)
//! kernel and the decoding kernel of Table II.

use hexcute_arch::DType;
use hexcute_ir::{ElementwiseOp, IrError, KernelBuilder, Layout, Program, ReduceOp};

/// The shape of a fused attention problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionShape {
    /// Batch size.
    pub batch: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Query sequence length (1 for decoding).
    pub q_len: usize,
    /// Key/value sequence length.
    pub kv_len: usize,
    /// Head dimension.
    pub head_dim: usize,
}

impl AttentionShape {
    /// A forward (prefill) attention shape.
    pub fn forward(batch: usize, heads: usize, seq: usize, head_dim: usize) -> Self {
        AttentionShape {
            batch,
            heads,
            q_len: seq,
            kv_len: seq,
            head_dim,
        }
    }

    /// A decoding attention shape (one query token against a KV cache).
    pub fn decoding(batch: usize, heads: usize, kv_len: usize, head_dim: usize) -> Self {
        AttentionShape {
            batch,
            heads,
            q_len: 1,
            kv_len,
            head_dim,
        }
    }

    /// Floating point operations (two GEMMs per head).
    pub fn flops(&self) -> f64 {
        4.0 * self.batch as f64
            * self.heads as f64
            * self.q_len as f64
            * self.kv_len as f64
            * self.head_dim as f64
    }

    /// Bytes of Q, K, V read and O written (FP16).
    pub fn bytes(&self) -> f64 {
        let q = self.batch * self.heads * self.q_len * self.head_dim;
        let kv = 2 * self.batch * self.heads * self.kv_len * self.head_dim;
        let o = self.batch * self.heads * self.q_len * self.head_dim;
        (q + kv + o) as f64 * 2.0
    }
}

/// Tiling configuration for the attention kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionConfig {
    /// Query-tile extent.
    pub block_q: usize,
    /// Key/value-tile extent.
    pub block_kv: usize,
    /// Threads per block.
    pub threads: usize,
    /// Software pipeline depth.
    pub stages: usize,
}

impl Default for AttentionConfig {
    fn default() -> Self {
        AttentionConfig {
            block_q: 64,
            block_kv: 64,
            threads: 128,
            stages: 2,
        }
    }
}

/// Builds the fused multi-head attention forward kernel (FlashAttention-2
/// style): each block owns one query tile of one head and streams the K/V
/// tiles, keeping the running softmax statistics in registers.
///
/// # Errors
///
/// Returns an error when the tiling does not divide the problem.
pub fn mha_forward(shape: AttentionShape, config: AttentionConfig) -> Result<Program, IrError> {
    let (bq, bkv, d) = (config.block_q, config.block_kv, shape.head_dim);
    let kv_tiles = (shape.kv_len / bkv).max(1);
    let mut kb = KernelBuilder::new("fused_mha_forward", config.threads);
    kb.set_grid_blocks(shape.batch * shape.heads * shape.q_len.div_ceil(bq));
    kb.set_pipeline_stages(config.stages);
    kb.set_consistent_gemm_arrangement(true);

    let gq = kb.global_view(
        "q",
        DType::F16,
        Layout::from_flat(&[bq, d], &[d, 1]),
        &[bq, d],
    );
    let gk = kb.global_view(
        "k",
        DType::F16,
        Layout::from_flat(&[bkv, d, kv_tiles], &[d, 1, bkv * d]),
        &[bkv, d, kv_tiles],
    );
    let gv = kb.global_view(
        "v",
        DType::F16,
        Layout::from_flat(&[bkv, d, kv_tiles], &[d, 1, bkv * d]),
        &[bkv, d, kv_tiles],
    );
    let go = kb.global_view("o", DType::F16, Layout::row_major(&[bq, d]), &[bq, d]);

    // Q is loaded once and stays in registers.
    let sq = kb.shared_tensor("sq", DType::F16, &[bq, d]);
    let rq = kb.register_tensor("rq", DType::F16, &[bq, d]);
    kb.copy(gq, sq);
    kb.copy(sq, rq);

    let acc = kb.register_tensor("acc", DType::F32, &[bq, d]);
    let row_sum = kb.register_tensor("row_sum", DType::F32, &[bq, 1]);
    kb.fill(acc, 0.0);
    kb.fill(row_sum, 0.0);

    kb.begin_loop(kv_tiles);
    // K tile: global → shared → registers.
    let sk = kb.shared_tensor("sk", DType::F16, &[bkv, d]);
    let rk = kb.register_tensor("rk", DType::F16, &[bkv, d]);
    kb.copy(gk, sk);
    kb.copy(sk, rk);
    // S = Q · Kᵀ
    let s = kb.register_tensor("s", DType::F32, &[bq, bkv]);
    kb.fill(s, 0.0);
    kb.gemm(s, rq, rk);
    // Online softmax statistics (simplified: exp and running row sum).
    let row_max = kb.reduce(s, 1, ReduceOp::Max);
    let shifted = kb.elementwise(ElementwiseOp::Sub, &[s, row_max]);
    let p = kb.elementwise(ElementwiseOp::Exp, &[shifted]);
    let tile_sum = kb.reduce(p, 1, ReduceOp::Sum);
    kb.elementwise_into(ElementwiseOp::Add, &[row_sum, tile_sum], row_sum);
    let p16 = kb.cast(p, DType::F16);
    // V tile: global → shared → registers.
    let sv = kb.shared_tensor("sv", DType::F16, &[bkv, d]);
    let rv = kb.register_tensor("rv", DType::F16, &[bkv, d]);
    kb.copy(gv, sv);
    kb.copy(sv, rv);
    // O += P · V   (V is consumed as an (N, K) = (d, bkv) operand).
    let rv_t = kb.register_tensor("rv_t", DType::F16, &[d, bkv]);
    kb.copy(rv, rv_t);
    kb.gemm(acc, p16, rv_t);
    kb.end_loop();

    // Normalize and store.
    let normalized = kb.elementwise(ElementwiseOp::Div, &[acc, row_sum]);
    let out16 = kb.cast(normalized, DType::F16);
    let so = kb.shared_tensor("so", DType::F16, &[bq, d]);
    kb.copy(out16, so);
    let ro = kb.register_tensor("ro", DType::F16, &[bq, d]);
    kb.copy(so, ro);
    kb.copy(ro, go);
    kb.build()
}

/// Builds the fused attention decoding kernel: one query row per head scans
/// the KV cache. The kernel is memory-bandwidth bound and its performance is
/// dominated by the width of the K/V loads.
///
/// # Errors
///
/// Returns an error when the tiling does not divide the problem.
pub fn mha_decoding(shape: AttentionShape, config: AttentionConfig) -> Result<Program, IrError> {
    let (bkv, d) = (config.block_kv, shape.head_dim);
    let kv_tiles = (shape.kv_len / bkv).max(1);
    // The single query row is padded to the 16-row Tensor Core tile, as real
    // decoding kernels do.
    let bq = 16usize;
    let mut kb = KernelBuilder::new("fused_mha_decoding", config.threads);
    kb.set_grid_blocks(shape.batch * shape.heads);
    kb.set_pipeline_stages(config.stages);

    let gq = kb.global_view(
        "q",
        DType::F16,
        Layout::from_flat(&[bq, d], &[d, 1]),
        &[bq, d],
    );
    let gk = kb.global_view(
        "k",
        DType::F16,
        Layout::from_flat(&[bkv, d, kv_tiles], &[d, 1, bkv * d]),
        &[bkv, d, kv_tiles],
    );
    let gv = kb.global_view(
        "v",
        DType::F16,
        Layout::from_flat(&[bkv, d, kv_tiles], &[d, 1, bkv * d]),
        &[bkv, d, kv_tiles],
    );
    let go = kb.global_view("o", DType::F16, Layout::row_major(&[bq, d]), &[bq, d]);

    let rq = kb.register_tensor("rq", DType::F16, &[bq, d]);
    kb.copy(gq, rq);
    let acc = kb.register_tensor("acc", DType::F32, &[bq, d]);
    let row_sum = kb.register_tensor("row_sum", DType::F32, &[bq, 1]);
    kb.fill(acc, 0.0);
    kb.fill(row_sum, 0.0);

    kb.begin_loop(kv_tiles);
    let sk = kb.shared_tensor("sk", DType::F16, &[bkv, d]);
    let rk = kb.register_tensor("rk", DType::F16, &[bkv, d]);
    kb.copy(gk, sk);
    kb.copy(sk, rk);
    let s = kb.register_tensor("s", DType::F32, &[bq, bkv]);
    kb.fill(s, 0.0);
    kb.gemm(s, rq, rk);
    let p = kb.elementwise(ElementwiseOp::Exp, &[s]);
    let tile_sum = kb.reduce(p, 1, ReduceOp::Sum);
    kb.elementwise_into(ElementwiseOp::Add, &[row_sum, tile_sum], row_sum);
    let p16 = kb.cast(p, DType::F16);
    let sv = kb.shared_tensor("sv", DType::F16, &[bkv, d]);
    let rv = kb.register_tensor("rv", DType::F16, &[d, bkv]);
    kb.copy(gv, sv);
    kb.copy(sv, rv);
    kb.gemm(acc, p16, rv);
    kb.end_loop();

    let normalized = kb.elementwise(ElementwiseOp::Div, &[acc, row_sum]);
    let out16 = kb.cast(normalized, DType::F16);
    kb.copy(out16, go);
    kb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::GpuArch;
    use hexcute_core::Compiler;

    #[test]
    fn forward_kernel_compiles_with_two_gemms() {
        let shape = AttentionShape::forward(1, 32, 2048, 128);
        let program = mha_forward(shape, AttentionConfig::default()).unwrap();
        assert_eq!(program.grid_blocks, 32 * 32);
        let kernel = Compiler::new(GpuArch::a100()).compile(&program).unwrap();
        assert_eq!(kernel.candidate.mma_choices.len(), 2);
        assert!(kernel.latency_us() > 0.0);
    }

    #[test]
    fn decoding_kernel_is_memory_bound() {
        let shape = AttentionShape::decoding(16, 32, 4096, 128);
        let program = mha_decoding(shape, AttentionConfig::default()).unwrap();
        let kernel = Compiler::new(GpuArch::a100()).compile(&program).unwrap();
        let report = &kernel.perf;
        // The KV-cache streaming dominates the Tensor Core work.
        assert!(report.dram_us > report.compute_us);
    }

    #[test]
    fn shape_accounting() {
        let fwd = AttentionShape::forward(4, 16, 1024, 64);
        assert!(fwd.flops() > 0.0);
        assert!(fwd.bytes() > 0.0);
        let dec = AttentionShape::decoding(4, 16, 1024, 64);
        assert!(dec.flops() < fwd.flops());
    }
}
