//! The Mamba selective-scan kernel of Section VII-B: a memory-bandwidth
//! bound operator that streams six operand tensors (`u`, `Δ`, `A`, `B`, `C`,
//! `Z`) and whose performance is determined by the width of the load/store
//! instructions the compiler selects (Table IV of the paper).

use hexcute_arch::DType;
use hexcute_ir::{ElementwiseOp, IrError, KernelBuilder, Layout, Program};

/// The shape of a selective-scan problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanShape {
    /// Batch size.
    pub batch: usize,
    /// Model (channel) dimension.
    pub dim: usize,
    /// State dimension.
    pub state: usize,
    /// Sequence length.
    pub seq_len: usize,
}

impl ScanShape {
    /// Creates a shape.
    pub fn new(batch: usize, dim: usize, state: usize, seq_len: usize) -> Self {
        ScanShape {
            batch,
            dim,
            state,
            seq_len,
        }
    }

    /// Bytes streamed through global memory: `u`, `Δ`, `B`, `C`, `Z` and the
    /// output in FP16 plus `A` in FP32.
    pub fn bytes(&self) -> f64 {
        let per_token = self.batch * self.dim * self.seq_len;
        let state_streams = 2 * self.batch * self.state * self.seq_len;
        (4 * per_token + state_streams + per_token) as f64 * 2.0
            + (self.dim * self.state) as f64 * 4.0
    }

    /// Elementwise floating point operations (roughly 10 per element-state
    /// pair).
    pub fn flops(&self) -> f64 {
        10.0 * self.batch as f64 * self.dim as f64 * self.seq_len as f64
    }
}

/// Tiling configuration for the scan kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanConfig {
    /// Channel-tile extent.
    pub block_dim: usize,
    /// Sequence-tile extent.
    pub block_seq: usize,
    /// Threads per block.
    pub threads: usize,
    /// Software pipeline depth (the paper reports up to 16% from pipelining).
    pub stages: usize,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            block_dim: 64,
            block_seq: 64,
            threads: 128,
            stages: 2,
        }
    }
}

/// Builds the selective-scan kernel. Each block owns a channel tile of one
/// sequence and streams the sequence in chunks, loading `u`, `Δ`, `B`, `C`
/// and `Z` through shared memory so that wide, coalesced instructions can be
/// used, and writing the gated output back per chunk.
///
/// # Errors
///
/// Returns an error when the tiling does not divide the problem.
pub fn selective_scan(shape: ScanShape, config: ScanConfig) -> Result<Program, IrError> {
    let (bd, bl) = (config.block_dim, config.block_seq);
    let seq_tiles = (shape.seq_len / bl).max(1);
    let mut kb = KernelBuilder::new("mamba_selective_scan", config.threads);
    kb.set_grid_blocks(shape.batch * shape.dim.div_ceil(bd));
    kb.set_pipeline_stages(config.stages);

    let view = || Layout::from_flat(&[bd, bl, seq_tiles], &[shape.seq_len, 1, bl]);
    let gu = kb.global_view("u", DType::F16, view(), &[bd, bl, seq_tiles]);
    let gdelta = kb.global_view("delta", DType::F16, view(), &[bd, bl, seq_tiles]);
    let gz = kb.global_view("z", DType::F16, view(), &[bd, bl, seq_tiles]);
    let gb = kb.global_view("b", DType::F16, view(), &[bd, bl, seq_tiles]);
    let gc = kb.global_view("c", DType::F16, view(), &[bd, bl, seq_tiles]);
    let ga = kb.global_view(
        "a",
        DType::F32,
        Layout::from_flat(&[bd, shape.state], &[shape.state, 1]),
        &[bd, shape.state],
    );
    let gy = kb.global_view("y", DType::F16, view(), &[bd, bl, seq_tiles]);

    // A is loaded once and kept in registers.
    let ra = kb.register_tensor("ra", DType::F32, &[bd, shape.state]);
    kb.copy(ga, ra);
    let a_row = kb.reduce(ra, 1, hexcute_ir::ReduceOp::Sum);

    kb.begin_loop(seq_tiles);
    // Stream the five sequence tensors through shared memory.
    let mut regs = Vec::new();
    for (name, global) in [
        ("u", gu),
        ("delta", gdelta),
        ("z", gz),
        ("b", gb),
        ("c", gc),
    ] {
        let smem = kb.shared_tensor(format!("s_{name}"), DType::F16, &[bd, bl]);
        let reg = kb.register_tensor(format!("r_{name}"), DType::F16, &[bd, bl]);
        kb.copy(global, smem);
        kb.copy(smem, reg);
        regs.push(reg);
    }
    let (ru, rdelta, rz, rb, rc) = (regs[0], regs[1], regs[2], regs[3], regs[4]);

    // Simplified selective-state update (per chunk):
    //   decay   = exp(Δ ⊙ Ā)          (Ā broadcast along the sequence)
    //   xbar    = B ⊙ u
    //   contrib = decay ⊙ xbar
    //   y       = (C ⊙ contrib) ⊙ silu(z)
    let da = kb.elementwise(ElementwiseOp::Mul, &[rdelta, a_row]);
    let decay = kb.elementwise(ElementwiseOp::Exp, &[da]);
    let xbar = kb.elementwise(ElementwiseOp::Mul, &[rb, ru]);
    let contrib = kb.elementwise(ElementwiseOp::Mul, &[decay, xbar]);
    let scanned = kb.elementwise(ElementwiseOp::Mul, &[rc, contrib]);
    let gate = kb.elementwise(ElementwiseOp::Silu, &[rz]);
    let gated = kb.elementwise(ElementwiseOp::Mul, &[scanned, gate]);
    let out16 = kb.cast(gated, DType::F16);
    kb.copy(out16, gy);
    kb.end_loop();
    kb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::GpuArch;
    use hexcute_core::Compiler;
    use hexcute_ir::OpKind;

    #[test]
    fn scan_kernel_compiles_and_is_memory_bound() {
        let shape = ScanShape::new(1, 4096, 16, 4096);
        let program = selective_scan(shape, ScanConfig::default()).unwrap();
        assert_eq!(program.grid_blocks, 64);
        let kernel = Compiler::new(GpuArch::h100()).compile(&program).unwrap();
        assert!(kernel.candidate.mma_choices.is_empty());
        assert!(kernel.perf.dram_us > kernel.perf.compute_us);
    }

    #[test]
    fn scan_loads_are_wide() {
        let shape = ScanShape::new(1, 4096, 16, 4096);
        let program = selective_scan(shape, ScanConfig::default()).unwrap();
        let kernel = Compiler::new(GpuArch::h100()).compile(&program).unwrap();
        // Every global→shared copy of the streamed tensors uses 16-byte
        // instructions (the Hexcute column of Table IV).
        for op in kernel.program.ops() {
            if let OpKind::Copy { src, dst } = op.kind {
                let s = kernel.program.tensor(src);
                let d = kernel.program.tensor(dst);
                if s.space == hexcute_arch::MemSpace::Global
                    && d.space == hexcute_arch::MemSpace::Shared
                {
                    let choice = &kernel.candidate.copy_choices[&op.id];
                    assert_eq!(
                        s.dtype.bytes_for(choice.elements_per_thread),
                        16,
                        "{} staged with {}",
                        s.name,
                        choice.atom.name
                    );
                }
            }
        }
    }

    #[test]
    fn shape_accounting() {
        let s = ScanShape::new(2, 2048, 16, 8192);
        assert!(s.bytes() > 0.0);
        assert!(s.flops() > 0.0);
    }
}
