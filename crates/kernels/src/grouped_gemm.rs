//! Grouped (batched) GEMM: a *list* of per-expert GEMM problems — every
//! expert's `y_g[m_g, n] = x_g[m_g, k] · w_g[n, k]ᵀ` — compiled as **one**
//! synthesis problem and launched as one fused kernel, the way Marlin-new
//! fuses the MoE expert loop (Section VII-B).
//!
//! The per-group M extents may differ (tokens route unevenly across
//! experts); the kernel walks a flattened list of (group, tile) pairs, so
//! the grid is the *sum* of every group's tile count and no kernel-launch
//! overhead is paid per expert. A small problem-descriptor table (`desc`) is
//! loaded in the prologue — the per-block indirection that turns the flat
//! block index back into (group, m-tile, n-tile) coordinates. Layout
//! synthesis sees one representative tile: every group shares the same
//! N/K geometry, so one synthesized layout serves the whole batch.

use hexcute_arch::DType;
use hexcute_ir::{IrError, KernelBuilder, Layout, Program};

/// The problem list of a grouped GEMM: per-group token counts against a
/// shared `[n, k]` weight geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupedGemmShape {
    /// Tokens (M extent) of each group; zero-token groups are skipped.
    pub group_tokens: Vec<usize>,
    /// Output features per group (the GEMM N extent).
    pub n: usize,
    /// Contraction extent (the GEMM K extent).
    pub k: usize,
}

impl GroupedGemmShape {
    /// A uniform batch: `groups` experts, `tokens_per_group` tokens each.
    pub fn uniform(groups: usize, tokens_per_group: usize, n: usize, k: usize) -> Self {
        GroupedGemmShape {
            group_tokens: vec![tokens_per_group; groups.max(1)],
            n,
            k,
        }
    }

    /// An explicit (possibly ragged) batch.
    pub fn from_token_counts(group_tokens: Vec<usize>, n: usize, k: usize) -> Self {
        GroupedGemmShape { group_tokens, n, k }
    }

    /// Top-k routing under the uniform assumption: `tokens * top_k` routed
    /// rows spread evenly over `experts` groups of an `k → n` projection.
    /// The single source of the routing math shared by the presets and the
    /// serving model.
    pub fn top_k_routed(experts: usize, tokens: usize, top_k: usize, n: usize, k: usize) -> Self {
        let experts = experts.max(1);
        let routed = (tokens * top_k).max(1);
        let per_expert = routed.div_ceil(experts).max(1);
        GroupedGemmShape::uniform(experts, per_expert, n, k)
    }

    /// A Mixtral-style expert batch: top-2 routing over 8 experts of a
    /// 4096 → 14336 projection.
    pub fn mixtral(tokens: usize) -> Self {
        GroupedGemmShape::top_k_routed(8, tokens, 2, 14336, 4096)
    }

    /// Number of groups with at least one token.
    pub fn active_groups(&self) -> usize {
        self.group_tokens.iter().filter(|&&m| m > 0).count()
    }

    /// Total routed rows across all groups.
    pub fn total_tokens(&self) -> usize {
        self.group_tokens.iter().sum()
    }

    /// Floating point operations summed over the problem list.
    pub fn flops(&self) -> f64 {
        2.0 * self.total_tokens() as f64 * self.n as f64 * self.k as f64
    }

    /// FP16 weight bytes streamed for the active groups.
    pub fn weight_bytes(&self) -> f64 {
        (self.active_groups() * self.n * self.k) as f64 * 2.0
    }

    /// FP16 activation bytes read and written across all groups.
    pub fn activation_bytes(&self) -> f64 {
        (self.total_tokens() * (self.k + self.n)) as f64 * 2.0
    }
}

/// Tiling configuration of the grouped GEMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupedGemmConfig {
    /// Token-tile extent (M).
    pub block_m: usize,
    /// Output-feature-tile extent (N).
    pub block_n: usize,
    /// Contraction-tile extent (K).
    pub block_k: usize,
    /// Threads per block.
    pub threads: usize,
    /// Software pipeline depth.
    pub stages: usize,
}

impl Default for GroupedGemmConfig {
    fn default() -> Self {
        GroupedGemmConfig {
            block_m: 16,
            block_n: 128,
            block_k: 64,
            threads: 128,
            stages: 3,
        }
    }
}

impl GroupedGemmConfig {
    /// The batched tile count: the sum over active groups of that group's
    /// (M tiles × N tiles) — one thread block per (group, tile) pair.
    pub fn grid_blocks(&self, shape: &GroupedGemmShape) -> usize {
        shape
            .group_tokens
            .iter()
            .filter(|&&m| m > 0)
            .map(|&m| m.div_ceil(self.block_m) * shape.n.div_ceil(self.block_n))
            .sum::<usize>()
            .max(1)
    }
}

/// Builds the fused grouped-GEMM kernel.
///
/// # Errors
///
/// Returns an error when the configuration does not produce a valid tile
/// program.
pub fn grouped_gemm(
    shape: &GroupedGemmShape,
    config: GroupedGemmConfig,
) -> Result<Program, IrError> {
    let (bm, bn, bk) = (config.block_m, config.block_n, config.block_k);
    let k_tiles = (shape.k / bk).max(1);
    let groups = shape.group_tokens.len().max(1);
    let mut kb = KernelBuilder::new("grouped_gemm", config.threads);
    kb.set_grid_blocks(config.grid_blocks(shape));
    kb.set_pipeline_stages(config.stages);

    // The problem-descriptor table: per group (m, tile offset, x offset,
    // y offset) — the indirection each block resolves once in its prologue.
    let gdesc = kb.global_view(
        "desc",
        DType::I32,
        Layout::row_major(&[groups, 4]),
        &[groups, 4],
    );
    let rdesc = kb.register_tensor("rdesc", DType::I32, &[groups, 4]);
    kb.copy(gdesc, rdesc);

    // One representative (group, tile) pair; the grid covers the list.
    let gx = kb.global_view(
        "x",
        DType::F16,
        Layout::from_flat(&[bm, bk, k_tiles], &[shape.k, 1, bk]),
        &[bm, bk, k_tiles],
    );
    let gw = kb.global_view(
        "w",
        DType::F16,
        Layout::from_flat(&[bn, bk, k_tiles], &[shape.k, 1, bk]),
        &[bn, bk, k_tiles],
    );
    let gy = kb.global_view("y", DType::F16, Layout::row_major(&[bm, bn]), &[bm, bn]);

    let sx = kb.shared_tensor("sx", DType::F16, &[bm, bk]);
    let sw = kb.shared_tensor("sw", DType::F16, &[bn, bk]);
    let rx = kb.register_tensor("rx", DType::F16, &[bm, bk]);
    let rw = kb.register_tensor("rw", DType::F16, &[bn, bk]);
    let acc = kb.register_tensor("acc", DType::F32, &[bm, bn]);
    kb.fill(acc, 0.0);

    kb.begin_loop(k_tiles);
    kb.copy(gx, sx);
    kb.copy(gw, sw);
    kb.copy(sx, rx);
    kb.copy(sw, rw);
    kb.gemm(acc, rx, rw);
    kb.end_loop();

    let out16 = kb.cast(acc, DType::F16);
    let sy = kb.shared_tensor("sy", DType::F16, &[bm, bn]);
    kb.copy(out16, sy);
    let ry = kb.register_tensor("ry", DType::F16, &[bm, bn]);
    kb.copy(sy, ry);
    kb.copy(ry, gy);
    kb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::GpuArch;
    use hexcute_core::Compiler;

    #[test]
    fn batched_tile_accounting() {
        let shape = GroupedGemmShape::from_token_counts(vec![32, 0, 5, 16], 256, 512);
        assert_eq!(shape.active_groups(), 3);
        assert_eq!(shape.total_tokens(), 53);
        let config = GroupedGemmConfig::default();
        // 32 tokens → 2 M tiles, 5 → 1, 16 → 1; times 2 N tiles each.
        assert_eq!(config.grid_blocks(&shape), (2 + 1 + 1) * 2);
        assert!(shape.flops() > 0.0);
        assert!(shape.weight_bytes() > shape.activation_bytes() * 0.0);
    }

    #[test]
    fn one_launch_covers_the_whole_problem_list() {
        let shape = GroupedGemmShape::uniform(8, 16, 256, 512);
        let program = grouped_gemm(&shape, GroupedGemmConfig::default()).unwrap();
        let config = GroupedGemmConfig::default();
        assert_eq!(program.grid_blocks, config.grid_blocks(&shape));
        // The descriptor indirection is resolved once, outside the main loop.
        let desc_copy = &program.ops()[0];
        assert!(!desc_copy.in_main_loop);
        let kernel = Compiler::new(GpuArch::h100()).compile(&program).unwrap();
        assert!(!kernel.candidate.mma_choices.is_empty());
        assert!(kernel.latency_us() > 0.0);
    }

    #[test]
    fn ragged_batches_compile_like_uniform_ones() {
        let ragged = GroupedGemmShape::from_token_counts(vec![1, 7, 64, 3], 128, 256);
        let program = grouped_gemm(&ragged, GroupedGemmConfig::default()).unwrap();
        let kernel = Compiler::new(GpuArch::a100()).compile(&program).unwrap();
        assert!(kernel.latency_us() > 0.0);
    }

    #[test]
    fn mixtral_preset_routes_over_eight_experts() {
        let shape = GroupedGemmShape::mixtral(64);
        assert_eq!(shape.group_tokens.len(), 8);
        assert_eq!(shape.total_tokens(), 128);
    }
}
