//! The W4A16 quantized GEMM: FP16 activations against packed-INT4 weights
//! with grouped scales/zero points, dequantized *in flight* (Marlin-style)
//! between the shared-memory unpack load and the Tensor Core — the dense
//! analogue of the mixed-type MoE kernel, synthesized end to end instead of
//! hand-written.
//!
//! The weight path is `global → shared (cp.async, packed nibbles) → registers
//! (unpack load) → dequant (registers) → mma`: no extra round trips, no
//! inter-thread exchange before the arithmetic. The dequantization is the
//! first-class [`hexcute_ir::OpKind::Dequant`] operation, so the cost model
//! and the functional simulator both see the grouped `(w - zp) * scale`
//! semantics instead of an opaque cast/elementwise chain.

use hexcute_arch::DType;
use hexcute_ir::{IrError, KernelBuilder, Layout, Program};

/// The problem shape of a W4A16 GEMM `y[m, n] = x[m, k] · dequant(w[n, k])ᵀ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantGemmShape {
    /// Rows of the output (tokens).
    pub m: usize,
    /// Columns of the output (output features).
    pub n: usize,
    /// The contraction extent (input features).
    pub k: usize,
    /// Elements along K sharing one scale/zero column (AWQ/GPTQ group size).
    pub group_size: usize,
}

impl QuantGemmShape {
    /// Creates a shape with the given quantization group size.
    pub fn new(m: usize, n: usize, k: usize, group_size: usize) -> Self {
        QuantGemmShape {
            m,
            n,
            k,
            group_size: group_size.max(1),
        }
    }

    /// A Llama-70B-style AWQ projection (group size 128).
    pub fn llama_70b_proj(tokens: usize) -> Self {
        QuantGemmShape::new(tokens, 8192, 8192, 128)
    }

    /// Floating point operations of the full problem.
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Number of scale columns (`ceil(k / group_size)`).
    pub fn groups(&self) -> usize {
        self.k.div_ceil(self.group_size).max(1)
    }

    /// Bytes of packed INT4 weights plus FP16 scales and zero points.
    pub fn weight_bytes(&self) -> f64 {
        let packed = self.n as f64 * self.k as f64 * 0.5;
        let params = 2.0 * self.n as f64 * self.groups() as f64 * 2.0;
        packed + params
    }

    /// Bytes of FP16 activations read and written.
    pub fn activation_bytes(&self) -> f64 {
        (self.m * self.k + self.m * self.n) as f64 * 2.0
    }
}

/// Tiling configuration of the W4A16 GEMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantGemmConfig {
    /// Token-tile extent (M).
    pub block_m: usize,
    /// Output-feature-tile extent (N).
    pub block_n: usize,
    /// Contraction-tile extent (K).
    pub block_k: usize,
    /// Threads per block.
    pub threads: usize,
    /// Software pipeline depth.
    pub stages: usize,
}

impl Default for QuantGemmConfig {
    fn default() -> Self {
        QuantGemmConfig {
            block_m: 16,
            block_n: 128,
            block_k: 64,
            threads: 128,
            stages: 3,
        }
    }
}

impl QuantGemmConfig {
    /// A configuration tuned to the problem: decode-sized batches keep the
    /// skinny 16-row tile, prefill-sized batches widen the M tile (up to 64)
    /// so the grid — and with it the per-block weight re-reads — stays small.
    pub fn for_shape(shape: &QuantGemmShape) -> Self {
        let block_m = if shape.m >= 64 { 64 } else { 16 };
        QuantGemmConfig {
            block_m,
            ..QuantGemmConfig::default()
        }
    }

    /// Thread blocks launched for the problem.
    pub fn grid_blocks(&self, shape: &QuantGemmShape) -> usize {
        shape.m.div_ceil(self.block_m) * shape.n.div_ceil(self.block_n)
    }
}

/// Builds the W4A16 quantized GEMM kernel with dequant-in-flight.
///
/// The scale/zero global views index a checkpoint-shaped `[n, groups()]`
/// buffer: when `group_size > block_k`, consecutive K tiles *share* a scale
/// column (a stride-0 sub-mode implements the tile→group mapping); when
/// `group_size < block_k`, each tile reads its own slice of columns.
///
/// # Errors
///
/// Returns an error when the configuration does not produce a valid tile
/// program, or when the quantization group does not align with the K tile
/// (multi-tile kernels need `group_size % block_k == 0` or
/// `block_k % group_size == 0`, so the nominal grouping is representable;
/// single-tile kernels accept any group size).
pub fn w4a16_gemm(shape: QuantGemmShape, config: QuantGemmConfig) -> Result<Program, IrError> {
    let (bm, bn, bk) = (config.block_m, config.block_n, config.block_k);
    let k_tiles = (shape.k / bk).max(1);
    let group = shape.group_size;
    if k_tiles > 1 && !group.is_multiple_of(bk) && !bk.is_multiple_of(group) {
        return Err(IrError::InvalidProgram(format!(
            "quantization group size {group} does not align with block_k {bk}: \
             the kernel cannot represent the nominal grouping"
        )));
    }
    // Scale columns read per K tile (the trailing partial group, if any, is
    // served by the last column).
    let tile_groups = bk.div_ceil(group).max(1);
    let total_groups = if k_tiles > 1 {
        shape.groups()
    } else {
        tile_groups
    };
    // The tile→scale-column mapping over a row-major [n, total_groups]
    // checkpoint buffer. With group >= bk, `tiles_per_group` consecutive
    // tiles share one column: the k_tiles dimension factors into
    // (tiles_per_group, total_groups) with strides (0, 1) — a stride-0
    // sub-mode is exactly the floor division tile → group.
    let scale_layout = || -> Layout {
        if k_tiles > 1 && group > bk {
            let tiles_per_group = group / bk;
            hexcute_layout::Layout::new(
                hexcute_layout::ituple![bn, 1, (tiles_per_group, total_groups)],
                hexcute_layout::ituple![total_groups, 1, (0, 1)],
            )
            .expect("grouped scale layout is well-formed")
        } else {
            Layout::from_flat(&[bn, tile_groups, k_tiles], &[total_groups, 1, tile_groups])
        }
    };
    let mut kb = KernelBuilder::new("w4a16_gemm", config.threads);
    kb.set_grid_blocks(config.grid_blocks(&shape));
    kb.set_pipeline_stages(config.stages);

    // Activations (FP16), packed-INT4 weights, per-group scales/zero points.
    let gx = kb.global_view(
        "x",
        DType::F16,
        Layout::from_flat(&[bm, bk, k_tiles], &[shape.k, 1, bk]),
        &[bm, bk, k_tiles],
    );
    let gw = kb.global_view(
        "w",
        DType::I4,
        Layout::from_flat(&[bn, bk, k_tiles], &[shape.k, 1, bk]),
        &[bn, bk, k_tiles],
    );
    let gscale = kb.global_view(
        "scale",
        DType::F16,
        scale_layout(),
        &[bn, tile_groups, k_tiles],
    );
    let gzp = kb.global_view(
        "zp",
        DType::F16,
        scale_layout(),
        &[bn, tile_groups, k_tiles],
    );
    let gy = kb.global_view("y", DType::F16, Layout::row_major(&[bm, bn]), &[bm, bn]);

    let sx = kb.shared_tensor("sx", DType::F16, &[bm, bk]);
    // The weights stay packed through shared memory (cp.async of nibbles) and
    // are expanded by the unpack load into each thread's own lanes.
    let sw = kb.shared_tensor("sw", DType::I4, &[bn, bk]);
    let rx = kb.register_tensor("rx", DType::F16, &[bm, bk]);
    let rw_q = kb.register_tensor("rw_q", DType::I4, &[bn, bk]);
    let rscale = kb.register_tensor("rscale", DType::F16, &[bn, tile_groups]);
    let rzp = kb.register_tensor("rzp", DType::F16, &[bn, tile_groups]);
    let acc = kb.register_tensor("acc", DType::F32, &[bm, bn]);
    kb.fill(acc, 0.0);

    kb.begin_loop(k_tiles);
    // Activation path: global → shared → registers.
    kb.copy(gx, sx);
    kb.copy(sx, rx);
    // Weight path (Fig. 4(b)): packed nibbles staged with cp.async, read back
    // with the unpack load, dequantized in registers.
    kb.copy(gw, sw);
    kb.copy(sw, rw_q);
    kb.copy(gscale, rscale);
    kb.copy(gzp, rzp);
    let rw = kb.dequant(rw_q, rscale, Some(rzp), DType::F16, shape.group_size);
    kb.gemm(acc, rx, rw);
    kb.end_loop();

    // Epilogue: cast and store through shared memory for coalesced writes.
    let out16 = kb.cast(acc, DType::F16);
    let sy = kb.shared_tensor("sy", DType::F16, &[bm, bn]);
    kb.copy(out16, sy);
    let ry = kb.register_tensor("ry", DType::F16, &[bm, bn]);
    kb.copy(sy, ry);
    kb.copy(ry, gy);
    kb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::{CopyKind, GpuArch, MemSpace};
    use hexcute_core::Compiler;
    use hexcute_ir::OpKind;

    #[test]
    fn shape_accounting() {
        let s = QuantGemmShape::new(64, 1024, 2048, 128);
        assert_eq!(s.groups(), 16);
        assert_eq!(s.flops(), 2.0 * 64.0 * 1024.0 * 2048.0);
        // Packed nibbles halve the weight bytes relative to int8.
        assert!(s.weight_bytes() < (1024 * 2048) as f64);
        assert!(s.activation_bytes() > 0.0);
        // Odd group sizes round the column count up.
        assert_eq!(QuantGemmShape::new(1, 16, 100, 24).groups(), 5);
    }

    #[test]
    fn weight_path_selects_cp_async_and_unpack() {
        let program = w4a16_gemm(
            QuantGemmShape::llama_70b_proj(64),
            QuantGemmConfig::default(),
        )
        .unwrap();
        let compiler = Compiler::new(GpuArch::h100());
        let kernel = compiler.compile(&program).unwrap();

        // Packed weights staged with 16-byte cp.async.
        let w_g2s = kernel
            .program
            .ops()
            .iter()
            .find_map(|op| match op.kind {
                OpKind::Copy { src, dst }
                    if kernel.program.tensor(src).name == "w"
                        && kernel.program.tensor(dst).space == MemSpace::Shared =>
                {
                    kernel.candidate.copy_choices.get(&op.id)
                }
                _ => None,
            })
            .expect("weight global->shared copy");
        assert_eq!(w_g2s.atom.kind, CopyKind::CpAsync);
        assert_eq!(w_g2s.atom.bytes_per_thread, 16);

        // The shared→register weight read uses the unpack load, not a plain
        // vector load: dequant-in-flight needs the nibbles in-lane.
        let w_s2r = kernel
            .program
            .ops()
            .iter()
            .find_map(|op| match op.kind {
                OpKind::Copy { src, dst }
                    if kernel.program.tensor(src).name == "sw"
                        && kernel.program.tensor(dst).space == MemSpace::Register =>
                {
                    kernel.candidate.copy_choices.get(&op.id)
                }
                _ => None,
            })
            .expect("weight shared->register copy");
        assert_eq!(w_s2r.atom.kind, CopyKind::Unpack);

        // The dequantized weights feed the Tensor Core directly.
        assert!(kernel.candidate.rearranges.is_empty());
        assert!(!kernel.candidate.mma_choices.is_empty());

        // The emitted pseudo-CUDA shows the grouped dequant and the unpack.
        let source = kernel.cuda_source();
        assert!(source.contains("dequant<group=128>"), "{source}");
        assert!(source.contains("unpack"), "{source}");
    }

    #[test]
    fn compiles_on_ampere_too() {
        let program = w4a16_gemm(
            QuantGemmShape::new(16, 128, 256, 64),
            QuantGemmConfig::default(),
        )
        .unwrap();
        let kernel = Compiler::new(GpuArch::a100()).compile(&program).unwrap();
        assert!(kernel.latency_us() > 0.0);
        assert!(kernel
            .program
            .ops()
            .iter()
            .any(|op| matches!(op.kind, OpKind::Dequant { group_size: 64, .. })));
    }

    #[test]
    fn simulated_output_matches_scalar_dequant_gemm() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        use std::collections::HashMap;

        // One block tile, two K tiles, one scale group per tile.
        let config = QuantGemmConfig {
            block_m: 16,
            block_n: 64,
            block_k: 64,
            threads: 128,
            stages: 2,
        };
        let shape = QuantGemmShape::new(16, 64, 128, 64);
        let program = w4a16_gemm(shape, config).unwrap();
        let kernel = Compiler::new(GpuArch::a100()).compile(&program).unwrap();

        let (m, n, k, bk) = (16usize, 64usize, 128usize, 64usize);
        let groups = k / 64;
        let mut rng = StdRng::seed_from_u64(99);
        let x: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let w: Vec<f32> = (0..n * k)
            .map(|_| rng.gen_range(-8i32..=7) as f32)
            .collect();
        let scale: Vec<f32> = (0..n * groups).map(|_| rng.gen_range(0.01..0.1)).collect();
        let zp: Vec<f32> = (0..n * groups)
            .map(|_| rng.gen_range(-2i32..=2) as f32)
            .collect();
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), x.clone());
        inputs.insert("w".to_string(), w.clone());
        inputs.insert("scale".to_string(), scale.clone());
        inputs.insert("zp".to_string(), zp.clone());
        let out = kernel.simulate(&inputs).unwrap();

        // Scalar reference: dequantize per group, then the plain GEMM.
        for mi in 0..m {
            for ni in 0..n {
                let mut acc = 0.0f64;
                for ki in 0..k {
                    let g = ki / bk; // one scale column per K tile here
                    let dq = (w[ni * k + ki] - zp[ni * groups + g]) * scale[ni * groups + g];
                    acc += f64::from(x[mi * k + ki]) * f64::from(dq);
                }
                let got = f64::from(out["y"][mi * n + ni]);
                assert!(
                    (got - acc).abs() < 1e-2 * acc.abs().max(1.0),
                    "y[{mi},{ni}] = {got}, expected {acc}"
                );
            }
        }
    }

    #[test]
    fn quantized_weights_stream_fewer_bytes_than_fp16() {
        use crate::gemm::{fp16_gemm, GemmConfig, GemmShape};
        // The same problem tiled identically with FP16 weights: the packed
        // program must move strictly fewer global bytes per block, and by
        // a margin close to the 4x weight compression.
        let (m, n, k) = (16usize, 128usize, 512usize);
        let quant =
            w4a16_gemm(QuantGemmShape::new(m, n, k, 64), QuantGemmConfig::default()).unwrap();
        let fp16 = fp16_gemm(
            GemmShape::new(m, n, k),
            GemmConfig {
                block_m: 16,
                block_n: 128,
                block_k: 64,
                threads: 128,
                stages: 3,
                warp_specialized: false,
            },
        )
        .unwrap();
        let quant_bytes = quant.block_global_bytes();
        let fp16_bytes = fp16.block_global_bytes();
        assert!(
            quant_bytes < fp16_bytes,
            "packed weights must stream fewer bytes ({quant_bytes} vs {fp16_bytes})"
        );
        // Weight traffic dominates at m=16, so the whole-block saving is
        // well over 2x.
        assert!(
            quant_bytes * 2 < fp16_bytes,
            "expected a ~4x weight saving, got {quant_bytes} vs {fp16_bytes}"
        );
    }

    #[test]
    fn scale_views_are_checkpoint_shaped_and_misaligned_groups_error() {
        // Group size (128) above block_k (64): consecutive K tiles share a
        // scale column, and the global view addresses exactly the
        // checkpoint's [n, ceil(k/group)] buffer.
        let config = QuantGemmConfig::default();
        let shape = QuantGemmShape::llama_70b_proj(16);
        let program = w4a16_gemm(shape, config).unwrap();
        let scale = program.tensor_by_name("scale").unwrap();
        let layout = scale.global_layout.as_ref().unwrap();
        // The view covers the block's `block_n` rows of the checkpoint's
        // [n, groups] buffer: one scale column per `group_size` elements of
        // the *whole* K extent, not one per K tile.
        assert_eq!(
            layout.cosize(),
            config.block_n * shape.groups(),
            "the scale view must address the nominal per-block [block_n, groups] slice"
        );
        // Group size equal to / below block_k: same invariant.
        for group in [64usize, 32] {
            let shape = QuantGemmShape::new(16, 128, 256, group);
            let program = w4a16_gemm(shape, config).unwrap();
            let layout = program
                .tensor_by_name("scale")
                .unwrap()
                .global_layout
                .as_ref()
                .unwrap()
                .clone();
            assert_eq!(
                layout.cosize(),
                config.block_n * shape.groups(),
                "group {group}"
            );
        }
        // A multi-tile kernel with a group that aligns with neither side of
        // block_k cannot represent the nominal grouping: it must error
        // rather than silently re-group.
        let err = w4a16_gemm(
            QuantGemmShape::new(16, 128, 256, 24),
            QuantGemmConfig::default(),
        );
        assert!(err.is_err(), "misaligned group must be rejected");
        // A single-tile kernel represents any group exactly.
        assert!(w4a16_gemm(
            QuantGemmShape::new(16, 128, 64, 24),
            QuantGemmConfig::default()
        )
        .is_ok());
    }
}
