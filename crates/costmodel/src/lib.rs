//! # hexcute-costmodel
//!
//! The analytical cost model of Section VI of the Hexcute paper.
//!
//! A candidate program is modelled as a sequence of tile-level operations
//! `O₁, O₂, …, Oₙ`. The model tracks both the *issue* cycles of every
//! operation (how long the issuing warps are busy) and its *completion*
//! cycles (when its results are available), charges read-after-write stalls
//! when an operation consumes data that is still in flight, and accounts for
//! the overlap provided by software pipelining and warp specialization in the
//! kernel's main loop.
//!
//! The per-instruction issue and completion cycles come from the instruction
//! catalog in `hexcute-arch`, which plays the role of the microbenchmark
//! table the paper cites.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bounds;
mod model;

pub use bounds::CompletionBounds;
pub use model::{
    candidate_fingerprint, op_choice_fingerprint, program_fingerprint, CostBreakdown, CostModel,
    OpCost,
};
