//! The analytical latency model.
//!
//! When the flat fast path is enabled (see [`hexcute_layout::fastpath`]),
//! per-operation issue/completion estimates are memoized across candidates:
//! the search tree varies one instruction choice at a time, so most
//! operations of sibling candidates share identical choices and their costs
//! are computed once. The cache key is a fingerprint of exactly the choice
//! fields the estimate reads, so memoized results are bit-identical to
//! recomputed ones.
//!
//! With the incremental prefix-shared search (see
//! [`hexcute_synthesis::prefix`]) the accumulation over a candidate is
//! additionally memoized whole: estimates accrue per shared prefix through
//! the per-operation cache, and a repeat estimate of a candidate whose full
//! choice fingerprint was seen before is a single lookup. Both layers are
//! disabled together with their respective switches, restoring the
//! recompute-everything reference behaviour.

use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

use hexcute_arch::GpuArch;
use hexcute_ir::{Op, OpId, OpKind, Program, TensorId};
use hexcute_layout::fastpath;
use hexcute_parallel::cache::{CacheStats, ShardedMap};
use hexcute_parallel::lossy::{self, LossyPurpose};
use hexcute_synthesis::Candidate;

/// Bound on resident whole-candidate estimates: each entry carries a per-op
/// cost vector, so the cache is capped (with simple shard eviction) instead
/// of growing with every candidate a long-lived model ever sees.
const CANDIDATE_CACHE_CAPACITY: usize = 8192;

/// Per-operation cost attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct OpCost {
    /// The operation.
    pub op: OpId,
    /// Cycles the issuing warps are occupied.
    pub issue_cycles: f64,
    /// Additional cycles stalled waiting for in-flight producers.
    pub stall_cycles: f64,
    /// Cycles until the result is available after issuing.
    pub completion_cycles: f64,
}

/// The estimated latency of a candidate program on one streaming
/// multiprocessor, split into its components.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdown {
    /// Estimated cycles for one thread block to execute the whole kernel.
    pub total_cycles: f64,
    /// Cycles spent before the main loop (prologue).
    pub prologue_cycles: f64,
    /// Cycles spent in one iteration of the main loop (after pipelining).
    pub loop_iteration_cycles: f64,
    /// Cycles spent after the main loop (epilogue).
    pub epilogue_cycles: f64,
    /// Extra cycles charged for register-layout conversions (rearranges).
    pub rearrange_cycles: f64,
    /// Per-operation attribution (one entry per static operation).
    pub per_op: Vec<OpCost>,
}

impl CostBreakdown {
    /// Estimated latency in microseconds at the architecture's clock.
    pub fn micros(&self, arch: &GpuArch) -> f64 {
        arch.cycles_to_ns(self.total_cycles) / 1000.0
    }
}

/// The analytical cost model: estimates the latency of a candidate program
/// without compiling or running it.
///
/// The model is `Sync`: one instance can score many candidates from several
/// threads, sharing its per-operation memoization cache.
#[derive(Debug)]
pub struct CostModel<'a> {
    arch: &'a GpuArch,
    /// Read-mostly after warm-up: keys are spread over sharded read-write
    /// locks so the parallel subtree search and candidate scoring do not
    /// serialize on the cache.
    op_cache: ShardedMap<(OpId, u64), (f64, f64)>,
    /// Whole-candidate estimates keyed by [`candidate_fingerprint`]: repeat
    /// scorings of a candidate (e.g. the cost model feeding the performance
    /// simulator) are a single lookup when the incremental search is on.
    /// Bounded by [`CANDIDATE_CACHE_CAPACITY`].
    candidate_cache: ShardedMap<u64, CostBreakdown>,
    /// [`program_fingerprint`] of the program the caches currently describe.
    /// The per-operation cache is keyed by `OpId`, which is only unique
    /// within one program, so estimating a different program clears both
    /// caches (see [`CostModel::retag`]).
    program_tag: RwLock<Option<u64>>,
    /// Prologue/body/epilogue op-index partition for the tagged program,
    /// computed once per retag instead of re-partitioning (three `Vec<&Op>`
    /// allocations) per estimate.
    partition: RwLock<Option<(u64, Arc<OpPartition>)>>,
    /// Process-unique salt mixed into every lossy-tier key: thread-local
    /// lossy tables outlive this model, and a later model for a different
    /// architecture must never see its entries.
    salt: u64,
}

/// Indices into `program.ops()` split by position relative to the main loop.
#[derive(Debug, Default)]
struct OpPartition {
    pre: Vec<u32>,
    body: Vec<u32>,
    post: Vec<u32>,
}

impl<'a> CostModel<'a> {
    /// Creates a cost model for the given architecture.
    pub fn new(arch: &'a GpuArch) -> Self {
        CostModel {
            arch,
            op_cache: ShardedMap::new(),
            candidate_cache: ShardedMap::bounded(CANDIDATE_CACHE_CAPACITY),
            program_tag: RwLock::new(None),
            partition: RwLock::new(None),
            salt: lossy::instance_salt(),
        }
    }

    /// Clears the memoization caches when `program` differs from the one
    /// they were built for, making *sequential* reuse of one model across
    /// programs safe (`OpId`s are only unique within a program). Estimating
    /// different programs concurrently on one model is not supported.
    /// Returns the program's fingerprint so the estimate path can salt its
    /// lossy-tier keys without re-reading the lock.
    pub(crate) fn retag(&self, program: &Program) -> u64 {
        let tag = program_fingerprint(program);
        if *self.program_tag.read().unwrap() == Some(tag) {
            return tag;
        }
        let mut current = self.program_tag.write().unwrap();
        if *current != Some(tag) {
            *current = Some(tag);
            self.op_cache.clear();
            self.candidate_cache.clear();
            *self.partition.write().unwrap() = None;
        }
        tag
    }

    /// The op partition for the tagged program, built on first use per tag.
    fn partition(&self, program: &Program, tag: u64) -> Arc<OpPartition> {
        if let Some((t, p)) = self.partition.read().unwrap().as_ref() {
            if *t == tag {
                return p.clone();
            }
        }
        let ops = program.ops();
        let first_loop = ops.iter().position(|o| o.in_main_loop);
        let last_loop = ops.iter().rposition(|o| o.in_main_loop);
        let part = match (first_loop, last_loop) {
            (Some(first), Some(last)) => OpPartition {
                pre: (0..first as u32).collect(),
                body: (first..=last)
                    .filter(|&i| ops[i].in_main_loop)
                    .map(|i| i as u32)
                    .collect(),
                post: (last as u32 + 1..ops.len() as u32).collect(),
            },
            _ => OpPartition {
                pre: (0..ops.len() as u32).collect(),
                ..OpPartition::default()
            },
        };
        let part = Arc::new(part);
        *self.partition.write().unwrap() = Some((tag, part.clone()));
        part
    }

    /// Estimates the per-block latency of a candidate program.
    ///
    /// When both the fast path and the incremental search are enabled, the
    /// whole estimate is memoized per candidate fingerprint; the memoized
    /// value is bit-identical to a recomputation.
    pub fn estimate(&self, program: &Program, candidate: &Candidate) -> CostBreakdown {
        let tag = self.retag(program);
        if fastpath::enabled() && hexcute_synthesis::incremental_enabled() {
            let key = candidate_fingerprint(program, candidate);
            // The candidate fingerprint already embeds the program
            // fingerprint, so the lossy key only needs the instance salt.
            return lossy::two_tier_get_or_insert_with(
                LossyPurpose::CandidateEstimate,
                self.salt,
                key,
                &self.candidate_cache,
                key,
                || self.estimate_uncached(program, candidate, tag),
            );
        }
        self.estimate_uncached(program, candidate, tag)
    }

    /// The uncached estimate behind [`CostModel::estimate`].
    fn estimate_uncached(
        &self,
        program: &Program,
        candidate: &Candidate,
        tag: u64,
    ) -> CostBreakdown {
        self.estimate_with_costs(
            program,
            tag,
            &|op| self.op_cycles_memo(program, candidate, op, tag),
            self.rearrange_cycles(candidate),
        )
    }

    /// The estimate arithmetic with the per-operation costs supplied by the
    /// caller instead of [`CostModel::op_cycles`]. With the memoized costs
    /// this *is* [`CostModel::estimate`]; the branch-and-bound completion
    /// bound feeds per-op cost *floors* through the same formulas, and the
    /// formulas are monotone nondecreasing in every op's issue and completion
    /// cycles, so the result is an admissible lower bound (see
    /// [`crate::CompletionBounds`]).
    pub(crate) fn estimate_with_costs(
        &self,
        program: &Program,
        tag: u64,
        costs: &dyn Fn(&Op) -> (f64, f64),
        rearrange_cycles: f64,
    ) -> CostBreakdown {
        // Split the static ops into prologue (before the loop), loop body and
        // epilogue (after the loop) by program order; the index partition is
        // computed once per program tag.
        let partition = self.partition(program, tag);
        let (pre, body, post) = (&partition.pre, &partition.body, &partition.post);

        let mut per_op = Vec::with_capacity(program.ops().len());

        let prologue_cycles = self.sequence_cycles(program, pre, &mut per_op, false, costs);
        let body_serial = self.sequence_cycles(program, body, &mut per_op, false, costs);
        let epilogue_cycles = self.sequence_cycles(program, post, &mut per_op, true, costs);

        // Pipelining and warp specialization overlap the memory and compute
        // portions of the loop body across iterations.
        let (body_mem_issue, body_compute_issue, body_max_completion) =
            self.body_split(program, body, costs);
        let stages = program.schedule.pipeline_stages.max(1) as f64;
        let overlapped = program.schedule.pipeline_stages > 1 || program.schedule.warp_specialized;
        let loop_iteration_cycles = if body.is_empty() {
            0.0
        } else if overlapped {
            // Steady state: completion latencies are hidden by the pipeline
            // (only a fraction remains exposed for shallow pipelines). Warp
            // specialization additionally moves the memory instructions onto
            // dedicated producer warps, so the memory and compute *issue*
            // streams overlap too; otherwise both streams share the same
            // warp schedulers and their issue cycles add up.
            let exposed = body_max_completion / (stages * stages.max(1.0));
            if program.schedule.warp_specialized {
                body_mem_issue.max(body_compute_issue) + exposed
            } else {
                body_mem_issue + body_compute_issue + exposed
            }
        } else {
            body_serial
        };
        let trip = program.main_loop_trip_count.max(1) as f64;
        // Pipeline fill cost: the first iteration still waits for its data.
        let fill = if overlapped && !body.is_empty() {
            body_max_completion
        } else {
            0.0
        };

        let total_cycles = prologue_cycles
            + fill
            + trip * loop_iteration_cycles
            + epilogue_cycles
            + rearrange_cycles;

        CostBreakdown {
            total_cycles,
            prologue_cycles,
            loop_iteration_cycles,
            epilogue_cycles,
            rearrange_cycles,
            per_op,
        }
    }

    /// Issue-plus-stall cycles of a straight-line op sequence, tracking
    /// read-after-write dependencies against in-flight completions.
    ///
    /// The tensor-readiness map is a thread-local SoA scratch (epoch-stamped
    /// clock vector indexed by the dense [`TensorId::index`]) reused across
    /// every candidate a worker scores — sibling candidates in the search
    /// walk pay zero allocations here.
    fn sequence_cycles(
        &self,
        program: &Program,
        ops: &[u32],
        per_op: &mut Vec<OpCost>,
        wait_for_all: bool,
        costs: &dyn Fn(&Op) -> (f64, f64),
    ) -> f64 {
        READY_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let epoch = scratch.begin(program.tensors().len());
            let mut clock = 0.0f64;
            let mut last_completion = 0.0f64;
            for &i in ops {
                let op = &program.ops()[i as usize];
                // RAW stall: wait until every input is ready.
                let input_ready = op
                    .inputs()
                    .iter()
                    .map(|t| scratch.ready(epoch, *t))
                    .fold(0.0f64, f64::max);
                let stall = (input_ready - clock).max(0.0);
                clock += stall;

                let (issue, completion) = costs(op);
                clock += issue;
                for out in op.outputs() {
                    scratch.set_ready(epoch, out, clock + completion);
                }
                last_completion = last_completion.max(clock + completion);
                per_op.push(OpCost {
                    op: op.id,
                    issue_cycles: issue,
                    stall_cycles: stall,
                    completion_cycles: completion,
                });
            }
            if wait_for_all {
                clock = clock.max(last_completion);
            }
            clock
        })
    }

    /// Splits the loop body into memory-pipe issue cycles, compute-pipe issue
    /// cycles, and the largest completion latency (used for the pipelining
    /// overlap model).
    fn body_split(
        &self,
        program: &Program,
        body: &[u32],
        costs: &dyn Fn(&Op) -> (f64, f64),
    ) -> (f64, f64, f64) {
        let mut mem = 0.0f64;
        let mut compute = 0.0f64;
        let mut max_completion = 0.0f64;
        for &i in body {
            let op = &program.ops()[i as usize];
            let (issue, completion) = costs(op);
            max_completion = max_completion.max(completion);
            if matches!(op.kind, OpKind::Copy { .. } | OpKind::Rearrange { .. }) {
                mem += issue;
            } else {
                compute += issue;
            }
        }
        (mem, compute, max_completion)
    }

    /// Issue and completion cycles of one tile-level operation under the
    /// candidate's instruction choices.
    ///
    /// Results are memoized per `(operation, choice fingerprint)` when the
    /// fast path is enabled, so candidates sharing a choice for an operation
    /// pay for its estimate once. The cache is invalidated when `program`
    /// differs from the one the model last saw (operation ids are only
    /// unique within a program).
    pub fn op_cycles(&self, program: &Program, candidate: &Candidate, op: &Op) -> (f64, f64) {
        let tag = self.retag(program);
        self.op_cycles_memo(program, candidate, op, tag)
    }

    /// [`CostModel::op_cycles`] without the per-call retag — used by the
    /// estimate loops, which retag once per candidate. The lossy front is
    /// salted with the program tag: `OpId`s are only unique within one
    /// program, and the thread-local tables are never cleared.
    pub(crate) fn op_cycles_memo(
        &self,
        program: &Program,
        candidate: &Candidate,
        op: &Op,
        tag: u64,
    ) -> (f64, f64) {
        if !fastpath::enabled() {
            return self.op_cycles_uncached(program, candidate, op);
        }
        let fp = op_choice_fingerprint(candidate, op);
        // The op-cost compute is cheap and touches no other cache, so the
        // shared fallthrough can afford the compute-under-lock single probe.
        lossy::two_tier_probe_or_insert_with(
            LossyPurpose::OpCost,
            lossy::mix(self.salt, tag),
            lossy::mix(op.id.index() as u64, fp),
            &self.op_cache,
            (op.id, fp),
            || self.op_cycles_uncached(program, candidate, op),
        )
    }

    /// The uncached estimate behind [`CostModel::op_cycles`].
    fn op_cycles_uncached(&self, program: &Program, candidate: &Candidate, op: &Op) -> (f64, f64) {
        match &op.kind {
            OpKind::Copy { src, dst } => {
                if let Some(choice) = candidate.copy_choices.get(&op.id) {
                    let issue = choice.invocations as f64 * choice.atom.issue_cycles;
                    let completion = choice.atom.completion_cycles(self.arch);
                    (issue, completion)
                } else {
                    let elems = program
                        .tensor(*src)
                        .tile_elements_2d()
                        .max(program.tensor(*dst).tile_elements_2d());
                    let per_thread = elems.div_ceil(program.threads_per_block).max(1);
                    let src_space = program.tensor(*src).space;
                    let dst_space = program.tensor(*dst).space;
                    if src_space == hexcute_arch::MemSpace::Register
                        && dst_space == hexcute_arch::MemSpace::Register
                    {
                        // Register-to-register move: pure SIMT traffic.
                        (per_thread as f64, 4.0)
                    } else {
                        // Unselected memory copy: assume scalar element-by-element movement.
                        (2.0 * per_thread as f64, self.arch.dram_latency_cycles)
                    }
                }
            }
            OpKind::Gemm { .. } => {
                if let Some(choice) = candidate.mma_choices.get(&op.id) {
                    let issue = choice.invocations as f64 * choice.atom.issue_cycles;
                    (issue, choice.atom.completion_cycles)
                } else {
                    (1000.0, 50.0)
                }
            }
            OpKind::Rearrange { src, .. } => {
                // Round trip through shared memory: a store and a load per element.
                let decl = program.tensor(*src);
                let per_thread = decl
                    .tile_elements_2d()
                    .div_ceil(program.threads_per_block)
                    .max(1);
                (4.0 * per_thread as f64, 2.0 * self.arch.smem_latency_cycles)
            }
            OpKind::Cast { .. } | OpKind::Elementwise { .. } | OpKind::Fill { .. } => {
                let width = candidate.simt_widths.get(&op.id).copied().unwrap_or(1);
                (width as f64, 4.0)
            }
            OpKind::Dequant { .. } => {
                // Subtract + multiply per element (lop3/fma pairs in the
                // Marlin sequence), all within each thread's own lanes.
                let width = candidate.simt_widths.get(&op.id).copied().unwrap_or(1);
                (2.0 * width as f64, 4.0)
            }
            OpKind::Reduce { src, dim, .. } => {
                // Intra-thread accumulation plus a log-depth warp shuffle tree.
                let width = candidate.simt_widths.get(&op.id).copied().unwrap_or(1);
                let decl = program.tensor(*src);
                let extent = decl.shape.get(*dim).copied().unwrap_or(1) as f64;
                (width as f64 + 2.0 * extent.log2().max(1.0), 8.0)
            }
        }
    }

    /// Clears the per-operation and per-candidate memoization caches. The
    /// thread-local lossy front retains its (salted) entries — every cached
    /// value is a pure function of its key, so a post-clear hit there is
    /// still bit-identical to a recomputation.
    pub fn clear_cache(&self) {
        self.op_cache.clear();
        self.candidate_cache.clear();
    }

    /// Hit/miss/eviction counters of the per-operation estimate cache.
    pub fn op_cache_stats(&self) -> CacheStats {
        self.op_cache.stats()
    }

    /// Hit/miss/eviction counters of the bounded whole-candidate estimate
    /// cache.
    pub fn candidate_cache_stats(&self) -> CacheStats {
        self.candidate_cache.stats()
    }

    pub(crate) fn rearrange_cycles(&self, candidate: &Candidate) -> f64 {
        // Each inserted rearrange is a shared-memory round trip of the tensor.
        candidate
            .rearranges
            .iter()
            .map(|r| {
                let bytes = r.bytes as f64;
                // 128 bytes per cycle per SM through shared memory, twice
                // (store + load), plus two barrier latencies.
                2.0 * bytes / self.arch.smem_bytes_per_cycle_per_sm
                    + 2.0 * self.arch.smem_latency_cycles
            })
            .sum()
    }
}

/// Thread-local SoA scratch for [`CostModel::sequence_cycles`]: tensor
/// readiness clocks in a flat vector indexed by the dense
/// [`TensorId::index`], invalidated wholesale by bumping an epoch stamp
/// instead of clearing (one add per sequence, zero allocation once grown to
/// the largest program seen by the thread).
struct ReadyScratch {
    epoch: u64,
    marks: Vec<u64>,
    clocks: Vec<f64>,
}

impl ReadyScratch {
    /// Starts a fresh sequence over a program with `tensors` declarations,
    /// returning the epoch that validates this sequence's writes.
    fn begin(&mut self, tensors: usize) -> u64 {
        self.epoch += 1;
        if self.marks.len() < tensors {
            self.marks.resize(tensors, 0);
            self.clocks.resize(tensors, 0.0);
        }
        self.epoch
    }

    /// The readiness clock of `t` in this epoch (0.0 when never produced —
    /// the same default the old per-call hash map returned).
    fn ready(&self, epoch: u64, t: TensorId) -> f64 {
        match self.marks.get(t.index()) {
            Some(&mark) if mark == epoch => self.clocks[t.index()],
            _ => 0.0,
        }
    }

    fn set_ready(&mut self, epoch: u64, t: TensorId, clock: f64) {
        let i = t.index();
        if i >= self.marks.len() {
            // Defensive: a tensor id past the decl count (should not happen
            // with the dense builder ids, but growth is cheap and correct).
            self.marks.resize(i + 1, 0);
            self.clocks.resize(i + 1, 0.0);
        }
        self.marks[i] = epoch;
        self.clocks[i] = clock;
    }
}

thread_local! {
    static READY_SCRATCH: RefCell<ReadyScratch> = const {
        RefCell::new(ReadyScratch {
            epoch: 0,
            marks: Vec::new(),
            clocks: Vec::new(),
        })
    };
}

/// A fingerprint of everything candidate-independent the cost model reads
/// from a program: its identity, schedule, and every tensor declaration.
/// Two same-named programs differing only in shapes or dtypes fingerprint
/// differently. Used to invalidate per-operation caches when a shared model
/// or evaluator sees a different program.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut hasher = DefaultHasher::new();
    program.name.hash(&mut hasher);
    program.threads_per_block.hash(&mut hasher);
    program.main_loop_trip_count.hash(&mut hasher);
    program.schedule.pipeline_stages.hash(&mut hasher);
    program.schedule.warp_specialized.hash(&mut hasher);
    for decl in program.tensors() {
        decl.id.hash(&mut hasher);
        decl.dtype.hash(&mut hasher);
        decl.space.hash(&mut hasher);
        decl.shape.hash(&mut hasher);
        decl.global_layout.hash(&mut hasher);
    }
    for op in program.ops() {
        op.id.hash(&mut hasher);
        op.in_main_loop.hash(&mut hasher);
    }
    hasher.finish()
}

/// A fingerprint of the whole candidate as `estimate` reads it — the
/// [`program_fingerprint`] plus every per-operation choice fingerprint and
/// the rearrange set — used to memoize whole-candidate estimates.
pub fn candidate_fingerprint(program: &Program, candidate: &Candidate) -> u64 {
    let mut hasher = DefaultHasher::new();
    program_fingerprint(program).hash(&mut hasher);
    for op in program.ops() {
        op.id.hash(&mut hasher);
        op_choice_fingerprint(candidate, op).hash(&mut hasher);
    }
    for rearrange in &candidate.rearranges {
        rearrange.bytes.hash(&mut hasher);
    }
    hasher.finish()
}

/// A fingerprint of every candidate-dependent input `op_cycles` reads for
/// `op`, used as the memoization key. Candidate-independent inputs (tensor
/// shapes, thread counts, the architecture) are fixed per model instance and
/// per operation, so they do not need to participate. Public so the
/// performance simulator can key its own per-operation caches on the same
/// fingerprint.
pub fn op_choice_fingerprint(candidate: &Candidate, op: &Op) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = FNV_OFFSET;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(FNV_PRIME);
    };
    match &op.kind {
        OpKind::Copy { .. } => {
            if let Some(choice) = candidate.copy_choices.get(&op.id) {
                mix(1);
                mix(choice.invocations as u64);
                mix(choice.elements_per_thread as u64);
                for b in choice.atom.name.bytes() {
                    mix(u64::from(b));
                }
            } else {
                mix(2);
            }
        }
        OpKind::Gemm { .. } => {
            if let Some(choice) = candidate.mma_choices.get(&op.id) {
                mix(3);
                mix(choice.invocations as u64);
                mix(choice.atom.issue_cycles.to_bits());
                mix(choice.atom.completion_cycles.to_bits());
            } else {
                mix(4);
            }
        }
        OpKind::Rearrange { .. } => mix(5),
        OpKind::Cast { .. }
        | OpKind::Elementwise { .. }
        | OpKind::Fill { .. }
        | OpKind::Reduce { .. } => {
            mix(6);
            mix(candidate.simt_widths.get(&op.id).copied().unwrap_or(1) as u64);
        }
        OpKind::Dequant { group_size, .. } => {
            mix(7);
            mix(*group_size as u64);
            mix(candidate.simt_widths.get(&op.id).copied().unwrap_or(1) as u64);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexcute_arch::DType;
    use hexcute_ir::KernelBuilder;
    use hexcute_layout::Layout;
    use hexcute_synthesis::{SynthesisOptions, Synthesizer};

    fn pipelined_gemm(stages: usize) -> Program {
        let (bm, bn, bk, k) = (128, 128, 32, 1024);
        let mut kb = KernelBuilder::new("gemm", 128);
        kb.set_pipeline_stages(stages);
        let ga = kb.global_view(
            "a",
            DType::F16,
            Layout::from_flat(&[bm, bk, k / bk], &[k, 1, bk]),
            &[bm, bk, k / bk],
        );
        let gb = kb.global_view(
            "b",
            DType::F16,
            Layout::from_flat(&[bn, bk, k / bk], &[k, 1, bk]),
            &[bn, bk, k / bk],
        );
        let gc = kb.global_view("c", DType::F16, Layout::row_major(&[bm, bn]), &[bm, bn]);
        let sa = kb.shared_tensor("sa", DType::F16, &[bm, bk]);
        let sb = kb.shared_tensor("sb", DType::F16, &[bn, bk]);
        let ra = kb.register_tensor("ra", DType::F16, &[bm, bk]);
        let rb = kb.register_tensor("rb", DType::F16, &[bn, bk]);
        let rc = kb.register_tensor("rc", DType::F32, &[bm, bn]);
        kb.fill(rc, 0.0);
        kb.begin_loop(k / bk);
        kb.copy(ga, sa);
        kb.copy(gb, sb);
        kb.copy(sa, ra);
        kb.copy(sb, rb);
        kb.gemm(rc, ra, rb);
        kb.end_loop();
        let rc16 = kb.cast(rc, DType::F16);
        kb.copy(rc16, gc);
        kb.build().unwrap()
    }

    fn best_candidate(program: &Program, arch: &GpuArch) -> Candidate {
        Synthesizer::new(program, arch, SynthesisOptions::default())
            .synthesize_preferred()
            .unwrap()
    }

    #[test]
    fn pipelining_reduces_estimated_latency() {
        let arch = GpuArch::a100();
        let serial = pipelined_gemm(1);
        let piped = pipelined_gemm(3);
        let serial_cost = CostModel::new(&arch).estimate(&serial, &best_candidate(&serial, &arch));
        let piped_cost = CostModel::new(&arch).estimate(&piped, &best_candidate(&piped, &arch));
        assert!(
            piped_cost.total_cycles < serial_cost.total_cycles,
            "pipelined {} !< serial {}",
            piped_cost.total_cycles,
            serial_cost.total_cycles
        );
        assert!(piped_cost.loop_iteration_cycles < serial_cost.loop_iteration_cycles);
    }

    #[test]
    fn wider_instructions_are_cheaper() {
        let arch = GpuArch::a100();
        let program = pipelined_gemm(2);
        let candidates = Synthesizer::new(&program, &arch, SynthesisOptions::default())
            .synthesize()
            .unwrap();
        let model = CostModel::new(&arch);
        let preferred = model.estimate(&program, &candidates[0]).total_cycles;
        let scalar = model
            .estimate(&program, candidates.last().unwrap())
            .total_cycles;
        assert!(
            preferred < scalar,
            "preferred {preferred} !< scalar fallback {scalar}"
        );
    }

    #[test]
    fn scalar_ablation_is_slower() {
        let arch = GpuArch::a100();
        let program = pipelined_gemm(2);
        let model = CostModel::new(&arch);
        let vectorized = model.estimate(&program, &best_candidate(&program, &arch));
        let scalar_candidate =
            Synthesizer::new(&program, &arch, SynthesisOptions::scalar_fallback())
                .synthesize_preferred()
                .unwrap();
        let scalar = model.estimate(&program, &scalar_candidate);
        // The kernel is Tensor-Core bound, so the gap is bounded, but the
        // scalar data movement must still cost strictly more.
        assert!(vectorized.total_cycles * 1.2 < scalar.total_cycles);
        assert!(scalar.loop_iteration_cycles > vectorized.loop_iteration_cycles * 1.3);
    }

    #[test]
    fn per_op_attribution_covers_all_static_ops() {
        let arch = GpuArch::a100();
        let program = pipelined_gemm(2);
        let cost = CostModel::new(&arch).estimate(&program, &best_candidate(&program, &arch));
        assert_eq!(cost.per_op.len(), program.ops().len());
        assert!(cost.per_op.iter().all(|c| c.issue_cycles > 0.0));
        assert!(cost.micros(&arch) > 0.0);
    }

    #[test]
    fn candidate_cache_returns_bit_identical_estimates() {
        let arch = GpuArch::a100();
        let program = pipelined_gemm(2);
        let candidate = best_candidate(&program, &arch);
        let model = CostModel::new(&arch);
        let first = model.estimate(&program, &candidate);
        let cached = model.estimate(&program, &candidate);
        let fresh = CostModel::new(&arch).estimate(&program, &candidate);
        assert_eq!(first.total_cycles.to_bits(), cached.total_cycles.to_bits());
        assert_eq!(first, cached);
        assert_eq!(first, fresh);
        // Distinct candidates have distinct fingerprints.
        let scalar = Synthesizer::new(&program, &arch, SynthesisOptions::scalar_fallback())
            .synthesize_preferred()
            .unwrap();
        assert_ne!(
            candidate_fingerprint(&program, &candidate),
            candidate_fingerprint(&program, &scalar)
        );
    }

    #[test]
    fn rearranges_add_cost() {
        let arch = GpuArch::a100();
        let mut kb = KernelBuilder::new("two_gemms", 128);
        let q = kb.register_tensor("q", DType::F16, &[64, 64]);
        let k = kb.register_tensor("k", DType::F16, &[64, 64]);
        let v = kb.register_tensor("v", DType::F16, &[64, 64]);
        let s = kb.register_tensor("s", DType::F32, &[64, 64]);
        let o = kb.register_tensor("o", DType::F32, &[64, 64]);
        kb.fill(s, 0.0);
        kb.fill(o, 0.0);
        kb.gemm(s, q, k);
        let p = kb.cast(s, DType::F16);
        kb.gemm(o, p, v);
        let program = kb.build().unwrap();
        let candidate = best_candidate(&program, &arch);
        assert!(!candidate.rearranges.is_empty());
        let cost = CostModel::new(&arch).estimate(&program, &candidate);
        assert!(cost.rearrange_cycles > 0.0);
    }
}
