//! Admissible completion bounds for the branch-and-bound synthesis search.
//!
//! [`CompletionBounds`] implements [`hexcute_synthesis::SearchBounder`] on
//! top of the analytical cost model. Its lower bound replays the exact
//! estimate arithmetic of [`CostModel::estimate`] with each operation's
//! issue/completion cycles replaced by a per-operation *floor*:
//!
//! * an **undecided** copy op is charged the componentwise minimum over all
//!   of its materialized alternatives *and* the scalar-degraded choice the
//!   all-plans feasibility fallback substitutes;
//! * a **decided** copy op is charged the componentwise minimum of its
//!   actual choice and the degraded choice (the fallback rewrites decided
//!   choices too, so the actual cost alone would not be a lower bound);
//! * every other op keeps its exact cost — its choice is fixed across the
//!   whole search.
//!
//! Every estimate formula (read-after-write stall tracking, the memory /
//! compute issue split, pipelined-loop overlap) is monotone nondecreasing in
//! each operation's issue and completion cycles, and IEEE-754 rounding of
//! `+`, `max` and multiplication by positive constants preserves that
//! monotonicity — so feeding componentwise floors through the unchanged
//! arithmetic yields a value no larger than the exact score of *any*
//! feasible completion. That is the admissibility contract of
//! [`SearchBounder::completion_bound`], property-checked by the
//! `bound_admissibility` proptest in `hexcute-synthesis`.

use std::collections::HashMap;

use hexcute_ir::{Op, OpId, Program};
use hexcute_synthesis::{Candidate, CopyChoice, SearchBounder, SearchSpace};

use crate::model::CostModel;

/// A [`SearchBounder`] backed by a [`CostModel`]: exact scores come straight
/// from [`CostModel::estimate`] (bit-identical to the exhaustive selection
/// loop, which uses the same call), and completion bounds replay the same
/// arithmetic over per-operation cost floors precomputed by
/// [`SearchBounder::prepare`].
#[derive(Debug)]
pub struct CompletionBounds<'a> {
    model: &'a CostModel<'a>,
    program: &'a Program,
    /// Componentwise `(issue, completion)` minimum over every alternative of
    /// a planned copy, including the scalar-degraded fallback choice.
    floors: HashMap<OpId, (f64, f64)>,
    /// The `(issue, completion)` cost of the scalar-degraded fallback choice
    /// per planned copy, folded into decided ops' costs because the
    /// feasibility fallback may rewrite them.
    degraded: HashMap<OpId, (f64, f64)>,
}

impl<'a> CompletionBounds<'a> {
    /// Creates a bounder for `program` scoring through `model`. Call
    /// [`SearchBounder::prepare`] (the pruned search does) before asking for
    /// bounds; until then every floor is empty and bounds degrade to exact
    /// per-choice costs, which is still admissible but prunes nothing.
    pub fn new(model: &'a CostModel<'a>, program: &'a Program) -> Self {
        CompletionBounds {
            model,
            program,
            floors: HashMap::new(),
            degraded: HashMap::new(),
        }
    }

    /// The `(issue, completion)` cost of one materialized choice for `op`,
    /// computed exactly as the estimate would compute it — through a
    /// throwaway candidate carrying just that choice.
    fn choice_cost(&self, op: &Op, choice: &CopyChoice) -> (f64, f64) {
        let mut probe = Candidate::default();
        probe.copy_choices.insert(op.id, choice.clone());
        self.model.op_cycles(self.program, &probe, op)
    }
}

impl SearchBounder for CompletionBounds<'_> {
    fn prepare(&mut self, space: &SearchSpace) {
        self.floors.clear();
        self.degraded.clear();
        for plan in &space.plans {
            let Some(op) = self.program.ops().iter().find(|o| o.id == plan.op) else {
                continue;
            };
            let degraded = self.choice_cost(op, &plan.degraded);
            let floor = plan
                .choices
                .iter()
                .map(|choice| self.choice_cost(op, choice))
                .fold(degraded, |(fi, fc), (i, c)| (fi.min(i), fc.min(c)));
            self.floors.insert(plan.op, floor);
            self.degraded.insert(plan.op, degraded);
        }
    }

    fn exact_score(&self, candidate: &Candidate) -> f64 {
        self.model.estimate(self.program, candidate).total_cycles
    }

    fn completion_bound(&self, candidate: &Candidate, undecided: &[OpId]) -> f64 {
        let tag = self.model.retag(self.program);
        let costs = |op: &Op| -> (f64, f64) {
            if undecided.contains(&op.id) {
                if let Some(&floor) = self.floors.get(&op.id) {
                    return floor;
                }
            }
            let (issue, completion) = self.model.op_cycles_memo(self.program, candidate, op, tag);
            match self.degraded.get(&op.id) {
                // Decided planned copy: the feasibility fallback may still
                // swap in the degraded choice, so bound by the cheaper one.
                Some(&(di, dc)) => (issue.min(di), completion.min(dc)),
                None => (issue, completion),
            }
        };
        self.model
            .estimate_with_costs(
                self.program,
                tag,
                &costs,
                self.model.rearrange_cycles(candidate),
            )
            .total_cycles
    }
}
