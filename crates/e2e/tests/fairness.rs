//! Fairness / no-starvation tests for the ticketed admission queue (PR 10):
//! with one synthesis slot and both classes parked, grants must be FIFO
//! within a class, latency-critical requests must be preferred, and the
//! periodic background boost must give the background class guaranteed
//! (bounded-wait) progress under a sustained latency-critical stream —
//! never a priority inversion outside a boost. Runs in the
//! `determinism-mt` CI leg: the grant schedule is a pure function of
//! arrival (ticket) order, independent of `HEXCUTE_THREADS`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use hexcute_arch::GpuArch;
use hexcute_core::{CompilerOptions, KernelCacheConfig};
use hexcute_e2e::{CompileService, Priority, ServiceConfig, TenantId};
use hexcute_ir::Program;
use hexcute_kernels::gemm::{fp16_gemm, GemmConfig, GemmShape};

/// A kernel that synthesizes long enough for an observable queue to build
/// up behind it.
fn slow_program() -> Program {
    fp16_gemm(GemmShape::new(1024, 1024, 1024), GemmConfig::default()).unwrap()
}

/// Distinct quick kernels (one per waiter, so nothing coalesces).
fn small_program(k: usize) -> Program {
    fp16_gemm(GemmShape::new(128, 128, k), GemmConfig::default()).unwrap()
}

/// N background waiters park first, then a stream of latency-critical
/// arrivals queues behind one held slot. Every request must complete
/// (bounded wait — the join proves no starvation), same-class requests must
/// complete in submission order, and the interleave must be exactly the
/// boosted-priority schedule: two latency grants, then one boosted
/// background grant, repeating — with zero priority inversions.
#[test]
fn background_waiters_are_never_starved_and_classes_stay_fifo() {
    let config = ServiceConfig {
        max_concurrent: 1,
        queue_capacity: 16,
        background_queue_capacity: 16,
        boost_interval: 2,
        ..ServiceConfig::default()
    };
    let service = Arc::new(CompileService::with_service_config(
        GpuArch::h100(),
        CompilerOptions::new(),
        KernelCacheConfig::default(),
        config,
    ));

    // Occupy the only slot for long enough (a ~1 s synthesis vs. ~ms of
    // enqueueing below) that every waiter parks before the first grant.
    let holder = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || service.compile(&slow_program()))
    };
    while service.stats().syntheses == 0 {
        std::thread::yield_now();
    }

    // Arrivals are serialized by polling the queue depth, so ticket order
    // equals submission order: B0..B3 first, then the L0..L7 stream.
    let arrivals: Vec<(Priority, String)> = (0..4)
        .map(|i| (Priority::Background, format!("B{i}")))
        .chain((0..8).map(|i| (Priority::LatencyCritical, format!("L{i}"))))
        .collect();
    let order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let failures = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for (parked, (priority, label)) in arrivals.into_iter().enumerate() {
        let worker = Arc::clone(&service);
        let order = Arc::clone(&order);
        let failures = Arc::clone(&failures);
        let program = small_program(32 + parked);
        handles.push(std::thread::spawn(move || {
            let tenant = TenantId(0);
            match worker.compile_as(&program, priority, tenant) {
                Ok(_) => order.lock().unwrap().push(label),
                Err(_) => {
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
        while service.stats().queue_depth < parked + 1 {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
    assert_eq!(
        service.stats().syntheses,
        1,
        "the slot holder must still be in flight while the queue builds"
    );

    holder.join().unwrap().expect("the slot holder succeeds");
    for handle in handles {
        handle.join().expect("waiter threads must complete");
    }
    assert_eq!(failures.load(Ordering::Relaxed), 0, "every waiter succeeds");

    // Expected grant schedule with boost_interval = 2 and everything
    // parked: L,L then a boosted B, repeating; the background tail drains
    // once the latency queue is empty.
    let order = order.lock().unwrap();
    assert_eq!(
        *order,
        ["L0", "L1", "B0", "L2", "L3", "B1", "L4", "L5", "B2", "L6", "L7", "B3"],
        "grants must be FIFO within a class with periodic background boosts"
    );

    let stats = service.stats();
    assert_eq!(stats.background_requests, 4, "{stats}");
    assert_eq!(
        stats.background_boosts, 3,
        "B0..B2 are boosted over parked latency waiters; B3 drains an empty \
         latency queue: {stats}"
    );
    assert_eq!(
        stats.priority_inversions, 0,
        "no background grant may overtake a parked latency waiter outside \
         a boost: {stats}"
    );
    assert_eq!(stats.max_queue_depth, 12, "{stats}");
    assert_eq!(stats.queue_depth, 0, "{stats}");
}

/// Two tenants sharing the latency class under a per-tenant quota: an
/// over-quota tenant's burst must not lock the other tenant out — the
/// quota caps tenant 1 to one in-flight synthesis, so tenant 2's (younger)
/// requests are granted the other slot — and FIFO within each tenant is
/// preserved throughout.
#[test]
fn tenant_bursts_share_the_slots_fairly() {
    let config = ServiceConfig {
        max_concurrent: 2,
        queue_capacity: 32,
        tenant_quota: 1,
        ..ServiceConfig::default()
    };
    let service = Arc::new(CompileService::with_service_config(
        GpuArch::h100(),
        CompilerOptions::new(),
        KernelCacheConfig::default(),
        config,
    ));

    // Two distinct slow kernels (they must not coalesce) on two distinct
    // tenants occupy both slots while the queue builds.
    let holders: Vec<_> = [
        (100u32, GemmShape::new(1024, 1024, 1024)),
        (101u32, GemmShape::new(1024, 1024, 512)),
    ]
    .into_iter()
    .map(|(tenant, shape)| {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let program = fp16_gemm(shape, GemmConfig::default()).unwrap();
            service.compile_as(&program, Priority::LatencyCritical, TenantId(tenant))
        })
    })
    .collect();
    while service.stats().syntheses < 2 {
        std::thread::yield_now();
    }

    // Tenant 1 bursts six requests, then tenant 2 submits two — strictly
    // younger tickets.
    let order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    let arrivals: Vec<(u32, String)> = (0..6)
        .map(|i| (1u32, format!("t1-{i}")))
        .chain((0..2).map(|i| (2u32, format!("t2-{i}"))))
        .collect();
    for (parked, (tenant, label)) in arrivals.into_iter().enumerate() {
        let worker = Arc::clone(&service);
        let order = Arc::clone(&order);
        let program = small_program(64 + parked);
        handles.push(std::thread::spawn(move || {
            let response = worker.compile_as(&program, Priority::LatencyCritical, TenantId(tenant));
            response.expect("tenant requests succeed");
            order.lock().unwrap().push(label);
        }));
        while service.stats().queue_depth < parked + 1 {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }

    for holder in holders {
        holder.join().unwrap().expect("the slot holders succeed");
    }
    for handle in handles {
        handle.join().expect("tenant threads must complete");
    }

    // The quota keeps at most one tenant-1 synthesis in flight, so tenant
    // 2's two requests ride the second slot and finish long before tenant
    // 1's burst drains; within each tenant, completions are FIFO.
    let order = order.lock().unwrap();
    let t2_last = order.iter().rposition(|l| l.starts_with("t2")).unwrap();
    assert!(
        t2_last <= 4,
        "tenant 2's requests must not wait out tenant 1's burst: {order:?}"
    );
    for tenant in ["t1", "t2"] {
        let seq: Vec<_> = order.iter().filter(|l| l.starts_with(tenant)).collect();
        let mut sorted = seq.clone();
        sorted.sort();
        assert_eq!(seq, sorted, "FIFO within {tenant} violated: {order:?}");
    }
    let stats = service.stats();
    assert_eq!(stats.priority_inversions, 0, "{stats}");
}
